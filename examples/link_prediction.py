#!/usr/bin/env python
"""Link prediction with exact Personalized PageRank.

One of the paper's motivating applications ([4] in its introduction):
rank candidate neighbours of a node by their PPV score.  This example
hides a sample of existing edges, scores candidates with an exact HGPA
index, and reports hits@k against the hidden edges — showing why the
*full* exact vector matters (top-k-only methods can't re-rank arbitrary
candidate sets).

Run:  python examples/link_prediction.py
"""

from __future__ import annotations

import numpy as np

from repro.core import build_hgpa_index
from repro.graph import DiGraph, hierarchical_community_digraph


def hide_edges(graph: DiGraph, fraction: float, rng: np.random.Generator):
    """Remove a random sample of edges; return (training graph, hidden)."""
    src, dst = graph.edge_arrays()
    m = src.size
    hidden_mask = rng.random(m) < fraction
    # Keep every node with at least one outgoing edge.
    keep = ~hidden_mask
    train = DiGraph.from_arrays(graph.num_nodes, src[keep], dst[keep])
    hidden = list(zip(src[hidden_mask].tolist(), dst[hidden_mask].tolist()))
    return train.with_dangling_policy("self_loop"), hidden


def main() -> None:
    rng = np.random.default_rng(7)
    graph = hierarchical_community_digraph(
        1200, avg_out_degree=5, seed=11, name="social"
    ).with_dangling_policy("self_loop")
    train, hidden = hide_edges(graph, fraction=0.1, rng=rng)
    print(f"graph: {graph}, hidden test edges: {len(hidden)}")

    index = build_hgpa_index(train, max_levels=6, tol=1e-5, seed=0)
    print(f"index built: {index.hierarchy.hub_nodes().size} hubs, "
          f"{index.total_bytes() / 1e6:.1f} MB")

    # Evaluate: for each hidden edge (u, v), does v appear in u's top-k
    # PPV ranking among non-neighbours?
    by_source: dict[int, set[int]] = {}
    for u, v in hidden:
        by_source.setdefault(u, set()).add(v)

    hits, total = {5: 0, 20: 0, 50: 0}, 0
    sources = list(by_source)[:150]
    for u in sources:
        ppv = index.query(u)
        # Exclude existing neighbours and the query itself.
        ppv[train.successors(u)] = -1.0
        ppv[u] = -1.0
        ranked = np.argsort(-ppv)
        targets = by_source[u]
        total += len(targets)
        for k in hits:
            top = set(ranked[:k].tolist())
            hits[k] += len(targets & top)

    print(f"\nlink prediction over {len(sources)} source nodes, "
          f"{total} hidden edges:")
    for k, h in hits.items():
        print(f"  hits@{k:<3d} = {h / total:.3f}")
    baseline = 50 / train.num_nodes
    print(f"  (random hits@50 would be ≈ {baseline:.3f})")
    assert hits[50] / total > 5 * baseline, "PPR should beat random easily"


if __name__ == "__main__":
    main()
