#!/usr/bin/env python
"""Distributed PPV: HGPA's one-round protocol vs BSP engine baselines.

Reproduces the paper's headline comparison (Section 6.2.8) interactively:
the same query answered by

* HGPA on a simulated 6-machine share-nothing cluster (one communication
  round, Theorem 4),
* power iteration on a Pregel+-style vertex-centric engine (one
  communication round *per superstep*),
* power iteration on a Blogel-style block-centric engine.

Run:  python examples/cluster_comparison.py
"""

from __future__ import annotations

from repro import datasets
from repro.core import build_hgpa_index
from repro.distributed import DistributedHGPA
from repro.engines import BlogelPPR, PregelPPR
from repro.metrics import l_inf

MACHINES = 6
TOL = 1e-4


def main() -> None:
    graph = datasets.load("web")
    query = int(datasets.query_nodes(graph, 1)[0])
    print(f"graph: {graph}, query node {query}, {MACHINES} machines, ε={TOL}\n")

    index = build_hgpa_index(
        graph, max_levels=datasets.spec("web").hgpa_levels, tol=TOL, seed=0
    )
    cluster = DistributedHGPA(index, MACHINES)
    hgpa_vec, hgpa_rep = cluster.query(query)
    print(
        f"HGPA    : 1 round, {hgpa_rep.communication_kb:9.1f} KB, "
        f"modeled {hgpa_rep.runtime_seconds * 1000:9.2f} ms, "
        f"load imbalance {hgpa_rep.load_imbalance:.2f}"
    )

    blogel_vec, blog = BlogelPPR(graph, MACHINES).query(query, tol=TOL)
    print(
        f"Blogel  : {blog.supersteps:3d} rounds, {blog.communication_kb:7.1f} KB, "
        f"modeled {blog.runtime_seconds * 1000:9.2f} ms"
    )

    pregel_vec, preg = PregelPPR(graph, MACHINES).query(query, tol=TOL)
    print(
        f"Pregel+ : {preg.supersteps:3d} rounds, {preg.communication_kb:7.1f} KB, "
        f"modeled {preg.runtime_seconds * 1000:9.2f} ms"
    )

    print(
        f"\nHGPA speedup: {preg.runtime_seconds / hgpa_rep.runtime_seconds:6.1f}x "
        f"vs Pregel+, {blog.runtime_seconds / hgpa_rep.runtime_seconds:6.1f}x vs Blogel"
    )
    print(
        f"traffic ratio: Pregel+/HGPA = "
        f"{preg.communication_bytes / hgpa_rep.communication_bytes:6.1f}x"
    )

    # All three agree on the answer.
    print(f"\nagreement: |HGPA - Pregel+| = {l_inf(hgpa_vec, pregel_vec):.2e}, "
          f"|HGPA - Blogel| = {l_inf(hgpa_vec, blogel_vec):.2e}")
    assert l_inf(hgpa_vec, pregel_vec) < 50 * TOL


if __name__ == "__main__":
    main()
