#!/usr/bin/env python
"""Sharded PPV serving: partition → deploy → route → stats.

Walks the full composition of the serving tier:

1. partition the Email stand-in graph and build the GPA index on it,
2. derive the node→shard affinity map from the partition,
3. stand up a ``ShardRouter`` — 4 shards × 2 replicas, per-shard LRU
   caches — behind a micro-batching ``PPVService``,
4. replay a Zipf-skewed stream and read the per-shard ``ShardStats``,
5. kill a replica mid-stream and watch traffic reroute, then recover.

Run:  python examples/sharded_serving.py
"""

from __future__ import annotations

import numpy as np

from repro import datasets
from repro.core import build_gpa_index
from repro.serving import PPVService, SimulatedClock
from repro.sharding import ShardRouter, owner_map_from_partition

NUM_SHARDS = 4
REPLICAS = 2


def main() -> None:
    # 1. Partition + index: the GPA index keeps its FlatPartition, which
    # is exactly the shard assignment the router routes by.
    graph = datasets.load("email")
    index = build_gpa_index(graph, NUM_SHARDS, tol=1e-6, seed=0)
    n = graph.num_nodes
    print(f"graph: {graph}, {NUM_SHARDS} partitions")

    # 2. Affinity map: non-hub nodes go to their partition's shard, hubs
    # (the separator — they belong to no part) are hashed.
    owner_map = owner_map_from_partition(index.partition, NUM_SHARDS)

    # 3. The router is itself a QueryBackend, so the micro-batching
    # service drops on top unchanged.  In-process the replicas share one
    # index object; a real deployment would give each its own copy.
    clock = SimulatedClock()
    router = ShardRouter(
        [[index] * REPLICAS for _ in range(NUM_SHARDS)],
        policy="owner",
        owner_map=owner_map,
        cache_bytes=2 << 20,
        clock=clock,
    )
    service = PPVService(router, window=0.005, max_batch=64, clock=clock)

    # 4. Zipf traffic (hot users dominate), replayed deterministically.
    rng = np.random.default_rng(7)
    p = np.arange(1, n + 1, dtype=np.float64) ** -1.2
    p /= p.sum()
    stream = rng.permutation(n)[rng.choice(n, size=600, p=p)]
    arrivals = np.arange(stream.size) * 1e-4  # 10k requests/second
    results = service.serve(stream, arrivals)
    print(f"served {stream.size} requests -> {results.shape} results")

    stats = router.stats()
    print(f"per-shard queries: {stats.queries_by_shard}")
    print(
        f"load imbalance: {stats.load_imbalance:.2f}, "
        f"cache hit rate: {stats.cache.hit_rate:.2f}, "
        f"router<->shard traffic: {stats.total_bytes / 1024:.0f} KB, "
        f"parallel makespan: {stats.makespan_seconds * 1e3:.1f} ms"
    )

    # Sharded results are exact — identical to per-node index queries.
    check = int(stream[0])
    drift = np.abs(results[0] - index.query(check)).max()
    print(f"max drift vs direct query({check}): {drift:.2e}")

    # 5. Deterministic failover: take shard 0's replica 0 down for 50 ms
    # of simulated time; its traffic reroutes to replica 1, then drifts
    # back once the outage elapses.
    router.mark_down(0, 0, for_seconds=0.050)
    more = rng.permutation(n)[rng.choice(n, size=200, p=p)]
    service.serve(more, arrivals[:200] + clock.now())
    shard0 = router.shards[0]
    print(
        "after failover, shard 0 replica batches: "
        + str([r.served_batches for r in shard0.replicas])
    )

    # Thresholded top-k rides the same sharded path: entries with
    # score <= eps are dropped shard-side, the tail padded with id -1.
    ids, scores, _ = router.query_many_topk(stream[:4], 10, threshold=1e-3)
    print(f"top-10 (score > 1e-3) of node {int(stream[0])}: " + ", ".join(
        f"{i}:{s:.4f}" for i, s in zip(ids[0].tolist(), scores[0].tolist())
        if i >= 0
    ))


if __name__ == "__main__":
    main()
