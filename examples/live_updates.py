#!/usr/bin/env python
"""Live graph updates through the full serving stack.

Walks the versioned update pipeline end to end:

1. build the GPA index on the Email stand-in graph and stand up a
   ``ShardRouter`` (3 shards × 2 replicas, per-shard caches) behind a
   micro-batching ``PPVService``,
2. apply an edge insert *through the service* — the index updates
   incrementally (affected columns only), caches drop exactly the
   affected rows, and the epoch bumps,
3. roll a second update out one replica per shard at a time: the group
   keeps serving the old epoch while replicas flip, every answer tagged
   with the epoch it was computed at,
4. replay a mixed query/update arrival stream deterministically.

Run:  python examples/live_updates.py
"""

from __future__ import annotations

import numpy as np

from repro import datasets
from repro.core import EdgeUpdate, build_gpa_index
from repro.serving import PPVService, SimulatedClock
from repro.sharding import ShardRouter, owner_map_from_partition

NUM_SHARDS = 3
REPLICAS = 2


def main() -> None:
    # 1. Index + sharded serving tier.  In-process the replicas share one
    # index object; updates are functional (the old index stays valid),
    # which is exactly what lets replicas serve different epochs mid-
    # rollout.
    graph = datasets.load("email")
    index = build_gpa_index(graph, NUM_SHARDS, tol=1e-6, seed=0)
    n = graph.num_nodes
    clock = SimulatedClock()
    router = ShardRouter(
        [[index] * REPLICAS for _ in range(NUM_SHARDS)],
        policy="owner",
        owner_map=owner_map_from_partition(index.partition, NUM_SHARDS),
        cache_bytes=2 << 20,
        clock=clock,
    )
    service = PPVService(router, window=0.005, max_batch=32, clock=clock)
    print(f"graph: {graph}")
    print(f"router: {router}, epoch {router.epoch}")

    # Warm the caches with a few queries.
    for u in (3, 17, 42):
        service.query(u)

    # 2. A live edge insert, applied through the service.  The receipt
    # says what changed: the epoch, the affected sources (the only rows
    # whose PPVs can differ — caches drop exactly those), and how little
    # of the index had to be rebuilt.
    rng = np.random.default_rng(0)
    while True:
        u, v = int(rng.integers(0, n)), int(rng.integers(0, n))
        if u != v and not graph.has_edge(u, v):
            break
    receipt = service.apply_update(EdgeUpdate.insert(u, v))
    print(f"\napplied {receipt.update}: epoch {receipt.epoch}")
    print(
        f"  affected sources: {receipt.num_affected}/{n}, "
        f"rebuild fraction: {receipt.stats.rebuild_fraction:.4f}"
    )
    ticket = service.submit(u)
    service.flush()
    print(f"  answer for node {u} tagged epoch {ticket.epoch}")

    # 3. Staggered rollout: one replica per shard at a time.  Between
    # waves the group keeps serving — traffic routes away from the
    # replica that is installing the update, and mid-rollout answers are
    # tagged with the epoch of whichever replica produced them.
    current = router.shards[0].replicas[0].backend.engine.graph
    while True:
        u2, v2 = int(rng.integers(0, n)), int(rng.integers(0, n))
        if u2 != v2 and not current.has_edge(u2, v2):
            break
    rollout = router.begin_rollout(
        EdgeUpdate.insert(u2, v2), update_seconds=0.5
    )
    print(f"\nrollout of +({u2}->{v2}): {rollout.waves} waves")
    rollout.step()
    _, infos = router.query_many(np.asarray([u2, v2, 3, 17]))
    print(
        "  mid-rollout epochs per answer:",
        [info.epoch for info in infos],
        f"(router epoch still {router.epoch})",
    )
    clock.advance(0.5)
    rollout.step()
    print(f"  rollout done: router epoch {router.epoch}")

    # 4. A deterministic mixed arrival stream: queries and updates in one
    # timeline, updates applied at batch boundaries.
    while True:
        u3, v3 = int(rng.integers(0, n)), int(rng.integers(0, n))
        current = router.shards[0].replicas[0].backend.engine.graph
        if u3 != v3 and current.has_edge(u3, v3) and current.out_degree(u3) > 1:
            break
    events = [
        (0.000, 3),
        (0.001, 42),
        (0.020, EdgeUpdate.delete(u3, v3)),
        (0.030, 3),
        (0.031, 42),
    ]
    outcomes = service.replay(events)
    print("\nreplayed mixed stream:")
    for (t, item), outcome in zip(events, outcomes):
        if isinstance(item, EdgeUpdate):
            print(f"  t={t:.3f}  {item}  -> epoch {outcome.epoch}")
        else:
            print(f"  t={t:.3f}  query {item}  -> epoch {outcome.epoch}")
    print(f"\nservice stats: {service.stats}")


if __name__ == "__main__":
    main()
