#!/usr/bin/env python
"""Quickstart: build an HGPA index and answer exact PPV queries.

Walks the whole pipeline on the Email stand-in dataset:

1. load a graph,
2. build the hierarchical index (one-off pre-computation),
3. answer single-node and preference-set queries,
4. verify exactness against power iteration,
5. deploy the same index on a simulated 6-machine cluster.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import datasets
from repro.core import (
    build_hgpa_index,
    power_iteration_ppv,
    ppv_for_preference_set,
)
from repro.distributed import DistributedHGPA
from repro.metrics import l_inf, top_k_nodes


def main() -> None:
    # 1. A graph. Any DiGraph works; stand-ins mirror the paper's datasets.
    graph = datasets.load("email")
    print(f"graph: {graph}")

    # 2. Pre-compute the HGPA index (Section 4 of the paper).
    index = build_hgpa_index(graph, max_levels=5, tol=1e-6, seed=0)
    hier = index.hierarchy
    print(
        f"hierarchy: {hier.depth} levels, {len(hier.subgraphs)} subgraphs, "
        f"{hier.hub_nodes().size} hub nodes, "
        f"index size {index.total_bytes() / 1e6:.1f} MB"
    )

    # 3a. Exact single-node PPV.
    query = 42
    ppv = index.query(query)
    top = top_k_nodes(ppv, 5)
    print(f"\nPPV({query}) top-5 nodes: "
          + ", ".join(f"{v} ({ppv[v]:.4f})" for v in top.tolist()))

    # 3b. Preference sets via linearity: personalise to several nodes at once.
    pref = {42: 2.0, 7: 1.0}
    mixed = ppv_for_preference_set(index.query, pref)
    print(f"PPV({pref}) top-5 nodes: {top_k_nodes(mixed, 5).tolist()}")

    # 4. Exactness check (Theorems 1 and 3).
    reference = power_iteration_ppv(graph, query, tol=1e-6)
    print(f"\nL_inf vs power iteration: {l_inf(ppv, reference):.2e}")

    # 5. The same index on a simulated share-nothing cluster.
    cluster = DistributedHGPA(index, num_machines=6)
    dist_ppv, report = cluster.query(query)
    assert np.abs(dist_ppv - ppv).max() < 1e-9
    print(
        f"distributed query: {report.communication_kb:.1f} KB over one round, "
        f"{len(report.per_machine_bytes)} machine vectors, "
        f"modeled runtime {report.runtime_seconds * 1000:.2f} ms"
    )


if __name__ == "__main__":
    main()
