#!/usr/bin/env python
"""Who-to-follow style recommendation on a bipartite interest graph.

The paper cites recommendation ([22, 27]) as a core PPV application: on a
user↔item graph, the PPV of a user ranks items by multi-hop affinity
(user → item → other users → their items …), which plain neighbour counts
miss.  Preference-set queries (the linearity property) personalise to a
whole watch-history at once.

Run:  python examples/recommendation.py
"""

from __future__ import annotations

import numpy as np

from repro.core import build_hgpa_index, ppv_for_preference_set
from repro.graph import DiGraph


def build_user_item_graph(
    num_users: int, num_items: int, *, seed: int
) -> tuple[DiGraph, np.ndarray]:
    """Users 0..U-1, items U..U+I-1; edges both ways per interaction.

    Users belong to taste clusters; each cluster prefers a slice of items.
    """
    rng = np.random.default_rng(seed)
    clusters = 6
    user_cluster = rng.integers(0, clusters, num_users)
    src, dst = [], []
    for u in range(num_users):
        c = user_cluster[u]
        lo = c * num_items // clusters
        hi = (c + 1) * num_items // clusters
        favourites = rng.integers(lo, hi, 6)
        wildcard = rng.integers(0, num_items, 2)
        for item in np.concatenate([favourites, wildcard]):
            item_node = num_users + int(item)
            src += [u, item_node]
            dst += [item_node, u]
    graph = DiGraph.from_arrays(
        num_users + num_items, np.asarray(src), np.asarray(dst), name="user-item"
    )
    return graph.with_dangling_policy("self_loop"), user_cluster


def main() -> None:
    num_users, num_items = 900, 300
    graph, user_cluster = build_user_item_graph(num_users, num_items, seed=5)
    print(f"graph: {graph} ({num_users} users, {num_items} items)")

    index = build_hgpa_index(graph, max_levels=6, tol=1e-5, seed=0)
    print(f"index: {index.hierarchy.hub_nodes().size} hubs, "
          f"{index.total_bytes() / 1e6:.1f} MB\n")

    rng = np.random.default_rng(2)
    in_cluster_rate = []
    for user in rng.integers(0, num_users, 4).tolist():
        # Personalise to the user's three most recent items (linearity).
        history = graph.successors(user)[:3]
        pref = {user: 1.0, **{int(i): 1.0 for i in history}}
        ppv = ppv_for_preference_set(index.query, pref)
        # Rank unseen items only.
        scores = ppv[num_users:].copy()
        seen = graph.successors(user) - num_users
        scores[seen[seen >= 0]] = -1.0
        top_items = np.argsort(-scores)[:5]
        cluster = user_cluster[user]
        lo = cluster * num_items // 6
        hi = (cluster + 1) * num_items // 6
        in_cluster = np.mean((top_items >= lo) & (top_items < hi))
        in_cluster_rate.append(in_cluster)
        print(f"user {user:3d} (taste cluster {cluster}): recommend items "
              f"{top_items.tolist()}  in-cluster={in_cluster:.2f}")

    mean_rate = float(np.mean(in_cluster_rate))
    print(f"\nmean in-cluster rate: {mean_rate:.2f} (random ≈ 0.17)")
    assert mean_rate > 0.5, "recommendations should respect taste clusters"


if __name__ == "__main__":
    main()
