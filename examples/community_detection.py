#!/usr/bin/env python
"""Local community detection via PPR sweep cuts.

Another motivating application of the paper ([3, 21]): given a seed node,
compute its exact PPV, order nodes by degree-normalised PPV score, and
sweep for the prefix with the best conductance — the classic
Andersen–Chung–Lang recipe, here running on exact vectors from an HGPA
index instead of approximate push vectors.

Run:  python examples/community_detection.py
"""

from __future__ import annotations

import numpy as np

from repro.core import build_hgpa_index
from repro.graph import DiGraph, hierarchical_community_digraph


def conductance(graph: DiGraph, members: np.ndarray) -> float:
    """Cut(S, V∖S) / min(vol(S), vol(V∖S)) on the symmetrised graph."""
    inside = np.zeros(graph.num_nodes, dtype=bool)
    inside[members] = True
    src, dst = graph.edge_arrays()
    cut = int((inside[src] != inside[dst]).sum())
    vol_s = int(graph.out_degrees[members].sum())
    vol_rest = graph.num_edges - vol_s
    denom = max(1, min(vol_s, vol_rest))
    return cut / denom


def sweep_cut(graph: DiGraph, ppv: np.ndarray, max_size: int = 400):
    """Best-conductance prefix of the degree-normalised PPV ordering."""
    deg = np.maximum(1, graph.out_degrees)
    order = np.argsort(-(ppv / deg))
    best, best_phi = order[:1], np.inf
    for size in range(2, min(max_size, graph.num_nodes)):
        members = order[:size]
        phi = conductance(graph, members)
        if phi < best_phi:
            best, best_phi = members, phi
    return best, best_phi


def main() -> None:
    depth = 4  # 16 planted communities of ~75 nodes
    graph = hierarchical_community_digraph(
        1200, depth=depth, avg_out_degree=6, cross_fraction=0.08, seed=23,
    ).with_dangling_policy("self_loop")
    block = 1200 // 2**depth
    print(f"graph: {graph} with {2**depth} planted communities of ≈{block}")

    index = build_hgpa_index(graph, max_levels=6, tol=1e-5, seed=0)

    rng = np.random.default_rng(1)
    recovered = []
    for seed_node in rng.integers(0, graph.num_nodes, 5).tolist():
        ppv = index.query(seed_node)
        members, phi = sweep_cut(graph, ppv)
        # The planted structure is hierarchical: a sweep may recover the
        # seed's community at any level (leaf, pair of leaves, ...).  Score
        # the best-matching ancestor block.
        best_level, best_purity = 0, 0.0
        for level in range(1, depth + 1):
            width = 1200 // 2**level
            purity = float(np.mean(members // width == seed_node // width))
            if purity > best_purity:
                best_level, best_purity = level, purity
        recovered.append(best_purity)
        print(
            f"seed {seed_node:4d} (leaf community {seed_node // block:2d}): "
            f"|S|={members.size:4d}  conductance={phi:.3f}  "
            f"purity={best_purity:.2f} @ level {best_level}"
        )
    mean_purity = float(np.mean(recovered))
    print(f"\nmean best-level purity over seeds: {mean_purity:.2f}")
    assert mean_purity > 0.5, "sweep cuts should recover planted communities"


if __name__ == "__main__":
    main()
