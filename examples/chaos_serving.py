#!/usr/bin/env python
"""Chaos serving: a seeded fault schedule against the resilient router.

Walks the fault-tolerance layer end to end:

1. build the GPA index and stand up a resilient ``ShardRouter`` —
   2 shards × 2 replicas with retries, deadlines, hedging, circuit
   breakers and graceful degradation (``RetryPolicy``),
2. draw a deterministic fault schedule from one integer seed
   (``FaultPlan.generate``) — crashes, flaky workers, stragglers,
   dropped payloads — and attach it with a ``FaultInjector``,
3. replay a Zipf request stream on a ``SimulatedClock`` while the
   schedule fires, then compare against the fault-free run: every
   answered row is bitwise identical,
4. lose a whole shard (both replicas) and watch the stack degrade
   *explicitly* — stale cache rows marked ``degraded``, the rest
   ``shed`` with ``DegradedResult`` on read — instead of failing or,
   worse, answering wrong.

Run:  python examples/chaos_serving.py
"""

from __future__ import annotations

import numpy as np

from repro import datasets
from repro.core import build_gpa_index
from repro.faults import FaultEvent, FaultInjector, FaultPlan
from repro.serving import PPVService, SimulatedClock
from repro.sharding import RetryPolicy, ShardRouter

NUM_SHARDS = 2
REPLICAS = 2
SEED = 7


def build_service(index, plan=None):
    """A resilient router (+ optional fault schedule) behind a service."""
    clock = SimulatedClock()
    router = ShardRouter(
        [[index] * REPLICAS for _ in range(NUM_SHARDS)],
        cache_bytes=2 << 20,
        clock=clock,
        resilience=RetryPolicy(
            max_attempts=4,
            timeout_seconds=0.25,
            hedge_after_seconds=0.02,
            degrade=True,
        ),
    )
    if plan is not None:
        FaultInjector(plan).attach(router)
    service = PPVService(
        router, window=0.005, clock=clock, slo_seconds=0.1, degrade=True
    )
    return service, router


def main() -> None:
    graph = datasets.load("email")
    index = build_gpa_index(graph, NUM_SHARDS * 2, tol=1e-6, seed=0)
    n = graph.num_nodes
    print(f"graph: {graph}, {NUM_SHARDS} shards x {REPLICAS} replicas")

    # Zipf traffic with Poisson arrivals, fully determined by the seed.
    rng = np.random.default_rng(SEED)
    p = np.arange(1, n + 1, dtype=np.float64) ** -1.2
    p /= p.sum()
    stream = rng.permutation(n)[rng.choice(n, size=400, p=p)]
    arrivals = np.cumsum(rng.exponential(0.002, size=stream.size))

    # The fault-free oracle run.
    service, _ = build_service(index)
    oracle = [t.result for t in service.replay(zip(arrivals, stream.tolist()))]

    # One integer identifies the whole chaos run: the same seed draws the
    # same crashes/kills/stragglers/drops and replays them identically on
    # the simulated clock.
    plan = FaultPlan.generate(
        SEED,
        num_shards=NUM_SHARDS,
        replicas_per_shard=REPLICAS,
        horizon=float(arrivals[-1]),
    )
    print(f"\nfault schedule (seed {SEED}):")
    for event in plan:
        window = f" for {event.duration:.2f}s" if event.duration else ""
        print(f"  t={event.at:5.2f}s  {event.kind:<12} "
              f"shard {event.shard} replica {event.replica}{window}")
    assert plan.keeps_quorum(NUM_SHARDS, REPLICAS)

    service, router = build_service(index, plan)
    tickets = service.replay(zip(arrivals, stream.tolist()))
    exact = sum(np.array_equal(t.result, o) for t, o in zip(tickets, oracle))
    res = router.res_stats
    print(f"\nunder chaos: {exact}/{len(tickets)} answers bitwise-equal "
          f"to the fault-free run")
    print(f"  availability {service.stats.availability:.3f}, "
          f"retries {res.retries}, hedges {res.hedges} "
          f"(won {res.hedge_wins}), breaker opens {res.breaker_opens}")
    print(f"  injected: {router.fault_injector.injected}")

    # Now the unsurvivable case: both replicas of shard 0 gone.  The
    # contract flips from "exact" to "explicitly marked" — stale cache
    # rows serve as "degraded", unanswerable rows shed, nothing lies.
    plan = FaultPlan(
        tuple(
            FaultEvent(0.3, "crash", shard=0, replica=r, duration=60.0)
            for r in range(REPLICAS)
        )
    )
    service, router = build_service(index, plan)
    tickets = service.replay(zip(arrivals, stream.tolist()))
    stats = service.stats
    print("\nshard 0 lost entirely at t=0.3s:")
    print(f"  availability {stats.availability:.3f}  "
          f"(degraded {stats.degraded}, shed {stats.shed} of "
          f"{stats.requests})")
    for ticket, want in zip(tickets, oracle):
        if not ticket.shed:
            assert np.array_equal(ticket.result, want)
    shed = next(t for t in tickets if t.shed)
    try:
        shed.result
    except Exception as exc:
        print(f"  reading a shed ticket raises: {type(exc).__name__}: {exc}")


if __name__ == "__main__":
    main()
