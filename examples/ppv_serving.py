#!/usr/bin/env python
"""Serving PPV queries: micro-batching frontend, result cache, top-k.

Shapes the index as a production query service:

1. build a GPA index on the Email stand-in dataset,
2. stand up a ``PPVService`` with a 5 ms batch window and an LRU cache,
3. replay a Zipf-skewed request stream (hot users dominate),
4. inspect batching and cache statistics,
5. answer top-k queries without materialising full dense PPVs.

Run:  python examples/ppv_serving.py
"""

from __future__ import annotations

import numpy as np

from repro import datasets
from repro.core import build_gpa_index
from repro.serving import PPVCache, PPVService, SimulatedClock


def main() -> None:
    # 1. An index — any family works; the service adapts flat, HGPA,
    # FastPPV and the distributed runtimes behind one interface.
    graph = datasets.load("email")
    index = build_gpa_index(graph, 4, tol=1e-6, seed=0)
    n = graph.num_nodes
    print(f"graph: {graph}")

    # 2. The serving frontend: requests wait at most 5 ms, batches are
    # answered by one query_many call, results land in a 4 MB LRU cache.
    service = PPVService(
        index,
        window=0.005,
        max_batch=128,
        cache=PPVCache(4 << 20),
        # Deterministic replay of the arrival stream below; a live
        # deployment keeps the default SystemClock and calls poll() as
        # requests come in (no arrivals replay).
        clock=SimulatedClock(),
    )

    # 3. Zipf traffic: popularity of the rank-r node ∝ r^-1.2.
    rng = np.random.default_rng(7)
    p = np.arange(1, n + 1, dtype=np.float64) ** -1.2
    p /= p.sum()
    stream = rng.permutation(n)[rng.choice(n, size=600, p=p)]
    arrivals = np.arange(stream.size) * 1e-4  # 10k requests/second
    results = service.serve(stream, arrivals)
    print(f"served {stream.size} requests -> {results.shape} results")

    # 4. What the window and the cache bought.
    stats = service.stats
    cache_stats = service.cache.stats
    print(
        f"batches: {stats.batches} (mean size {stats.mean_batch_size:.1f}), "
        f"cache hit rate: {cache_stats.hit_rate:.2f}, "
        f"evictions: {cache_stats.evictions}"
    )

    # Served results are exact — identical to per-node index queries.
    check = int(stream[0])
    drift = np.abs(results[0] - index.query(check)).max()
    print(f"max drift vs direct query({check}): {drift:.2e}")

    # 5. Top-k, the dominant real workload: (ids, scores), best first.
    ids, scores = index.query_topk(check, 5)
    print(f"top-5 of node {check}: " + ", ".join(
        f"{i}:{s:.4f}" for i, s in zip(ids.tolist(), scores.tolist())
    ))
    # Batched variant bounds dense intermediates per chunk.
    many_ids, _, _ = index.query_many_topk(stream[:10], 5, batch=4)
    assert many_ids[0].tolist() == ids.tolist()


if __name__ == "__main__":
    main()
