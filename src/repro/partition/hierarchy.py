"""Hierarchical graph partitioning with per-level hub sets (Section 4.2).

Level 0 is the whole graph.  Each internal subgraph is split into ``fanout``
balanced parts; a minimum (or approximate) vertex cover of the cut edges
becomes the subgraph's hub set ``H(G)``; hubs and their edges are removed
from all deeper levels.  Recursion stops at ``max_levels`` or when a subgraph
has no internal edges left — the paper's default, since further splitting
"cannot gain more improvement".

The resulting tree drives HGPA: partial vectors of hubs are computed inside
the subgraph whose hub set they belong to, skeleton columns per hub likewise,
and leaf subgraphs store full local PPVs of their (non-hub) members.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import PartitionError
from repro.graph.digraph import DiGraph
from repro.graph.subgraph import VirtualSubgraph
from repro.partition.kway import partition_kway_local, ugraph_of_subgraph
from repro.partition.vertex_cover import cover_cut_edges

__all__ = ["SubgraphNode", "PartitionHierarchy", "build_hierarchy"]


@dataclass
class SubgraphNode:
    """One subgraph ``G_m^i`` of the hierarchy.

    ``nodes`` are the *global* ids still present at this level (hubs of
    shallower levels already removed).  ``hubs`` is this subgraph's own hub
    set ``H(G_m^i)`` — a subset of ``nodes`` — empty for leaves.
    """

    node_id: int
    level: int
    nodes: np.ndarray
    parent: int | None = None
    hubs: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    children: list[int] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def num_nodes(self) -> int:
        return int(self.nodes.size)


class PartitionHierarchy:
    """The tree of subgraphs plus per-node lookup tables.

    Attributes
    ----------
    graph:
        The partitioned digraph.
    subgraphs:
        All :class:`SubgraphNode` objects, indexed by ``node_id``; entry 0 is
        the root (the whole graph).
    hub_level:
        Per global node: the level at which it was chosen as a hub, or ``-1``
        if it survives to a leaf.
    deepest_subgraph:
        Per global node: id of the deepest subgraph containing it — the leaf
        for non-hubs, the internal subgraph whose hub set holds it for hubs.
    """

    def __init__(self, graph: DiGraph, subgraphs: list[SubgraphNode], fanout: int) -> None:
        self.graph = graph
        self.subgraphs = subgraphs
        self.fanout = fanout
        n = graph.num_nodes
        self.hub_level = np.full(n, -1, dtype=np.int64)
        self.deepest_subgraph = np.full(n, -1, dtype=np.int64)
        for sg in subgraphs:
            if sg.hubs.size:
                self.hub_level[sg.hubs] = sg.level
                self.deepest_subgraph[sg.hubs] = sg.node_id
            if sg.is_leaf:
                self.deepest_subgraph[sg.nodes] = sg.node_id
        self._views: dict[int, VirtualSubgraph] = {}

    # ------------------------------------------------------------------
    @property
    def root(self) -> SubgraphNode:
        return self.subgraphs[0]

    @property
    def depth(self) -> int:
        """Number of hub-bearing levels (leaves live at level ``depth``)."""
        return max((sg.level for sg in self.subgraphs), default=0)

    def internal_subgraphs(self) -> list[SubgraphNode]:
        """Subgraphs that were split (i.e. own a hub set or children)."""
        return [sg for sg in self.subgraphs if not sg.is_leaf]

    def leaves(self) -> list[SubgraphNode]:
        """Subgraphs that were not split further."""
        return [sg for sg in self.subgraphs if sg.is_leaf]

    def hub_nodes(self) -> np.ndarray:
        """All hub nodes across all levels."""
        return np.nonzero(self.hub_level >= 0)[0]

    def non_hub_nodes(self) -> np.ndarray:
        """Nodes that reach a leaf subgraph."""
        return np.nonzero(self.hub_level < 0)[0]

    def hub_counts_per_level(self) -> list[int]:
        """Hub-node count per level — the paper's Tables 2–5."""
        counts = [0] * max(1, self.depth)
        for sg in self.subgraphs:
            if sg.hubs.size:
                counts[sg.level] += int(sg.hubs.size)
        return counts

    def is_hub(self, u: int) -> bool:
        """Whether global node ``u`` was selected as a hub at any level."""
        return bool(self.hub_level[u] >= 0)

    def chain(self, u: int) -> list[SubgraphNode]:
        """Subgraphs containing ``u`` from the root down (Eq. 6's ``G_m^{(u)}``)."""
        sid = int(self.deepest_subgraph[u])
        if sid < 0:
            raise PartitionError(f"node {u} missing from hierarchy tables")
        path: list[SubgraphNode] = []
        cur: int | None = sid
        while cur is not None:
            sg = self.subgraphs[cur]
            path.append(sg)
            cur = sg.parent
        path.reverse()
        return path

    def view(self, node_id: int) -> VirtualSubgraph:
        """Cached :class:`VirtualSubgraph` of subgraph ``node_id``."""
        if node_id not in self._views:
            self._views[node_id] = VirtualSubgraph(
                self.graph, self.subgraphs[node_id].nodes
            )
        return self._views[node_id]

    def validate(self) -> None:
        """Structural invariants (used heavily by the test-suite)."""
        n = self.graph.num_nodes
        if self.root.num_nodes != n:
            raise PartitionError("root must contain every node")
        for sg in self.subgraphs:
            member = set(sg.nodes.tolist())
            if sg.hubs.size and not set(sg.hubs.tolist()) <= member:
                raise PartitionError(f"subgraph {sg.node_id}: hubs not members")
            child_nodes: list[int] = []
            for cid in sg.children:
                child = self.subgraphs[cid]
                if child.parent != sg.node_id or child.level != sg.level + 1:
                    raise PartitionError("broken parent/level links")
                child_nodes.extend(child.nodes.tolist())
            if sg.children:
                expect = member - set(sg.hubs.tolist())
                if set(child_nodes) != expect or len(child_nodes) != len(expect):
                    raise PartitionError(
                        f"subgraph {sg.node_id}: children must partition nodes minus hubs"
                    )
        if np.any(self.deepest_subgraph < 0):
            raise PartitionError("some nodes not reachable in hierarchy")


def build_hierarchy(
    graph: DiGraph,
    *,
    fanout: int = 2,
    max_levels: int | None = None,
    balance: float = 0.1,
    seed: int = 0,
    cover_method: str = "auto",
) -> PartitionHierarchy:
    """Recursively partition ``graph`` into a hub-separated hierarchy.

    Parameters
    ----------
    fanout:
        Parts per split (the paper defaults to 2-way; Fig. 17 sweeps
        2/4/8/16/64).
    max_levels:
        Stop after this many levels; ``None`` recurses until every leaf has
        no internal edges (the paper's default stopping rule).
    balance, seed:
        Forwarded to the multilevel partitioner.
    cover_method:
        Hub selection: ``"auto"`` (exact Kőnig for 2-way cuts, degree-greedy
        otherwise), ``"exact"``, ``"greedy"`` or ``"approx2"``.
    """
    if fanout < 2:
        raise PartitionError(f"fanout must be >= 2, got {fanout}")
    all_nodes = np.arange(graph.num_nodes, dtype=np.int64)
    root = SubgraphNode(node_id=0, level=0, nodes=all_nodes)
    subgraphs = [root]
    stack = [0]
    while stack:
        sid = stack.pop()
        sg = subgraphs[sid]
        if max_levels is not None and sg.level >= max_levels:
            continue
        if sg.num_nodes < 2:
            continue
        view = VirtualSubgraph(graph, sg.nodes)
        if view.num_internal_edges == 0:
            continue
        k = min(fanout, sg.num_nodes)
        labels = partition_kway_local(
            ugraph_of_subgraph(view), k, balance=balance, seed=seed + 31 * sid
        )
        lsrc, ldst = view.internal_edges_local()
        no_loops = lsrc != ldst
        hubs_local = cover_cut_edges(
            lsrc[no_loops], ldst[no_loops], labels, method=cover_method, seed=seed + sid
        )
        hubs = np.asarray(view.to_global(hubs_local), dtype=np.int64)
        is_hub = np.zeros(sg.num_nodes, dtype=bool)
        is_hub[hubs_local] = True
        children_nodes = [
            sg.nodes[(labels == part) & ~is_hub] for part in range(k)
        ]
        children_nodes = [c for c in children_nodes if c.size > 0]
        if len(children_nodes) == 1 and children_nodes[0].size == sg.num_nodes:
            continue  # no progress; freeze as a leaf
        if not children_nodes:
            # Cover swallowed every node (tiny dense subgraph).  Splitting
            # buys nothing, so keep the subgraph whole as a leaf — its local
            # PPVs will be stored directly, which is always correct.
            continue
        sg.hubs = hubs
        for part_nodes in children_nodes:
            child = SubgraphNode(
                node_id=len(subgraphs),
                level=sg.level + 1,
                nodes=part_nodes,
                parent=sid,
            )
            subgraphs.append(child)
            sg.children.append(child.node_id)
            stack.append(child.node_id)
    return PartitionHierarchy(graph, subgraphs, fanout)
