"""Internal weighted undirected graph used by the multilevel partitioner.

The partitioner (like METIS [26]) works on a symmetrised view of the input
digraph: the weight of an undirected edge ``{u, v}`` is the number of
directed edges between ``u`` and ``v``, so an undirected cut weight equals
the number of directed edges crossing the cut.  Vertex weights carry the
number of original vertices collapsed into a coarse vertex.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.errors import PartitionError
from repro.graph.digraph import DiGraph

__all__ = ["UGraph", "ugraph_from_digraph", "ugraph_from_coo"]


@dataclass
class UGraph:
    """Symmetric weighted graph in CSR form with vertex weights."""

    indptr: np.ndarray
    indices: np.ndarray
    eweights: np.ndarray
    vweights: np.ndarray

    @property
    def num_nodes(self) -> int:
        return self.indptr.size - 1

    @property
    def num_edges(self) -> int:
        """Number of undirected edges (each stored twice in CSR)."""
        return self.indices.size // 2

    @property
    def total_vweight(self) -> int:
        return int(self.vweights.sum())

    def degrees(self) -> np.ndarray:
        return np.diff(self.indptr)

    def neighbors(self, u: int) -> np.ndarray:
        return self.indices[self.indptr[u] : self.indptr[u + 1]]

    def edge_weights_of(self, u: int) -> np.ndarray:
        return self.eweights[self.indptr[u] : self.indptr[u + 1]]

    def cut_weight(self, labels: np.ndarray) -> float:
        """Total weight of edges whose endpoints have different labels."""
        src = np.repeat(np.arange(self.num_nodes, dtype=np.int64), self.degrees())
        crossing = labels[src] != labels[self.indices]
        return float(self.eweights[crossing].sum()) / 2.0

    def validate(self) -> None:
        """Cheap structural sanity check (used by tests)."""
        if self.indptr[0] != 0 or np.any(np.diff(self.indptr) < 0):
            raise PartitionError("bad indptr")
        if self.indices.size != self.indptr[-1]:
            raise PartitionError("indices/indptr mismatch")
        if self.eweights.size != self.indices.size:
            raise PartitionError("eweights size mismatch")
        if self.vweights.size != self.num_nodes:
            raise PartitionError("vweights size mismatch")


def ugraph_from_coo(
    num_nodes: int,
    rows: np.ndarray,
    cols: np.ndarray,
    weights: np.ndarray | None = None,
    vweights: np.ndarray | None = None,
) -> UGraph:
    """Build a symmetric :class:`UGraph` from (possibly directed) edge COO.

    Parallel/duplicate entries are summed; self loops are dropped (they never
    affect a cut).
    """
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    if weights is None:
        weights = np.ones(rows.size, dtype=np.float64)
    keep = rows != cols
    rows, cols, weights = rows[keep], cols[keep], np.asarray(weights, dtype=np.float64)[keep]
    mat = sp.coo_matrix((weights, (rows, cols)), shape=(num_nodes, num_nodes))
    sym = (mat + mat.T).tocsr()
    sym.sum_duplicates()
    if vweights is None:
        vweights = np.ones(num_nodes, dtype=np.int64)
    return UGraph(
        indptr=sym.indptr.astype(np.int64),
        indices=sym.indices.astype(np.int64),
        eweights=sym.data.astype(np.float64),
        vweights=np.asarray(vweights, dtype=np.int64),
    )


def ugraph_from_digraph(graph: DiGraph) -> UGraph:
    """Symmetrise a digraph for partitioning (unit vertex weights)."""
    src, dst = graph.edge_arrays()
    return ugraph_from_coo(graph.num_nodes, src, dst)
