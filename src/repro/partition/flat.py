"""Single-level balanced partition with hub extraction — GPA's Section 3.1.

The graph is split into ``m`` balanced parts (METIS-style); a vertex cover of
the cut edges becomes the global hub set ``H``; the GPA subgraphs are the
parts minus the hubs, so every tour between two subgraphs must pass a hub.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PartitionError
from repro.graph.digraph import DiGraph
from repro.partition.kway import partition_kway
from repro.partition.vertex_cover import cover_cut_edges

__all__ = ["FlatPartition", "flat_partition"]


@dataclass
class FlatPartition:
    """Result of a GPA partition.

    ``labels[u]`` is the part of node ``u`` (hubs keep the label of the part
    they were drawn from); ``hubs`` is the separating hub set ``H``;
    ``part_nodes[p]`` lists the non-hub members of subgraph ``p``.
    """

    graph: DiGraph
    num_parts: int
    labels: np.ndarray
    hubs: np.ndarray
    part_nodes: list[np.ndarray]

    @property
    def num_hubs(self) -> int:
        return int(self.hubs.size)

    def is_hub(self, u: int) -> bool:
        """Whether ``u`` belongs to the hub set."""
        pos = np.searchsorted(self.hubs, u)
        return bool(pos < self.hubs.size and self.hubs[pos] == u)

    def part_of(self, u: int) -> int:
        """Part label of a non-hub node ``u``."""
        if self.is_hub(u):
            raise PartitionError(f"node {u} is a hub; it belongs to no part")
        return int(self.labels[u])

    def validate(self) -> None:
        """Every part's non-hub nodes are disjoint and jointly exhaustive,
        and no internal edge joins two different parts."""
        seen = np.zeros(self.graph.num_nodes, dtype=bool)
        for nodes in self.part_nodes:
            if np.any(seen[nodes]):
                raise PartitionError("parts overlap")
            seen[nodes] = True
        seen[self.hubs] = True
        if not seen.all():
            raise PartitionError("some nodes in no part and not hubs")
        src, dst = self.graph.edge_arrays()
        hub_mask = np.zeros(self.graph.num_nodes, dtype=bool)
        hub_mask[self.hubs] = True
        alive = ~hub_mask[src] & ~hub_mask[dst]
        if np.any(self.labels[src[alive]] != self.labels[dst[alive]]):
            raise PartitionError("hub set does not separate the parts")


def flat_partition(
    graph: DiGraph,
    num_parts: int,
    *,
    balance: float = 0.05,
    seed: int = 0,
    cover_method: str = "auto",
) -> FlatPartition:
    """Partition ``graph`` into ``num_parts`` hub-separated subgraphs."""
    if num_parts < 1:
        raise PartitionError(f"num_parts must be >= 1, got {num_parts}")
    labels = (
        np.zeros(graph.num_nodes, dtype=np.int64)
        if num_parts == 1
        else partition_kway(graph, num_parts, balance=balance, seed=seed)
    )
    src, dst = graph.edge_arrays()
    hubs = cover_cut_edges(src, dst, labels, method=cover_method, seed=seed)
    hub_mask = np.zeros(graph.num_nodes, dtype=bool)
    hub_mask[hubs] = True
    part_nodes = [
        np.nonzero((labels == p) & ~hub_mask)[0] for p in range(num_parts)
    ]
    return FlatPartition(graph, num_parts, labels, hubs, part_nodes)
