"""Fiduccia–Mattheyses (FM) refinement for two-way partitions.

Classic single-vertex-move hill climbing with a gain heap and best-prefix
rollback: each pass tentatively moves every vertex at most once (negative
gains allowed, to escape local minima), then keeps the prefix of moves with
the lowest cut that still satisfies the balance constraint.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.partition.ugraph import UGraph

__all__ = ["fm_refine", "partition_weights"]


def partition_weights(ug: UGraph, labels: np.ndarray) -> tuple[float, float]:
    """Vertex-weight totals of parts 0 and 1."""
    w1 = float(ug.vweights[labels == 1].sum())
    return float(ug.total_vweight) - w1, w1


def _gains(ug: UGraph, labels: np.ndarray) -> np.ndarray:
    """gain(u) = external weight − internal weight (cut delta of moving u)."""
    n = ug.num_nodes
    src = np.repeat(np.arange(n, dtype=np.int64), ug.degrees())
    ext = np.zeros(n)
    same = labels[src] == labels[ug.indices]
    np.add.at(ext, src[~same], ug.eweights[~same])
    internal = np.zeros(n)
    np.add.at(internal, src[same], ug.eweights[same])
    return ext - internal


def fm_refine(
    ug: UGraph,
    labels: np.ndarray,
    *,
    target_frac: float = 0.5,
    balance: float = 0.05,
    max_passes: int = 8,
) -> np.ndarray:
    """Refine a 2-way partition in place and return it.

    ``target_frac`` is the desired fraction of total vertex weight in part 0;
    part-0 weight may drift by ``balance * total`` (at least one max vertex
    weight, so single-vertex moves always stay feasible).
    """
    labels = np.asarray(labels, dtype=np.int64)
    total = float(ug.total_vweight)
    if total == 0 or ug.num_nodes < 2:
        return labels
    max_vw = float(ug.vweights.max())
    slack = max(balance * total, max_vw)
    target_w0 = target_frac * total

    for _ in range(max_passes):
        gains = _gains(ug, labels)
        w0, _ = partition_weights(ug, labels)
        heap: list[tuple[float, int]] = [(-gains[u], u) for u in range(ug.num_nodes)]
        heapq.heapify(heap)
        locked = np.zeros(ug.num_nodes, dtype=bool)
        moves: list[int] = []
        cum = 0.0
        best_cum, best_prefix = 0.0, 0
        while heap:
            neg_gain, u = heapq.heappop(heap)
            if locked[u] or -neg_gain != gains[u]:
                continue  # stale heap entry
            # Balance check: would moving u keep part 0 within the slack?
            delta_w0 = -float(ug.vweights[u]) if labels[u] == 0 else float(ug.vweights[u])
            if abs((w0 + delta_w0) - target_w0) > slack and abs(w0 - target_w0) <= slack:
                continue  # move would break an already feasible balance
            # Apply the move.
            locked[u] = True
            cum += gains[u]
            w0 += delta_w0
            labels[u] = 1 - labels[u]
            moves.append(u)
            if cum > best_cum + 1e-12 and abs(w0 - target_w0) <= slack:
                best_cum, best_prefix = cum, len(moves)
            # Update neighbour gains (2 * w towards/away from the cut).
            lo, hi = ug.indptr[u], ug.indptr[u + 1]
            for k in range(lo, hi):
                v = int(ug.indices[k])
                if locked[v] or v == u:
                    continue
                w = float(ug.eweights[k])
                if labels[v] == labels[u]:
                    gains[v] -= 2.0 * w  # u joined v's side: edge left the cut
                else:
                    gains[v] += 2.0 * w
                heapq.heappush(heap, (-gains[v], v))
        # Roll back every move after the best prefix.
        for u in moves[best_prefix:]:
            labels[u] = 1 - labels[u]
        if best_cum <= 1e-12:
            break
    return labels
