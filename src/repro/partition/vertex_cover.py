"""Hub-node selection: minimum vertex cover of the cut edges (Appendix D).

After partitioning, every cut edge must be "covered" by a hub node so that
removing the hubs disconnects the parts.  For a 2-way partition the cut edges
form a bipartite graph, so the *minimum* cover is computable exactly via
Kőnig's theorem (maximum matching by Hopcroft–Karp, then the alternating-path
construction).  For multi-way partitions the problem is general vertex cover
(NP-hard); the paper uses the classic approximation [39], provided here as
the matching-based 2-approximation, alongside a degree-greedy heuristic that
is usually smaller in practice.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.errors import PartitionError

__all__ = [
    "hopcroft_karp",
    "konig_cover",
    "bipartite_min_vertex_cover",
    "greedy_vertex_cover",
    "matching_vertex_cover_2approx",
    "cover_cut_edges",
]

_INF = float("inf")


def hopcroft_karp(
    adj: list[list[int]], num_left: int, num_right: int
) -> tuple[np.ndarray, np.ndarray]:
    """Maximum bipartite matching in O(E·sqrt(V)).

    ``adj[u]`` lists right-side neighbours of left vertex ``u``.  Returns
    ``(match_left, match_right)`` with ``-1`` marking unmatched vertices.
    """
    match_l = np.full(num_left, -1, dtype=np.int64)
    match_r = np.full(num_right, -1, dtype=np.int64)
    dist = np.zeros(num_left, dtype=np.float64)

    def bfs() -> bool:
        queue: deque[int] = deque()
        for u in range(num_left):
            if match_l[u] < 0:
                dist[u] = 0.0
                queue.append(u)
            else:
                dist[u] = _INF
        found = False
        while queue:
            u = queue.popleft()
            for v in adj[u]:
                w = int(match_r[v])
                if w < 0:
                    found = True
                elif dist[w] == _INF:
                    dist[w] = dist[u] + 1.0
                    queue.append(w)
        return found

    def dfs(u: int) -> bool:
        for v in adj[u]:
            w = int(match_r[v])
            if w < 0 or (dist[w] == dist[u] + 1.0 and dfs(w)):
                match_l[u] = v
                match_r[v] = u
                return True
        dist[u] = _INF
        return False

    import sys

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, num_left + num_right + 1000))
    try:
        while bfs():
            for u in range(num_left):
                if match_l[u] < 0:
                    dfs(u)
    finally:
        sys.setrecursionlimit(old_limit)
    return match_l, match_r


def konig_cover(
    adj: list[list[int]],
    match_l: np.ndarray,
    match_r: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Kőnig construction: minimum vertex cover from a maximum matching.

    ``Z`` = unmatched left vertices plus everything reachable by alternating
    paths (unmatched edges left→right, matched edges right→left).  The cover
    is ``(L \\ Z) ∪ (R ∩ Z)`` and its size equals the matching size.
    Returns boolean masks ``(cover_left, cover_right)``.
    """
    num_left, num_right = match_l.size, match_r.size
    z_left = match_l < 0
    z_right = np.zeros(num_right, dtype=bool)
    queue: deque[int] = deque(np.nonzero(z_left)[0].tolist())
    while queue:
        u = queue.popleft()
        for v in adj[u]:
            if not z_right[v]:
                z_right[v] = True
                w = int(match_r[v])
                if w >= 0 and not z_left[w]:
                    z_left[w] = True
                    queue.append(w)
    return ~z_left, z_right


def bipartite_min_vertex_cover(
    pairs: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Exact minimum vertex cover of bipartite edges ``pairs`` (k×2).

    Column 0 holds left-side ids, column 1 right-side ids (arbitrary ints,
    relabelled internally).  Returns ``(left_ids, right_ids)`` of the chosen
    cover in the caller's id space.
    """
    pairs = np.asarray(pairs, dtype=np.int64)
    if pairs.size == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    if pairs.ndim != 2 or pairs.shape[1] != 2:
        raise PartitionError("pairs must be a (k, 2) array")
    left_ids, left_idx = np.unique(pairs[:, 0], return_inverse=True)
    right_ids, right_idx = np.unique(pairs[:, 1], return_inverse=True)
    adj: list[list[int]] = [[] for _ in range(left_ids.size)]
    for li, ri in zip(left_idx.tolist(), right_idx.tolist()):
        adj[li].append(ri)
    match_l, match_r = hopcroft_karp(adj, left_ids.size, right_ids.size)
    cover_l, cover_r = konig_cover(adj, match_l, match_r)
    return left_ids[cover_l], right_ids[cover_r]


def greedy_vertex_cover(pairs: np.ndarray) -> np.ndarray:
    """Degree-greedy cover: repeatedly take the endpoint covering the most
    still-uncovered edges.  No approximation guarantee but small in practice.
    """
    pairs = np.asarray(pairs, dtype=np.int64)
    if pairs.size == 0:
        return np.empty(0, dtype=np.int64)
    incident: dict[int, set[int]] = {}
    for e, (a, b) in enumerate(pairs.tolist()):
        incident.setdefault(a, set()).add(e)
        incident.setdefault(b, set()).add(e)
    cover: list[int] = []
    alive = {e for e in range(pairs.shape[0])}
    while alive:
        node = max(incident, key=lambda x: len(incident[x]))
        edges = incident.pop(node)
        if not edges:
            continue
        cover.append(node)
        for e in edges & alive:
            alive.discard(e)
            a, b = int(pairs[e, 0]), int(pairs[e, 1])
            for other in (a, b):
                if other != node and other in incident:
                    incident[other].discard(e)
    return np.asarray(sorted(cover), dtype=np.int64)


def matching_vertex_cover_2approx(pairs: np.ndarray, *, seed: int = 0) -> np.ndarray:
    """Classic 2-approximation [39]: take both endpoints of a maximal matching."""
    pairs = np.asarray(pairs, dtype=np.int64)
    if pairs.size == 0:
        return np.empty(0, dtype=np.int64)
    rng = np.random.default_rng(seed)
    order = rng.permutation(pairs.shape[0])
    used: set[int] = set()
    cover: set[int] = set()
    for e in order.tolist():
        a, b = int(pairs[e, 0]), int(pairs[e, 1])
        if a not in used and b not in used:
            used.add(a)
            used.add(b)
            cover.add(a)
            cover.add(b)
    return np.asarray(sorted(cover), dtype=np.int64)


def cover_cut_edges(
    src: np.ndarray,
    dst: np.ndarray,
    labels: np.ndarray,
    *,
    method: str = "auto",
    seed: int = 0,
) -> np.ndarray:
    """Select hub nodes covering every edge whose endpoints differ in label.

    ``method``: ``"exact"`` (Kőnig; requires exactly two part labels among
    the cut edges), ``"greedy"``, ``"approx2"``, or ``"auto"`` (exact when
    bipartite, greedy otherwise).  Returns sorted unique node ids.
    """
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    crossing = labels[src] != labels[dst]
    cs, cd = src[crossing], dst[crossing]
    if cs.size == 0:
        return np.empty(0, dtype=np.int64)
    part_labels = np.unique(np.concatenate([labels[cs], labels[cd]]))
    bipartite = part_labels.size == 2
    if method == "auto":
        method = "exact" if bipartite else "greedy"
    if method == "exact":
        if not bipartite:
            raise PartitionError(
                "exact cover requires a 2-way cut; use greedy/approx2 for multi-way"
            )
        low = part_labels[0]
        # Orient each cut pair as (low-side node, high-side node).
        a = np.where(labels[cs] == low, cs, cd)
        b = np.where(labels[cs] == low, cd, cs)
        left, right = bipartite_min_vertex_cover(np.column_stack([a, b]))
        return np.unique(np.concatenate([left, right]))
    pairs = np.column_stack([cs, cd])
    if method == "greedy":
        return greedy_vertex_cover(pairs)
    if method == "approx2":
        return matching_vertex_cover_2approx(pairs, seed=seed)
    raise PartitionError(f"unknown cover method {method!r}")
