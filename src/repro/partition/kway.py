"""K-way partitioning by recursive bisection, over a digraph or node subset.

METIS-style: a ``k``-way split is produced by bisecting with target fraction
``ceil(k/2)/k`` and recursing on the two sides, which keeps all ``k`` parts
balanced even when ``k`` is not a power of two.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PartitionError
from repro.graph.digraph import DiGraph
from repro.graph.subgraph import VirtualSubgraph
from repro.partition.bisect import multilevel_bisect
from repro.partition.ugraph import UGraph, ugraph_from_coo, ugraph_from_digraph

__all__ = ["partition_kway", "partition_kway_local", "ugraph_of_subgraph"]


def ugraph_of_subgraph(view: VirtualSubgraph) -> UGraph:
    """Symmetrised internal-edge graph of a virtual subgraph (local ids)."""
    src, dst = view.internal_edges_local()
    return ugraph_from_coo(view.num_nodes, src, dst)


def partition_kway_local(
    ug: UGraph,
    k: int,
    *,
    balance: float = 0.05,
    seed: int = 0,
) -> np.ndarray:
    """Partition a :class:`UGraph` into ``k`` parts; returns labels 0..k-1."""
    if k < 1:
        raise PartitionError(f"k must be >= 1, got {k}")
    n = ug.num_nodes
    labels = np.zeros(n, dtype=np.int64)
    if k == 1 or n == 0:
        return labels
    _recurse(ug, np.arange(n, dtype=np.int64), k, 0, labels, balance, seed)
    return labels


def _recurse(
    ug: UGraph,
    nodes: np.ndarray,
    k: int,
    label_base: int,
    out_labels: np.ndarray,
    balance: float,
    seed: int,
) -> None:
    if k == 1 or nodes.size <= 1:
        out_labels[nodes] = label_base
        return
    k_left = (k + 1) // 2
    sub = _induce_ugraph(ug, nodes)
    side = multilevel_bisect(
        sub, target_frac=k_left / k, balance=balance, seed=seed
    )
    left = nodes[side == 0]
    right = nodes[side == 1]
    if left.size == 0 or right.size == 0:
        # Degenerate split (e.g. a clique smaller than k): fall back to a
        # round-robin assignment so every part still exists.
        out_labels[nodes] = label_base + (np.arange(nodes.size) % k)
        return
    _recurse(ug, left, k_left, label_base, out_labels, balance, seed * 2 + 1)
    _recurse(ug, right, k - k_left, label_base + k_left, out_labels, balance, seed * 2 + 2)


def _induce_ugraph(ug: UGraph, nodes: np.ndarray) -> UGraph:
    """Induced sub-UGraph on ``nodes`` relabelled to 0..len-1."""
    local = np.full(ug.num_nodes, -1, dtype=np.int64)
    local[nodes] = np.arange(nodes.size)
    src = np.repeat(np.arange(ug.num_nodes, dtype=np.int64), ug.degrees())
    keep = (local[src] >= 0) & (local[ug.indices] >= 0)
    # Entries are symmetric; halve the weights because ugraph_from_coo
    # re-symmetrises.
    return ugraph_from_coo(
        nodes.size,
        local[src[keep]],
        local[ug.indices[keep]],
        ug.eweights[keep] / 2.0,
        vweights=ug.vweights[nodes],
    )


def partition_kway(
    graph: DiGraph,
    k: int,
    *,
    balance: float = 0.05,
    seed: int = 0,
) -> np.ndarray:
    """Partition a digraph into ``k`` balanced parts; returns labels 0..k-1."""
    return partition_kway_local(ugraph_from_digraph(graph), k, balance=balance, seed=seed)
