"""Coarsening phase of the multilevel partitioner.

Implements the sorted heavy-edge matching (SHEM) of METIS [26]: vertices are
visited in increasing-degree order and matched to the unmatched neighbour
connected by the heaviest edge.  Matched pairs collapse into coarse vertices
whose vertex weight is the pair's total, and parallel coarse edges sum their
weights — so the cut of any coarse partition equals the cut of its projection
to the fine graph.
"""

from __future__ import annotations

import numpy as np

from repro.partition.ugraph import UGraph, ugraph_from_coo

__all__ = ["heavy_edge_matching", "coarsen", "CoarseLevel"]


def heavy_edge_matching(ug: UGraph, rng: np.random.Generator) -> np.ndarray:
    """Return ``match`` with ``match[u] = v`` for matched pairs, ``u`` if single.

    Ties between equally heavy edges are broken by visit order; the visit
    order itself is degree-sorted with random jitter so repeated runs explore
    different matchings.
    """
    n = ug.num_nodes
    match = np.full(n, -1, dtype=np.int64)
    degrees = ug.degrees()
    order = np.argsort(degrees + rng.random(n), kind="stable")
    indptr, indices, ew = ug.indptr, ug.indices, ug.eweights
    for u in order:
        u = int(u)
        if match[u] >= 0:
            continue
        best, best_w = -1, 0.0
        for k in range(indptr[u], indptr[u + 1]):
            v = int(indices[k])
            if v != u and match[v] < 0 and ew[k] > best_w:
                best, best_w = v, float(ew[k])
        if best >= 0:
            match[u] = best
            match[best] = u
        else:
            match[u] = u
    return match


class CoarseLevel:
    """One coarsening step: the coarse graph plus the fine→coarse map."""

    __slots__ = ("ugraph", "coarse_of")

    def __init__(self, ugraph: UGraph, coarse_of: np.ndarray) -> None:
        self.ugraph = ugraph
        self.coarse_of = coarse_of


def coarsen(ug: UGraph, match: np.ndarray) -> CoarseLevel:
    """Collapse matched pairs into coarse vertices."""
    n = ug.num_nodes
    coarse_of = np.full(n, -1, dtype=np.int64)
    next_id = 0
    for u in range(n):
        if coarse_of[u] >= 0:
            continue
        v = int(match[u])
        coarse_of[u] = next_id
        if v != u:
            coarse_of[v] = next_id
        next_id += 1
    n_coarse = next_id
    src = np.repeat(np.arange(n, dtype=np.int64), ug.degrees())
    cs, cd = coarse_of[src], coarse_of[ug.indices]
    vw = np.zeros(n_coarse, dtype=np.int64)
    np.add.at(vw, coarse_of, ug.vweights)
    # ugraph_from_coo symmetrises, but (cs, cd) is already symmetric, so halve
    # the weights to keep edge weights equal to fine-graph multiplicities.
    coarse = ugraph_from_coo(n_coarse, cs, cd, ug.eweights / 2.0, vweights=vw)
    return CoarseLevel(coarse, coarse_of)
