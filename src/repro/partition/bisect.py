"""Multilevel two-way partitioning (coarsen → initial partition → refine).

This is the workhorse behind both the flat GPA partition and every split of
the HGPA hierarchy.  It follows the METIS recipe [26]: heavy-edge-matching
coarsening down to a small graph, several greedy region-growing initial
bisections on the coarsest graph, then FM refinement at every uncoarsening
level.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.partition.matching import CoarseLevel, coarsen, heavy_edge_matching
from repro.partition.refine import fm_refine, partition_weights
from repro.partition.ugraph import UGraph

__all__ = ["multilevel_bisect", "region_grow_bisect"]


def region_grow_bisect(
    ug: UGraph,
    *,
    target_frac: float = 0.5,
    rng: np.random.Generator,
) -> np.ndarray:
    """Greedy graph-growing bisection: BFS from a random seed until part 0
    reaches the target weight; unreachable leftovers join the lighter part."""
    n = ug.num_nodes
    labels = np.ones(n, dtype=np.int64)
    if n == 0:
        return labels
    target_w0 = target_frac * ug.total_vweight
    seen = np.zeros(n, dtype=bool)
    w0 = 0.0
    order = rng.permutation(n)
    cursor = 0
    queue: deque[int] = deque()
    while w0 < target_w0:
        if not queue:
            # Find a fresh (possibly disconnected) seed.
            while cursor < n and seen[order[cursor]]:
                cursor += 1
            if cursor >= n:
                break
            queue.append(int(order[cursor]))
            seen[order[cursor]] = True
        u = queue.popleft()
        labels[u] = 0
        w0 += float(ug.vweights[u])
        for v in ug.neighbors(u):
            v = int(v)
            if not seen[v]:
                seen[v] = True
                queue.append(v)
    return labels


def multilevel_bisect(
    ug: UGraph,
    *,
    target_frac: float = 0.5,
    balance: float = 0.05,
    seed: int = 0,
    coarsen_to: int = 48,
    num_initial: int = 4,
    max_coarsen_levels: int = 40,
) -> np.ndarray:
    """Bisect ``ug`` into labels {0, 1} with part 0 near ``target_frac``.

    Returns a label per vertex.  Deterministic for a fixed seed.
    """
    rng = np.random.default_rng(seed)
    levels: list[CoarseLevel] = []
    current = ug
    # --- Coarsening ---------------------------------------------------
    while current.num_nodes > coarsen_to and len(levels) < max_coarsen_levels:
        match = heavy_edge_matching(current, rng)
        level = coarsen(current, match)
        if level.ugraph.num_nodes >= current.num_nodes:
            break  # matching made no progress (e.g. edgeless graph)
        levels.append(level)
        current = level.ugraph
    # --- Initial partitions on the coarsest graph ---------------------
    best_labels: np.ndarray | None = None
    best_cut = np.inf
    for _ in range(max(1, num_initial)):
        cand = region_grow_bisect(current, target_frac=target_frac, rng=rng)
        cand = fm_refine(current, cand, target_frac=target_frac, balance=balance)
        cut = current.cut_weight(cand)
        if cut < best_cut:
            best_cut, best_labels = cut, cand.copy()
    labels = best_labels if best_labels is not None else np.zeros(current.num_nodes, dtype=np.int64)
    # --- Uncoarsen + refine -------------------------------------------
    for i in range(len(levels) - 1, -1, -1):
        labels = labels[levels[i].coarse_of]
        finer = ug if i == 0 else levels[i - 1].ugraph
        labels = fm_refine(finer, labels, target_frac=target_frac, balance=balance)
    return labels


def bisect_balance_report(ug: UGraph, labels: np.ndarray) -> dict[str, float]:
    """Small diagnostics bundle used by tests and benches."""
    w0, w1 = partition_weights(ug, labels)
    total = max(1.0, float(ug.total_vweight))
    return {
        "cut": ug.cut_weight(labels),
        "w0": w0,
        "w1": w1,
        "imbalance": abs(w0 - w1) / total,
    }
