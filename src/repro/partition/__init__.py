"""Balanced graph partitioning, hub selection and the HGPA hierarchy."""

from repro.partition.bisect import multilevel_bisect, region_grow_bisect
from repro.partition.flat import FlatPartition, flat_partition
from repro.partition.hierarchy import (
    PartitionHierarchy,
    SubgraphNode,
    build_hierarchy,
)
from repro.partition.kway import partition_kway, partition_kway_local
from repro.partition.matching import coarsen, heavy_edge_matching
from repro.partition.refine import fm_refine
from repro.partition.ugraph import UGraph, ugraph_from_coo, ugraph_from_digraph
from repro.partition.vertex_cover import (
    bipartite_min_vertex_cover,
    cover_cut_edges,
    greedy_vertex_cover,
    hopcroft_karp,
    konig_cover,
    matching_vertex_cover_2approx,
)

__all__ = [
    "UGraph",
    "ugraph_from_coo",
    "ugraph_from_digraph",
    "heavy_edge_matching",
    "coarsen",
    "fm_refine",
    "multilevel_bisect",
    "region_grow_bisect",
    "partition_kway",
    "partition_kway_local",
    "hopcroft_karp",
    "konig_cover",
    "bipartite_min_vertex_cover",
    "greedy_vertex_cover",
    "matching_vertex_cover_2approx",
    "cover_cut_edges",
    "FlatPartition",
    "flat_partition",
    "SubgraphNode",
    "PartitionHierarchy",
    "build_hierarchy",
]
