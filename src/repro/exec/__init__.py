"""The execution seam: serial or real-multiprocess query execution.

:class:`SerialBackend` preserves today's in-process behavior bitwise;
:class:`ProcessPoolBackend` runs registered states in worker processes
that attach the stacked query buffers read-only via shared memory
(:mod:`repro.exec.shm`), so per-query IPC carries node ids in and result
rows out.  Both distributed runtimes and the sharding layer accept a
``backend=`` and dispatch through this seam.
"""

from repro.exec.backend import (
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
)
from repro.exec.shm import (
    ArenaDescriptor,
    ArraySpec,
    SharedStackedOps,
    ShmArena,
    stacked_ops_arrays,
)

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "ArenaDescriptor",
    "ArraySpec",
    "SharedStackedOps",
    "ShmArena",
    "stacked_ops_arrays",
]
