"""Worker-side engine reconstruction for the sharding layer.

A :class:`~repro.sharding.replica.Replica` whose engine is an index
family (flat hub set or HGPA hierarchy) can run its batches in a worker
process: the engine's stacked query ops and vector stores are published
once per engine object in a shared arena (see
:func:`~repro.exec.backend.ExecutionBackend.memo_arena` — replicas
sharing one engine share one arena), and the picklable builders here
rebuild a *real* index instance worker-side around zero-copy read-only
views — ops caches pre-seeded, store vectors rebound as buffer slices —
so the worker runs the exact same ``query_many`` / ``query_many_sparse``
code as the parent, on the same bytes, and the results are bitwise equal.

Engines without a supported layout (a distributed runtime behind a
replica, an approximation) simply get no builder: :func:`engine_builder`
returns ``None`` and the shard serves them inline as before.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

import numpy as np
import scipy.sparse as sp

from repro.core.flat_index import FlatPPVIndex
from repro.core.hgpa import HGPAIndex
from repro.core.sparsevec import SparseVec
from repro.core.stacked import pack_vectors, unpack_vectors
from repro.errors import PartitionError
from repro.exec.shm import (
    ArenaDescriptor,
    build_ops_from_view,
    stacked_ops_arrays,
)

if TYPE_CHECKING:
    from repro.exec.shm import ArenaView

__all__ = [
    "EngineHost",
    "FlatEngineBuilder",
    "HGPAEngineBuilder",
    "engine_builder",
]


class _GraphHandle:
    """Stand-in for a worker-side index's graph: the query paths only
    ever read ``num_nodes`` off it (ops caches are pre-seeded), so the
    adjacency never crosses the process boundary."""

    __slots__ = ("num_nodes",)

    def __init__(self, num_nodes: int) -> None:
        self.num_nodes = int(num_nodes)


class _HierarchyHandle:
    """Stand-in for a worker-side :class:`PartitionHierarchy`.

    Carries exactly what the HGPA query paths read — the subgraph tree
    plus the per-node lookup tables behind ``chain`` / ``is_hub`` — and
    none of the build-side state (graph adjacency, virtual-subgraph
    views), so pickling it ships kilobytes, not the graph.
    """

    __slots__ = ("subgraphs", "hub_level", "deepest_subgraph")

    def __init__(
        self,
        subgraphs: list[Any],
        hub_level: np.ndarray,
        deepest_subgraph: np.ndarray,
    ) -> None:
        self.subgraphs = subgraphs
        self.hub_level = hub_level
        self.deepest_subgraph = deepest_subgraph

    @classmethod
    def from_hierarchy(cls, hierarchy: Any) -> "_HierarchyHandle":
        return cls(
            hierarchy.subgraphs,
            hierarchy.hub_level,
            hierarchy.deepest_subgraph,
        )

    def is_hub(self, u: int) -> bool:
        return bool(self.hub_level[u] >= 0)

    def chain(self, u: int) -> list[Any]:
        sid = int(self.deepest_subgraph[u])
        if sid < 0:  # pragma: no cover - deploy-validated hierarchies
            raise PartitionError(f"node {u} missing from hierarchy tables")
        path = []
        cur: int | None = sid
        while cur is not None:
            sg = self.subgraphs[cur]
            path.append(sg)
            cur = sg.parent
        path.reverse()
        return path


class EngineHost:
    """The worker-side state wrapping one rebuilt index.

    Methods return ``(result, wall_seconds)`` — the wall clock covers
    only the engine compute, so the parent's load accounting
    (:meth:`Replica.note_served`) charges the replica what the worker
    actually spent, not the IPC.
    """

    __slots__ = ("index",)

    def __init__(self, index: Any) -> None:
        self.index = index

    def dense(self, nodes: np.ndarray) -> tuple[np.ndarray, float]:
        t0 = time.perf_counter()
        out, _ = self.index.query_many(nodes, collect_stats=False)
        return out, time.perf_counter() - t0

    def sparse(self, nodes: np.ndarray) -> tuple[sp.csr_matrix, float]:
        t0 = time.perf_counter()
        mat, _ = self.index.query_many_sparse(nodes, collect_stats=False)
        return mat, time.perf_counter() - t0


def _hub_store_from_csc(
    owned: np.ndarray, part_csc: sp.csc_matrix
) -> dict[int, SparseVec]:
    """Rebind hub partial vectors as slices of the stacked CSC's buffers —
    the worker-side twin of ``ClusterBase._stack_ops``'s rebinding, so
    the store costs no memory beyond the shared segment."""
    pp = part_csc.indptr
    return {
        int(h): SparseVec(
            part_csc.indices[pp[j] : pp[j + 1]],
            part_csc.data[pp[j] : pp[j + 1]],
            _trusted=True,
        )
        for j, h in enumerate(owned.tolist())
    }


def _packed_store(view: "ArenaView", prefix: str) -> dict[int, SparseVec]:
    """Unpack a ``pack_vectors``-published id→vector store from an arena."""
    nodes = view.arrays[prefix + "nodes"]
    vecs = unpack_vectors(
        view.arrays[prefix + "indptr"],
        view.arrays[prefix + "idx"],
        view.arrays[prefix + "val"],
    )
    return {int(u): v for u, v in zip(nodes.tolist(), vecs)}


def _pack_store_arrays(store: dict[int, SparseVec], prefix: str) -> dict[Any, Any]:
    """The inverse of :func:`_packed_store`: one id→vector store as flat
    arena arrays (ids sorted, so the layout is deterministic)."""
    nodes = np.asarray(sorted(store), dtype=np.int64)
    indptr, idx, val = pack_vectors([store[int(u)] for u in nodes.tolist()])
    return {
        prefix + "nodes": nodes,
        prefix + "indptr": indptr,
        prefix + "idx": idx,
        prefix + "val": val,
    }


# ----------------------------------------------------------------------
# Flat hub-set engines (FlatPPVIndex and subclasses: GPA, JW)


def flat_engine_arrays(index: FlatPPVIndex) -> dict[Any, Any]:
    """Arena arrays of one flat index: stacked ops + node-partial store."""
    part_csc, skel_csr, nnz_per_hub = index._ops()
    arrays = stacked_ops_arrays((index.hubs, part_csc, skel_csr, nnz_per_hub))
    arrays.update(_pack_store_arrays(index.node_partials, "own_"))
    return arrays


@dataclass(frozen=True)
class FlatEngineBuilder:
    """Picklable recipe for a worker-side flat index (GPA/JW/plain)."""

    descriptor: ArenaDescriptor
    alpha: float
    tol: float
    prune: float
    num_nodes: int

    def __call__(self) -> EngineHost:
        view = self.descriptor.attach()
        owned, part_csc, skel_csr, nnz_per_hub = build_ops_from_view(
            view, "", self.num_nodes
        )
        index = FlatPPVIndex(
            graph=_GraphHandle(self.num_nodes),
            alpha=self.alpha,
            tol=self.tol,
            prune=self.prune,
            hubs=owned,
            hub_partials=_hub_store_from_csc(owned, part_csc),
            skeleton_cols={},  # query paths read the pre-seeded CSR only
            node_partials=_packed_store(view, "own_"),
        )
        index._ops_cache = (part_csc, skel_csr, nnz_per_hub)
        return EngineHost(index)


# ----------------------------------------------------------------------
# HGPA engines


def hgpa_engine_arrays(index: HGPAIndex) -> dict[Any, Any]:
    """Arena arrays of one HGPA index: per-level stacked ops (prefix
    ``s<sid>:``) + the leaf-PPV store."""
    arrays: dict[Any, Any] = {}
    for sg in index.hierarchy.subgraphs:
        if sg.hubs.size == 0:
            continue
        part_csc, skel_csr, hubs = index._level_ops(sg.node_id)
        arrays.update(
            stacked_ops_arrays(
                (hubs, part_csc, skel_csr, np.diff(part_csc.indptr)),
                prefix=f"s{sg.node_id}:",
            )
        )
    arrays.update(_pack_store_arrays(index.leaf_ppv, "own_"))
    return arrays


@dataclass(frozen=True)
class HGPAEngineBuilder:
    """Picklable recipe for a worker-side HGPA index."""

    descriptor: ArenaDescriptor
    sids: tuple[int, ...]
    hierarchy: _HierarchyHandle
    alpha: float
    tol: float
    prune: float
    num_nodes: int

    def __call__(self) -> EngineHost:
        view = self.descriptor.attach()
        index = HGPAIndex(
            graph=_GraphHandle(self.num_nodes),
            hierarchy=self.hierarchy,
            alpha=self.alpha,
            tol=self.tol,
            prune=self.prune,
            hub_partials={},
            skeleton_cols={},
            leaf_ppv=_packed_store(view, "own_"),
        )
        for sid in self.sids:
            hubs, part_csc, skel_csr, _ = build_ops_from_view(
                view, f"s{sid}:", self.num_nodes
            )
            index._level_ops_cache[sid] = (part_csc, skel_csr, hubs)
            # Hub sets are disjoint across subgraphs, so every hub's
            # partial lives in exactly one level's stacked CSC.
            index.hub_partials.update(_hub_store_from_csc(hubs, part_csc))
        return EngineHost(index)


# ----------------------------------------------------------------------


def engine_builder(query_backend: Any, exec_backend: Any) -> Any:
    """A picklable worker-state builder for a replica's engine, or ``None``.

    ``None`` means the engine has no shared-memory layout the workers
    understand (a distributed runtime, an approximation, or a subclass
    that overrides the batch paths) and the shard must serve it inline.
    The engine's arena is memoized on the execution backend by object
    identity, so replicas sharing one engine publish it once.
    """
    engine = query_backend.engine
    # The epoch in the memo key guards against id() reuse: an updated
    # backend swaps in a new engine object that could land at a freed
    # engine's address.
    epoch = int(getattr(query_backend, "epoch", 0))
    if (
        isinstance(engine, HGPAIndex)
        and type(engine).query_many is HGPAIndex.query_many
        and type(engine).query_many_sparse is HGPAIndex.query_many_sparse
    ):
        descriptor = exec_backend.memo_arena(
            ("engine", id(engine), epoch), lambda: hgpa_engine_arrays(engine)
        )
        sids = tuple(
            sg.node_id for sg in engine.hierarchy.subgraphs if sg.hubs.size
        )
        return HGPAEngineBuilder(
            descriptor,
            sids,
            _HierarchyHandle.from_hierarchy(engine.hierarchy),
            engine.alpha,
            engine.tol,
            engine.prune,
            engine.graph.num_nodes,
        )
    if (
        isinstance(engine, FlatPPVIndex)
        and type(engine).query_many is FlatPPVIndex.query_many
        and type(engine).query_many_sparse is FlatPPVIndex.query_many_sparse
    ):
        descriptor = exec_backend.memo_arena(
            ("engine", id(engine), epoch), lambda: flat_engine_arrays(engine)
        )
        return FlatEngineBuilder(
            descriptor,
            engine.alpha,
            engine.tol,
            engine.prune,
            engine.graph.num_nodes,
        )
    return None
