"""Shared-memory publication of the stacked query-op buffers.

One :class:`ShmArena` is a single ``multiprocessing.shared_memory``
segment holding any number of named flat arrays back to back.  Its
:class:`ArenaDescriptor` — segment name plus per-array (dtype, shape,
offset) specs — is a tiny picklable value; a worker that receives it
attaches the segment once and maps every array as a zero-copy read-only
``np.ndarray`` view.  :class:`SharedStackedOps` layers the repo's
stacked ``(owned, partial CSC, skeleton CSR, nnz-per-hub)`` query-op
tuple on top: it pickles as a descriptor and rebuilds the matrices
worker-side via :mod:`repro.core.stacked`, so per-query IPC never
carries index data — only node ids in and result rows out.

Segment names are ``repro-shm-<creator pid>-<counter>``, which is what
lets the test suite assert that no segment outlives its backend.
"""

from __future__ import annotations

from typing import Any

import itertools
import os
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.core.stacked import csc_from_arrays, csr_from_arrays
from repro.errors import ExecutionError

__all__ = [
    "SHM_NAME_PREFIX",
    "ArraySpec",
    "ArenaDescriptor",
    "ArenaView",
    "ShmArena",
    "SharedStackedOps",
    "stacked_ops_arrays",
]

SHM_NAME_PREFIX = "repro-shm-"
_ALIGN = 16  # float64/int64 safe alignment for every array start
_counter = itertools.count()


@dataclass(frozen=True)
class ArraySpec:
    """Location of one named array inside an arena segment."""

    name: str
    dtype: str
    shape: tuple[Any, ...]
    offset: int

    @property
    def nbytes(self) -> int:
        count = int(np.prod(self.shape, dtype=np.int64))
        return int(np.dtype(self.dtype).itemsize) * count


def _tracker_pid() -> int | None:
    """Pid of this process's shared-memory resource tracker (or None)."""
    try:
        resource_tracker.ensure_running()
        return resource_tracker._resource_tracker._pid
    except Exception:  # pragma: no cover - tracker internals vary
        return None


@dataclass(frozen=True)
class ArenaDescriptor:
    """Picklable handle to a published arena: shm name + array specs.

    ``tracker_pid`` identifies the creator's resource tracker so an
    attaching process can tell whether it shares that tracker (fork) or
    runs its own (spawn) — see :class:`ArenaView`.
    """

    shm_name: str
    specs: tuple[ArraySpec, ...]
    tracker_pid: int | None = None

    def attach(self) -> "ArenaView":
        """Attach the segment (memoized per process) and map the arrays."""
        view = _VIEW_CACHE.get(self.shm_name)
        if view is None:
            view = ArenaView(self)
            _VIEW_CACHE[self.shm_name] = view
        return view


# One attachment per segment per process: every SharedStackedOps (or
# store) of the same machine shares a single mapping.
_VIEW_CACHE: dict[str, "ArenaView"] = {}

# Views of already-unlinked segments, pinned for process lifetime: their
# numpy arrays may still be referenced by callers, and letting the
# SharedMemory object be collected first would raise BufferError from
# its __del__ ("cannot close: exported pointers exist").  The mapping is
# pinned by the live views regardless, so this costs nothing extra.
_CLOSED_VIEWS: list["ArenaView"] = []


class _ZombieSharedMemory(shared_memory.SharedMemory):
    """A pinned view's handle after its segment was unlinked: cleanup is
    a no-op so interpreter-exit GC cannot trip on the still-exported
    numpy buffers (the OS reclaims the mapping at process exit)."""

    def close(self) -> None:  # pragma: no cover - exit-time path
        pass

    def __del__(self) -> None:
        pass


def _pin_view(view: "ArenaView") -> None:
    view._shm.__class__ = _ZombieSharedMemory
    _CLOSED_VIEWS.append(view)


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Stop the resource tracker from unlinking an attached segment.

    Attaching registers the segment with this process's resource
    tracker (CPython < 3.13 has no ``track=False``), which would unlink
    the *creator's* segment when the attaching process exits — exactly
    wrong for worker-side read-only views.  Only the owning
    :class:`ShmArena` may unlink.
    """
    try:
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals vary
        pass


class ArenaView:
    """Worker-side (or test-side) attachment: read-only array views.

    Attaching auto-registers the segment with this process's resource
    tracker; when that tracker is *not* the creator's (a spawn-context
    worker), the registration is removed so a worker's exit cannot
    unlink the creator's live segment.  Fork-context workers share the
    creator's tracker — its single registration must survive until the
    owning arena unlinks, so nothing is unregistered there.
    """

    def __init__(self, descriptor: ArenaDescriptor) -> None:
        # An inherited tracker (a multiprocessing child: fd handed over,
        # pid never set spawn-side) is the creator's tracker — its single
        # registration must survive, so never unregister through it.
        tracker = getattr(resource_tracker, "_resource_tracker", None)
        inherited = (
            getattr(tracker, "_fd", None) is not None
            and getattr(tracker, "_pid", None) is None
        )
        self._shm = shared_memory.SharedMemory(name=descriptor.shm_name)
        if not inherited and descriptor.tracker_pid != _tracker_pid():
            _untrack(self._shm)
        self.arrays: dict[str, np.ndarray] = {}
        for spec in descriptor.specs:
            arr = np.frombuffer(
                self._shm.buf,
                dtype=np.dtype(spec.dtype),
                count=int(np.prod(spec.shape, dtype=np.int64)),
                offset=spec.offset,
            ).reshape(spec.shape)
            arr.flags.writeable = False
            self.arrays[spec.name] = arr


class ShmArena:
    """Owner side of one published segment; context-manageable.

    ``close`` (or ``__exit__``) unlinks the segment: attached workers
    keep their live mappings until process exit — POSIX semantics — but
    the name disappears, which is what the leak-check fixture asserts.
    """

    def __init__(self, arrays: dict[str, np.ndarray]) -> None:
        # Sorted by array name so the segment layout is a pure function
        # of the published arrays, not of dict construction order.
        ordered = [
            (name, np.ascontiguousarray(arr))
            for name, arr in sorted(arrays.items())
        ]
        specs: list[ArraySpec] = []
        offset = 0
        for name, arr in ordered:
            offset = -(-offset // _ALIGN) * _ALIGN  # round up
            specs.append(
                ArraySpec(name, arr.dtype.str, tuple(arr.shape), offset)
            )
            offset += arr.nbytes
        name = f"{SHM_NAME_PREFIX}{os.getpid()}-{next(_counter)}"
        self._shm = shared_memory.SharedMemory(
            create=True, size=max(offset, 1), name=name
        )
        for spec, (_, arr) in zip(specs, ordered):
            dst = np.frombuffer(
                self._shm.buf,
                dtype=arr.dtype,
                count=arr.size,
                offset=spec.offset,
            )
            dst[:] = arr.ravel()
        self.descriptor = ArenaDescriptor(name, tuple(specs), _tracker_pid())
        self._closed = False

    def close(self) -> None:
        """Unlink the segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        # An in-process attachment (if any) keeps its live views — unlink
        # only removes the name; the memory goes when the mappings do.
        view = _VIEW_CACHE.pop(self.descriptor.shm_name, None)
        if view is not None:
            _pin_view(view)
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - double unlink race
            pass

    def __enter__(self) -> "ShmArena":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def stacked_ops_arrays(ops: tuple[Any, ...], prefix: str = "") -> dict[str, np.ndarray]:
    """Flatten one stacked query-op tuple into named arena arrays.

    The inverse lives in :class:`SharedStackedOps`; ``prefix`` namespaces
    several ops (e.g. one per HGPA level) inside a single arena.
    """
    owned, part_csc, skel_csr, nnz_per_hub = ops
    return {
        prefix + "owned": owned,
        prefix + "part_data": part_csc.data,
        prefix + "part_indices": part_csc.indices,
        prefix + "part_indptr": part_csc.indptr,
        prefix + "skel_data": skel_csr.data,
        prefix + "skel_indices": skel_csr.indices,
        prefix + "skel_indptr": skel_csr.indptr,
        prefix + "nnz_per_hub": nnz_per_hub,
    }


class SharedStackedOps:
    """One machine's stacked query ops, living in a shared arena.

    Pickles as ``(descriptor, prefix, num_nodes)`` — a few hundred bytes
    — and reconstructs the ``(owned, part CSC, skel CSR, nnz-per-hub)``
    tuple on first use as zero-copy read-only views of the segment
    (:func:`repro.core.stacked.csc_from_arrays` discipline).  Matrices
    derived from the views at query time (row slices, matmul products)
    are fresh writable arrays, so the read-only state is never mutated.
    """

    __slots__ = ("descriptor", "prefix", "num_nodes", "_ops")

    def __init__(
        self, descriptor: ArenaDescriptor, prefix: str, num_nodes: int
    ) -> None:
        self.descriptor = descriptor
        self.prefix = prefix
        self.num_nodes = int(num_nodes)
        self._ops: tuple[Any, ...] | None = None

    @classmethod
    def publish(cls, ops: tuple[Any, ...], num_nodes: int) -> tuple[ShmArena, "SharedStackedOps"]:
        """Publish one ops tuple in its own arena (owner keeps the arena)."""
        arena = ShmArena(stacked_ops_arrays(ops))
        return arena, cls(arena.descriptor, "", num_nodes)

    @property
    def ops(self) -> tuple[Any, ...]:
        if self._ops is None:
            self._ops = build_ops_from_view(
                self.descriptor.attach(), self.prefix, self.num_nodes
            )
        return self._ops

    def __getstate__(self) -> tuple[Any, ...]:
        return (self.descriptor, self.prefix, self.num_nodes)

    def __setstate__(self, state: tuple[Any, ...]) -> None:
        self.descriptor, self.prefix, self.num_nodes = state
        self._ops = None


def build_ops_from_view(
    view: ArenaView, prefix: str, num_nodes: int
) -> tuple[Any, ...]:
    """Rebuild one stacked ops tuple from an attached arena."""
    try:
        a = {
            key: view.arrays[prefix + key]
            for key in (
                "owned",
                "part_data",
                "part_indices",
                "part_indptr",
                "skel_data",
                "skel_indices",
                "skel_indptr",
                "nnz_per_hub",
            )
        }
    except KeyError as exc:  # pragma: no cover - descriptor/arena mismatch
        raise ExecutionError(f"arena is missing stacked-ops array {exc}") from None
    owned = a["owned"]
    shape = (num_nodes, owned.size)
    part_csc = csc_from_arrays(
        a["part_data"], a["part_indices"], a["part_indptr"], shape
    )
    skel_csr = csr_from_arrays(
        a["skel_data"], a["skel_indices"], a["skel_indptr"], shape
    )
    return (owned, part_csc, skel_csr, a["nnz_per_hub"])
