"""The execution seam: where a machine's (or replica's) share runs.

Every layer above this module dispatches batched work the same way —
``register`` a keyed state builder once, then ``submit(key, method,
*args)`` per batch and resolve the returned future — so the *same*
runtime/sharding code runs serially in-process or fanned out over real
worker processes:

* :class:`SerialBackend` builds states lazily in-process and computes at
  submit time; it preserves today's single-threaded behavior bitwise and
  is the default everywhere.
* :class:`ProcessPoolBackend` runs each state in a worker process.
  Builders are picklable values carrying
  :class:`~repro.exec.shm.ArenaDescriptor` handles, so workers attach
  the stacked buffers read-only via shared memory and the per-query pipe
  traffic is node ids in, result rows out.  Keys are assigned to workers
  round-robin in registration order (deterministic); a worker answers
  its tasks in FIFO order, so futures resolve by pipe order.  A dead
  worker fails its pending and future submissions with
  :class:`~repro.errors.WorkerDied` — the sharding layer's ``mark_down``
  failover signal — and is never respawned behind the caller's back.

Both backends are context managers; ``close`` tears down workers and
unlinks every arena the backend owns, which the test suite asserts
leaves no child process and no ``/dev/shm`` segment behind.
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import os
import traceback
from collections import deque
from collections.abc import Callable, Hashable
from typing import TYPE_CHECKING, Any, Self

import numpy as np

from repro.errors import ExecutionError, WorkerDied
from repro.exec.shm import ArenaDescriptor, ShmArena

if TYPE_CHECKING:
    from multiprocessing.connection import Connection

__all__ = ["ExecutionBackend", "SerialBackend", "ProcessPoolBackend"]


class ExecutionBackend:
    """Protocol of the seam (see the module docstring).

    ``is_local`` tells callers whether builders may be plain in-process
    closures (serial) or must be picklable shared-state builders
    (process pool); layers use it to pick which builder to register.

    ``fault_hook`` is the fault-injection seam: when set (by a
    :class:`~repro.faults.injector.FaultInjector`), every ``submit`` is
    offered to the hook first, which may raise
    :class:`~repro.errors.WorkerDied` to simulate a worker death at the
    seam — exercising the exact failover path a real dead worker takes,
    deterministically.
    """

    is_local = True
    fault_hook: Callable[[Hashable, str], None] | None = None

    def register(self, key: Hashable, builder: Callable[[], Any]) -> None:
        raise NotImplementedError

    def unregister(self, key: Hashable) -> None:
        raise NotImplementedError

    def submit(self, key: Hashable, method: str, *args: Any) -> Any:
        raise NotImplementedError

    def create_arena(self, arrays: dict[str, np.ndarray]) -> ArenaDescriptor:
        raise NotImplementedError

    def memo_arena(
        self,
        memo_key: Hashable,
        arrays_fn: Callable[[], dict[str, np.ndarray]],
    ) -> ArenaDescriptor:
        raise NotImplementedError

    def drop_arena(self, descriptor: ArenaDescriptor) -> None:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    def __enter__(self) -> Self:
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class _ReadyFuture:
    """An already-resolved future (serial submissions compute inline)."""

    __slots__ = ("_value",)

    def __init__(self, value: Any) -> None:
        self._value = value

    def result(self) -> Any:
        return self._value


class SerialBackend(ExecutionBackend):
    """In-process execution: today's behavior, bitwise.

    States build lazily on first submission (preserving the runtimes'
    "never-queried deployments never stack" discipline) and methods run
    inline at ``submit`` time, so the machine-order of a serial fan-out
    is exactly the loop order of the caller.
    """

    is_local = True

    def __init__(self) -> None:
        self._builders: dict[Any, Any] = {}
        self._states: dict[Any, Any] = {}

    def register(self, key: Hashable, builder: Callable[[], Any]) -> None:
        if key in self._builders:
            raise ExecutionError(f"duplicate registration for key {key!r}")
        self._builders[key] = builder

    def unregister(self, key: Hashable) -> None:
        self._builders.pop(key, None)
        self._states.pop(key, None)

    def submit(self, key: Hashable, method: str, *args: Any) -> _ReadyFuture:
        if self.fault_hook is not None:
            self.fault_hook(key, method)
        state = self._states.get(key)
        if state is None:
            builder = self._builders.get(key)
            if builder is None:
                raise ExecutionError(f"no state registered for key {key!r}")
            state = self._states[key] = builder()
        return _ReadyFuture(getattr(state, method)(*args))

    def close(self) -> None:
        self._builders.clear()
        self._states.clear()


# ----------------------------------------------------------------------
# Worker process main loop


class _Lazy:
    """Deferred builder call: registration stays cheap; the state (arena
    attach + view construction) materialises on the key's first task."""

    __slots__ = ("builder", "state")

    def __init__(self, builder: Callable[[], Any]) -> None:
        self.builder = builder
        self.state: Any = None

    def get(self) -> Any:
        if self.state is None:
            self.state = self.builder()
        return self.state


def _worker_main(conn: Connection) -> None:
    states: dict[Any, Any] = {}
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):  # parent went away
            break
        op = msg[0]
        if op == "register":
            states[msg[1]] = _Lazy(msg[2])
        elif op == "unregister":
            states.pop(msg[1], None)
        elif op == "submit":
            _, task_id, key, method, args = msg
            try:
                state = states[key].get()
                value = getattr(state, method)(*args)
                conn.send(("ok", task_id, value))
            except BaseException as exc:  # noqa: BLE001 - report, don't die
                conn.send(
                    ("err", task_id, repr(exc), traceback.format_exc())
                )
        elif op == "close":
            break
    conn.close()
    # Skip interpreter teardown: live zero-copy views keep the attached
    # segments' buffers exported, and a regular exit would spray harmless
    # but noisy BufferErrors from SharedMemory.__del__.  The parent (or
    # the shared resource tracker, on a crash) owns all cleanup.
    os._exit(0)


# ----------------------------------------------------------------------
# Parent side


class _ProcFuture:
    __slots__ = ("_worker", "task_id", "done", "value", "error")

    def __init__(self, worker: "_Worker", task_id: int) -> None:
        self._worker = worker
        self.task_id = task_id
        self.done = False
        self.value = None
        self.error = None

    def result(self) -> Any:
        while not self.done:
            self._worker.pump()
        if self.error is not None:
            raise self.error
        return self.value


class _Worker:
    """One worker process plus its command pipe and FIFO of futures."""

    def __init__(self, ctx: Any, index: int, timeout: float) -> None:
        self.index = index
        self.timeout = timeout
        self.conn, child_conn = ctx.Pipe(duplex=True)
        self.proc = ctx.Process(
            target=_worker_main, args=(child_conn,), daemon=True
        )
        self.proc.start()
        child_conn.close()
        self.pending: deque[_ProcFuture] = deque()
        self.alive = True

    def send(self, msg: tuple[Any, ...]) -> None:
        if not self.alive:
            raise WorkerDied(f"worker {self.index} is dead")
        try:
            self.conn.send(msg)
        except (BrokenPipeError, OSError):
            self.fail(f"worker {self.index} died (pipe closed on send)")
            raise WorkerDied(f"worker {self.index} is dead") from None

    def pump(self) -> None:
        """Receive one reply and resolve the oldest pending future."""
        if not self.alive:  # pending were already failed by fail()
            return
        try:
            if not self.conn.poll(self.timeout):
                self.proc.terminate()
                self.fail(
                    f"worker {self.index} timed out after {self.timeout}s"
                )
                return
            msg = self.conn.recv()
        except (EOFError, OSError):
            self.fail(f"worker {self.index} died mid-batch")
            return
        fut = self.pending.popleft()
        if msg[0] == "ok":
            fut.value = msg[2]
        else:
            fut.error = ExecutionError(
                f"worker {self.index} task failed: {msg[2]}\n{msg[3]}"
            )
        fut.done = True

    def fail(self, reason: str) -> None:
        """Mark dead and fail every outstanding future with WorkerDied."""
        self.alive = False
        while self.pending:
            fut = self.pending.popleft()
            fut.error = WorkerDied(reason)
            fut.done = True

    def shutdown(self, grace: float) -> None:
        if self.alive:
            try:
                self.conn.send(("close",))
            except (BrokenPipeError, OSError):
                pass
        self.proc.join(timeout=grace)
        if self.proc.is_alive():  # pragma: no cover - hung worker
            self.proc.terminate()
            self.proc.join(timeout=grace)
        self.conn.close()
        self.alive = False


class ProcessPoolBackend(ExecutionBackend):
    """Real multiprocess execution behind the seam.

    ``num_workers`` worker processes are started up front (fork where
    available, before any arena exists, so children inherit nothing they
    should not).  Registered keys pin to workers round-robin in
    registration order; all arenas created through the backend are owned
    by it and unlinked at ``close``.  ``timeout`` bounds every wait on a
    worker reply — a hung worker is terminated and surfaces as
    :class:`~repro.errors.WorkerDied` instead of stalling the caller.
    """

    is_local = False

    def __init__(
        self,
        num_workers: int,
        *,
        mp_context: str | None = None,
        timeout: float = 120.0,
    ) -> None:
        if num_workers < 1:
            raise ExecutionError("need at least one worker")
        if mp_context is None:
            methods = mp.get_all_start_methods()
            mp_context = "fork" if "fork" in methods else methods[0]
        ctx = mp.get_context(mp_context)
        self.num_workers = int(num_workers)
        self._workers = [
            _Worker(ctx, i, timeout) for i in range(self.num_workers)
        ]
        self._assignment: dict[Any, Any] = {}
        self._rr = 0
        self._tasks = itertools.count()
        self._arenas: dict[str, ShmArena] = {}
        self._memo: dict[Any, Any] = {}
        self._closed = False

    # ----- state registry ----------------------------------------------
    def register(self, key: Hashable, builder: Callable[[], Any]) -> None:
        if key in self._assignment:
            raise ExecutionError(f"duplicate registration for key {key!r}")
        worker = self._workers[self._rr % self.num_workers]
        self._rr += 1
        self._assignment[key] = worker
        try:
            worker.send(("register", key, builder))
        except WorkerDied:
            # Leave no half-registration behind: the caller may retry the
            # key (failover re-registers on a healthy sibling's worker).
            del self._assignment[key]
            raise

    def unregister(self, key: Hashable) -> None:
        worker = self._assignment.pop(key, None)
        if worker is not None and worker.alive:
            try:
                worker.send(("unregister", key))
            except WorkerDied:
                pass

    def submit(self, key: Hashable, method: str, *args: Any) -> _ProcFuture:
        if self.fault_hook is not None:
            self.fault_hook(key, method)
        worker = self._assignment.get(key)
        if worker is None:
            raise ExecutionError(f"no state registered for key {key!r}")
        fut = _ProcFuture(worker, next(self._tasks))
        worker.send(("submit", fut.task_id, key, method, args))
        worker.pending.append(fut)
        return fut

    # ----- arena ownership ---------------------------------------------
    def create_arena(self, arrays: dict[str, np.ndarray]) -> ArenaDescriptor:
        """Publish named arrays in a new backend-owned arena."""
        arena = ShmArena(arrays)
        self._arenas[arena.descriptor.shm_name] = arena
        return arena.descriptor

    def memo_arena(
        self,
        memo_key: Hashable,
        arrays_fn: Callable[[], dict[str, np.ndarray]],
    ) -> ArenaDescriptor:
        """Publish once per ``memo_key`` (e.g. per shared engine object)."""
        descriptor = self._memo.get(memo_key)
        if descriptor is None:
            descriptor = self.create_arena(arrays_fn())
            self._memo[memo_key] = descriptor
        return descriptor

    def drop_arena(self, descriptor: ArenaDescriptor) -> None:
        arena = self._arenas.pop(descriptor.shm_name, None)
        if arena is not None:
            arena.close()

    # ----- lifecycle ----------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            worker.shutdown(grace=5.0)
        for name in sorted(self._arenas):
            self._arenas[name].close()
        self._arenas.clear()
        self._memo.clear()
        self._assignment.clear()

    def __del__(self) -> None:  # pragma: no cover - safety net, tests use close()
        try:
            self.close()
        except Exception:
            pass
