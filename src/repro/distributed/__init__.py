"""Simulated coordinator-based share-nothing cluster and the distributed
GPA/HGPA runtimes."""

from repro.distributed.cluster import ClusterBase, QueryReport
from repro.distributed.coordinator import Coordinator
from repro.distributed.gpa_runtime import DistributedGPA
from repro.distributed.hgpa_runtime import DistributedHGPA
from repro.distributed.machine import Machine
from repro.distributed.network import DEFAULT_COST_MODEL, CostModel, NetworkMeter
from repro.distributed.precompute import PrecomputeReport, precompute_report

__all__ = [
    "CostModel",
    "DEFAULT_COST_MODEL",
    "NetworkMeter",
    "Machine",
    "Coordinator",
    "ClusterBase",
    "QueryReport",
    "DistributedGPA",
    "DistributedHGPA",
    "PrecomputeReport",
    "precompute_report",
]
