"""Distributed pre-computation accounting (Section 5, Figure 12).

Pre-computation in the paper needs *no* network traffic: every machine keeps
a copy of the graph structure and computes the vectors of the nodes assigned
to it independently.  The simulation therefore only needs to split the
measured per-vector build costs across machines — the deployment classes
already attribute each stored vector's build time to its owner — and report
the makespan.  This module adds the summary used by the offline-time
figures.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.distributed.cluster import ClusterBase

__all__ = ["PrecomputeReport", "precompute_report"]


@dataclass(frozen=True)
class PrecomputeReport:
    """Offline-phase summary of one deployment."""

    num_machines: int
    makespan_seconds: float
    total_seconds: float
    per_machine_seconds: tuple[float, ...]
    max_machine_bytes: int
    total_bytes: int

    @property
    def parallel_efficiency(self) -> float:
        """total / (machines × makespan): 1.0 = perfectly balanced split."""
        denom = self.num_machines * self.makespan_seconds
        return self.total_seconds / denom if denom > 0 else 1.0


def precompute_report(cluster: ClusterBase) -> PrecomputeReport:
    """Summarise the offline phase of a deployed GPA/HGPA cluster."""
    per_machine = tuple(m.offline_seconds for m in cluster.machines)
    return PrecomputeReport(
        num_machines=cluster.num_machines,
        makespan_seconds=max(per_machine),
        total_seconds=sum(per_machine),
        per_machine_seconds=per_machine,
        max_machine_bytes=cluster.max_machine_bytes(),
        total_bytes=cluster.total_stored_bytes(),
    )
