"""Cluster plumbing shared by the distributed GPA and HGPA runtimes."""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.core.flat_index import stack_columns
from repro.core.sparse_ops import column_sparsevec, finalize_csr, rows_matrix
from repro.core.sparsevec import SparseVec
from repro.distributed.coordinator import Coordinator
from repro.distributed.machine import Machine
from repro.distributed.network import DEFAULT_COST_MODEL, CostModel
from repro.errors import ClusterError
from repro.exec.backend import ExecutionBackend, SerialBackend

__all__ = ["QueryReport", "ClusterBase"]


@dataclass
class QueryReport:
    """Everything the paper measures about one distributed query.

    ``runtime_seconds`` follows the paper's metric (Section 6.2.2: "the
    maximum runtime across all machines"): the slowest machine's compute
    plus the shipping of its own vector.  Coordinator aggregation is *not*
    part of it — communication cost is the separate metric of Figure 13.
    ``wall_seconds`` is the measured time of the same work executed
    serially (max machine segment + aggregation).  ``communication_bytes``
    counts every byte that crossed the simulated network for this query.
    """

    query: int
    runtime_seconds: float
    wall_seconds: float
    per_machine_entries: list[int]
    per_machine_bytes: list[int]
    communication_bytes: int

    @property
    def communication_kb(self) -> float:
        return self.communication_bytes / 1024.0

    @property
    def load_imbalance(self) -> float:
        """max/mean of per-machine entries (1.0 = perfectly balanced)."""
        entries = [e for e in self.per_machine_entries]
        mean = sum(entries) / max(1, len(entries))
        return (max(entries) / mean) if mean > 0 else 1.0


def _stack_shared(
    cols: list[SparseVec], n: int
) -> tuple[sp.csc_matrix, np.ndarray]:
    """Stack sparse vectors as CSC columns over explicit shared buffers.

    Returns ``(matrix, idx)`` where ``matrix.data`` *is* the concatenated
    value buffer (scipy wraps float64 data without copying) and ``idx``
    is the concatenated int64 index buffer — the arrays store vectors can
    be rebound onto as views.
    """
    if not cols:
        return sp.csc_matrix((n, 0)), np.empty(0, dtype=np.int64)
    idx = np.concatenate([v.idx for v in cols])
    val = np.concatenate([v.val for v in cols])
    indptr = np.concatenate([[0], np.cumsum([v.nnz for v in cols])])
    return sp.csc_matrix((val, idx, indptr), shape=(n, len(cols))), idx


@dataclass
class ClusterBase:
    """Machines + coordinator + cost model, with deployment-wide metrics."""

    num_nodes: int
    machines: list[Machine] = field(default_factory=list)
    coordinator: Coordinator | None = None
    cost_model: CostModel = DEFAULT_COST_MODEL
    wire_version: int = 1

    def init_cluster(self, num_machines: int) -> None:
        if num_machines < 1:
            raise ClusterError("need at least one machine")
        self.machines = [
            Machine(machine_id=i, wire_version=self.wire_version)
            for i in range(num_machines)
        ]
        self.coordinator = Coordinator(num_nodes=self.num_nodes)

    # ----- execution seam ----------------------------------------------
    def init_exec(self, backend: ExecutionBackend | None) -> None:
        """Adopt an execution backend (``None`` → a private serial one).

        Machine states register lazily under generation-stamped keys; an
        update that changes the deployment calls :meth:`_reset_exec` so
        stale worker states (and their shared arenas) are dropped before
        the next batch registers fresh ones.
        """
        self._backend = backend if backend is not None else SerialBackend()
        self._exec_keys: dict[int, tuple] = {}
        self._exec_arenas: list = []
        self._exec_gen = 0

    def _reset_exec(self) -> None:
        for key in self._exec_keys.values():
            self._backend.unregister(key)
        self._exec_keys.clear()
        for descriptor in self._exec_arenas:
            self._backend.drop_arena(descriptor)
        self._exec_arenas.clear()
        self._exec_gen += 1

    # ----- deployment-wide metrics (Figs. 11 and 12) -------------------
    @property
    def num_machines(self) -> int:
        return len(self.machines)

    def max_machine_bytes(self) -> int:
        """Maximum per-machine storage — the paper's space metric."""
        return max(m.stored_bytes for m in self.machines)

    def total_stored_bytes(self) -> int:
        return sum(m.stored_bytes for m in self.machines)

    def offline_makespan_seconds(self) -> float:
        """Pre-computation time = slowest machine's share of build work."""
        return max(m.offline_seconds for m in self.machines)

    def offline_total_seconds(self) -> float:
        return sum(m.offline_seconds for m in self.machines)

    # ----- stacked query ops --------------------------------------------
    def _stack_ops(self, owned: np.ndarray, *, machine: Machine | None = None) -> tuple:
        """Stacked (owned, partial CSC, skeleton CSR, nnz-per-hub) ops.

        The shared body of both runtimes' lazy ``_ops_for`` builders;
        relies on the subclass carrying its index (with ``hub_partials``
        / ``skeleton_cols`` stores) as ``self.index``.

        When ``machine`` is given, the machine's stored **hub partials**
        are rebound as read-only views into the stacked CSC's own buffers
        (``np.shares_memory``-asserted by the tests): the CSC *is* the
        query op, so the store's copy of every partial becomes free.
        The skeleton side cannot share — its query form is the row-sliced
        CSR, a reorganized copy in which a column's entries are scattered
        — so the skeleton stores keep their original per-vector arrays
        and the CSR copy remains the price of matmul-form skeleton
        lookups.
        """
        index = self.index
        parts = [index.hub_partials[h] for h in owned.tolist()]
        skels = [index.skeleton_cols[h] for h in owned.tolist()]
        part_csc, part_idx = _stack_shared(parts, self.num_nodes)
        skel_csr = stack_columns(skels, self.num_nodes).tocsr()
        if machine is not None:
            pp = part_csc.indptr
            for j, h in enumerate(owned.tolist()):
                machine.store[("hub", h)] = SparseVec(
                    part_idx[pp[j] : pp[j + 1]],
                    part_csc.data[pp[j] : pp[j + 1]],
                    _trusted=True,
                )
        return (owned, part_csc, skel_csr, np.diff(part_csc.indptr))

    # ----- ownership ----------------------------------------------------
    def _owners_to_map(self, *owner_dicts: dict[int, int]) -> np.ndarray:
        """Merge node→machine dicts into one ``(n,)`` owner array.

        Unowned nodes are ``-1``; later dicts win on (impossible, but
        defensive) overlap.  This is the runtimes' ``owner_map()``
        product — the partition-affinity seam the sharded serving layer
        routes by.
        """
        owners = np.full(self.num_nodes, -1, dtype=np.int64)
        for owner_dict in owner_dicts:
            if owner_dict:
                keys = np.fromiter(owner_dict, dtype=np.int64, count=len(owner_dict))
                vals = np.fromiter(
                    owner_dict.values(), dtype=np.int64, count=len(owner_dict)
                )
                owners[keys] = vals
        return owners

    # ----- query-side helper -------------------------------------------
    def _finish_query(
        self,
        query: int,
        partials: dict[int, np.ndarray],
        machine_walls: dict[int, float],
        *,
        entries_by_machine: dict[int, int] | None = None,
        collect_stats: bool = True,
    ) -> tuple[np.ndarray, QueryReport | None]:
        """Serialize per-machine partial vectors, aggregate, build a report.

        Every per-machine quantity is keyed by ``machine_id`` so compute
        work and shipped bytes can never be paired across machines; the
        report's lists are all ordered by ascending machine id.
        ``entries_by_machine`` overrides the machines' live counters —
        batched query paths compute the per-query entry counts
        analytically instead of mutating counters per query.
        ``collect_stats=False`` skips the report (returned ``None``);
        serialization, aggregation and metering still run — they are the
        wire protocol, not bookkeeping.
        """
        payloads: dict[int, bytes] = {
            mid: SparseVec.from_dense(partials[mid]).to_wire(
                version=self.wire_version
            )
            for mid in sorted(partials)
        }
        assert self.coordinator is not None
        before = self.coordinator.meter.total_bytes
        self.coordinator.broadcast_query(query, [m.machine_id for m in self.machines])
        t0 = time.perf_counter()
        result = self.coordinator.aggregate(payloads)
        agg_wall = time.perf_counter() - t0
        report = self._build_report(
            query,
            payloads,
            machine_walls,
            entries_by_machine,
            agg_wall,
            self.coordinator.meter.total_bytes - before,
            collect_stats,
        )
        return result, report

    def _finish_query_sparse(
        self,
        query: int,
        partials: dict[int, SparseVec],
        machine_walls: dict[int, float],
        *,
        entries_by_machine: dict[int, int] | None = None,
        collect_stats: bool = True,
    ) -> tuple[SparseVec, QueryReport | None]:
        """The sparse twin of :meth:`_finish_query`.

        Per-machine answers arrive already sparse (a column of the
        machine's sparse batch product), ship over the same wire codec —
        the meter charges the actual nnz, exactly what the dense path's
        ``SparseVec.from_dense`` payloads weigh — and are merged by the
        coordinator's sparse fold, so no dense ``n``-vector is built
        anywhere on the path.
        """
        payloads: dict[int, bytes] = {
            mid: partials[mid].to_wire(version=self.wire_version)
            for mid in sorted(partials)
        }
        assert self.coordinator is not None
        before = self.coordinator.meter.total_bytes
        self.coordinator.broadcast_query(query, [m.machine_id for m in self.machines])
        t0 = time.perf_counter()
        result = self.coordinator.aggregate_sparse(payloads)
        agg_wall = time.perf_counter() - t0
        report = self._build_report(
            query,
            payloads,
            machine_walls,
            entries_by_machine,
            agg_wall,
            self.coordinator.meter.total_bytes - before,
            collect_stats,
        )
        return result, report

    def _build_report(
        self,
        query: int,
        payloads: dict[int, bytes],
        machine_walls: dict[int, float],
        entries_by_machine: dict[int, int] | None,
        agg_wall: float,
        comm_bytes: int,
        collect_stats: bool,
    ) -> QueryReport | None:
        if not collect_stats:
            return None
        if entries_by_machine is None:
            entries_by_machine = {
                m.machine_id: m.query_entries for m in self.machines
            }
        mids = sorted(payloads)
        # Paper metric: max over machines of (combine work + ship own vector).
        runtime = max(
            self.cost_model.compute_seconds(entries_by_machine[mid])
            + self.cost_model.transfer_seconds(len(payloads[mid]), 1)
            for mid in mids
        )
        wall = max(machine_walls.values()) + agg_wall if machine_walls else agg_wall
        return QueryReport(
            query=query,
            runtime_seconds=runtime,
            wall_seconds=wall,
            per_machine_entries=[entries_by_machine[mid] for mid in mids],
            per_machine_bytes=[len(payloads[mid]) for mid in mids],
            communication_bytes=comm_bytes,
        )

    def _collect_sparse_batch(
        self,
        nodes: np.ndarray,
        machine_accs: dict[int, sp.csc_matrix],
        col_of: Callable[[int], int],
        walls: dict[int, float],
        entries: np.ndarray | None,
        collect_stats: bool,
    ) -> tuple[sp.csr_matrix, list[QueryReport]]:
        """Finish a sparse batch: one wire round per query, rows stacked.

        ``col_of(k)`` maps query position ``k`` to its column in the
        per-machine ``(n, batch)`` CSC accumulators (identity for the
        flat runtime, chain order for HGPA).  The merged rows are stacked
        into one CSR without any dense ``(n, batch)`` intermediate.
        """
        rows_out: list[SparseVec] = []
        reports: list[QueryReport] = []
        for k, u in enumerate(nodes.tolist()):
            c = col_of(k)
            partial_vecs = {
                mid: column_sparsevec(machine_accs[mid], c)
                for mid in machine_accs
            }
            ebm = (
                {mid: int(entries[k, mid]) for mid in machine_accs}
                if collect_stats and entries is not None
                else None
            )
            result, report = self._finish_query_sparse(
                u,
                partial_vecs,
                walls,
                entries_by_machine=ebm,
                collect_stats=collect_stats,
            )
            rows_out.append(result)
            if collect_stats:
                reports.append(report)
        out = finalize_csr(
            rows_matrix(rows_out, self.num_nodes),
            (nodes.size, self.num_nodes),
        )
        return out, reports
