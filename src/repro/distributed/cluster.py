"""Cluster plumbing shared by the distributed GPA and HGPA runtimes."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.sparsevec import SparseVec
from repro.distributed.coordinator import Coordinator
from repro.distributed.machine import Machine
from repro.distributed.network import DEFAULT_COST_MODEL, CostModel
from repro.errors import ClusterError

__all__ = ["QueryReport", "ClusterBase"]


@dataclass
class QueryReport:
    """Everything the paper measures about one distributed query.

    ``runtime_seconds`` follows the paper's metric (Section 6.2.2: "the
    maximum runtime across all machines"): the slowest machine's compute
    plus the shipping of its own vector.  Coordinator aggregation is *not*
    part of it — communication cost is the separate metric of Figure 13.
    ``wall_seconds`` is the measured time of the same work executed
    serially (max machine segment + aggregation).  ``communication_bytes``
    counts every byte that crossed the simulated network for this query.
    """

    query: int
    runtime_seconds: float
    wall_seconds: float
    per_machine_entries: list[int]
    per_machine_bytes: list[int]
    communication_bytes: int

    @property
    def communication_kb(self) -> float:
        return self.communication_bytes / 1024.0

    @property
    def load_imbalance(self) -> float:
        """max/mean of per-machine entries (1.0 = perfectly balanced)."""
        entries = [e for e in self.per_machine_entries]
        mean = sum(entries) / max(1, len(entries))
        return (max(entries) / mean) if mean > 0 else 1.0


@dataclass
class ClusterBase:
    """Machines + coordinator + cost model, with deployment-wide metrics."""

    num_nodes: int
    machines: list[Machine] = field(default_factory=list)
    coordinator: Coordinator | None = None
    cost_model: CostModel = DEFAULT_COST_MODEL

    def init_cluster(self, num_machines: int) -> None:
        if num_machines < 1:
            raise ClusterError("need at least one machine")
        self.machines = [Machine(machine_id=i) for i in range(num_machines)]
        self.coordinator = Coordinator(num_nodes=self.num_nodes)

    # ----- deployment-wide metrics (Figs. 11 and 12) -------------------
    @property
    def num_machines(self) -> int:
        return len(self.machines)

    def max_machine_bytes(self) -> int:
        """Maximum per-machine storage — the paper's space metric."""
        return max(m.stored_bytes for m in self.machines)

    def total_stored_bytes(self) -> int:
        return sum(m.stored_bytes for m in self.machines)

    def offline_makespan_seconds(self) -> float:
        """Pre-computation time = slowest machine's share of build work."""
        return max(m.offline_seconds for m in self.machines)

    def offline_total_seconds(self) -> float:
        return sum(m.offline_seconds for m in self.machines)

    # ----- query-side helper -------------------------------------------
    def _finish_query(
        self,
        query: int,
        partials: dict[int, np.ndarray],
        machine_walls: dict[int, float],
    ) -> tuple[np.ndarray, QueryReport]:
        """Serialize per-machine partial vectors, aggregate, build a report."""
        assert self.coordinator is not None
        payloads: dict[int, bytes] = {}
        per_bytes: list[int] = []
        for mid, acc in sorted(partials.items()):
            payload = SparseVec.from_dense(acc).to_wire()
            payloads[mid] = payload
            per_bytes.append(len(payload))
        before = self.coordinator.meter.total_bytes
        self.coordinator.broadcast_query(query, [m.machine_id for m in self.machines])
        t0 = time.perf_counter()
        result = self.coordinator.aggregate(payloads)
        agg_wall = time.perf_counter() - t0
        comm_bytes = self.coordinator.meter.total_bytes - before
        per_entries = [m.query_entries for m in self.machines]
        # Paper metric: max over machines of (combine work + ship own vector).
        runtime = max(
            self.cost_model.compute_seconds(entries)
            + self.cost_model.transfer_seconds(nbytes, 1)
            for entries, nbytes in zip(per_entries, per_bytes)
        )
        wall = max(machine_walls.values()) + agg_wall if machine_walls else agg_wall
        report = QueryReport(
            query=query,
            runtime_seconds=runtime,
            wall_seconds=wall,
            per_machine_entries=per_entries,
            per_machine_bytes=per_bytes,
            communication_bytes=comm_bytes,
        )
        return result, report
