"""One machine's share of a batched distributed query, as a task state.

These are the per-machine loop bodies of
:meth:`~repro.distributed.gpa_runtime.DistributedGPA.query_many` /
:meth:`~repro.distributed.hgpa_runtime.DistributedHGPA.query_many` (and
their sparse twins) lifted out of the runtimes so the *same* code runs
behind either execution backend: in-process over the runtime's live ops
and machine store (``SerialBackend``), or in a worker process over
shared-memory views (``ProcessPoolBackend``, via the picklable builders
at the bottom).  Each method returns ``(acc, entries, wall_seconds)`` —
the machine's partial-result block, its per-query entry counts, and the
measured compute time — and the runtime finishes the protocol exactly as
before: per-query serialization, coordinator aggregation, reports.

Ownership is store membership: the runtimes' owner dicts satisfy
``_hub_owner[u] == mid`` iff ``("hub", u)`` is in machine ``mid``'s
store (likewise ``("part", u)`` / ``("leaf", u)``), so a worker needs no
owner tables — its slice of the store travels with it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any

import numpy as np
import scipy.sparse as sp

from repro.core.flat_index import find_sorted
from repro.core.hgpa import _chain_membership
from repro.core.sparse_ops import (
    fold_depth_blocks,
    point_matrix,
    rows_matrix,
    sparse_add,
    spgemm_scaled,
    subtract_at,
    weight_row_stats,
    zero_rows_in_columns,
)
from repro.core.sparsevec import SparseVec
from repro.kernels.dispatch import KernelsLike
from repro.exec.shm import ArenaDescriptor, build_ops_from_view, stacked_ops_arrays
from repro.exec.states import (
    _HierarchyHandle,
    _packed_store,
    _pack_store_arrays,
)

__all__ = [
    "GPAMachineTask",
    "HGPAMachineTask",
    "GPAMachineBuilder",
    "HGPAMachineBuilder",
    "gpa_machine_arrays",
    "hgpa_machine_arrays",
]


class GPAMachineTask:
    """One GPA machine's batch share: stacked ops + its store slice."""

    __slots__ = ("alpha", "num_nodes", "all_hubs", "ops", "store", "kernels")

    def __init__(
        self,
        alpha: float,
        num_nodes: int,
        all_hubs: np.ndarray,
        ops: tuple,
        store: Any,
        kernels: KernelsLike = None,
    ) -> None:
        self.alpha = alpha
        self.num_nodes = int(num_nodes)
        self.all_hubs = all_hubs
        self.ops = ops  # (owned, part_csc, skel_csr, nnz_per_hub)
        self.store = store
        self.kernels = kernels

    def dense(
        self, nodes: np.ndarray, collect_stats: bool
    ) -> tuple[np.ndarray, np.ndarray, float]:
        owned, part_csc, skel_csr, nnz_per_hub = self.ops
        hub_flags = np.zeros(nodes.size, dtype=bool)
        hub_flags[find_sorted(self.all_hubs, nodes)[0]] = True
        entries = np.zeros(nodes.size, dtype=np.int64)
        t0 = time.perf_counter()
        if owned.size:
            weights = skel_csr[nodes].toarray()
            rows, pos = find_sorted(owned, nodes)
            weights[rows, pos[rows]] -= self.alpha
            acc = part_csc @ (weights.T / self.alpha)
            if collect_stats:
                entries[:] = (weights != 0.0).astype(np.int64) @ nnz_per_hub
        else:
            acc = np.zeros((self.num_nodes, nodes.size))
        for k, u in enumerate(nodes.tolist()):
            if hub_flags[k]:
                own = self.store.get(("hub", u))
                if own is not None:
                    own.add_into(acc[:, k])
                    acc[u, k] += self.alpha
            else:
                own = self.store.get(("part", u))
                if own is not None:
                    own.add_into(acc[:, k])
            if own is not None and collect_stats:
                entries[k] += own.nnz
        return acc, entries, time.perf_counter() - t0

    def sparse(
        self, nodes: np.ndarray, collect_stats: bool
    ) -> tuple[sp.csc_matrix, np.ndarray, float]:
        owned, part_csc, skel_csr, nnz_per_hub = self.ops
        hub_flags = np.zeros(nodes.size, dtype=bool)
        hub_flags[find_sorted(self.all_hubs, nodes)[0]] = True
        entries = np.zeros(nodes.size, dtype=np.int64)
        t0 = time.perf_counter()
        if owned.size:
            rows, pos = find_sorted(owned, nodes)
            weights = subtract_at(skel_csr[nodes], rows, pos[rows], self.alpha)
            # divide=True: the dense twin scales with `weights.T / alpha`.
            acc = spgemm_scaled(
                part_csc, weights, self.alpha, divide=True,
                kernels=self.kernels,
            )
            if collect_stats:
                entries[:] = weight_row_stats(weights, nnz_per_hub)[1]
        else:
            acc = sp.csc_matrix((self.num_nodes, nodes.size))
        own_vecs: list = [None] * nodes.size
        alpha_rows: list[int] = []
        alpha_cols: list[int] = []
        for k, u in enumerate(nodes.tolist()):
            if hub_flags[k]:
                own = self.store.get(("hub", u))
                if own is not None:
                    alpha_rows.append(u)
                    alpha_cols.append(k)
            else:
                own = self.store.get(("part", u))
            own_vecs[k] = own
            if own is not None and collect_stats:
                entries[k] += own.nnz
        if any(v is not None for v in own_vecs):
            acc = sparse_add(
                acc,
                rows_matrix(own_vecs, self.num_nodes).T.tocsc(),
                kernels=self.kernels,
            )
        if alpha_rows:
            acc = sparse_add(
                acc,
                point_matrix(
                    np.asarray(alpha_rows),
                    np.asarray(alpha_cols),
                    np.full(len(alpha_rows), self.alpha),
                    acc.shape,
                    fmt="csc",
                ),
                kernels=self.kernels,
            )
        return acc, entries, time.perf_counter() - t0


class HGPAMachineTask:
    """One HGPA machine's batch share: per-level ops + its store slice."""

    __slots__ = (
        "alpha", "num_nodes", "hierarchy", "level_ops", "store", "kernels"
    )

    def __init__(
        self,
        alpha: float,
        num_nodes: int,
        hierarchy: Any,
        level_ops: Any,
        store: Any,
        kernels: KernelsLike = None,
    ) -> None:
        self.alpha = alpha
        self.num_nodes = int(num_nodes)
        self.hierarchy = hierarchy
        # sid -> (owned, part_csc, skel_csr, nnz_per_hub), owned levels only
        self.level_ops = level_ops
        self.store = store
        self.kernels = kernels

    def dense(
        self, nodes: np.ndarray, collect_stats: bool
    ) -> tuple[np.ndarray, np.ndarray, float]:
        alpha = self.alpha
        order, members, hub_flags, _ = _chain_membership(self.hierarchy, nodes)
        ordered = nodes[order]
        inv_order = np.empty_like(order)
        inv_order[order] = np.arange(order.size)
        level_ops = {sid: self.level_ops.get(sid) for sid in members}
        entries = np.zeros(nodes.size, dtype=np.int64)
        t0 = time.perf_counter()
        acc = np.zeros((self.num_nodes, nodes.size))  # ordered columns
        for sid, (lo, hi, own_list) in members.items():
            ops = level_ops[sid]
            if ops is None:
                continue
            owned, part_csc, skel_csr, nnz_per_hub = ops
            own_arr = np.asarray(own_list, dtype=bool)
            qnodes = ordered[lo:hi]
            raw = skel_csr[qnodes].toarray()
            weights = raw.copy()
            own_rows = np.nonzero(own_arr)[0]
            if own_rows.size:
                mine, pos = find_sorted(owned, qnodes[own_rows])
                weights[own_rows[mine], pos[mine]] -= alpha
            contrib = part_csc @ (weights.T / alpha)
            rest = np.nonzero(~own_arr)[0]
            if rest.size:
                level_hubs = self.hierarchy.subgraphs[sid].hubs
                contrib[np.ix_(level_hubs, rest)] = 0.0
                contrib[np.ix_(owned, rest)] = raw[rest].T
            acc[:, lo:hi] += contrib
            if collect_stats:
                entries[order[lo:hi]] += (
                    (weights != 0.0).astype(np.int64) @ nnz_per_hub
                )
        for k, u in enumerate(nodes.tolist()):
            col = acc[:, inv_order[k]]
            if hub_flags[k]:
                own = self.store.get(("hub", u))
                if own is not None:
                    own.add_into(col)
                    col[u] += alpha
            else:
                own = self.store.get(("leaf", u))
                if own is not None:
                    own.add_into(col)
            if own is not None and collect_stats:
                entries[k] += own.nnz
        return acc, entries, time.perf_counter() - t0

    def sparse(
        self, nodes: np.ndarray, collect_stats: bool
    ) -> tuple[sp.csc_matrix, np.ndarray, float]:
        alpha = self.alpha
        n = self.num_nodes
        order, members, hub_flags, depth_of = _chain_membership(
            self.hierarchy, nodes
        )
        ordered = nodes[order]
        inv_order = np.empty_like(order)
        inv_order[order] = np.arange(order.size)
        level_ops = {sid: self.level_ops.get(sid) for sid in members}
        entries = np.zeros(nodes.size, dtype=np.int64)
        t0 = time.perf_counter()
        # Depth-bucketed level blocks (see HGPAIndex.query_many_sparse):
        # one sparse add per depth, per-entry order = chain order.
        by_depth: dict[int, list[tuple[int, sp.csc_matrix]]] = {}
        ports: dict[int, list] = {}
        for sid, (lo, hi, own_list) in members.items():
            ops = level_ops[sid]
            if ops is None:
                continue
            owned, part_csc, skel_csr, nnz_per_hub = ops
            own_arr = np.asarray(own_list, dtype=bool)
            qnodes = ordered[lo:hi]
            raw = skel_csr[qnodes]
            weights = raw
            own_rows = np.nonzero(own_arr)[0]
            if own_rows.size:
                mine, pos = find_sorted(owned, qnodes[own_rows])
                weights = subtract_at(raw, own_rows[mine], pos[mine], alpha)
            # divide=True: the dense twin scales with `weights.T / alpha`.
            contrib = spgemm_scaled(
                part_csc, weights, alpha, divide=True, kernels=self.kernels
            )
            rest = np.nonzero(~own_arr)[0]
            if rest.size:
                # Distributed port repair: zero this machine's level term
                # at the level's hub coordinates, re-add the raw skeleton
                # values at its *owned* hubs (collected per depth, added
                # after assembly).
                level_hubs = self.hierarchy.subgraphs[sid].hubs
                rest_mask = np.zeros(hi - lo, dtype=bool)
                rest_mask[rest] = True
                zero_rows_in_columns(contrib, level_hubs, rest_mask)
                raw_rest = raw[rest]
                port_cols = lo + rest[
                    np.repeat(np.arange(rest.size), np.diff(raw_rest.indptr))
                ]
                ports.setdefault(depth_of[sid], []).append(
                    (owned[raw_rest.indices], port_cols, raw_rest.data)
                )
            by_depth.setdefault(depth_of[sid], []).append((lo, contrib))
            if collect_stats:
                entries[order[lo:hi]] += weight_row_stats(
                    weights, nnz_per_hub
                )[1]
        acc = fold_depth_blocks(
            by_depth, ports, nodes.size, n, kernels=self.kernels
        )
        if acc is None:
            acc = sp.csc_matrix((n, nodes.size))
        own_vecs: list = [None] * nodes.size
        alpha_rows: list[int] = []
        alpha_cols: list[int] = []
        for k, u in enumerate(nodes.tolist()):
            if hub_flags[k]:
                own = self.store.get(("hub", u))
                if own is not None:
                    alpha_rows.append(u)
                    alpha_cols.append(int(inv_order[k]))
            else:
                own = self.store.get(("leaf", u))
            own_vecs[int(inv_order[k])] = own
            if own is not None and collect_stats:
                entries[k] += own.nnz
        if any(v is not None for v in own_vecs):
            acc = sparse_add(
                acc, rows_matrix(own_vecs, n).T.tocsc(), kernels=self.kernels
            )
        if alpha_rows:
            acc = sparse_add(
                acc,
                point_matrix(
                    np.asarray(alpha_rows),
                    np.asarray(alpha_cols),
                    np.full(len(alpha_rows), alpha),
                    acc.shape,
                    fmt="csc",
                ),
                kernels=self.kernels,
            )
        return acc, entries, time.perf_counter() - t0


# ----------------------------------------------------------------------
# Shared-memory publication + picklable worker-side builders


def _hub_store_entries(owned: np.ndarray, part_csc: sp.csc_matrix) -> dict:
    """``("hub", h)`` store entries as slices of the stacked CSC buffers
    — the worker-side twin of ``ClusterBase._stack_ops``'s rebinding."""
    pp = part_csc.indptr
    return {
        ("hub", int(h)): SparseVec(
            part_csc.indices[pp[j] : pp[j + 1]],
            part_csc.data[pp[j] : pp[j + 1]],
            _trusted=True,
        )
        for j, h in enumerate(owned.tolist())
    }


def gpa_machine_arrays(ops: tuple, all_hubs: np.ndarray, part_store: dict) -> dict:
    """Arena arrays of one GPA machine: its stacked ops, the global hub
    set, and its owned node-partial vectors (``("part", u)`` entries)."""
    arrays = stacked_ops_arrays(ops)
    arrays["all_hubs"] = all_hubs
    arrays.update(_pack_store_arrays(part_store, "own_"))
    return arrays


@dataclass(frozen=True)
class GPAMachineBuilder:
    """Picklable recipe for one GPA machine's worker-side task.

    ``kernel_backend`` carries the kernel choice across the process
    boundary as a plain backend *name* (bundles hold compiled callables
    and never pickle); ``None`` lets the worker's own capability probe
    decide.
    """

    descriptor: ArenaDescriptor
    alpha: float
    num_nodes: int
    kernel_backend: str | None = None

    def __call__(self) -> GPAMachineTask:
        view = self.descriptor.attach()
        ops = build_ops_from_view(view, "", self.num_nodes)
        owned, part_csc = ops[0], ops[1]
        store = _hub_store_entries(owned, part_csc)
        for u, vec in _packed_store(view, "own_").items():
            store[("part", u)] = vec
        return GPAMachineTask(
            self.alpha, self.num_nodes, view.arrays["all_hubs"], ops, store,
            kernels=self.kernel_backend,
        )


def hgpa_machine_arrays(level_ops: dict, leaf_store: dict) -> dict:
    """Arena arrays of one HGPA machine: per-owned-level stacked ops
    (prefix ``s<sid>:``) and its leaf-PPV vectors."""
    arrays: dict = {}
    for sid, ops in level_ops.items():
        arrays.update(stacked_ops_arrays(ops, prefix=f"s{sid}:"))
    arrays.update(_pack_store_arrays(leaf_store, "own_"))
    return arrays


@dataclass(frozen=True)
class HGPAMachineBuilder:
    """Picklable recipe for one HGPA machine's worker-side task.

    ``kernel_backend`` carries the kernel choice across the process
    boundary as a plain backend *name* (see :class:`GPAMachineBuilder`).
    """

    descriptor: ArenaDescriptor
    sids: tuple[int, ...]
    hierarchy: _HierarchyHandle
    alpha: float
    num_nodes: int
    kernel_backend: str | None = None

    def __call__(self) -> HGPAMachineTask:
        view = self.descriptor.attach()
        level_ops: dict = {}
        store: dict = {}
        for sid in self.sids:
            ops = build_ops_from_view(view, f"s{sid}:", self.num_nodes)
            level_ops[sid] = ops
            store.update(_hub_store_entries(ops[0], ops[1]))
        for u, vec in _packed_store(view, "own_").items():
            store[("leaf", u)] = vec
        return HGPAMachineTask(
            self.alpha, self.num_nodes, self.hierarchy, level_ops, store,
            kernels=self.kernel_backend,
        )
