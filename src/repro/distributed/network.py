"""Cost model and byte accounting for the simulated share-nothing cluster.

The paper's cluster is ten 2.7 GHz machines on a 100 Mb switch.  Our cluster
is simulated, so all claims are made on deterministic *counts* — vector
entries processed (the float-op proxy) and bytes on the wire — which a
:class:`CostModel` converts to seconds for reporting.  The defaults are
calibrated to commodity-hardware magnitudes: entry throughput of a few
hundred M float-ops/s and the paper's 100 Mb/s switch.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

__all__ = ["CostModel", "NetworkMeter", "DEFAULT_COST_MODEL"]


@dataclass(frozen=True)
class CostModel:
    """Convert work/byte counters into simulated seconds.

    Scale note: the stand-in graphs are ~200x smaller than the paper's, so
    per-machine runtime is dominated by shipping the machine's own result
    vector rather than by combining entries; both components still shrink
    as machines are added, preserving Figure 10's halving shape.  All raw
    counters (entries, bytes) are reported alongside modeled times, so any
    other calibration is a constant rescale.
    """

    entries_per_second: float = 2.0e8
    """Stored-vector entries a machine combines per second (axpy rate)."""

    bandwidth_bytes_per_second: float = 100e6 / 8
    """Switch bandwidth — the paper's 100 Mb TP-LINK ⇒ 12.5 MB/s."""

    latency_seconds: float = 5.0e-4
    """Per-message fixed cost (serialisation + switch round trip)."""

    def compute_seconds(self, entries: int | float) -> float:
        """Time for a machine to process ``entries`` vector entries."""
        return float(entries) / self.entries_per_second

    def transfer_seconds(self, num_bytes: int | float, messages: int = 1) -> float:
        """Time to move ``num_bytes`` in ``messages`` messages."""
        return float(num_bytes) / self.bandwidth_bytes_per_second + (
            self.latency_seconds * max(0, messages)
        )


DEFAULT_COST_MODEL = CostModel()


@dataclass
class NetworkMeter:
    """Accumulates wire traffic, by (sender, receiver) pair.

    ``on_record`` is the fault-injection seam: when set (by a
    :class:`~repro.faults.injector.FaultInjector`), every recorded
    message is offered to the hook *after* its bytes are charged — a
    payload lost or corrupted in flight still crossed the wire, and its
    retransmission is charged again, exactly like a real retransmit.
    The hook signals the fault by raising (:class:`~repro.errors.
    LinkDropped` / :class:`~repro.errors.PayloadTruncated`).
    """

    total_bytes: int = 0
    total_messages: int = 0
    by_link: dict[tuple[str, str], int] = field(default_factory=dict)
    on_record: Callable[[str, str, int], None] | None = field(
        default=None, repr=False, compare=False
    )

    def record(self, sender: str, receiver: str, num_bytes: int) -> None:
        """Account one message of ``num_bytes`` from sender to receiver."""
        self.total_bytes += int(num_bytes)
        self.total_messages += 1
        key = (sender, receiver)
        self.by_link[key] = self.by_link.get(key, 0) + int(num_bytes)
        if self.on_record is not None:
            self.on_record(sender, receiver, int(num_bytes))

    def reset(self) -> None:
        self.total_bytes = 0
        self.total_messages = 0
        self.by_link.clear()

    @property
    def total_kilobytes(self) -> float:
        """Traffic in KB — the unit of the paper's communication figures."""
        return self.total_bytes / 1024.0
