"""The coordinator: receives one vector per machine and sums them.

This is the entire query-time protocol of GPA/HGPA (Sections 3.1 and 4.4):
the coordinator broadcasts the query node (a few bytes), every machine
answers with a single sparse vector, and the final PPV is their sum — one
round of communication, bounded by ``O(n·|V|)`` (Theorem 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.sparsevec import SparseVec
from repro.distributed.network import NetworkMeter

__all__ = ["Coordinator"]

QUERY_BROADCAST_BYTES = 8  # the node id sent to each machine


@dataclass
class Coordinator:
    """Aggregates per-machine vectors and meters the traffic."""

    num_nodes: int
    meter: NetworkMeter = field(default_factory=NetworkMeter)

    def broadcast_query(self, query: int, machine_ids: list[int]) -> None:
        """Account the (tiny) query broadcast to every machine."""
        for mid in machine_ids:
            self.meter.record("coordinator", f"machine-{mid}", QUERY_BROADCAST_BYTES)

    def aggregate(self, payloads: dict[int, bytes]) -> np.ndarray:
        """Decode one wire payload per machine and sum them."""
        acc = np.zeros(self.num_nodes)
        for mid, payload in payloads.items():
            self.meter.record(f"machine-{mid}", "coordinator", len(payload))
            SparseVec.from_wire(payload).add_into(acc)
        return acc

    def aggregate_sparse(self, payloads: dict[int, bytes]) -> SparseVec:
        """Decode one wire payload per machine and sum them *sparsely*.

        The sparse twin of :meth:`aggregate`: identical metering, and the
        fold adds the machines' vectors in the same payload order, so
        every entry sees the exact addition sequence of the dense sum —
        without the coordinator ever allocating an ``n``-vector.
        """
        acc = SparseVec.empty()
        for mid, payload in payloads.items():
            self.meter.record(f"machine-{mid}", "coordinator", len(payload))
            acc = acc + SparseVec.from_wire(payload)
        return acc
