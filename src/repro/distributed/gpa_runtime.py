"""Distributed GPA (Section 3.1).

Deployment: hub nodes are split round-robin across machines, each hub
travelling with its adjusted partial vector *and* its skeleton column; the
partition's subgraphs are dealt round-robin to machines, which then hold the
partial vectors of their subgraphs' non-hub members.  At query time the
machine owning the query node's partial vector adds it (Eq. 5's
``v_u`` machine), every machine folds in its own hubs' contributions, and
each sends exactly one vector to the coordinator.

``_deploy`` pre-computes, per machine, the sorted list of owned hubs; their
vectors stacked as one CSC (partials) / CSR (skeletons) pair are derived
*lazily* on a machine's first query (then cached), so a machine's share of
a query is one skeleton-row slice plus one ``CSC @ weights`` product — no
per-hub ownership probing on the query path — while deployments that are
never queried (space/offline measurements) keep only the store and never
pay the ~2x resident memory of the stacked copies.
"""

from __future__ import annotations

import time
from collections.abc import Callable

import numpy as np
import scipy.sparse as sp

from repro.core.flat_index import (
    DEFAULT_BATCH,
    hub_weights,
    run_in_batches,
    validate_batch,
)
from repro.core.sparse_ops import sparse_in_batches
from repro.core.gpa import GPAIndex
from repro.core.updates import (
    UPDATE_WIRE_BYTES,
    EdgeUpdate,
    UpdateReceipt,
    apply_edge_update,
)
from repro.distributed.cluster import ClusterBase, QueryReport
from repro.distributed.machine import Machine
from repro.distributed.machine_tasks import (
    GPAMachineBuilder,
    GPAMachineTask,
    gpa_machine_arrays,
)
from repro.distributed.network import DEFAULT_COST_MODEL, CostModel
from repro.errors import ClusterError, QueryError
from repro.exec.backend import ExecutionBackend
from repro.kernels.dispatch import KernelsLike, resolve_kernels

__all__ = ["DistributedGPA"]


class DistributedGPA(ClusterBase):
    """GPA index deployed over a simulated share-nothing cluster."""

    def __init__(
        self,
        index: GPAIndex,
        num_machines: int,
        *,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        backend: ExecutionBackend | None = None,
        wire_version: int = 1,
        kernels: KernelsLike = None,
    ) -> None:
        super().__init__(
            num_nodes=index.graph.num_nodes,
            cost_model=cost_model,
            wire_version=wire_version,
        )
        self.index = index
        #: Kernel bundle / backend the machine tasks dispatch to; defaults
        #: to the index's own setting so one switch flips the whole stack.
        self.kernels: KernelsLike = (
            index.kernels if kernels is None else kernels
        )
        self.epoch = 0
        self.init_cluster(num_machines)
        self.init_exec(backend)
        self._hub_owner: dict[int, int] = {}
        self._node_owner: dict[int, int] = {}
        self._machine_owned: dict[int, np.ndarray] = {}
        self._machine_ops: dict[int, tuple] = {}
        self._deploy()

    # ------------------------------------------------------------------
    def _deploy(self) -> None:
        index, n = self.index, self.num_machines
        for machine in self.machines:
            # Round-robin slice of the (sorted) hub set owned by this
            # machine — pre-computed once, never rescanned per query.
            owned = index.hubs[machine.machine_id :: n]
            for h in owned.tolist():
                machine.put(
                    ("hub", h),
                    index.hub_partials[h],
                    build_seconds=index.build_cost.get(("hub", h), 0.0),
                )
                machine.put(
                    ("skel", h),
                    index.skeleton_cols[h],
                    build_seconds=index.build_cost.get(("skel", h), 0.0),
                )
                self._hub_owner[h] = machine.machine_id
            self._machine_owned[machine.machine_id] = owned
        if index.partition is not None:
            part_lists = index.partition.part_nodes
        else:  # pragma: no cover - GPA always carries its partition
            part_lists = [np.asarray(sorted(index.node_partials), dtype=np.int64)]
        for p, nodes in enumerate(part_lists):
            machine = self.machines[p % n]
            for u in nodes.tolist():
                machine.put(
                    ("part", u),
                    index.node_partials[u],
                    build_seconds=index.build_cost.get(("part", u), 0.0),
                )
                self._node_owner[u] = machine.machine_id

    def _ops_for(self, mid: int) -> tuple:
        """The machine's stacked (owned, CSC, CSR, nnz-per-hub) query ops.

        Built on first use and cached; the machine's stored hub partials
        are rebound as read-only views into the stacked CSC's buffers
        (see :meth:`ClusterBase._stack_ops`), so the partial-vector side
        of matmul-form queries costs one resident copy, not two (the
        skeleton CSR remains a reorganized copy).  Deployments that never
        query keep only the store.
        """
        ops = self._machine_ops.get(mid)
        if ops is None:
            ops = self._stack_ops(
                self._machine_owned[mid], machine=self.machines[mid]
            )
            self._machine_ops[mid] = ops
        return ops

    def owner_map(self) -> np.ndarray:
        """Machine owning each node's own vector: ``(n,)`` array, ``-1``
        where no machine holds one (never happens after a full deploy).

        Hubs map to their hub-vector owner, everything else to its
        node-partial owner — the affinity map a sharded serving layer
        routes by (see :mod:`repro.sharding`).
        """
        return self._owners_to_map(self._node_owner, self._hub_owner)

    # ----- execution seam ----------------------------------------------
    def _exec_key(self, mid: int) -> tuple:
        """The backend key of machine ``mid``'s task state, registering
        it (lazily, like the stacked ops) on first use."""
        key = self._exec_keys.get(mid)
        if key is None:
            key = ("gpa", id(self), self._exec_gen, mid)
            self._backend.register(key, self._machine_builder(mid))
            self._exec_keys[mid] = key
        return key

    def _machine_builder(self, mid: int) -> Callable[[], GPAMachineTask]:
        """A state builder for machine ``mid``'s batch share.

        Serial backends get a closure over the runtime's live ops and
        store (zero extra memory); process backends get a picklable
        builder whose arrays are published to a shared arena once —
        per-batch IPC then carries node ids in and result blocks out.
        """
        if self._backend.is_local:

            def build() -> GPAMachineTask:
                return GPAMachineTask(
                    self.index.alpha,
                    self.num_nodes,
                    self.index.hubs,
                    self._ops_for(mid),
                    self.machines[mid].store,
                    kernels=self.kernels,
                )

            return build
        ops = self._ops_for(mid)
        part_store = {
            u: vec
            for (kind, u), vec in self.machines[mid].store.items()
            if kind == "part"
        }
        descriptor = self._backend.create_arena(
            gpa_machine_arrays(ops, self.index.hubs, part_store)
        )
        self._exec_arenas.append(descriptor)
        return GPAMachineBuilder(
            descriptor,
            self.index.alpha,
            self.num_nodes,
            kernel_backend=resolve_kernels(self.kernels).backend,
        )

    # ------------------------------------------------------------------
    def _add_own_vector(
        self, machine: Machine, u: int, u_is_hub: bool, acc: np.ndarray
    ) -> None:
        """The query node's own partial vector, on its owning machine."""
        if u_is_hub:
            if self._hub_owner[u] == machine.machine_id:
                machine.accumulate(acc, ("hub", u))
                acc[u] += self.index.alpha
        elif self._node_owner.get(u) == machine.machine_id:
            machine.accumulate(acc, ("part", u))

    def query(self, u: int) -> tuple[np.ndarray, QueryReport]:
        """Distributed PPV of ``u`` plus the paper's per-query metrics."""
        index = self.index
        if not 0 <= u < index.graph.num_nodes:
            raise QueryError(f"query node {u} out of range")
        u_is_hub = index.is_hub(u)
        partials: dict[int, np.ndarray] = {}
        walls: dict[int, float] = {}
        for machine in self.machines:
            machine.reset_query_counters()
            mid = machine.machine_id
            # Materialise outside the timed region: the one-time stacked
            # build must not be charged to this query's runtime metric.
            owned, part_csc, skel_csr, nnz_per_hub = self._ops_for(mid)
            t0 = time.perf_counter()
            if owned.size:
                weights = hub_weights(skel_csr, owned, u, index.alpha)
                acc = part_csc @ (weights / index.alpha)
                machine.query_entries += int(nnz_per_hub[weights != 0.0].sum())
            else:
                acc = np.zeros(self.num_nodes)
            self._add_own_vector(machine, u, u_is_hub, acc)
            machine.query_seconds = time.perf_counter() - t0
            walls[mid] = machine.query_seconds
            partials[mid] = acc
        return self._finish_query(u, partials, walls)

    def query_many(
        self, nodes: np.ndarray, *, collect_stats: bool = True
    ) -> tuple[np.ndarray, list[QueryReport]]:
        """Batched distributed PPVs: one sparse matmul per machine.

        Each machine evaluates its share of the whole batch in a single
        ``CSC @ weights`` product (see
        :class:`~repro.distributed.machine_tasks.GPAMachineTask` — the
        shares are dispatched through the execution backend, so they run
        in-process or as real worker processes); serialization,
        aggregation and metrics then run per query (the wire protocol is
        unchanged — one vector per machine per query).  Returns a dense
        ``(len(nodes), n)`` matrix plus the per-query reports.
        ``collect_stats=False`` skips the per-query entry bookkeeping and
        report construction (metering still runs — it is the protocol)
        and returns ``[]``.
        """
        nodes = validate_batch(nodes, self.num_nodes)
        if nodes.size == 0:
            return np.zeros((0, self.num_nodes)), []
        if nodes.size > DEFAULT_BATCH:
            # Bound the per-machine dense (n, batch) intermediates.
            return run_in_batches(
                lambda chunk: self.query_many(
                    chunk, collect_stats=collect_stats
                ),
                nodes,
            )
        machine_accs: dict[int, np.ndarray] = {}
        entries = np.zeros((nodes.size, self.num_machines), dtype=np.int64)
        walls: dict[int, float] = {}
        futures = {}
        for machine in self.machines:
            machine.reset_query_counters()
            mid = machine.machine_id
            futures[mid] = self._backend.submit(
                self._exec_key(mid), "dense", nodes, collect_stats
            )
        for machine in self.machines:
            mid = machine.machine_id
            acc, entry_col, wall = futures[mid].result()
            machine.query_seconds = wall
            walls[mid] = wall / nodes.size
            if collect_stats:
                entries[:, mid] = entry_col
            machine_accs[mid] = acc
        out = np.zeros((nodes.size, self.num_nodes))
        reports: list[QueryReport] = []
        for k, u in enumerate(nodes.tolist()):
            result, report = self._finish_query(
                u,
                {mid: machine_accs[mid][:, k] for mid in machine_accs},
                walls,
                entries_by_machine={
                    mid: int(entries[k, mid]) for mid in machine_accs
                },
                collect_stats=collect_stats,
            )
            out[k] = result
            if collect_stats:
                reports.append(report)
        return out, reports

    def query_many_sparse(
        self, nodes: np.ndarray, *, collect_stats: bool = True
    ) -> tuple[sp.csr_matrix, list[QueryReport]]:
        """Batched distributed PPVs as a CSR ``(len(nodes), n)`` matrix.

        The sparse twin of :meth:`query_many`: each machine's share of
        the batch is one sparse×sparse ``CSC @ sparse_weights`` product
        (its ``(n, batch)`` partial-result block stays CSC), per-query
        columns ship over the same wire codec — the
        :class:`~repro.distributed.network.NetworkMeter` charges the
        actual nnz, exactly the bytes the dense path's sparsified
        payloads weigh — and the coordinator merges them sparsely, so no
        dense ``(n, batch)`` accumulator exists on any machine or at the
        coordinator.  Machine shares dispatch through the execution
        backend like the dense path's.  Agrees with the dense path
        exactly.
        """
        nodes = validate_batch(nodes, self.num_nodes)
        if nodes.size == 0:
            return sp.csr_matrix((0, self.num_nodes)), []
        if nodes.size > DEFAULT_BATCH:
            # Bound the per-machine sparse blocks like the dense path.
            return sparse_in_batches(
                lambda chunk: self.query_many_sparse(
                    chunk, collect_stats=collect_stats
                ),
                nodes,
                DEFAULT_BATCH,
            )
        machine_accs: dict[int, sp.csc_matrix] = {}
        entries = np.zeros((nodes.size, self.num_machines), dtype=np.int64)
        walls: dict[int, float] = {}
        futures = {}
        for machine in self.machines:
            machine.reset_query_counters()
            mid = machine.machine_id
            futures[mid] = self._backend.submit(
                self._exec_key(mid), "sparse", nodes, collect_stats
            )
        for machine in self.machines:
            mid = machine.machine_id
            acc, entry_col, wall = futures[mid].result()
            machine.query_seconds = wall
            walls[mid] = wall / nodes.size
            if collect_stats:
                entries[:, mid] = entry_col
            machine_accs[mid] = acc
        return self._collect_sparse_batch(
            nodes, machine_accs, lambda k: k, walls, entries, collect_stats
        )

    # ------------------------------------------------------------------
    def apply_update(self, update: EdgeUpdate) -> UpdateReceipt:
        """Apply one edge update, re-deploying only affected machines.

        The index is updated incrementally (affected columns only); each
        rebuilt vector is re-shipped to the machine that already owns it
        — metered coordinator→machine like any other traffic — and only
        those machines' stacked query ops are invalidated.  A hub
        promoted by the update is assigned to the machine owning the
        fewest hubs (deterministic, ties to the lowest id).  Bumps the
        deployment epoch when anything changed.
        """
        new_index, receipt = apply_edge_update(self.index, update)
        if not receipt.changed:
            return receipt.at_epoch(self.epoch)
        meter = self.coordinator.meter
        stats = receipt.stats
        invalidate: set[int] = set()
        touched: set[int] = set()
        for kind, node in sorted(stats.dropped_keys):
            if kind in ("hub", "skel"):
                mid = self._hub_owner[node]
                invalidate.add(mid)
            else:
                mid = self._node_owner[node]
            self.machines[mid].drop((kind, node))
            touched.add(mid)
        for kind, node in sorted(stats.dropped_keys):
            if kind == "part":
                self._node_owner.pop(node, None)
            elif kind == "hub":
                self._remove_owned_hub(node)
        for kind, node in sorted(stats.rebuilt_keys):
            if kind in ("hub", "skel"):
                mid = self._hub_owner.get(node)
                if mid is None:
                    mid = self._assign_new_hub(node)
                invalidate.add(mid)
                vec = (
                    new_index.hub_partials
                    if kind == "hub"
                    else new_index.skeleton_cols
                )[node]
            else:
                mid = self._node_owner.get(node)
                if mid is None:  # pragma: no cover - updates never add nodes
                    raise ClusterError(f"no owner for rebuilt vector {node}")
                vec = new_index.node_partials[node]
            machine = self.machines[mid]
            key = (kind, node)
            cost = new_index.build_cost.get(key, 0.0)
            if machine.has(key):
                machine.replace(key, vec, build_seconds=cost)
            else:
                machine.put(key, vec, build_seconds=cost)
            meter.record("coordinator", f"machine-{mid}", vec.wire_bytes)
            touched.add(mid)
        for mid in sorted(touched):
            meter.record("coordinator", f"machine-{mid}", UPDATE_WIRE_BYTES)
        for mid in sorted(invalidate):
            self._machine_ops.pop(mid, None)
        self.index = new_index
        self.epoch += 1
        # Drop registered machine states (and their shared arenas): the
        # next batch re-registers against the updated deployment.
        self._reset_exec()
        return receipt.at_epoch(self.epoch)

    def _assign_new_hub(self, h: int) -> int:
        """Deterministic placement of a promoted hub: fewest owned hubs,
        ties to the lowest machine id."""
        mid = min(
            range(self.num_machines),
            key=lambda m: (self._machine_owned[m].size, m),
        )
        owned = self._machine_owned[mid]
        self._machine_owned[mid] = np.insert(
            owned, int(np.searchsorted(owned, h)), h
        )
        self._hub_owner[h] = mid
        return mid

    def _remove_owned_hub(self, h: int) -> None:
        mid = self._hub_owner.pop(h, None)
        if mid is not None:
            owned = self._machine_owned[mid]
            self._machine_owned[mid] = owned[owned != h]

    # ------------------------------------------------------------------
    def validate_deployment(self) -> None:
        """Every hub and node-partial vector placed exactly once."""
        if set(self._hub_owner) != set(self.index.hub_partials):
            raise ClusterError("hub ownership incomplete")
        if set(self._node_owner) != set(self.index.node_partials):
            raise ClusterError("node-partial ownership incomplete")
