"""Distributed GPA (Section 3.1).

Deployment: hub nodes are split round-robin across machines, each hub
travelling with its adjusted partial vector *and* its skeleton column; the
partition's subgraphs are dealt round-robin to machines, which then hold the
partial vectors of their subgraphs' non-hub members.  At query time the
machine owning the query node's partial vector adds it (Eq. 5's
``v_u`` machine), every machine folds in its own hubs' contributions, and
each sends exactly one vector to the coordinator.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.gpa import GPAIndex
from repro.distributed.cluster import ClusterBase, QueryReport
from repro.distributed.network import DEFAULT_COST_MODEL, CostModel
from repro.errors import ClusterError, QueryError

__all__ = ["DistributedGPA"]


class DistributedGPA(ClusterBase):
    """GPA index deployed over a simulated share-nothing cluster."""

    def __init__(
        self,
        index: GPAIndex,
        num_machines: int,
        *,
        cost_model: CostModel = DEFAULT_COST_MODEL,
    ):
        super().__init__(num_nodes=index.graph.num_nodes, cost_model=cost_model)
        self.index = index
        self.init_cluster(num_machines)
        self._hub_owner: dict[int, int] = {}
        self._node_owner: dict[int, int] = {}
        self._deploy()

    # ------------------------------------------------------------------
    def _deploy(self) -> None:
        index, n = self.index, self.num_machines
        for i, h in enumerate(index.hubs.tolist()):
            machine = self.machines[i % n]
            machine.put(
                ("hub", h),
                index.hub_partials[h],
                build_seconds=index.build_cost.get(("hub", h), 0.0),
            )
            machine.put(
                ("skel", h),
                index.skeleton_cols[h],
                build_seconds=index.build_cost.get(("skel", h), 0.0),
            )
            self._hub_owner[h] = machine.machine_id
        if index.partition is not None:
            part_lists = index.partition.part_nodes
        else:  # pragma: no cover - GPA always carries its partition
            part_lists = [np.asarray(sorted(index.node_partials), dtype=np.int64)]
        for p, nodes in enumerate(part_lists):
            machine = self.machines[p % n]
            for u in nodes.tolist():
                machine.put(
                    ("part", u),
                    index.node_partials[u],
                    build_seconds=index.build_cost.get(("part", u), 0.0),
                )
                self._node_owner[u] = machine.machine_id

    # ------------------------------------------------------------------
    def query(self, u: int) -> tuple[np.ndarray, QueryReport]:
        """Distributed PPV of ``u`` plus the paper's per-query metrics."""
        index = self.index
        if not 0 <= u < index.graph.num_nodes:
            raise QueryError(f"query node {u} out of range")
        alpha = index.alpha
        u_is_hub = index.is_hub(u)
        partials: dict[int, np.ndarray] = {}
        walls: dict[int, float] = {}
        for machine in self.machines:
            machine.reset_query_counters()
            t0 = time.perf_counter()
            acc = np.zeros(self.num_nodes)
            for h in index.hubs.tolist():
                if self._hub_owner[h] != machine.machine_id:
                    continue
                weight = machine.get(("skel", h)).get(u)
                if h == u:
                    weight -= alpha
                if weight != 0.0:
                    machine.accumulate(acc, ("hub", h), weight / alpha)
            if u_is_hub:
                if self._hub_owner[u] == machine.machine_id:
                    machine.accumulate(acc, ("hub", u))
                    acc[u] += alpha
            elif self._node_owner.get(u) == machine.machine_id:
                machine.accumulate(acc, ("part", u))
            machine.query_seconds = time.perf_counter() - t0
            walls[machine.machine_id] = machine.query_seconds
            partials[machine.machine_id] = acc
        return self._finish_query(u, partials, walls)

    # ------------------------------------------------------------------
    def validate_deployment(self) -> None:
        """Every hub and node-partial vector placed exactly once."""
        if set(self._hub_owner) != set(self.index.hub_partials):
            raise ClusterError("hub ownership incomplete")
        if set(self._node_owner) != set(self.index.node_partials):
            raise ClusterError("node-partial ownership incomplete")
