"""A simulated worker machine: private vector store plus work counters.

Machines in the paper's platform share nothing — each one holds only the
pre-computed vectors assigned to it and talks only to the coordinator.  The
simulation preserves exactly that: a :class:`Machine` owns a key→vector
store, counts the entries it processes and the seconds of (measured) work it
performs, and produces one wire payload per query.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.sparsevec import SparseVec
from repro.errors import ClusterError

__all__ = ["Machine", "StoreKey"]

StoreKey = tuple  # e.g. ("hub", h), ("skel", h), ("leaf", u), ("part", u)


@dataclass
class Machine:
    """One share-nothing worker."""

    machine_id: int
    store: dict[StoreKey, SparseVec] = field(default_factory=dict)
    offline_seconds: float = 0.0
    query_entries: int = 0
    query_seconds: float = 0.0
    wire_version: int = 1

    def put(self, key: StoreKey, vec: SparseVec, *, build_seconds: float = 0.0) -> None:
        """Install a pre-computed vector (accounted to offline time)."""
        if key in self.store:
            raise ClusterError(f"machine {self.machine_id}: duplicate key {key}")
        self.store[key] = vec
        self.offline_seconds += build_seconds

    def replace(
        self, key: StoreKey, vec: SparseVec, *, build_seconds: float = 0.0
    ) -> None:
        """Overwrite an installed vector (a live update re-shipping it).

        The update's build cost is accounted to offline time like the
        original pre-computation — it is work the machine performs off
        the query path.
        """
        if key not in self.store:
            raise ClusterError(
                f"machine {self.machine_id}: cannot replace missing vector {key}"
            )
        self.store[key] = vec
        self.offline_seconds += build_seconds

    def drop(self, key: StoreKey) -> None:
        """Remove a vector the deployment no longer assigns to this machine."""
        if self.store.pop(key, None) is None:
            raise ClusterError(
                f"machine {self.machine_id}: cannot drop missing vector {key}"
            )

    def get(self, key: StoreKey) -> SparseVec:
        try:
            return self.store[key]
        except KeyError:
            raise ClusterError(
                f"machine {self.machine_id}: missing vector {key}"
            ) from None

    def has(self, key: StoreKey) -> bool:
        return key in self.store

    # ------------------------------------------------------------------
    @property
    def stored_bytes(self) -> int:
        """Wire bytes of everything on this machine (the space metric).

        Deliberately meter-free: this is the paper's *storage* metric,
        not query-path traffic, so nothing is charged to a NetworkMeter.
        Sizes follow the deployment's wire version (v2 entries are
        wider), keeping the space metric honest for int64-id clusters.
        """
        return sum(
            v.wire_bytes_at(self.wire_version) for v in self.store.values()
        )

    @property
    def stored_vectors(self) -> int:
        return len(self.store)

    def reset_query_counters(self) -> None:
        self.query_entries = 0
        self.query_seconds = 0.0

    # ------------------------------------------------------------------
    def accumulate(
        self, acc: np.ndarray, key: StoreKey, scale: float = 1.0
    ) -> int:
        """axpy a stored vector into ``acc``; returns entries processed."""
        vec = self.get(key)
        vec.add_into(acc, scale)
        self.query_entries += vec.nnz
        return vec.nnz
