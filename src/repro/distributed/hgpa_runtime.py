"""Distributed HGPA (Section 4.4, Algorithm 1).

Deployment follows the paper's hub-distributed layout: for *every* subgraph
in *every* level, its hub list is split round-robin across the ``s``
machines, and the machine that receives hub ``h`` stores both the adjusted
partial vector ``P_h`` and the entire skeleton column ``s_·(h)`` — so every
hub-weight lookup at query time is machine-local.  Leaf-level PPVs are
likewise spread round-robin by node.  A query is answered with exactly one
vector from each machine to the coordinator (Theorem 4: ``O(n·|V|)``
communication).

The port repair of the centralized query (see
:meth:`repro.core.hgpa.HGPAIndex.query_detailed`) distributes cleanly:
each machine zeroes its *own* level-term contribution at that level's hub
coordinates, and the owner of hub ``ĥ`` contributes the skeleton value
``s_u(ĥ)`` there instead — summing to the exact overwrite.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.hgpa import HGPAIndex
from repro.distributed.cluster import ClusterBase, QueryReport
from repro.distributed.network import DEFAULT_COST_MODEL, CostModel
from repro.errors import ClusterError, QueryError

__all__ = ["DistributedHGPA"]


class DistributedHGPA(ClusterBase):
    """HGPA index deployed over a simulated share-nothing cluster."""

    def __init__(
        self,
        index: HGPAIndex,
        num_machines: int,
        *,
        cost_model: CostModel = DEFAULT_COST_MODEL,
    ):
        super().__init__(num_nodes=index.graph.num_nodes, cost_model=cost_model)
        self.index = index
        self.init_cluster(num_machines)
        self._hub_owner: dict[int, int] = {}
        self._leaf_owner: dict[int, int] = {}
        self._deploy()

    # ------------------------------------------------------------------
    def _deploy(self) -> None:
        index, n = self.index, self.num_machines
        for sg in index.hierarchy.subgraphs:
            for i, h in enumerate(sg.hubs.tolist()):
                machine = self.machines[i % n]
                machine.put(
                    ("hub", h),
                    index.hub_partials[h],
                    build_seconds=index.build_cost.get(("hub", h), 0.0),
                )
                machine.put(
                    ("skel", h),
                    index.skeleton_cols[h],
                    build_seconds=index.build_cost.get(("skel", h), 0.0),
                )
                self._hub_owner[h] = machine.machine_id
        for i, u in enumerate(sorted(index.leaf_ppv)):
            machine = self.machines[i % n]
            machine.put(
                ("leaf", u),
                index.leaf_ppv[u],
                build_seconds=index.build_cost.get(("leaf", u), 0.0),
            )
            self._leaf_owner[u] = machine.machine_id

    # ------------------------------------------------------------------
    def query(self, u: int) -> tuple[np.ndarray, QueryReport]:
        """Distributed PPV of ``u`` plus the paper's per-query metrics."""
        index = self.index
        if not 0 <= u < index.graph.num_nodes:
            raise QueryError(f"query node {u} out of range")
        chain = index.hierarchy.chain(u)
        u_is_hub = index.hierarchy.is_hub(u)
        alpha = index.alpha
        partials: dict[int, np.ndarray] = {}
        walls: dict[int, float] = {}
        for machine in self.machines:
            machine.reset_query_counters()
            t0 = time.perf_counter()
            acc = np.zeros(self.num_nodes)
            for sg in chain:
                if sg.hubs.size == 0:
                    continue
                own_level = u_is_hub and sg is chain[-1]
                if not own_level:
                    snapshot = acc[sg.hubs].copy()
                for h in sg.hubs.tolist():
                    if self._hub_owner[h] != machine.machine_id:
                        continue
                    weight = machine.get(("skel", h)).get(u)
                    if h == u:
                        weight -= alpha
                    if weight != 0.0:
                        machine.accumulate(acc, ("hub", h), weight / alpha)
                if not own_level:
                    # Zero this machine's own level term at the level's hub
                    # coordinates; the owners re-add the skeleton values.
                    acc[sg.hubs] = snapshot
                    for h in sg.hubs.tolist():
                        if self._hub_owner[h] == machine.machine_id:
                            acc[h] += machine.get(("skel", h)).get(u)
            if u_is_hub:
                if self._hub_owner[u] == machine.machine_id:
                    machine.accumulate(acc, ("hub", u))
                    acc[u] += alpha
            elif self._leaf_owner.get(u) == machine.machine_id:
                machine.accumulate(acc, ("leaf", u))
            machine.query_seconds = time.perf_counter() - t0
            walls[machine.machine_id] = machine.query_seconds
            partials[machine.machine_id] = acc
        return self._finish_query(u, partials, walls)

    # ------------------------------------------------------------------
    def validate_deployment(self) -> None:
        """Every hub and leaf vector placed exactly once."""
        hubs = set(self.index.hub_partials)
        if set(self._hub_owner) != hubs:
            raise ClusterError("hub ownership incomplete")
        leaves = set(self.index.leaf_ppv)
        if set(self._leaf_owner) != leaves:
            raise ClusterError("leaf ownership incomplete")
