"""Distributed HGPA (Section 4.4, Algorithm 1).

Deployment follows the paper's hub-distributed layout: for *every* subgraph
in *every* level, its hub list is split round-robin across the ``s``
machines, and the machine that receives hub ``h`` stores both the adjusted
partial vector ``P_h`` and the entire skeleton column ``s_·(h)`` — so every
hub-weight lookup at query time is machine-local.  Leaf-level PPVs are
likewise spread round-robin by node.  A query is answered with exactly one
vector from each machine to the coordinator (Theorem 4: ``O(n·|V|)``
communication).

``_deploy`` pre-computes, per (machine, subgraph) pair, the machine's owned
hubs of that level; their vectors stacked as one CSC/CSR pair are derived
*lazily* on first query of that pair (then cached), so a machine's share of
a level is a skeleton-row slice plus one ``CSC @ weights`` product — no
ownership rescanning per query — and deployments that are never queried
(space/offline measurements) never pay the ~2x resident memory of the
stacked copies.

The port repair of the centralized query (see
:meth:`repro.core.hgpa.HGPAIndex.query_detailed`) distributes cleanly:
each machine zeroes its *own* level-term contribution at that level's hub
coordinates, and the owner of hub ``ĥ`` contributes the skeleton value
``s_u(ĥ)`` there instead — summing to the exact overwrite.
"""

from __future__ import annotations

import time
from collections.abc import Callable

import numpy as np
import scipy.sparse as sp

from repro.core.flat_index import (
    DEFAULT_BATCH,
    csr_row_dense,
    find_sorted,
    run_in_batches,
    validate_batch,
)
from repro.core.hgpa import HGPAIndex, _chain_membership
from repro.core.sparse_ops import sparse_in_batches
from repro.core.updates import (
    UPDATE_WIRE_BYTES,
    EdgeUpdate,
    UpdateReceipt,
    apply_edge_update,
)
from repro.distributed.cluster import ClusterBase, QueryReport
from repro.distributed.machine_tasks import (
    HGPAMachineBuilder,
    HGPAMachineTask,
    hgpa_machine_arrays,
)
from repro.distributed.network import DEFAULT_COST_MODEL, CostModel
from repro.errors import ClusterError, QueryError
from repro.exec.backend import ExecutionBackend
from repro.exec.states import _HierarchyHandle
from repro.kernels.dispatch import KernelsLike, resolve_kernels

__all__ = ["DistributedHGPA"]


class _LiveLevelOps:
    """Serial-backend view of one machine's level ops: ``get`` delegates
    to the runtime's lazy per-(machine, level) stacking, so the task sees
    exactly what the inline loop saw — including ``None`` for levels the
    machine owns no hub of."""

    __slots__ = ("_runtime", "_mid")

    def __init__(self, runtime: "DistributedHGPA", mid: int) -> None:
        self._runtime = runtime
        self._mid = mid

    def get(self, sid: int) -> tuple | None:
        return self._runtime._ops_for(self._mid, sid)


class DistributedHGPA(ClusterBase):
    """HGPA index deployed over a simulated share-nothing cluster."""

    def __init__(
        self,
        index: HGPAIndex,
        num_machines: int,
        *,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        backend: ExecutionBackend | None = None,
        wire_version: int = 1,
        kernels: KernelsLike = None,
    ) -> None:
        super().__init__(
            num_nodes=index.graph.num_nodes,
            cost_model=cost_model,
            wire_version=wire_version,
        )
        self.index = index
        #: Kernel bundle / backend the machine tasks dispatch to; defaults
        #: to the index's own setting so one switch flips the whole stack.
        self.kernels: KernelsLike = (
            index.kernels if kernels is None else kernels
        )
        self.epoch = 0
        self.init_cluster(num_machines)
        self.init_exec(backend)
        self._hub_owner: dict[int, int] = {}
        self._leaf_owner: dict[int, int] = {}
        self._level_owned: dict[tuple[int, int], np.ndarray] = {}
        self._level_ops: dict[tuple[int, int], tuple] = {}
        self._deploy()

    # ------------------------------------------------------------------
    def _deploy(self) -> None:
        index, n = self.index, self.num_machines
        for sg in index.hierarchy.subgraphs:
            for machine in self.machines:
                mid = machine.machine_id
                # Round-robin slice of this level's (sorted) hub set owned
                # by this machine — pre-computed once per deployment.
                owned = sg.hubs[mid::n]
                if owned.size == 0:
                    continue
                for h in owned.tolist():
                    machine.put(
                        ("hub", h),
                        index.hub_partials[h],
                        build_seconds=index.build_cost.get(("hub", h), 0.0),
                    )
                    machine.put(
                        ("skel", h),
                        index.skeleton_cols[h],
                        build_seconds=index.build_cost.get(("skel", h), 0.0),
                    )
                    self._hub_owner[h] = mid
                self._level_owned[(mid, sg.node_id)] = owned
        for i, u in enumerate(sorted(index.leaf_ppv)):
            machine = self.machines[i % n]
            machine.put(
                ("leaf", u),
                index.leaf_ppv[u],
                build_seconds=index.build_cost.get(("leaf", u), 0.0),
            )
            self._leaf_owner[u] = machine.machine_id

    def _ops_for(self, mid: int, sid: int) -> tuple | None:
        """Stacked query ops of one (machine, level) pair, or ``None``
        when the machine owns no hub of that level.

        Built on first use and cached — the lazy counterpart of
        :meth:`DistributedGPA._ops_for`, one cache entry per pair so a
        query only materialises the levels its chain traverses.
        """
        key = (mid, sid)
        owned = self._level_owned.get(key)
        if owned is None:
            return None
        ops = self._level_ops.get(key)
        if ops is None:
            ops = self._stack_ops(owned, machine=self.machines[mid])
            self._level_ops[key] = ops
        return ops

    def owner_map(self) -> np.ndarray:
        """Machine owning each node's own vector (hub or leaf): ``(n,)``
        array — the affinity map a sharded serving layer routes by."""
        return self._owners_to_map(self._leaf_owner, self._hub_owner)

    # ----- execution seam ----------------------------------------------
    def _exec_key(self, mid: int) -> tuple:
        """The backend key of machine ``mid``'s task state, registering
        it (lazily, like the stacked ops) on first use."""
        key = self._exec_keys.get(mid)
        if key is None:
            key = ("hgpa", id(self), self._exec_gen, mid)
            self._backend.register(key, self._machine_builder(mid))
            self._exec_keys[mid] = key
        return key

    def _machine_builder(self, mid: int) -> Callable[[], HGPAMachineTask]:
        """A state builder for machine ``mid``'s batch share.

        Serial backends get a closure whose level-ops mapping delegates
        back to :meth:`_ops_for` — per-(machine, level) laziness is
        preserved exactly, so a batch still only stacks the levels its
        chains traverse.  Process backends must materialise every owned
        level once to publish the shared arena; after that, per-batch
        IPC carries node ids in and result blocks out.
        """
        if self._backend.is_local:

            def build() -> HGPAMachineTask:
                return HGPAMachineTask(
                    self.index.alpha,
                    self.num_nodes,
                    self.index.hierarchy,
                    _LiveLevelOps(self, mid),
                    self.machines[mid].store,
                    kernels=self.kernels,
                )

            return build
        level_ops: dict[int, tuple] = {}
        for omid, sid in sorted(self._level_owned):
            if omid == mid:
                level_ops[sid] = self._ops_for(mid, sid)
        leaf_store = {
            u: vec
            for (kind, u), vec in self.machines[mid].store.items()
            if kind == "leaf"
        }
        descriptor = self._backend.create_arena(
            hgpa_machine_arrays(level_ops, leaf_store)
        )
        self._exec_arenas.append(descriptor)
        return HGPAMachineBuilder(
            descriptor,
            tuple(level_ops),
            _HierarchyHandle.from_hierarchy(self.index.hierarchy),
            self.index.alpha,
            self.num_nodes,
            kernel_backend=resolve_kernels(self.kernels).backend,
        )

    # ------------------------------------------------------------------
    def query(self, u: int) -> tuple[np.ndarray, QueryReport]:
        """Distributed PPV of ``u`` plus the paper's per-query metrics."""
        index = self.index
        if not 0 <= u < index.graph.num_nodes:
            raise QueryError(f"query node {u} out of range")
        chain = index.hierarchy.chain(u)
        u_is_hub = index.hierarchy.is_hub(u)
        alpha = index.alpha
        partials: dict[int, np.ndarray] = {}
        walls: dict[int, float] = {}
        for machine in self.machines:
            machine.reset_query_counters()
            mid = machine.machine_id
            # Materialise the chain's levels outside the timed region: the
            # one-time stacked builds must not be charged to this query.
            level_ops = {sg.node_id: self._ops_for(mid, sg.node_id) for sg in chain}
            t0 = time.perf_counter()
            acc = np.zeros(self.num_nodes)
            for sg in chain:
                ops = level_ops[sg.node_id]
                if ops is None:
                    continue
                owned, part_csc, skel_csr, nnz_per_hub = ops
                raw = csr_row_dense(skel_csr, u)
                weights = raw
                own_level = u_is_hub and sg is chain[-1]
                if own_level:
                    hits, pos = find_sorted(owned, np.asarray([u]))
                    if hits.size:
                        weights = raw.copy()
                        weights[pos[0]] -= alpha
                contrib = part_csc @ (weights / alpha)
                machine.query_entries += int(nnz_per_hub[weights != 0.0].sum())
                if not own_level:
                    # Zero this machine's level term at the level's hub
                    # coordinates; the hubs' owners re-add the skeleton
                    # values (the distributed port repair).
                    contrib[sg.hubs] = 0.0
                    contrib[owned] = raw
                acc += contrib
            if u_is_hub:
                if self._hub_owner[u] == mid:
                    machine.accumulate(acc, ("hub", u))
                    acc[u] += alpha
            elif self._leaf_owner.get(u) == mid:
                machine.accumulate(acc, ("leaf", u))
            machine.query_seconds = time.perf_counter() - t0
            walls[mid] = machine.query_seconds
            partials[mid] = acc
        return self._finish_query(u, partials, walls)

    def query_many(
        self, nodes: np.ndarray, *, collect_stats: bool = True
    ) -> tuple[np.ndarray, list[QueryReport]]:
        """Batched distributed PPVs: one sparse matmul per machine level.

        Queries are grouped by the subgraphs their chains traverse (as in
        :meth:`repro.core.hgpa.HGPAIndex.query_many`); each machine then
        evaluates its owned share of every group in one ``CSC @ weights``
        product (see
        :class:`~repro.distributed.machine_tasks.HGPAMachineTask` — the
        shares dispatch through the execution backend, in-process or as
        real worker processes).  Serialization, aggregation and metrics
        run per query —
        the wire protocol is unchanged.  Returns a dense
        ``(len(nodes), n)`` matrix plus the per-query reports.
        ``collect_stats=False`` skips the per-query entry bookkeeping and
        report construction (metering still runs) and returns ``[]``.
        """
        index = self.index
        nodes = validate_batch(nodes, self.num_nodes)
        if nodes.size == 0:
            return np.zeros((0, self.num_nodes)), []
        if nodes.size > DEFAULT_BATCH:
            # Bound the per-machine dense (n, batch) intermediates.
            return run_in_batches(
                lambda chunk: self.query_many(
                    chunk, collect_stats=collect_stats
                ),
                nodes,
            )
        order, _, _, _ = _chain_membership(index.hierarchy, nodes)
        inv_order = np.empty_like(order)
        inv_order[order] = np.arange(order.size)
        machine_accs: dict[int, np.ndarray] = {}
        entries = np.zeros((nodes.size, self.num_machines), dtype=np.int64)
        walls: dict[int, float] = {}
        futures = {}
        for machine in self.machines:
            machine.reset_query_counters()
            mid = machine.machine_id
            futures[mid] = self._backend.submit(
                self._exec_key(mid), "dense", nodes, collect_stats
            )
        for machine in self.machines:
            mid = machine.machine_id
            acc, entry_col, wall = futures[mid].result()
            machine.query_seconds = wall
            walls[mid] = wall / nodes.size
            if collect_stats:
                entries[:, mid] = entry_col
            machine_accs[mid] = acc
        out = np.zeros((nodes.size, self.num_nodes))
        reports: list[QueryReport] = []
        for k, u in enumerate(nodes.tolist()):
            result, report = self._finish_query(
                u,
                {
                    mid: machine_accs[mid][:, inv_order[k]]
                    for mid in machine_accs
                },
                walls,
                entries_by_machine={
                    mid: int(entries[k, mid]) for mid in machine_accs
                },
                collect_stats=collect_stats,
            )
            out[k] = result
            if collect_stats:
                reports.append(report)
        return out, reports

    def query_many_sparse(
        self, nodes: np.ndarray, *, collect_stats: bool = True
    ) -> tuple[sp.csr_matrix, list[QueryReport]]:
        """Batched distributed PPVs as a CSR ``(len(nodes), n)`` matrix.

        The sparse twin of :meth:`query_many`: each machine accumulates
        its owned share of every chain group as sparse CSC blocks (the
        distributed port repair becomes a structural zero-out plus a
        scattered skeleton-value add, exactly as in
        :meth:`repro.core.hgpa.HGPAIndex.query_many_sparse`), per-query
        columns ship sparse over the metered wire (actual nnz charged),
        and the coordinator merges them without a dense accumulator.
        Machine shares dispatch through the execution backend like the
        dense path's.  Agrees with the dense path exactly.
        """
        index = self.index
        nodes = validate_batch(nodes, self.num_nodes)
        if nodes.size == 0:
            return sp.csr_matrix((0, self.num_nodes)), []
        if nodes.size > DEFAULT_BATCH:
            # Bound the per-machine sparse blocks like the dense path.
            return sparse_in_batches(
                lambda chunk: self.query_many_sparse(
                    chunk, collect_stats=collect_stats
                ),
                nodes,
                DEFAULT_BATCH,
            )
        order, _, _, _ = _chain_membership(index.hierarchy, nodes)
        inv_order = np.empty_like(order)
        inv_order[order] = np.arange(order.size)
        machine_accs: dict[int, sp.csc_matrix] = {}
        entries = np.zeros((nodes.size, self.num_machines), dtype=np.int64)
        walls: dict[int, float] = {}
        futures = {}
        for machine in self.machines:
            machine.reset_query_counters()
            mid = machine.machine_id
            futures[mid] = self._backend.submit(
                self._exec_key(mid), "sparse", nodes, collect_stats
            )
        for machine in self.machines:
            mid = machine.machine_id
            acc, entry_col, wall = futures[mid].result()
            machine.query_seconds = wall
            walls[mid] = wall / nodes.size
            if collect_stats:
                entries[:, mid] = entry_col
            machine_accs[mid] = acc
        return self._collect_sparse_batch(
            nodes,
            machine_accs,
            lambda k: int(inv_order[k]),
            walls,
            entries,
            collect_stats,
        )

    # ------------------------------------------------------------------
    def apply_update(self, update: EdgeUpdate) -> UpdateReceipt:
        """Apply one edge update, re-deploying only affected machines.

        The index is updated via the hierarchical chain rebuild; every
        rebuilt vector ships to the machine already owning it (metered
        coordinator→machine), dropped vectors (a promoted node's old
        role) are removed from their owners, and only the stacked ops of
        the affected (machine, level) pairs are invalidated — untouched
        levels keep serving from their cached CSC/CSR.  A promoted hub is
        assigned to the machine owning the fewest hubs (deterministic).
        Bumps the deployment epoch when anything changed.
        """
        new_index, receipt = apply_edge_update(self.index, update)
        if not receipt.changed:
            return receipt.at_epoch(self.epoch)
        meter = self.coordinator.meter
        stats = receipt.stats
        touched: set[int] = set()
        for kind, node in sorted(stats.dropped_keys):
            owners = self._hub_owner if kind in ("hub", "skel") else self._leaf_owner
            mid = owners[node]
            self.machines[mid].drop((kind, node))
            touched.add(mid)
        for kind, node in sorted(stats.dropped_keys):
            if kind == "leaf":
                self._leaf_owner.pop(node, None)
            elif kind == "hub":
                self._hub_owner.pop(node, None)
        for kind, node in sorted(stats.rebuilt_keys):
            if kind in ("hub", "skel"):
                mid = self._hub_owner.get(node)
                if mid is None:
                    mid = min(
                        range(self.num_machines),
                        key=lambda m: (
                            sum(
                                owned.size
                                for (omid, _), owned in self._level_owned.items()
                                if omid == m
                            ),
                            m,
                        ),
                    )
                    self._hub_owner[node] = mid
                vec = (
                    new_index.hub_partials
                    if kind == "hub"
                    else new_index.skeleton_cols
                )[node]
            else:
                mid = self._leaf_owner.get(node)
                if mid is None:  # pragma: no cover - updates never add nodes
                    raise ClusterError(f"no owner for rebuilt leaf vector {node}")
                vec = new_index.leaf_ppv[node]
            machine = self.machines[mid]
            key = (kind, node)
            cost = new_index.build_cost.get(key, 0.0)
            if machine.has(key):
                machine.replace(key, vec, build_seconds=cost)
            else:
                machine.put(key, vec, build_seconds=cost)
            meter.record("coordinator", f"machine-{mid}", vec.wire_bytes)
            touched.add(mid)
        for mid in sorted(touched):
            meter.record("coordinator", f"machine-{mid}", UPDATE_WIRE_BYTES)
        # Re-derive ownership slices of the rebuilt levels from the hub
        # owners (surviving hubs keep their machines; a promoted hub joins
        # its assigned machine's slice) and invalidate only those levels'
        # stacked ops.
        for sid in stats.affected_subgraphs:
            sg = new_index.hierarchy.subgraphs[sid]
            owner_of = np.asarray(
                [self._hub_owner.get(int(h), -1) for h in sg.hubs.tolist()],
                dtype=np.int64,
            )
            for machine in self.machines:
                mid = machine.machine_id
                self._level_ops.pop((mid, sid), None)
                owned = sg.hubs[owner_of == mid]
                if owned.size:
                    self._level_owned[(mid, sid)] = owned
                else:
                    self._level_owned.pop((mid, sid), None)
        self.index = new_index
        self.epoch += 1
        # Drop registered machine states (and their shared arenas): the
        # next batch re-registers against the updated deployment.
        self._reset_exec()
        return receipt.at_epoch(self.epoch)

    # ------------------------------------------------------------------
    def validate_deployment(self) -> None:
        """Every hub and leaf vector placed exactly once."""
        hubs = set(self.index.hub_partials)
        if set(self._hub_owner) != hubs:
            raise ClusterError("hub ownership incomplete")
        leaves = set(self.index.leaf_ppv)
        if set(self._leaf_owner) != leaves:
            raise ClusterError("leaf ownership incomplete")
