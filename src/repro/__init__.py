"""repro — Distributed Algorithms on Exact Personalized PageRank.

A from-scratch Python reproduction of Guo, Cao, Cong, Lu and Lin (SIGMOD
2017): the GPA and HGPA algorithms for computing *exact* Personalized
PageRank vectors on a coordinator-based share-nothing cluster, together
with every substrate the paper's evaluation uses — a METIS-like multilevel
partitioner, hub selection by minimum vertex cover, a simulated cluster
with byte-accounted communication, Pregel+/Blogel-style engine baselines,
the FastPPV approximate baseline, and accuracy metrics.

Quickstart::

    from repro import datasets
    from repro.core import build_hgpa_index, power_iteration_ppv

    graph = datasets.load("email")
    index = build_hgpa_index(graph, max_levels=5, tol=1e-6)
    ppv = index.query(42)                      # exact PPV of node 42
    ref = power_iteration_ppv(graph, 42, tol=1e-6)
"""

from repro import (
    approx,
    core,
    datasets,
    distributed,
    engines,
    graph,
    metrics,
    partition,
    serving,
    sharding,
)
from repro.errors import (
    ClusterError,
    ConvergenceError,
    GraphError,
    IndexBuildError,
    PartitionError,
    QueryError,
    ReproError,
    SerializationError,
    ServingError,
    ShardingError,
)

__version__ = "1.0.0"

__all__ = [
    "graph",
    "partition",
    "core",
    "distributed",
    "engines",
    "approx",
    "metrics",
    "datasets",
    "serving",
    "sharding",
    "ReproError",
    "GraphError",
    "PartitionError",
    "IndexBuildError",
    "QueryError",
    "ConvergenceError",
    "ClusterError",
    "SerializationError",
    "ServingError",
    "ShardingError",
    "__version__",
]
