"""Project-specific static analysis: machine-checked exactness invariants.

Every guarantee this reproduction makes — bitwise-equal incremental
rebuilds, exact sparse==dense query paths, metered wire bytes,
deterministic replay under ``SimulatedClock`` — depends on coding
conventions that runtime tests only probe for particular seeds.  This
package checks them *statically*, on every file, before a
hash-seed-dependent iteration order or an unmetered send ever reaches
CI:

- **RPR001** nondeterministic iteration / clock / unseeded randomness in
  the exactness-critical packages (``core``, ``distributed``,
  ``sharding``, ``exec``);
- **RPR002** wire-payload construction without a
  :class:`~repro.distributed.network.NetworkMeter` charge in the same
  function (``distributed``, ``sharding``);
- **RPR003** mutation of shared read-only buffers (``SparseVec.idx`` /
  ``.val``, stacked CSC/CSR ``data``/``indices``/``indptr``) outside
  their owning constructors;
- **RPR004** float accumulation over unordered containers in ``core``
  (summation order must not depend on the hash seed);
- **RPR005** bare/blanket ``except`` and builtin-exception raises on
  public API boundaries (library errors must derive from
  :class:`~repro.errors.ReproError`).

Run it as ``python -m repro.analysis src``; a committed per-file
baseline (``analysis-baseline.json``) lets the tool gate CI while known
findings are burned down incrementally.
"""

from __future__ import annotations

from repro.analysis.baseline import Baseline
from repro.analysis.engine import AnalysisResult, analyze_paths, analyze_source
from repro.analysis.findings import Finding
from repro.analysis.rules import ALL_RULES, Rule, rules_by_id

__all__ = [
    "ALL_RULES",
    "AnalysisResult",
    "Baseline",
    "Finding",
    "Rule",
    "analyze_paths",
    "analyze_source",
    "rules_by_id",
]
