"""The unit of linter output: one finding at one source location."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class Finding:
    """One rule violation.

    ``snippet`` is the stripped source line — it is what baseline
    matching keys on (together with ``path`` and ``rule``), so a finding
    stays suppressed when unrelated edits shift its line number but
    resurfaces the moment the offending line itself changes.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    hint: str
    snippet: str

    @property
    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    @property
    def baseline_key(self) -> tuple[str, str, str]:
        return (self.path, self.rule, self.snippet)

    def to_json(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
            "snippet": self.snippet,
        }

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}\n"
            f"    {self.snippet}\n"
            f"    hint: {self.hint}"
        )
