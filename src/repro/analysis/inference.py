"""Lightweight intra-function type shapes shared by the determinism rules.

The rules only ever need to answer one question precisely enough to be
useful: *does this expression iterate in hash order?*  That means
telling ``set``-typed values apart from everything else — a set's
iteration order depends on ``PYTHONHASHSEED``, while lists, arrays and
(insertion-ordered) dicts iterate deterministically when built
deterministically.  A fixpoint over a function's assignments is plenty:
names bound to set literals, ``set()``/``frozenset()`` calls, set
operators and set-returning methods are set-typed; so are parameters
and targets annotated ``set[...]``/``frozenset[...]``/``AbstractSet``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

SET_ANNOTATIONS = frozenset(
    {"set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet"}
)
_SET_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)
_SET_BINOPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)


def annotation_is_set(node: ast.expr | None) -> bool:
    """True for ``set``/``frozenset``/``Set[...]``-shaped annotations."""
    if node is None:
        return False
    if isinstance(node, ast.Subscript):
        return annotation_is_set(node.value)
    if isinstance(node, ast.Name):
        return node.id in SET_ANNOTATIONS
    if isinstance(node, ast.Attribute):  # typing.Set, typing.AbstractSet
        return node.attr in SET_ANNOTATIONS
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            parsed = ast.parse(node.value, mode="eval")
        except SyntaxError:
            return False
        return annotation_is_set(parsed.body)
    return False


class SetTracker:
    """Set-typed names of one scope (a function body, or a module)."""

    def __init__(self, names: frozenset[str]) -> None:
        self.names = names

    def is_set(self, node: ast.expr) -> bool:
        """Is ``node`` a set-typed expression under this scope's names?"""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.names
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return True
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _SET_METHODS
                and self.is_set(func.value)
            ):
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_BINOPS):
            return self.is_set(node.left) or self.is_set(node.right)
        if isinstance(node, ast.IfExp):
            return self.is_set(node.body) or self.is_set(node.orelse)
        return False


def _assignment_pairs(
    scope: ast.AST,
) -> Iterator[tuple[str, ast.expr | None, ast.expr | None]]:
    """Yield ``(name, value, annotation)`` for every name binding in
    ``scope``, *excluding* bindings inside nested function/class defs
    (those are their own scopes)."""
    for node in iter_scope_nodes(scope):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    yield target.id, node.value, None
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name):
                yield node.target.id, node.value, node.annotation
        elif isinstance(node, ast.AugAssign):
            if isinstance(node.target, ast.Name):
                yield node.target.id, node.value, None


def iter_scope_nodes(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk ``scope`` without descending into nested function/class defs.

    The scope node itself is not yielded (so a function's own body is
    walked even though the function is a def).
    """
    stack: list[ast.AST] = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def set_tracker_for(scope: ast.AST) -> SetTracker:
    """Infer the set-typed names of one scope by fixpoint.

    ``scope`` is a function def or a module.  Parameters annotated as
    sets seed the fixpoint; each round re-evaluates the scope's
    assignments against the names known so far, so chains like
    ``a = set(); b = a | other`` converge in a couple of rounds.
    """
    names: set[str] = set()
    if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
        args = scope.args
        for arg in [
            *args.posonlyargs,
            *args.args,
            *args.kwonlyargs,
        ]:
            if annotation_is_set(arg.annotation):
                names.add(arg.arg)
    pairs = list(_assignment_pairs(scope))
    for _ in range(len(pairs) + 1):
        tracker = SetTracker(frozenset(names))
        grew = False
        for name, value, annotation in pairs:
            if name in names:
                continue
            if annotation_is_set(annotation) or (
                value is not None and tracker.is_set(value)
            ):
                names.add(name)
                grew = True
        if not grew:
            break
    return SetTracker(frozenset(names))


def iteration_sites(scope: ast.AST) -> Iterator[tuple[ast.expr, ast.AST]]:
    """Order-sensitive iteration sites of one scope.

    Yields ``(iterable_expr, report_node)`` for ``for`` loops,
    comprehension generators, and ``list()``/``tuple()``/``enumerate()``
    calls — the places where an unordered container's hash order leaks
    into program output.  ``sorted(...)``/``min``/``max``/``len`` are
    order-insensitive and never yielded.
    """
    for node in iter_scope_nodes(scope):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node.iter, node
        elif isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            for gen in node.generators:
                yield gen.iter, node
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Name)
                and func.id in ("list", "tuple", "enumerate")
                and node.args
            ):
                yield node.args[0], node


def dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` as ``"a.b.c"``, or ``None`` for non-name chains."""
    parts: list[str] = []
    cur: ast.expr = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return None
    parts.append(cur.id)
    return ".".join(reversed(parts))


def root_name(node: ast.expr) -> str | None:
    """The base ``Name`` of an attribute/subscript chain, if any."""
    cur: ast.expr = node
    while isinstance(cur, (ast.Attribute, ast.Subscript)):
        cur = cur.value
    if isinstance(cur, ast.Name):
        return cur.id
    return None
