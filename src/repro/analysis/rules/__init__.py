"""Rule registry: every invariant check the analyzer knows about."""

from __future__ import annotations

from repro.analysis.rules.accumulation import FloatAccumulationOrderRule
from repro.analysis.rules.base import ModuleContext, Rule
from repro.analysis.rules.boundaries import BoundaryErrorsRule
from repro.analysis.rules.buffers import SharedBufferMutationRule
from repro.analysis.rules.determinism import NondeterministicIterationRule
from repro.analysis.rules.metering import UnmeteredCommunicationRule
from repro.analysis.rules.retries import RetryDisciplineRule
from repro.errors import AnalysisError

__all__ = [
    "ALL_RULES",
    "ModuleContext",
    "Rule",
    "rules_by_id",
]

ALL_RULES: tuple[Rule, ...] = (
    NondeterministicIterationRule(),
    UnmeteredCommunicationRule(),
    SharedBufferMutationRule(),
    FloatAccumulationOrderRule(),
    BoundaryErrorsRule(),
    RetryDisciplineRule(),
)


def rules_by_id(ids: str | None) -> tuple[Rule, ...]:
    """Resolve a comma-separated id list (``"RPR001,RPR004"``) to rules.

    ``None`` or an empty string selects every rule; unknown ids raise
    :class:`~repro.errors.AnalysisError` naming the known set.
    """
    if not ids:
        return ALL_RULES
    wanted = [part.strip().upper() for part in ids.split(",") if part.strip()]
    known = {rule.rule_id: rule for rule in ALL_RULES}
    unknown = [rid for rid in wanted if rid not in known]
    if unknown:
        raise AnalysisError(
            f"unknown rule id(s) {', '.join(unknown)}; "
            f"known: {', '.join(sorted(known))}"
        )
    return tuple(known[rid] for rid in wanted)
