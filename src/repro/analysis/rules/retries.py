"""RPR006 — retry/timeout discipline in the fault-handling tier.

The resilience contract (:mod:`repro.sharding.resilience`) has two
load-bearing rules that are easy to erode silently:

- a *bounded* retry loop that swallows the failure and continues must
  re-raise the last error when the attempts run out — otherwise
  exhaustion falls through the loop and the caller sees a partial or
  missing answer with no exception (the chaos suite's "silently wrong"
  failure mode).  ``while True:`` loops are exempt: they cannot exhaust,
  so the swallowed error is always retried.
- backoff/hedge waits in ``faults/``/``sharding/`` must be *charged* to
  the injected clock (:func:`~repro.sharding.resilience.charge_wait`),
  never slept: ``time.sleep`` both blocks the serving thread and
  desynchronises the wait from the :class:`~repro.serving.service.
  SimulatedClock` that fault schedules, timed recoveries and breaker
  cool-offs replay against.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.findings import Finding
from repro.analysis.inference import dotted_name, iter_scope_nodes
from repro.analysis.rules.base import ModuleContext, Rule

__all__ = ["RetryDisciplineRule"]

_SCOPE_DEFS = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


def _is_infinite(loop: ast.For | ast.While) -> bool:
    """``while True:`` (or any constant-true test) cannot exhaust."""
    return (
        isinstance(loop, ast.While)
        and isinstance(loop.test, ast.Constant)
        and bool(loop.test.value)
    )


def _contains_raise(nodes: list[ast.stmt]) -> bool:
    for stmt in nodes:
        for node in ast.walk(stmt):
            if isinstance(node, _SCOPE_DEFS):
                continue
            if isinstance(node, ast.Raise):
                return True
    return False


def _swallowing_handlers(loop: ast.For | ast.While) -> Iterator[ast.ExceptHandler]:
    """Handlers directly under ``loop`` that eat the error and continue.

    A handler "swallows" when its body ends in ``continue`` (retry) and
    never raises — a handler that conditionally re-raises handles
    exhaustion itself and is compliant.  Nested loops and function defs
    are not descended into: their handlers target a different loop and
    are audited on their own.
    """

    def scan(body: list[ast.stmt]) -> Iterator[ast.ExceptHandler]:
        for stmt in body:
            if isinstance(stmt, (ast.For, ast.While, *_SCOPE_DEFS)):
                continue
            if isinstance(stmt, ast.Try):
                for handler in stmt.handlers:
                    if (
                        handler.body
                        and isinstance(handler.body[-1], ast.Continue)
                        and not _contains_raise(handler.body)
                    ):
                        yield handler
                yield from scan(stmt.body)
                yield from scan(stmt.orelse)
                yield from scan(stmt.finalbody)
            else:
                for field in ("body", "orelse"):
                    yield from scan(getattr(stmt, field, []) or [])

    yield from scan(loop.body)


class RetryDisciplineRule(Rule):
    rule_id = "RPR006"
    title = "retry/timeout discipline"
    hint = (
        "bounded retry loops must re-raise the last error after the "
        "loop (or in its else:) when attempts run out; charge waits to "
        "the injected clock via charge_wait(clock, seconds), never "
        "time.sleep"
    )
    segments = ("faults", "sharding")

    def check(self, ctx: ModuleContext) -> list[Finding]:
        findings: list[Finding] = []
        sleep_is_time = self._time_sleep_imported(ctx.tree)
        for scope, _chain in ctx.scopes():
            # scopes() yields the module and every (nested) function
            # exactly once, and neither walker below descends into
            # nested defs — each sleep/loop is audited in one scope.
            findings.extend(self._check_sleeps(ctx, scope, sleep_is_time))
            findings.extend(self._check_blocks(ctx, self._scope_body(scope)))
        return findings

    @staticmethod
    def _time_sleep_imported(tree: ast.Module) -> bool:
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                if any(alias.name == "sleep" for alias in node.names):
                    return True
        return False

    @staticmethod
    def _scope_body(scope: ast.AST) -> list[ast.stmt]:
        return list(getattr(scope, "body", []))

    def _check_sleeps(
        self, ctx: ModuleContext, scope: ast.AST, sleep_is_time: bool
    ) -> list[Finding]:
        findings: list[Finding] = []
        for node in iter_scope_nodes(scope):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name == "time.sleep" or (sleep_is_time and name == "sleep"):
                findings.append(
                    ctx.finding(
                        self,
                        node,
                        "time.sleep in the fault-handling tier blocks the "
                        "serving thread and bypasses the injected clock",
                        hint="charge the wait instead: charge_wait(clock, "
                        "seconds) advances a SimulatedClock so fault "
                        "schedules and breaker cool-offs replay exactly",
                    )
                )
        return findings

    def _check_blocks(
        self, ctx: ModuleContext, body: list[ast.stmt]
    ) -> list[Finding]:
        """Audit one statement list, recursing into compound statements
        (but not nested scopes, which are audited separately)."""
        findings: list[Finding] = []
        for i, stmt in enumerate(body):
            if isinstance(stmt, _SCOPE_DEFS):
                continue
            if isinstance(stmt, (ast.For, ast.While)):
                findings.extend(self._check_loop(ctx, stmt, body[i + 1 :]))
            for field in ("body", "orelse", "finalbody"):
                findings.extend(
                    self._check_blocks(ctx, list(getattr(stmt, field, []) or []))
                )
            for handler in getattr(stmt, "handlers", []) or []:
                findings.extend(self._check_blocks(ctx, handler.body))
        return findings

    def _check_loop(
        self, ctx: ModuleContext, loop: ast.For | ast.While, tail: list[ast.stmt]
    ) -> list[Finding]:
        handlers = list(_swallowing_handlers(loop))
        if not handlers or _is_infinite(loop):
            return []
        if _contains_raise(loop.orelse) or _contains_raise(tail):
            return []  # exhaustion is surfaced after the loop
        caught = ", ".join(
            ast.unparse(h.type) if h.type is not None else "everything"
            for h in handlers
        )
        return [
            ctx.finding(
                self,
                loop,
                f"bounded retry loop swallows {caught} and falls through "
                "on exhaustion without re-raising the last error",
            )
        ]
