"""RPR005 — exception discipline on API boundaries.

The library's contract (:mod:`repro.errors`) is that every intentional
failure derives from :class:`~repro.errors.ReproError`, so callers catch
library errors with one clause while programming errors propagate.
Three patterns break it: a bare ``except:`` (swallows KeyboardInterrupt
and masks real bugs), a blanket ``except Exception: pass`` (silently
eats failures — allowed only in ``__del__``/``__exit__`` teardown), and
raising a builtin exception (``ValueError``/``KeyError``/...) from a
*public* function, which forces callers to guess which builtin each
engine throws.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding
from repro.analysis.rules.base import ModuleContext, Rule

__all__ = ["BoundaryErrorsRule"]

_BUILTIN_RAISES = frozenset(
    {
        "ValueError",
        "KeyError",
        "RuntimeError",
        "IndexError",
        "Exception",
        "AssertionError",
        "ArithmeticError",
        "LookupError",
    }
)
_BLANKET = frozenset({"Exception", "BaseException"})
_TEARDOWN_FUNCS = frozenset({"__del__", "__exit__", "__aexit__"})


def _exception_name(node: ast.expr | None) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Call):
        return _exception_name(node.func)
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


class BoundaryErrorsRule(Rule):
    rule_id = "RPR005"
    title = "exception discipline on API boundaries"
    hint = (
        "raise a ReproError subclass (GraphError, QueryError, "
        "ClusterError, ...) and catch specific exceptions — callers rely "
        "on `except ReproError` covering every library failure"
    )
    segments = ()  # the error contract is library-wide

    def check(self, ctx: ModuleContext) -> list[Finding]:
        findings: list[Finding] = []
        for scope, chain in ctx.scopes():
            if not isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if any(
                isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef))
                for anc in chain
            ):
                continue  # audited as part of the enclosing function
            public = not scope.name.startswith("_")
            for node in ast.walk(scope):
                if isinstance(node, ast.ExceptHandler):
                    findings.extend(self._check_handler(ctx, scope, node))
                elif isinstance(node, ast.Raise) and public:
                    name = _exception_name(node.exc)
                    if name in _BUILTIN_RAISES:
                        findings.append(
                            ctx.finding(
                                self,
                                node,
                                f"public API '{scope.name}' raises builtin "
                                f"{name} instead of a ReproError subclass",
                            )
                        )
        return findings

    def _check_handler(
        self,
        ctx: ModuleContext,
        scope: ast.FunctionDef | ast.AsyncFunctionDef,
        handler: ast.ExceptHandler,
    ) -> list[Finding]:
        if handler.type is None:
            return [
                ctx.finding(
                    self,
                    handler,
                    "bare except: catches KeyboardInterrupt/SystemExit and "
                    "masks real failures",
                    hint="catch the specific exception, or ReproError for "
                    "any library failure",
                )
            ]
        names = set()
        if isinstance(handler.type, ast.Tuple):
            for elt in handler.type.elts:
                names.add(_exception_name(elt))
        else:
            names.add(_exception_name(handler.type))
        if names & _BLANKET and self._swallows(handler):
            if scope.name in _TEARDOWN_FUNCS:
                return []  # best-effort teardown may ignore failures
            return [
                ctx.finding(
                    self,
                    handler,
                    f"blanket except {'/'.join(sorted(n for n in names if n))} "
                    "silently swallows failures",
                    hint="narrow the exception type, or re-raise / surface "
                    "the failure (teardown dunders are exempt)",
                )
            ]
        return []

    @staticmethod
    def _swallows(handler: ast.ExceptHandler) -> bool:
        """True when the handler body neither raises nor does anything."""
        for stmt in handler.body:
            if not isinstance(stmt, (ast.Pass, ast.Continue, ast.Break)):
                if isinstance(stmt, ast.Expr) and isinstance(
                    stmt.value, ast.Constant
                ):
                    continue  # docstring / ellipsis
                return False
        return True
