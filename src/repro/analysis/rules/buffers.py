"""RPR003 — mutation of shared read-only buffers.

:class:`~repro.core.sparsevec.SparseVec` arrays, stacked CSC/CSR query
ops, cache entries and shared-memory arena views all share buffers by
design — ``scaled``/``pruned`` vectors alias their parents, machine
stores are rebound as views into stacked matrices, and worker processes
attach the same segment read-only.  One in-place write through any of
those aliases corrupts every other holder, bitwise-exactness first.
The rule flags writes to the well-known buffer fields (``idx``/``val``
on vectors, ``data``/``indices``/``indptr`` on scipy matrices) through
objects the function does not own, and any re-enabling of numpy's
``writeable`` flag.

Ownership is syntactic: a receiver whose base name was assigned in the
same function (a freshly built matrix, a ``.copy()``) is considered
owned and may be mutated; ``self`` is owned only inside ``__init__``.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding
from repro.analysis.inference import iter_scope_nodes, root_name
from repro.analysis.rules.base import ModuleContext, Rule

__all__ = ["SharedBufferMutationRule"]

_VEC_FIELDS = frozenset({"idx", "val"})
_MATRIX_FIELDS = frozenset({"data", "indices", "indptr"})
_BUFFER_FIELDS = _VEC_FIELDS | _MATRIX_FIELDS


def _owned_names(scope: ast.AST) -> frozenset[str]:
    names: set[str] = set()
    for node in iter_scope_nodes(scope):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            names.add(node.target.id)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if isinstance(item.optional_vars, ast.Name):
                    names.add(item.optional_vars.id)
    return frozenset(names)


class SharedBufferMutationRule(Rule):
    rule_id = "RPR003"
    title = "shared-buffer mutation"
    hint = (
        "SparseVec/stacked-ops buffers are shared read-only views; copy "
        "before mutating (arr = arr.copy()) or build the change in the "
        "owning constructor"
    )
    segments = ()  # buffers are shared across every package

    def check(self, ctx: ModuleContext) -> list[Finding]:
        findings: list[Finding] = []
        for scope, chain in ctx.scopes():
            if not isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            in_init = scope.name == "__init__" and any(
                isinstance(anc, ast.ClassDef) for anc in chain
            )
            owned = _owned_names(scope)
            for node in iter_scope_nodes(scope):
                if isinstance(node, ast.Assign):
                    for tgt in node.targets:
                        findings.extend(
                            self._check_target(ctx, tgt, owned, in_init, node)
                        )
                elif isinstance(node, ast.AugAssign):
                    findings.extend(
                        self._check_target(ctx, node.target, owned, in_init, node)
                    )
        return findings

    def _check_target(
        self,
        ctx: ModuleContext,
        target: ast.expr,
        owned: frozenset[str],
        in_init: bool,
        stmt: ast.AST,
    ) -> list[Finding]:
        buffer_attr = self._buffer_attr(target)
        if buffer_attr is None:
            return []
        attr_node, field_name = buffer_attr
        if field_name == "writeable":
            value = stmt.value if isinstance(stmt, ast.Assign) else None
            if not (isinstance(value, ast.Constant) and value.value is True):
                return []  # freezing (= False) is always fine
            return [
                ctx.finding(
                    self,
                    stmt,
                    "re-enables writes on a read-only buffer "
                    "(.flags.writeable = True)",
                    hint="never unfreeze a shared array — copy it instead",
                )
            ]
        base = root_name(attr_node)
        if base == "self":
            if in_init:
                return []
        elif base is not None and base in owned:
            return []
        return [
            ctx.finding(
                self,
                stmt,
                f"writes .{field_name} of an object this function does not "
                "own — the buffer may be a shared read-only view",
            )
        ]

    @staticmethod
    def _buffer_attr(target: ast.expr) -> tuple[ast.expr, str] | None:
        """Classify an assignment target as a buffer write.

        Returns ``(receiver_chain, field)`` for ``X.val = ...``,
        ``X.data[...] = ...`` and ``X.flags.writeable = True``-shaped
        targets, else ``None``.
        """
        if isinstance(target, ast.Attribute):
            if target.attr == "writeable" and isinstance(
                target.value, ast.Attribute
            ):
                if target.value.attr == "flags":
                    return target, "writeable"
            if target.attr in _BUFFER_FIELDS:
                return target, target.attr
            return None
        if isinstance(target, ast.Subscript) and isinstance(
            target.value, ast.Attribute
        ):
            if target.value.attr in _BUFFER_FIELDS:
                return target.value, target.value.attr
        return None
