"""RPR001 — nondeterminism in the exactness-critical packages.

The repo's headline contract is determinism: the same build on the same
graph produces the same bytes regardless of ``PYTHONHASHSEED``, wall
clock, or process layout (bitwise-equal incremental rebuilds, replayable
``SimulatedClock`` schedules, bitwise-equal ``ProcessPoolBackend``
answers).  Three things break it silently:

- iterating a ``set`` (hash order) anywhere order can leak into output;
- map iteration at the process boundary (``exec/``), where registration
  order decides worker assignment and answer layout;
- wall-clock reads and unseeded randomness in library code.

PR 5's phantom-``dropped_keys`` crash — reproducible on only ~4% of
hash seeds — is the canonical instance of the first class.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding
from repro.analysis.inference import (
    dotted_name,
    iter_scope_nodes,
    iteration_sites,
    set_tracker_for,
)
from repro.analysis.rules.base import ModuleContext, Rule

__all__ = ["NondeterministicIterationRule"]

_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.date.today",
    }
)
_MAP_METHODS = frozenset({"keys", "values", "items"})


class NondeterministicIterationRule(Rule):
    rule_id = "RPR001"
    title = "nondeterminism in core paths"
    hint = (
        "iterate sorted(...) over sets; seed randomness "
        "(np.random.default_rng(seed)); avoid wall-clock reads outside "
        "bench/ — determinism is the repo's exactness contract"
    )
    segments = ("core", "distributed", "sharding", "exec", "kernels")

    def check(self, ctx: ModuleContext) -> list[Finding]:
        findings: list[Finding] = []
        at_process_boundary = ctx.has_segment("exec")
        for scope, _chain in ctx.scopes():
            tracker = set_tracker_for(scope)
            for iterable, node in iteration_sites(scope):
                if tracker.is_set(iterable):
                    findings.append(
                        ctx.finding(
                            self,
                            node,
                            "iteration over a set is hash-order "
                            "nondeterministic",
                            hint="wrap the iterable in sorted(...) so the "
                            "order is independent of PYTHONHASHSEED",
                        )
                    )
                elif at_process_boundary and self._is_map_view(iterable):
                    findings.append(
                        ctx.finding(
                            self,
                            node,
                            "map iteration at the process boundary must be "
                            "explicitly ordered",
                            hint="iterate sorted(d) / sorted(d.items()) — "
                            "worker assignment and answer layout must be "
                            "bitwise-reproducible across runs",
                        )
                    )
            findings.extend(self._clock_and_random(ctx, scope))
        return findings

    @staticmethod
    def _is_map_view(node: ast.expr) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _MAP_METHODS
            and not node.args
            and not node.keywords
        )

    def _clock_and_random(
        self, ctx: ModuleContext, scope: ast.AST
    ) -> list[Finding]:
        findings: list[Finding] = []
        for node in iter_scope_nodes(scope):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            if name in _CLOCK_CALLS:
                findings.append(
                    ctx.finding(
                        self,
                        node,
                        f"wall-clock read ({name}) in a deterministic path",
                        hint="inject a SimulatedClock/SystemClock seam or use "
                        "time.perf_counter for pure wall measurements",
                    )
                )
            elif self._is_unseeded_random(name, node):
                findings.append(
                    ctx.finding(
                        self,
                        node,
                        f"unseeded randomness ({name})",
                        hint="thread an explicit seed: "
                        "np.random.default_rng(seed) / random.Random(seed)",
                    )
                )
        return findings

    @staticmethod
    def _is_unseeded_random(name: str, node: ast.Call) -> bool:
        parts = name.split(".")
        if parts[0] == "random" and len(parts) > 1:
            # random.Random(seed) is the sanctioned escape hatch.
            return not (parts[1] == "Random" and node.args)
        if len(parts) >= 2 and parts[0] in ("np", "numpy") and parts[1] == "random":
            if len(parts) >= 3 and parts[2] == "default_rng" and node.args:
                return False
            return True
        return False
