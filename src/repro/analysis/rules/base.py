"""Rule protocol and the per-module context rules operate on."""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass, field
from pathlib import PurePosixPath

from repro.analysis.findings import Finding

__all__ = ["ModuleContext", "Rule"]


@dataclass
class ModuleContext:
    """One parsed module: path, AST, and source lines.

    Scoping is by path segment (``has_segment("core")`` matches both
    ``src/repro/core/...`` and a fixture under
    ``tests/analysis_fixtures/core/...``), so the fixture suite
    exercises every rule without mimicking the real tree layout.
    """

    path: str
    tree: ast.Module
    lines: list[str]
    _functions: list[tuple[ast.AST, tuple[ast.AST, ...]]] | None = field(
        default=None, repr=False
    )

    def has_segment(self, *names: str) -> bool:
        parts = PurePosixPath(self.path).parts
        return any(name in parts for name in names)

    def snippet(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def scopes(self) -> Iterator[tuple[ast.AST, tuple[ast.AST, ...]]]:
        """Every function scope plus the module scope, with ancestry.

        Yields ``(scope_node, enclosing)`` where ``enclosing`` is the
        chain of enclosing class/function defs, outermost first.  The
        module itself is yielded first with an empty chain.
        """
        if self._functions is None:
            collected: list[tuple[ast.AST, tuple[ast.AST, ...]]] = [(self.tree, ())]

            def visit(node: ast.AST, chain: tuple[ast.AST, ...]) -> None:
                for child in ast.iter_child_nodes(node):
                    if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        collected.append((child, chain))
                        visit(child, chain + (child,))
                    elif isinstance(child, ast.ClassDef):
                        visit(child, chain + (child,))
                    else:
                        visit(child, chain)

            visit(self.tree, ())
            self._functions = collected
        return iter(self._functions)

    def finding(
        self, rule: "Rule", node: ast.AST, message: str, hint: str | None = None
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule=rule.rule_id,
            path=self.path,
            line=line,
            col=col + 1,
            message=message,
            hint=hint if hint is not None else rule.hint,
            snippet=self.snippet(line),
        )


class Rule:
    """One invariant check.

    Subclasses set ``rule_id``/``title``/``hint`` and implement
    :meth:`check`; ``applies_to`` narrows the rule to the packages whose
    correctness contract it guards.
    """

    rule_id: str = "RPR000"
    title: str = ""
    hint: str = ""
    #: Path segments the rule applies to; empty means every module.
    segments: tuple[str, ...] = ()

    def applies_to(self, ctx: ModuleContext) -> bool:
        if not self.segments:
            return True
        return ctx.has_segment(*self.segments)

    def check(self, ctx: ModuleContext) -> list[Finding]:
        raise NotImplementedError
