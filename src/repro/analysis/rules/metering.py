"""RPR002 — unmetered communication in the distributed/sharded layers.

Every byte that crosses a simulated machine boundary is accounted on a
:class:`~repro.distributed.network.NetworkMeter` — the paper's
communication figures (and the serving layer's bandwidth claims) are
*those counters*, so a payload built or decoded without a meter charge
in reach silently under-reports traffic.  The check is per function: a
function that touches the wire codec (``to_wire``/``from_wire``) or
prices a payload (``wire_bytes``) must also touch a meter (read or
``record`` a ``meter`` attribute) in the same function body.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding
from repro.analysis.rules.base import ModuleContext, Rule

__all__ = ["UnmeteredCommunicationRule"]

_WIRE_CALLS = frozenset({"to_wire", "from_wire"})
_WIRE_READS = frozenset({"wire_bytes", "wire_bytes_at"})


class UnmeteredCommunicationRule(Rule):
    rule_id = "RPR002"
    title = "unmetered communication"
    hint = (
        "charge the bytes on the NetworkMeter in this function "
        "(meter.record(sender, receiver, nbytes)) or read the meter's "
        "counters around the transfer — unmetered sends corrupt the "
        "paper's communication figures"
    )
    segments = ("distributed", "sharding")

    def check(self, ctx: ModuleContext) -> list[Finding]:
        findings: list[Finding] = []
        for scope, chain in ctx.scopes():
            if not isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if any(
                isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef))
                for anc in chain
            ):
                # Nested defs are audited as part of their enclosing
                # function: a metered closure factory is fine.
                continue
            events: list[tuple[ast.AST, str]] = []
            metered = False
            for node in ast.walk(scope):
                if isinstance(node, ast.Attribute):
                    if "meter" in node.attr.lower():
                        metered = True
                    elif node.attr in _WIRE_READS and isinstance(
                        node.ctx, ast.Load
                    ):
                        events.append((node, f"reads .{node.attr}"))
                elif isinstance(node, ast.Name) and "meter" in node.id.lower():
                    metered = True
                elif isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Attribute
                ):
                    if node.func.attr in _WIRE_CALLS:
                        events.append((node, f"calls .{node.func.attr}()"))
                    elif node.func.attr == "record":
                        metered = True
            if metered or not events:
                continue
            for node, what in events:
                findings.append(
                    ctx.finding(
                        self,
                        node,
                        f"{what} but never touches a NetworkMeter in "
                        f"'{scope.name}' — wire traffic goes unaccounted",
                    )
                )
        return findings
