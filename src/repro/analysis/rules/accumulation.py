"""RPR004 — float-accumulation-order hazards in ``core`` and ``kernels``.

Floating-point addition is not associative: summing the same values in
two different orders yields two (slightly) different results, and the
repo's exactness contracts — sparse==dense ``toarray()`` equality,
bitwise-equal incremental rebuilds — require *identical* accumulation
order everywhere.  Accumulating over a hash-ordered ``set`` makes the
result a function of ``PYTHONHASHSEED``; seed-dependent test failures
from exactly this class are why the sparse query path replays the dense
accumulation order term by term.  The rule flags ``sum(...)`` over
set-typed iterables and ``+=`` accumulation inside loops over sets.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding
from repro.analysis.inference import SetTracker, iter_scope_nodes, set_tracker_for
from repro.analysis.rules.base import ModuleContext, Rule

__all__ = ["FloatAccumulationOrderRule"]


class FloatAccumulationOrderRule(Rule):
    rule_id = "RPR004"
    title = "float-accumulation-order hazard"
    hint = (
        "accumulation order must not depend on the hash seed: sort the "
        "container first (sum over sorted(...)), or accumulate over an "
        "ordered container"
    )
    segments = ("core", "kernels")

    def check(self, ctx: ModuleContext) -> list[Finding]:
        findings: list[Finding] = []
        for scope, _chain in ctx.scopes():
            tracker = set_tracker_for(scope)
            for node in iter_scope_nodes(scope):
                if isinstance(node, ast.Call):
                    if (
                        isinstance(node.func, ast.Name)
                        and node.func.id == "sum"
                        and node.args
                        and self._unordered(node.args[0], tracker)
                    ):
                        findings.append(
                            ctx.finding(
                                self,
                                node,
                                "sum() over an unordered container — the "
                                "result depends on hash order",
                            )
                        )
                elif isinstance(node, (ast.For, ast.AsyncFor)):
                    if tracker.is_set(node.iter):
                        for stmt in ast.walk(node):
                            if isinstance(stmt, ast.AugAssign) and isinstance(
                                stmt.op, ast.Add
                            ):
                                findings.append(
                                    ctx.finding(
                                        self,
                                        stmt,
                                        "+= accumulation inside a loop over "
                                        "a set — order depends on the hash "
                                        "seed",
                                    )
                                )
        return findings

    @staticmethod
    def _unordered(arg: ast.expr, tracker: SetTracker) -> bool:
        if tracker.is_set(arg):
            return True
        if isinstance(arg, (ast.GeneratorExp, ast.ListComp)):
            return any(tracker.is_set(gen.iter) for gen in arg.generators)
        return False
