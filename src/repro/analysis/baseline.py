"""Committed per-file baseline: land the tool before the tree is clean.

The baseline is a JSON file mapping each path to its accepted findings.
Matching is by ``(path, rule, stripped source line)`` with multiplicity
— line numbers are recorded for humans but ignored by matching, so
unrelated edits that shift a file don't invalidate its entries, while
touching the offending line itself resurfaces the finding.

The contract is *exact*: fresh findings not in the baseline fail the
run, and baseline entries no longer produced ("stale" — the code got
fixed, or the rule changed) fail it too, forcing the file to shrink in
the same commit.  ``--write-baseline`` regenerates it.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.findings import Finding
from repro.errors import AnalysisError

__all__ = ["Baseline", "BaselineMatch", "DEFAULT_BASELINE_NAME"]

DEFAULT_BASELINE_NAME = "analysis-baseline.json"
_FORMAT_VERSION = 1


@dataclass
class BaselineMatch:
    """The outcome of checking fresh findings against a baseline."""

    new: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    stale: list[dict[str, object]] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.new and not self.stale


class Baseline:
    """Accepted findings, keyed by ``(path, rule, snippet)``."""

    def __init__(self, entries: dict[str, list[dict[str, object]]]) -> None:
        self.entries = entries

    @classmethod
    def empty(cls) -> "Baseline":
        return cls({})

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        if payload.get("version") != _FORMAT_VERSION:
            raise AnalysisError(
                f"unsupported baseline version {payload.get('version')!r}"
            )
        entries = payload.get("findings", {})
        if not isinstance(entries, dict):
            raise AnalysisError("baseline 'findings' must be an object")
        return cls(entries)

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        entries: dict[str, list[dict[str, object]]] = {}
        for finding in sorted(findings, key=lambda f: f.sort_key):
            entries.setdefault(finding.path, []).append(
                {
                    "rule": finding.rule,
                    "line": finding.line,
                    "snippet": finding.snippet,
                }
            )
        return cls(entries)

    def dump(self, path: str | Path) -> None:
        payload = {
            "version": _FORMAT_VERSION,
            "tool": "repro.analysis",
            "findings": {key: self.entries[key] for key in sorted(self.entries)},
        }
        Path(path).write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8"
        )

    def match(self, findings: list[Finding]) -> BaselineMatch:
        budget: Counter[tuple[str, str, str]] = Counter()
        for path, entries in self.entries.items():
            for entry in entries:
                budget[(path, str(entry["rule"]), str(entry["snippet"]))] += 1
        result = BaselineMatch()
        for finding in findings:
            key = finding.baseline_key
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                result.suppressed.append(finding)
            else:
                result.new.append(finding)
        for (path, rule, snippet), count in sorted(budget.items()):
            for _ in range(count):
                result.stale.append(
                    {"path": path, "rule": rule, "snippet": snippet}
                )
        return result
