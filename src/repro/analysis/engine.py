"""Drive the rules over files and collect findings."""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath

from repro.analysis.findings import Finding
from repro.analysis.rules import ALL_RULES, Rule
from repro.analysis.rules.base import ModuleContext

__all__ = ["AnalysisResult", "analyze_paths", "analyze_source", "iter_python_files"]


@dataclass
class AnalysisResult:
    """Findings plus the parse failures encountered along the way."""

    findings: list[Finding] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)
    files_checked: int = 0

    def extend(self, other: "AnalysisResult") -> None:
        self.findings.extend(other.findings)
        self.errors.extend(other.errors)
        self.files_checked += other.files_checked


def _select_rules(rules: Sequence[Rule] | None) -> Sequence[Rule]:
    return ALL_RULES if rules is None else rules


def analyze_source(
    source: str, path: str, rules: Sequence[Rule] | None = None
) -> AnalysisResult:
    """Run the rules over one module's source text.

    ``path`` is the (posix, preferably relative) path reported in
    findings; its segments also decide which rules consider the module
    in scope.
    """
    result = AnalysisResult()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        result.errors.append(f"{path}: syntax error: {exc.msg} (line {exc.lineno})")
        return result
    ctx = ModuleContext(path=path, tree=tree, lines=source.splitlines())
    result.files_checked = 1
    for rule in _select_rules(rules):
        if rule.applies_to(ctx):
            result.findings.extend(rule.check(ctx))
    result.findings.sort(key=lambda f: f.sort_key)
    return result


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Expand files/directories into the ``.py`` files beneath them."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if "__pycache__" in sub.parts:
                    continue
                yield sub
        else:
            yield path


def analyze_paths(
    paths: Iterable[str | Path], rules: Sequence[Rule] | None = None
) -> AnalysisResult:
    """Run the rules over every ``.py`` file under ``paths``."""
    result = AnalysisResult()
    for file_path in iter_python_files(paths):
        rel = str(PurePosixPath(*file_path.parts))
        try:
            source = file_path.read_text(encoding="utf-8")
        except OSError as exc:
            result.errors.append(f"{rel}: unreadable: {exc}")
            continue
        result.extend(analyze_source(source, rel, rules))
    result.findings.sort(key=lambda f: f.sort_key)
    return result
