"""Command-line front end: ``python -m repro.analysis [paths...]``.

Exit codes: ``0`` clean (every finding baselined), ``1`` new findings
or stale baseline entries, ``2`` usage or parse errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import IO

from repro.analysis.baseline import DEFAULT_BASELINE_NAME, Baseline, BaselineMatch
from repro.analysis.engine import analyze_paths
from repro.analysis.rules import ALL_RULES, rules_by_id
from repro.errors import AnalysisError

__all__ = ["main"]

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static checks for this repo's exactness invariants "
        "(determinism, metered wire traffic, shared-buffer safety, "
        "accumulation order, error discipline).",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"], help="files or directories to scan"
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help=f"baseline file (default: ./{DEFAULT_BASELINE_NAME} when present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; report every finding",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rules and exit"
    )
    return parser


def _resolve_baseline_path(arg: str | None) -> Path | None:
    if arg is not None:
        return Path(arg)
    default = Path(DEFAULT_BASELINE_NAME)
    return default if default.exists() else None


def _print_text(
    match: BaselineMatch, errors: list[str], files: int, out: IO[str]
) -> None:
    for finding in match.new:
        print(finding.render(), file=out)
    for entry in match.stale:
        print(
            f"stale baseline entry: {entry['path']}: {entry['rule']} "
            f"`{entry['snippet']}` no longer reported — shrink the baseline "
            "(rerun with --write-baseline)",
            file=out,
        )
    for error in errors:
        print(f"error: {error}", file=out)
    summary = (
        f"{files} file(s) checked: {len(match.new)} finding(s), "
        f"{len(match.suppressed)} baselined, {len(match.stale)} stale"
    )
    print(summary, file=out)


def _print_json(
    match: BaselineMatch, errors: list[str], files: int, out: IO[str]
) -> None:
    payload = {
        "files_checked": files,
        "findings": [f.to_json() for f in match.new],
        "baselined": [f.to_json() for f in match.suppressed],
        "stale_baseline": match.stale,
        "errors": errors,
    }
    json.dump(payload, out, indent=2)
    out.write("\n")


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        for rule in ALL_RULES:
            scope = ", ".join(rule.segments) if rule.segments else "all packages"
            print(f"{rule.rule_id}  {rule.title}  [{scope}]")
        return EXIT_CLEAN
    try:
        rules = rules_by_id(args.rules)
    except AnalysisError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return EXIT_ERROR

    result = analyze_paths(args.paths, rules)

    baseline_path = _resolve_baseline_path(args.baseline)
    if args.write_baseline:
        target = baseline_path if baseline_path is not None else Path(
            DEFAULT_BASELINE_NAME
        )
        Baseline.from_findings(result.findings).dump(target)
        print(
            f"wrote {len(result.findings)} finding(s) to {target}",
            file=sys.stdout,
        )
        return EXIT_CLEAN if not result.errors else EXIT_ERROR

    if args.no_baseline or baseline_path is None:
        baseline = Baseline.empty()
    else:
        try:
            baseline = Baseline.load(baseline_path)
        except (OSError, AnalysisError, json.JSONDecodeError) as exc:
            print(f"error: cannot load baseline: {exc}", file=sys.stderr)
            return EXIT_ERROR
    match = baseline.match(result.findings)

    if args.format == "json":
        _print_json(match, result.errors, result.files_checked, sys.stdout)
    else:
        _print_text(match, result.errors, result.files_checked, sys.stdout)
    if result.errors:
        return EXIT_ERROR
    return EXIT_CLEAN if match.clean else EXIT_FINDINGS
