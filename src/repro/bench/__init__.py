"""Benchmark harness: memoised index builders and table reporting."""

from repro.bench.harness import (
    ExperimentTable,
    bench_queries,
    fastppv_index,
    gpa_index,
    hgpa_index,
    jw_index,
    kernel_backend_info,
    results_dir,
    time_queries,
    zipf_stream,
)

__all__ = [
    "ExperimentTable",
    "results_dir",
    "hgpa_index",
    "gpa_index",
    "jw_index",
    "fastppv_index",
    "bench_queries",
    "kernel_backend_info",
    "time_queries",
    "zipf_stream",
]
