"""Benchmark harness: memoised index builders and table reporting."""

from repro.bench.harness import (
    ExperimentTable,
    bench_queries,
    fastppv_index,
    gpa_index,
    hgpa_index,
    jw_index,
    results_dir,
    time_queries,
    zipf_stream,
)

__all__ = [
    "ExperimentTable",
    "results_dir",
    "hgpa_index",
    "gpa_index",
    "jw_index",
    "fastppv_index",
    "bench_queries",
    "time_queries",
    "zipf_stream",
]
