"""Shared machinery for the benchmark suite.

Every benchmark file regenerates one table or figure of the paper: it
sweeps the paper's parameter, prints the measured rows next to the paper's
qualitative expectation, writes the table under ``results/``, and times the
representative operation with pytest-benchmark.

Index builds are expensive relative to queries, so they are memoised here
and shared by every benchmark in the pytest session.
"""

from __future__ import annotations

import os
import statistics
import time
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path

from collections.abc import Callable

import numpy as np

from repro import datasets
from repro.core.gpa import GPAIndex, build_gpa_index
from repro.core.hgpa import HGPAIndex, build_hgpa_index
from repro.core.jw import JWIndex, build_jw_index
from repro.approx.fastppv import FastPPVIndex, build_fastppv_index
from repro.kernels import active_kernels

__all__ = [
    "ExperimentTable",
    "results_dir",
    "hgpa_index",
    "gpa_index",
    "jw_index",
    "fastppv_index",
    "bench_queries",
    "kernel_backend_info",
    "time_queries",
    "zipf_stream",
]


def results_dir() -> Path:
    """Directory where every benchmark writes its table."""
    path = Path(os.environ.get("REPRO_RESULTS", Path(__file__).resolve().parents[3] / "results"))
    path.mkdir(parents=True, exist_ok=True)
    return path


@dataclass
class ExperimentTable:
    """A paper table/figure regenerated as text rows."""

    experiment: str
    title: str
    headers: list[str]
    rows: list[list[object]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, *values: object) -> None:
        self.rows.append(list(values))

    def note(self, text: str) -> None:
        self.notes.append(text)

    def render(self) -> str:
        widths = [
            max(len(str(h)), *(len(_fmt(r[i])) for r in self.rows)) if self.rows else len(str(h))
            for i, h in enumerate(self.headers)
        ]
        lines = [f"== {self.experiment}: {self.title} =="]
        lines.append("  ".join(str(h).ljust(w) for h, w in zip(self.headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(_fmt(v).ljust(w) for v, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def emit(self) -> None:
        """Print the table and persist it under results/."""
        text = self.render()
        print("\n" + text)
        safe = self.experiment.lower().replace(" ", "_").replace("/", "-")
        (results_dir() / f"{safe}.txt").write_text(text + "\n", encoding="utf-8")


def kernel_backend_info() -> dict[str, object]:
    """The active kernel backend + capability probe, for bench payloads.

    Every ``results/BENCH_*.json`` carries these two keys so recorded
    numbers are attributable: ``kernel_backend`` names what actually
    dispatched (after any silent downgrade) and ``kernel_report`` holds
    the full probe — requested backend, per-capability availability and
    downgrade notes.
    """
    kern = active_kernels()
    return {
        "kernel_backend": kern.backend,
        "kernel_report": kern.report.as_dict(),
    }


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}"
    return str(value)


# ----------------------------------------------------------------------
# Memoised index builders (shared across all benchmark files).
# ----------------------------------------------------------------------
@lru_cache(maxsize=None)
def hgpa_index(
    dataset: str,
    *,
    max_levels: int | None = None,
    fanout: int = 2,
    tol: float = 1e-4,
    prune: float | None = None,
    seed: int = 0,
) -> HGPAIndex:
    graph = datasets.load(dataset)
    if max_levels is None:
        max_levels = datasets.spec(dataset).hgpa_levels
    return build_hgpa_index(
        graph, max_levels=max_levels, fanout=fanout, tol=tol, prune=prune, seed=seed
    )


@lru_cache(maxsize=None)
def gpa_index(
    dataset: str,
    parts: int,
    *,
    tol: float = 1e-4,
    prune: float | None = None,
    seed: int = 0,
) -> GPAIndex:
    return build_gpa_index(
        datasets.load(dataset), parts, tol=tol, prune=prune, seed=seed
    )


@lru_cache(maxsize=None)
def jw_index(dataset: str, num_hubs: int, *, tol: float = 1e-4) -> JWIndex:
    return build_jw_index(datasets.load(dataset), num_hubs=num_hubs, tol=tol)


@lru_cache(maxsize=None)
def fastppv_index(dataset: str, num_hubs: int, *, tol: float = 1e-4) -> FastPPVIndex:
    return build_fastppv_index(datasets.load(dataset), num_hubs, tol=tol)


# ----------------------------------------------------------------------
def bench_queries(dataset: str, count: int = 20, *, seed: int = 9) -> np.ndarray:
    """The evaluation protocol's random query nodes for a dataset."""
    return datasets.query_nodes(datasets.load(dataset), count, seed=seed)


def zipf_stream(
    n: int, size: int, *, exponent: float = 1.2, seed: int = 11
) -> np.ndarray:
    """A query stream whose node popularity follows a Zipf law.

    Rank-``r`` popularity ∝ ``r^-exponent``; ranks are mapped to node ids
    by a seeded permutation so the hot set is not just the lowest ids.
    The traffic shape of the serving benchmarks — a few hot users
    dominating millions of requests.
    """
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, n + 1, dtype=np.float64)
    p = ranks**-exponent
    p /= p.sum()
    perm = rng.permutation(n)
    return perm[rng.choice(n, size=size, p=p)]


def time_queries(
    query_fn: Callable,
    queries: np.ndarray,
    *,
    repeat: int = 1,
    batched: bool = False,
    warmup: bool = True,
) -> float:
    """Median wall seconds per query of ``query_fn`` over the query set.

    In the default per-query mode ``query_fn`` is called once per node and
    the median of the individual timings is returned.  With
    ``batched=True`` the whole query array is handed to ``query_fn`` in a
    single call (e.g. an index's ``query_many``) and the wall time is
    divided by the number of queries, so the two modes are directly
    comparable.

    Unless ``warmup=False``, an untimed pass over the whole query set
    runs first in both modes so that one-time lazy work — the indexes
    build their stacked ``_ops`` / ``_level_ops`` matrices on first use,
    per hierarchy subgraph for HGPA — is not charged to the first timed
    repeat, which would skew the batched-vs-per-query comparison.
    """
    queries = np.asarray(queries)
    if queries.size == 0:
        return 0.0
    if batched:
        if warmup:
            query_fn(queries)
        per_query = []
        for _ in range(max(1, repeat)):
            t0 = time.perf_counter()
            query_fn(queries)
            per_query.append((time.perf_counter() - t0) / max(1, queries.size))
        return statistics.median(per_query)
    if warmup:
        for q in queries.tolist():
            query_fn(int(q))
    times = []
    for q in queries.tolist():
        t0 = time.perf_counter()
        for _ in range(repeat):
            query_fn(int(q))
        times.append((time.perf_counter() - t0) / repeat)
    return statistics.median(times)
