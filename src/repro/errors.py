"""Exception hierarchy for the repro library.

Every error raised intentionally by this package derives from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while programming errors (``TypeError`` et al.) still
propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Raised for malformed graphs or invalid node references."""


class PartitionError(ReproError):
    """Raised when a partitioning request cannot be satisfied."""


class IndexBuildError(ReproError):
    """Raised when pre-computation of a PPV index fails."""


class QueryError(ReproError):
    """Raised for invalid PPV queries (unknown node, empty preference set)."""


class ConvergenceError(ReproError):
    """Raised when an iterative solver exceeds its iteration budget."""


class ClusterError(ReproError):
    """Raised for invalid simulated-cluster configurations or protocols."""


class SerializationError(ReproError):
    """Raised when a wire payload cannot be encoded or decoded."""


class UpdateError(ReproError):
    """Raised for malformed edge updates or engines that cannot apply
    incremental updates."""


class ExecutionError(ReproError):
    """Raised for execution-backend failures: a closed pool, a hung or
    crashed worker task, or an unroutable submission."""


class TransientFault(ReproError):
    """Base class for momentary serving faults that a resilient caller
    may retry: a dropped or corrupted wire payload, a flaky worker.

    Terminal conditions (:class:`ReplicaUnavailable` — nobody left to
    retry against) deliberately do *not* derive from this class."""


class WorkerDied(ExecutionError, TransientFault):
    """Raised when a worker process died with work outstanding; callers
    with replicas (the sharding layer) treat it as a failover signal."""


class LinkDropped(TransientFault):
    """Raised when a simulated wire payload is lost in flight; the bytes
    were charged to the meter (they hit the wire) but never arrived."""


class PayloadTruncated(TransientFault):
    """Raised when a simulated wire payload arrives truncated or
    corrupted — always *detected* (checksummed transport), never decoded
    into a silently-wrong answer."""


class DeadlineExceeded(ReproError, TimeoutError):
    """Raised when a request's per-attempt deadline elapsed before the
    serving replica answered (also a :class:`TimeoutError`)."""


class FaultPlanError(ReproError):
    """Raised for malformed fault schedules (negative times, unknown
    event kinds, targets outside the attached deployment)."""


class AnalysisError(ReproError):
    """Raised by the static-analysis tool for invalid rule selections or
    malformed baseline files."""


class ServingError(ReproError):
    """Raised for invalid serving-layer configurations or requests."""


class ShardingError(ServingError):
    """Raised for invalid shard-router configurations or unroutable
    requests (e.g. every replica of a shard marked down)."""


class ReplicaUnavailable(ShardingError):
    """Raised when no healthy replica can answer for a shard: every
    replica marked down, or bounded retries exhausted against transient
    faults.  The router's graceful-degradation mode converts this into
    explicitly-marked degraded/shed rows instead of raising."""


class DegradedResult(ServingError):
    """Raised when reading the result of a request the service *shed* —
    the partition was unavailable and no stale row could stand in.  Shed
    responses are always explicit; they never masquerade as answers."""
