"""Exception hierarchy for the repro library.

Every error raised intentionally by this package derives from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while programming errors (``TypeError`` et al.) still
propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Raised for malformed graphs or invalid node references."""


class PartitionError(ReproError):
    """Raised when a partitioning request cannot be satisfied."""


class IndexBuildError(ReproError):
    """Raised when pre-computation of a PPV index fails."""


class QueryError(ReproError):
    """Raised for invalid PPV queries (unknown node, empty preference set)."""


class ConvergenceError(ReproError):
    """Raised when an iterative solver exceeds its iteration budget."""


class ClusterError(ReproError):
    """Raised for invalid simulated-cluster configurations or protocols."""


class SerializationError(ReproError):
    """Raised when a wire payload cannot be encoded or decoded."""


class UpdateError(ReproError):
    """Raised for malformed edge updates or engines that cannot apply
    incremental updates."""


class ExecutionError(ReproError):
    """Raised for execution-backend failures: a closed pool, a hung or
    crashed worker task, or an unroutable submission."""


class WorkerDied(ExecutionError):
    """Raised when a worker process died with work outstanding; callers
    with replicas (the sharding layer) treat it as a failover signal."""


class AnalysisError(ReproError):
    """Raised by the static-analysis tool for invalid rule selections or
    malformed baseline files."""


class ServingError(ReproError):
    """Raised for invalid serving-layer configurations or requests."""


class ShardingError(ServingError):
    """Raised for invalid shard-router configurations or unroutable
    requests (e.g. every replica of a shard marked down)."""
