"""Deterministic synthetic graph generators.

The paper evaluates on five real networks (Email, Web, Youtube, PLD, Meetup)
that are not redistributable here, so :mod:`repro.datasets` builds stand-ins
from these generators.  What GPA/HGPA exploit in the real graphs is their
*community structure* — recursive bisection finds small vertex separators —
together with power-law degree skew.  The generators plant both properties
explicitly:

* :func:`hierarchical_community_digraph` — a binary hierarchy of communities
  with geometrically decaying cross-community edge budgets (small separators
  at every level), power-law endpoint weights (degree skew).
* :func:`meetup_like_digraph` — an event co-attendance graph (dense,
  clique-heavy) mirroring the Meetup crawl used for the scalability study.
* classic generators (Erdős–Rényi, preferential attachment, ring, star,
  complete) used by the test-suite.

All generators are seeded and fully deterministic.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.graph.digraph import DiGraph

__all__ = [
    "hierarchical_community_digraph",
    "meetup_like_digraph",
    "erdos_renyi_digraph",
    "preferential_attachment_digraph",
    "ring_digraph",
    "star_digraph",
    "complete_digraph",
]


def _power_weights(size: int, exponent: float, rng: np.random.Generator) -> np.ndarray:
    """Zipf-like sampling weights of a block, shuffled so hot nodes spread."""
    w = (np.arange(1, size + 1, dtype=np.float64)) ** (-exponent)
    rng.shuffle(w)
    return w / w.sum()


def _sample_pairs(
    rng: np.random.Generator,
    count: int,
    src_nodes: np.ndarray,
    src_p: np.ndarray,
    dst_nodes: np.ndarray,
    dst_p: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Sample ``count`` (src, dst) pairs with the given endpoint weights."""
    if count <= 0 or src_nodes.size == 0 or dst_nodes.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    s = rng.choice(src_nodes, size=count, p=src_p)
    d = rng.choice(dst_nodes, size=count, p=dst_p)
    return s, d


def hierarchical_community_digraph(
    num_nodes: int,
    *,
    depth: int | None = None,
    avg_out_degree: float = 6.0,
    cross_fraction: float = 0.10,
    front_decay: float = 0.5,
    back_weight: float = 0.35,
    back_decay: float = 0.5,
    degree_exponent: float = 1.5,
    centers_fraction: float = 0.06,
    seed: int = 0,
    name: str = "",
) -> DiGraph:
    """Directed graph with a planted binary community hierarchy.

    Nodes are split into ``2**depth`` contiguous leaf communities.  A
    ``1 - cross_fraction`` share of the edge budget lands inside leaves; the
    rest crosses community boundaries.  The per-level cross budget is
    U-shaped — ``front_decay**k + back_weight * back_decay**(depth-1-k)`` —
    which mirrors the paper's hub-count tables (Tables 2–5): the level-0
    split cuts the most, mid levels separate cheaply, and deep levels get
    denser again.  Endpoints are drawn with power-law weights for degree
    skew, and every node receives at least one out-edge inside its leaf so
    the graph has no isolated nodes.

    Parameters
    ----------
    num_nodes:
        Total node count; must be at least ``2**depth``.
    depth:
        Number of binary splits in the planted hierarchy; default is
        ``log2(n) - 3`` (leaf communities of roughly eight nodes), clamped
        to at least 3, so community structure extends all the way down —
        the property that keeps vertex separators (hence hub sets) small.
    avg_out_degree:
        Target ``m/n`` ratio.
    cross_fraction:
        Fraction of edges crossing community boundaries (controls separator
        sizes, hence hub counts).
    front_decay, back_weight, back_decay:
        Shape of the per-level cross-edge budget (see above).
    degree_exponent:
        Exponent of the endpoint sampling weights (0 = uniform).  Real web
        and social graphs are core–periphery structured — most nodes have
        one or two edges pointing at a small core — which is exactly what
        keeps their vertex covers (hence hub sets) small; a strong exponent
        reproduces that.
    centers_fraction:
        Fraction of each leaf community acting as local "centers"; every
        member gets its guaranteed out-edge to a centre, giving leaves the
        star-like topology whose vertex cover is just the centres.
    """
    if depth is None:
        depth = max(3, int(np.log2(max(8, num_nodes))) - 3)
    if num_nodes < 2**depth:
        raise GraphError(
            f"num_nodes={num_nodes} is smaller than 2**depth={2 ** depth}"
        )
    rng = np.random.default_rng(seed)
    total_edges = int(round(num_nodes * avg_out_degree))
    num_leaves = 2**depth
    # Contiguous leaf ranges; the last leaf absorbs the remainder.
    bounds = np.linspace(0, num_nodes, num_leaves + 1).astype(np.int64)
    srcs: list[np.ndarray] = []
    dsts: list[np.ndarray] = []

    # Per-leaf weights, re-used for cross sampling of the enclosing ranges.
    leaf_weights: list[np.ndarray] = []
    for b in range(num_leaves):
        size = int(bounds[b + 1] - bounds[b])
        leaf_weights.append(_power_weights(size, degree_exponent, rng))

    def range_weights(lo_leaf: int, hi_leaf: int) -> tuple[np.ndarray, np.ndarray]:
        nodes = np.arange(bounds[lo_leaf], bounds[hi_leaf], dtype=np.int64)
        w = np.concatenate(leaf_weights[lo_leaf:hi_leaf])
        return nodes, w / w.sum()

    # Within-leaf edges: star-like around a few local centres, plus a
    # weight-skewed random remainder.
    within_budget = int(total_edges * (1.0 - cross_fraction))
    for b in range(num_leaves):
        size = int(bounds[b + 1] - bounds[b])
        nodes = np.arange(bounds[b], bounds[b + 1], dtype=np.int64)
        p = leaf_weights[b]
        if size > 1:
            num_centers = max(1, int(round(size * centers_fraction)))
            centers = nodes[np.argsort(-p)[:num_centers]]
            # Guaranteed out-edge: every member points at a centre.
            partners = centers[rng.integers(0, num_centers, size)]
            srcs.append(nodes)
            dsts.append(partners)
            # Centres answer back to a couple of members each.
            back = rng.integers(0, size, num_centers * 2)
            srcs.append(np.repeat(centers, 2))
            dsts.append(nodes[back])
        quota = max(0, int(round(within_budget * size / num_nodes)) - size)
        s, d = _sample_pairs(rng, quota, nodes, p, nodes, p)
        srcs.append(s)
        dsts.append(d)

    # Cross edges, level by level (level 0 = split of the whole graph).
    cross_budget = total_edges - within_budget
    shape = np.array(
        [
            front_decay**k + back_weight * back_decay ** (depth - 1 - k)
            for k in range(depth)
        ]
    )
    level_quota = (cross_budget * shape / shape.sum()).astype(np.int64)
    for level in range(depth):
        pairs = 2**level  # sibling pairs at this level
        leaves_per_side = num_leaves // (2 ** (level + 1))
        per_pair = max(1, int(level_quota[level]) // max(1, pairs))
        for p_idx in range(pairs):
            lo = p_idx * 2 * leaves_per_side
            mid = lo + leaves_per_side
            hi = mid + leaves_per_side
            a_nodes, a_p = range_weights(lo, mid)
            b_nodes, b_p = range_weights(mid, hi)
            s1, d1 = _sample_pairs(rng, per_pair // 2 + 1, a_nodes, a_p, b_nodes, b_p)
            s2, d2 = _sample_pairs(rng, per_pair // 2 + 1, b_nodes, b_p, a_nodes, a_p)
            srcs.extend([s1, s2])
            dsts.extend([d1, d2])

    src = np.concatenate(srcs)
    dst = np.concatenate(dsts)
    keep = src != dst  # drop accidental self loops
    return DiGraph.from_arrays(num_nodes, src[keep], dst[keep], name=name)


def meetup_like_digraph(
    num_nodes: int,
    num_events: int,
    *,
    mean_event_size: float = 8.0,
    max_event_size: int = 40,
    depth: int = 3,
    locality: float = 0.9,
    seed: int = 0,
    name: str = "",
) -> DiGraph:
    """Event co-attendance graph in the style of the paper's Meetup crawl.

    ``num_events`` events each draw a geometric-sized member set, mostly from
    one community of a planted hierarchy (``locality`` controls how often all
    members come from the same community).  Every ordered pair of co-attendees
    becomes a directed edge, producing the dense, clique-heavy structure (the
    paper's Meetup graphs have average degree ≈ 80–110) that the scalability
    study in Section 6.2.7 sweeps by increasing the number of events.
    """
    if num_nodes < 2**depth:
        raise GraphError("num_nodes must be at least 2**depth")
    rng = np.random.default_rng(seed)
    num_blocks = 2**depth
    bounds = np.linspace(0, num_nodes, num_blocks + 1).astype(np.int64)
    srcs: list[np.ndarray] = []
    dsts: list[np.ndarray] = []
    sizes = rng.geometric(1.0 / mean_event_size, size=num_events)
    sizes = np.clip(sizes + 1, 2, max_event_size)
    home = rng.integers(0, num_blocks, size=num_events)
    for e in range(num_events):
        size = int(sizes[e])
        block = int(home[e])
        local = rng.random(size) < locality
        members = np.empty(size, dtype=np.int64)
        n_local = int(local.sum())
        members[:n_local] = rng.integers(bounds[block], bounds[block + 1], size=n_local)
        members[n_local:] = rng.integers(0, num_nodes, size=size - n_local)
        members = np.unique(members)
        if members.size < 2:
            continue
        k = members.size
        s = np.repeat(members, k)
        d = np.tile(members, k)
        keep = s != d
        srcs.append(s[keep])
        dsts.append(d[keep])
    # Make sure nobody is isolated.
    anchors = np.arange(num_nodes, dtype=np.int64)
    srcs.append(anchors)
    dsts.append((anchors + 1) % num_nodes)
    return DiGraph.from_arrays(
        num_nodes, np.concatenate(srcs), np.concatenate(dsts), name=name
    )


def erdos_renyi_digraph(
    num_nodes: int, num_edges: int, *, seed: int = 0, name: str = ""
) -> DiGraph:
    """Uniform random directed graph with ~``num_edges`` distinct edges."""
    rng = np.random.default_rng(seed)
    src = rng.integers(0, num_nodes, size=num_edges)
    dst = rng.integers(0, num_nodes, size=num_edges)
    keep = src != dst
    return DiGraph.from_arrays(num_nodes, src[keep], dst[keep], name=name)


def preferential_attachment_digraph(
    num_nodes: int, out_per_node: int = 3, *, seed: int = 0, name: str = ""
) -> DiGraph:
    """Directed Barabási–Albert-style graph (power-law in-degrees)."""
    if num_nodes < 2:
        raise GraphError("need at least 2 nodes")
    rng = np.random.default_rng(seed)
    srcs: list[int] = []
    dsts: list[int] = []
    # Repeated-endpoint list implements preferential attachment in O(m).
    targets: list[int] = [0]
    for u in range(1, num_nodes):
        k = min(out_per_node, u)
        picks = rng.integers(0, len(targets), size=k)
        chosen = {targets[int(i)] for i in picks}
        for v in chosen:
            srcs.append(u)
            dsts.append(v)
            targets.append(v)
        targets.append(u)
    return DiGraph.from_arrays(
        num_nodes,
        np.asarray(srcs, dtype=np.int64),
        np.asarray(dsts, dtype=np.int64),
        name=name,
    )


def ring_digraph(num_nodes: int, *, name: str = "") -> DiGraph:
    """Directed cycle ``0 -> 1 -> ... -> n-1 -> 0``."""
    nodes = np.arange(num_nodes, dtype=np.int64)
    return DiGraph.from_arrays(num_nodes, nodes, (nodes + 1) % num_nodes, name=name)


def star_digraph(num_nodes: int, *, name: str = "") -> DiGraph:
    """Hub node 0 with edges to and from every other node."""
    spokes = np.arange(1, num_nodes, dtype=np.int64)
    zeros = np.zeros(num_nodes - 1, dtype=np.int64)
    src = np.concatenate([zeros, spokes])
    dst = np.concatenate([spokes, zeros])
    return DiGraph.from_arrays(num_nodes, src, dst, name=name)


def complete_digraph(num_nodes: int, *, name: str = "") -> DiGraph:
    """All ordered pairs ``u != v``."""
    nodes = np.arange(num_nodes, dtype=np.int64)
    src = np.repeat(nodes, num_nodes)
    dst = np.tile(nodes, num_nodes)
    keep = src != dst
    return DiGraph.from_arrays(num_nodes, src[keep], dst[keep], name=name)
