"""Graph substrate: CSR digraphs, virtual subgraphs, generators, I/O."""

from repro.graph.analysis import (
    DegreeStats,
    degree_stats,
    is_vertex_separator,
    num_weakly_connected_components,
    pagerank,
    top_pagerank_nodes,
    weakly_connected_components,
)
from repro.graph.digraph import DiGraph, build_csr
from repro.graph.generators import (
    complete_digraph,
    erdos_renyi_digraph,
    hierarchical_community_digraph,
    meetup_like_digraph,
    preferential_attachment_digraph,
    ring_digraph,
    star_digraph,
)
from repro.graph.io import load_npz, read_edge_list, save_npz, write_edge_list
from repro.graph.subgraph import VirtualSubgraph

__all__ = [
    "DiGraph",
    "VirtualSubgraph",
    "build_csr",
    "pagerank",
    "top_pagerank_nodes",
    "weakly_connected_components",
    "num_weakly_connected_components",
    "is_vertex_separator",
    "DegreeStats",
    "degree_stats",
    "hierarchical_community_digraph",
    "meetup_like_digraph",
    "erdos_renyi_digraph",
    "preferential_attachment_digraph",
    "ring_digraph",
    "star_digraph",
    "complete_digraph",
    "read_edge_list",
    "write_edge_list",
    "save_npz",
    "load_npz",
]
