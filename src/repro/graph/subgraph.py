"""Virtual subgraph views (Definition 3 of the paper).

A *virtual subgraph* over a node subset ``S`` behaves like the original graph
restricted to ``S`` except that every node keeps its **original** out-degree:
an edge leaving ``S`` is an edge to the (absorbing) virtual node, so the
probability of each surviving step ``u -> v`` stays ``1/out_G(u)``.

Theorem 2 of the paper: the partial vector of ``u`` w.r.t. hub set ``H``
equals ``u``'s local PPV in the virtual subgraph of the component containing
``u``.  That equivalence is what HGPA's recursion is built on, so this class
is used by every level of the hierarchy.

The virtual node is never materialised — walk mass routed to it is simply
dropped, which is exactly what the sub-stochastic local transition matrix
does.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
import scipy.sparse as sp

from repro.errors import GraphError
from repro.graph.digraph import DiGraph

__all__ = ["VirtualSubgraph"]


class VirtualSubgraph:
    """A node-subset view of a :class:`DiGraph` with original out-degrees.

    Parameters
    ----------
    graph:
        The parent graph.
    nodes:
        Global node ids in the subset (deduplicated and sorted internally).
    """

    __slots__ = (
        "graph",
        "nodes",
        "_local_of_global",
        "_indptr",
        "_indices",
        "_transition_T",
        "_transition",
    )

    def __init__(self, graph: DiGraph, nodes: Sequence[int] | np.ndarray) -> None:
        nodes = np.unique(np.asarray(nodes, dtype=np.int64))
        if nodes.size and (nodes[0] < 0 or nodes[-1] >= graph.num_nodes):
            raise GraphError("VirtualSubgraph: node ids out of range")
        self.graph = graph
        self.nodes = nodes
        local = np.full(graph.num_nodes, -1, dtype=np.int64)
        local[nodes] = np.arange(nodes.size)
        self._local_of_global = local
        # Induced CSR in local ids, built by slicing only the subset's CSR
        # rows (O(sum of subset degrees), not O(m) — HGPA creates thousands
        # of these views per hierarchy).
        counts = graph.indptr[nodes + 1] - graph.indptr[nodes] if nodes.size else np.zeros(0, dtype=np.int64)
        total = int(counts.sum())
        if total:
            starts = graph.indptr[nodes]
            offsets = np.zeros(nodes.size + 1, dtype=np.int64)
            np.cumsum(counts, out=offsets[1:])
            flat_pos = (
                np.arange(total, dtype=np.int64)
                - np.repeat(offsets[:-1], counts)
                + np.repeat(starts, counts)
            )
            targets = graph.indices[flat_pos]
            src_local = np.repeat(np.arange(nodes.size, dtype=np.int64), counts)
            keep = local[targets] >= 0
            ls, ld = src_local[keep], local[targets[keep]]
        else:
            ls = ld = np.empty(0, dtype=np.int64)
        inner = np.bincount(ls, minlength=nodes.size) if ls.size else np.zeros(nodes.size, dtype=np.int64)
        indptr = np.zeros(nodes.size + 1, dtype=np.int64)
        np.cumsum(inner, out=indptr[1:])
        self._indptr = indptr
        self._indices = ld  # already grouped by source because rows were sliced in order
        self._transition_T: sp.csr_matrix | None = None
        self._transition: sp.csr_matrix | None = None

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes in the subset."""
        return int(self.nodes.size)

    @property
    def num_internal_edges(self) -> int:
        """Number of directed edges with both endpoints inside the subset."""
        return int(self._indices.size)

    def contains(self, global_node: int) -> bool:
        """Whether the global node id is part of this subgraph."""
        return 0 <= global_node < self.graph.num_nodes and (
            self._local_of_global[global_node] >= 0
        )

    def to_local(self, global_nodes: np.ndarray | Sequence[int] | int) -> np.ndarray | int:
        """Map global node id(s) to local id(s); raises if not contained."""
        if np.isscalar(global_nodes):
            loc = int(self._local_of_global[int(global_nodes)])
            if loc < 0:
                raise GraphError(f"node {global_nodes} not in subgraph")
            return loc
        arr = self._local_of_global[np.asarray(global_nodes, dtype=np.int64)]
        if np.any(arr < 0):
            raise GraphError("some nodes not in subgraph")
        return arr

    def to_global(self, local_nodes: np.ndarray | Sequence[int] | int) -> np.ndarray | int:
        """Map local id(s) back to global node id(s)."""
        if np.isscalar(local_nodes):
            return int(self.nodes[int(local_nodes)])
        return self.nodes[np.asarray(local_nodes, dtype=np.int64)]

    def local_out_degrees(self) -> np.ndarray:
        """**Original** (full-graph) out-degrees of the subset's nodes.

        This is the defining property of the virtual subgraph: the step
        probability denominator never changes when the graph is partitioned.
        """
        return self.graph.out_degrees[self.nodes]

    def internal_out_degrees(self) -> np.ndarray:
        """Number of out-edges staying inside the subset, per local node."""
        return np.diff(self._indptr)

    def local_successors(self, local_u: int) -> np.ndarray:
        """Local ids of ``local_u``'s successors that stay in the subset."""
        return self._indices[self._indptr[local_u] : self._indptr[local_u + 1]]

    def internal_edges_local(self) -> tuple[np.ndarray, np.ndarray]:
        """All internal edges as parallel local-id arrays ``(src, dst)``."""
        src = np.repeat(
            np.arange(self.num_nodes, dtype=np.int64), self.internal_out_degrees()
        )
        return src, self._indices.copy()

    # ------------------------------------------------------------------
    def transition(self) -> sp.csr_matrix:
        """Local ``W`` with ``W[u, v] = 1/out_G(u)`` for internal edges.

        Sub-stochastic: rows whose mass partly leaves the subset sum to less
        than one — that missing mass is what the virtual node absorbs.  Used
        by the skeleton iteration (Eq. 8), which propagates values *against*
        edge direction: ``F ← (1-α)·W·F + α·x_h``.
        """
        if self._transition is None:
            deg = self.local_out_degrees().astype(np.float64)
            inv = np.zeros_like(deg)
            nz = deg > 0
            inv[nz] = 1.0 / deg[nz]
            data = np.repeat(inv, self.internal_out_degrees())
            self._transition = sp.csr_matrix(
                (data, self._indices, self._indptr),
                shape=(self.num_nodes, self.num_nodes),
            )
        return self._transition

    def transition_T(self) -> sp.csr_matrix:
        """``Wᵀ`` of :meth:`transition` — used by walk-mass propagation
        (power iteration and the selective expansion of Eq. 9)."""
        if self._transition_T is None:
            self._transition_T = self.transition().T.tocsr()
        return self._transition_T

    def escape_mass(self) -> np.ndarray:
        """Per-node probability of stepping out of the subset in one move.

        Equals ``(out_G(u) - out_S(u)) / out_G(u)`` — the weight of the
        edges re-routed to the virtual node in Definition 3.
        """
        deg = self.local_out_degrees().astype(np.float64)
        internal = self.internal_out_degrees().astype(np.float64)
        esc = np.zeros_like(deg)
        nz = deg > 0
        esc[nz] = (deg[nz] - internal[nz]) / deg[nz]
        return esc

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<VirtualSubgraph n={self.num_nodes} "
            f"m_internal={self.num_internal_edges} of {self.graph!r}>"
        )
