"""Edge-list and binary persistence for :class:`~repro.graph.digraph.DiGraph`.

Two formats are supported:

* SNAP-style text edge lists (``# comment`` header lines, whitespace
  separated ``src dst`` pairs) — the format of the paper's public datasets,
  so real SNAP files drop in directly when available.
* A compact ``.npz`` binary of the CSR arrays for fast reloads of large
  pre-generated stand-ins.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.errors import GraphError
from repro.graph.digraph import DiGraph

__all__ = ["read_edge_list", "write_edge_list", "save_npz", "load_npz"]


def read_edge_list(
    path: str | os.PathLike,
    *,
    relabel: bool = True,
    comment: str = "#",
    name: str = "",
) -> DiGraph:
    """Read a SNAP-style text edge list.

    When ``relabel`` is true (default) arbitrary integer ids are compacted to
    ``0..n-1`` in first-seen-sorted order; otherwise ids are taken verbatim
    and the node count is ``max id + 1``.
    """
    src_list: list[int] = []
    dst_list: list[int] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith(comment):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise GraphError(f"{path}: line {lineno}: expected 'src dst'")
            src_list.append(int(parts[0]))
            dst_list.append(int(parts[1]))
    src = np.asarray(src_list, dtype=np.int64)
    dst = np.asarray(dst_list, dtype=np.int64)
    if src.size == 0:
        return DiGraph.from_arrays(0, src, dst, name=name)
    if relabel:
        uniq, inv = np.unique(np.concatenate([src, dst]), return_inverse=True)
        src = inv[: src.size]
        dst = inv[src.size :]
        num_nodes = uniq.size
    else:
        if src.min() < 0 or dst.min() < 0:
            raise GraphError("negative node ids require relabel=True")
        num_nodes = int(max(src.max(), dst.max())) + 1
    return DiGraph.from_arrays(num_nodes, src, dst, name=name or Path(path).stem)


def write_edge_list(graph: DiGraph, path: str | os.PathLike, *, header: str = "") -> None:
    """Write the graph as a SNAP-style text edge list."""
    src, dst = graph.edge_arrays()
    with open(path, "w", encoding="utf-8") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        handle.write(f"# nodes: {graph.num_nodes} edges: {graph.num_edges}\n")
        for u, v in zip(src.tolist(), dst.tolist()):
            handle.write(f"{u}\t{v}\n")


def save_npz(graph: DiGraph, path: str | os.PathLike) -> None:
    """Persist the CSR arrays to a compressed ``.npz`` file."""
    np.savez_compressed(
        path,
        indptr=graph.indptr,
        indices=graph.indices,
        name=np.array(graph.name),
    )


def load_npz(path: str | os.PathLike) -> DiGraph:
    """Load a graph previously written with :func:`save_npz`."""
    with np.load(path, allow_pickle=False) as data:
        if "indptr" not in data or "indices" not in data:
            raise GraphError(f"{path}: not a repro graph archive")
        name = str(data["name"]) if "name" in data else ""
        return DiGraph(data["indptr"], data["indices"], name=name)
