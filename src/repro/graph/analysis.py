"""Whole-graph analysis helpers: PageRank, components, degree statistics.

Global (non-personalised) PageRank is used by PPV-JW and FastPPV to pick hub
nodes "with high PageRank values" (Section 3.2 of the paper), and by the
dataset report tables.  Connectivity checks back the separator invariants of
the partitioner tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse.csgraph as csgraph

from repro.graph.digraph import DiGraph

__all__ = [
    "pagerank",
    "top_pagerank_nodes",
    "weakly_connected_components",
    "num_weakly_connected_components",
    "is_vertex_separator",
    "DegreeStats",
    "degree_stats",
]


def pagerank(
    graph: DiGraph,
    *,
    alpha: float = 0.15,
    tol: float = 1e-10,
    max_iter: int = 1000,
) -> np.ndarray:
    """Global PageRank with teleport probability ``alpha`` (paper convention).

    Iterates ``x ← (1-α)·Wᵀ·x + α/n``; dangling mass is re-spread uniformly
    so the result is a proper distribution.
    """
    n = graph.num_nodes
    if n == 0:
        return np.zeros(0)
    wt = graph.transition_T()
    dangling = graph.out_degrees == 0
    x = np.full(n, 1.0 / n)
    teleport = alpha / n
    for _ in range(max_iter):
        lost = float(x[dangling].sum()) if dangling.any() else 0.0
        new = (1.0 - alpha) * (wt @ x + lost / n) + teleport
        if np.abs(new - x).max() < tol:
            return new
        x = new
    return x


def top_pagerank_nodes(graph: DiGraph, k: int, *, alpha: float = 0.15) -> np.ndarray:
    """Ids of the ``k`` highest-PageRank nodes, best first."""
    scores = pagerank(graph, alpha=alpha)
    k = min(k, graph.num_nodes)
    top = np.argpartition(-scores, k - 1)[:k] if k else np.empty(0, dtype=np.int64)
    return top[np.argsort(-scores[top])]


def weakly_connected_components(graph: DiGraph) -> np.ndarray:
    """Component label per node, ignoring edge direction."""
    if graph.num_nodes == 0:
        return np.zeros(0, dtype=np.int64)
    _, labels = csgraph.connected_components(graph.out_csr(), directed=False)
    return labels.astype(np.int64)


def num_weakly_connected_components(graph: DiGraph) -> int:
    """Number of weakly connected components."""
    if graph.num_nodes == 0:
        return 0
    labels = weakly_connected_components(graph)
    return int(labels.max()) + 1


def is_vertex_separator(
    graph: DiGraph,
    separator: np.ndarray,
    side_a: np.ndarray,
    side_b: np.ndarray,
) -> bool:
    """Check that no edge (either direction) joins ``side_a`` and ``side_b``
    once ``separator`` nodes are removed.

    This is the correctness contract of hub-node selection: every tour
    between the two sides must pass a hub (Section 3.2).
    """
    n = graph.num_nodes
    role = np.zeros(n, dtype=np.int8)  # 0 = untracked, 1 = A, 2 = B, 3 = hub
    role[np.asarray(side_a, dtype=np.int64)] = 1
    role[np.asarray(side_b, dtype=np.int64)] = 2
    role[np.asarray(separator, dtype=np.int64)] = 3
    src, dst = graph.edge_arrays()
    rs, rd = role[src], role[dst]
    crossing = ((rs == 1) & (rd == 2)) | ((rs == 2) & (rd == 1))
    return not bool(crossing.any())


@dataclass(frozen=True)
class DegreeStats:
    """Summary of a graph's degree distribution (for dataset reports)."""

    num_nodes: int
    num_edges: int
    avg_out_degree: float
    max_out_degree: int
    max_in_degree: int
    num_dangling: int


def degree_stats(graph: DiGraph) -> DegreeStats:
    """Compute :class:`DegreeStats` for ``graph``."""
    out_deg = graph.out_degrees
    in_deg = np.asarray(graph.in_csr().sum(axis=1)).ravel()
    return DegreeStats(
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        avg_out_degree=float(graph.num_edges / max(1, graph.num_nodes)),
        max_out_degree=int(out_deg.max()) if out_deg.size else 0,
        max_in_degree=int(in_deg.max()) if in_deg.size else 0,
        num_dangling=int((out_deg == 0).sum()),
    )
