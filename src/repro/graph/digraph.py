"""Immutable directed graph stored in CSR (compressed sparse row) form.

This is the substrate every algorithm in the library runs on.  Nodes are the
integers ``0 .. n-1``.  After construction the edge structure is frozen, which
lets us share one graph object between many indexes, machines and engines
without defensive copies.

The random-surfer model of the paper needs out-degrees and the row-normalised
transition matrix; both are derived here once and cached.

Dangling nodes (out-degree zero) break the pre-computed decomposition because
Algorithm 2 of the paper redirects their mass to the *query* node, which is
query-dependent.  :meth:`DiGraph.with_dangling_policy` normalises a graph up
front with either ``"self_loop"`` (default for datasets) or ``"absorb"``
(keep them; walk mass dies there), applied identically to every algorithm.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np
import scipy.sparse as sp

from repro.errors import GraphError

__all__ = ["DiGraph", "build_csr"]

DANGLING_POLICIES = ("self_loop", "absorb")


def build_csr(
    num_nodes: int,
    sources: np.ndarray,
    targets: np.ndarray,
    *,
    dedup: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """Build CSR arrays (indptr, indices) from parallel edge arrays.

    Parallel (duplicate) edges are removed when ``dedup`` is true, matching
    the simple-graph semantics of the paper's datasets.  Self loops are kept.

    Returns ``(indptr, indices)`` with ``indptr`` of length ``num_nodes + 1``.
    """
    if num_nodes < 0:
        raise GraphError(f"num_nodes must be non-negative, got {num_nodes}")
    sources = np.asarray(sources, dtype=np.int64)
    targets = np.asarray(targets, dtype=np.int64)
    if sources.shape != targets.shape:
        raise GraphError("sources and targets must have the same length")
    if sources.size:
        lo = min(sources.min(), targets.min())
        hi = max(sources.max(), targets.max())
        if lo < 0 or hi >= num_nodes:
            raise GraphError(
                f"edge endpoint out of range [0, {num_nodes}): "
                f"saw min={lo}, max={hi}"
            )
    # Sort by (source, target) so the indices slice per row is ordered, then
    # optionally drop duplicates.
    order = np.lexsort((targets, sources))
    s = sources[order]
    t = targets[order]
    if dedup and s.size:
        keep = np.empty(s.size, dtype=bool)
        keep[0] = True
        np.logical_or(s[1:] != s[:-1], t[1:] != t[:-1], out=keep[1:])
        s = s[keep]
        t = t[keep]
    counts = np.bincount(s, minlength=num_nodes)
    indptr = np.zeros(num_nodes + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr, t.astype(np.int64, copy=False)


class DiGraph:
    """Frozen directed graph with cached out/in CSR and transition matrices.

    Parameters
    ----------
    indptr, indices:
        CSR arrays of the out-adjacency (as produced by :func:`build_csr`).
    """

    __slots__ = (
        "indptr",
        "indices",
        "_num_nodes",
        "_in_csr",
        "_transition_T",
        "_out_degrees",
        "name",
    )

    def __init__(
        self, indptr: np.ndarray, indices: np.ndarray, *, name: str = ""
    ) -> None:
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        if indptr.ndim != 1 or indptr.size < 1:
            raise GraphError("indptr must be a 1-D array of length >= 1")
        if indptr[0] != 0 or (indptr.size > 1 and np.any(np.diff(indptr) < 0)):
            raise GraphError("indptr must start at 0 and be non-decreasing")
        if indices.ndim != 1 or (indices.size and indptr[-1] != indices.size):
            raise GraphError("indices length must equal indptr[-1]")
        n = indptr.size - 1
        if indices.size and (indices.min() < 0 or indices.max() >= n):
            raise GraphError("indices contain out-of-range node ids")
        self.indptr = indptr
        self.indices = indices
        self._num_nodes = n
        self._in_csr: sp.csr_matrix | None = None
        self._transition_T: sp.csr_matrix | None = None
        self._out_degrees: np.ndarray | None = None
        self.name = name

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        num_nodes: int,
        edges: Iterable[tuple[int, int]] | np.ndarray,
        *,
        dedup: bool = True,
        name: str = "",
    ) -> "DiGraph":
        """Build a graph from an iterable of ``(source, target)`` pairs."""
        arr = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges)
        if arr.size == 0:
            arr = arr.reshape(0, 2)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise GraphError("edges must be pairs of node ids")
        indptr, indices = build_csr(num_nodes, arr[:, 0], arr[:, 1], dedup=dedup)
        return cls(indptr, indices, name=name)

    @classmethod
    def from_arrays(
        cls,
        num_nodes: int,
        sources: np.ndarray,
        targets: np.ndarray,
        *,
        dedup: bool = True,
        name: str = "",
    ) -> "DiGraph":
        """Build a graph from parallel source/target arrays (fast path)."""
        indptr, indices = build_csr(num_nodes, sources, targets, dedup=dedup)
        return cls(indptr, indices, name=name)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes ``n``; nodes are ``0 .. n-1``."""
        return self._num_nodes

    @property
    def num_edges(self) -> int:
        """Number of directed edges."""
        return int(self.indices.size)

    def out_degree(self, u: int) -> int:
        """Out-degree of node ``u``."""
        self._check_node(u)
        return int(self.indptr[u + 1] - self.indptr[u])

    @property
    def out_degrees(self) -> np.ndarray:
        """Out-degree of every node as an int64 array (cached)."""
        if self._out_degrees is None:
            self._out_degrees = np.diff(self.indptr)
        return self._out_degrees

    def successors(self, u: int) -> np.ndarray:
        """Targets of out-edges of ``u`` (a CSR slice; do not mutate)."""
        self._check_node(u)
        return self.indices[self.indptr[u] : self.indptr[u + 1]]

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over all directed edges as ``(source, target)`` pairs."""
        for u in range(self._num_nodes):
            for v in self.successors(u):
                yield u, int(v)

    def edge_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Return parallel ``(sources, targets)`` arrays for all edges."""
        sources = np.repeat(np.arange(self._num_nodes, dtype=np.int64), self.out_degrees)
        return sources, self.indices.copy()

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the directed edge ``u -> v`` exists."""
        succ = self.successors(u)
        pos = np.searchsorted(succ, v)
        return bool(pos < succ.size and succ[pos] == v)

    def dangling_nodes(self) -> np.ndarray:
        """Node ids with out-degree zero."""
        return np.nonzero(self.out_degrees == 0)[0]

    def _check_node(self, u: int) -> None:
        if not 0 <= u < self._num_nodes:
            raise GraphError(f"node {u} out of range [0, {self._num_nodes})")

    # ------------------------------------------------------------------
    # Derived matrices
    # ------------------------------------------------------------------
    def out_csr(self) -> sp.csr_matrix:
        """Out-adjacency as a scipy CSR matrix of ones."""
        data = np.ones(self.indices.size, dtype=np.float64)
        return sp.csr_matrix(
            (data, self.indices, self.indptr),
            shape=(self._num_nodes, self._num_nodes),
        )

    def in_csr(self) -> sp.csr_matrix:
        """In-adjacency (transpose of :meth:`out_csr`) in CSR form, cached."""
        if self._in_csr is None:
            self._in_csr = self.out_csr().T.tocsr()
        return self._in_csr

    def transition_T(self) -> sp.csr_matrix:
        """``Wᵀ`` where ``W[u, v] = 1/out(u)`` for each edge ``u -> v``.

        One PPR power-iteration step is ``x ← (1-α)·Wᵀ·x + α·x_q``, so the
        transpose is the matrix actually used in every inner loop; it is
        built once and cached.  Dangling rows of ``W`` are all-zero
        (sub-stochastic), i.e. the "absorb" convention at matrix level.
        """
        if self._transition_T is None:
            deg = self.out_degrees.astype(np.float64)
            inv = np.zeros_like(deg)
            nz = deg > 0
            inv[nz] = 1.0 / deg[nz]
            data = np.repeat(inv, self.out_degrees)
            w = sp.csr_matrix(
                (data, self.indices, self.indptr),
                shape=(self._num_nodes, self._num_nodes),
            )
            self._transition_T = w.T.tocsr()
        return self._transition_T

    def undirected_csr(self) -> sp.csr_matrix:
        """Symmetrised adjacency with edge multiplicity as weight.

        Used by the partitioner: an edge cut in this matrix corresponds to
        the number of directed edges crossing the cut.
        """
        a = self.out_csr()
        return (a + a.T).tocsr()

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def with_dangling_policy(self, policy: str = "self_loop") -> "DiGraph":
        """Return a graph with dangling nodes handled per ``policy``.

        ``"self_loop"`` adds ``u -> u`` to every dangling node so random-walk
        mass keeps circulating; ``"absorb"`` returns the graph unchanged
        (mass entering a dangling node dies, PPVs sum to less than one).
        """
        if policy not in DANGLING_POLICIES:
            raise GraphError(
                f"unknown dangling policy {policy!r}; expected one of {DANGLING_POLICIES}"
            )
        if policy == "absorb":
            return self
        dangling = self.dangling_nodes()
        if dangling.size == 0:
            return self
        src, dst = self.edge_arrays()
        src = np.concatenate([src, dangling])
        dst = np.concatenate([dst, dangling])
        return DiGraph.from_arrays(self._num_nodes, src, dst, name=self.name)

    def reverse(self) -> "DiGraph":
        """Return the graph with every edge direction flipped."""
        src, dst = self.edge_arrays()
        return DiGraph.from_arrays(self._num_nodes, dst, src, name=self.name)

    def induced(self, nodes: Sequence[int] | np.ndarray) -> "DiGraph":
        """Induced subgraph on ``nodes`` *relabelled* to ``0..k-1``.

        For the virtual-subgraph semantics of the paper (original
        out-degrees, absorbing exits) use
        :class:`repro.graph.subgraph.VirtualSubgraph` instead.
        """
        nodes = np.unique(np.asarray(nodes, dtype=np.int64))
        if nodes.size and (nodes[0] < 0 or nodes[-1] >= self._num_nodes):
            raise GraphError("induced(): node ids out of range")
        mapping = np.full(self._num_nodes, -1, dtype=np.int64)
        mapping[nodes] = np.arange(nodes.size)
        src, dst = self.edge_arrays()
        keep = (mapping[src] >= 0) & (mapping[dst] >= 0)
        return DiGraph.from_arrays(
            nodes.size, mapping[src[keep]], mapping[dst[keep]], name=self.name
        )

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self.name!r}" if self.name else ""
        return f"<DiGraph{label} n={self._num_nodes} m={self.num_edges}>"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiGraph):
            return NotImplemented
        return (
            self._num_nodes == other._num_nodes
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
        )

    def __hash__(self) -> int:
        return hash((self._num_nodes, self.num_edges))
