"""Dataset stand-ins for the paper's evaluation graphs."""

from repro.datasets.registry import (
    DatasetSpec,
    dataset_names,
    load,
    query_nodes,
    scale_factor,
    spec,
)

__all__ = [
    "DatasetSpec",
    "dataset_names",
    "load",
    "query_nodes",
    "scale_factor",
    "spec",
]
