"""Named dataset stand-ins for the paper's five evaluation graphs.

The originals (SNAP's Email/Web/Youtube, the Common-Crawl PLD sample and a
Meetup crawl) are not redistributable and unavailable offline, so each is
replaced by a seeded synthetic graph matching the *properties the
algorithms exploit*: hierarchical community structure (small vertex
separators), power-law degree skew, and the original's edge/node ratio.
Node counts are scaled down (configurable via the ``REPRO_SCALE``
environment variable) so the whole benchmark suite runs on one machine;
every run regenerates identical graphs.

Real SNAP edge lists drop in through :func:`repro.graph.io.read_edge_list`
if available — the registry is only the offline fallback.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import lru_cache
from typing import Callable

import numpy as np

from repro.errors import ReproError
from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    hierarchical_community_digraph,
    meetup_like_digraph,
)

__all__ = ["DatasetSpec", "dataset_names", "spec", "load", "query_nodes", "scale_factor"]


def scale_factor() -> float:
    """Global size multiplier from the ``REPRO_SCALE`` env var (default 1)."""
    raw = os.environ.get("REPRO_SCALE", "1.0")
    try:
        value = float(raw)
    except ValueError as exc:
        raise ReproError(f"REPRO_SCALE must be a float, got {raw!r}") from exc
    if value <= 0:
        raise ReproError("REPRO_SCALE must be positive")
    return value


@dataclass(frozen=True)
class DatasetSpec:
    """One stand-in dataset and the paper facts it mirrors."""

    name: str
    paper_name: str
    paper_nodes: int
    paper_edges: int
    paper_hgpa_levels: int
    base_nodes: int
    builder: Callable[[int], DiGraph]
    hgpa_levels: int
    description: str

    def build(self) -> DiGraph:
        n = max(64, int(round(self.base_nodes * scale_factor())))
        return self.builder(n).with_dangling_policy("self_loop")


def _email(n: int) -> DiGraph:
    # email-EuAll: very sparse (m/n ≈ 1.6), huge degree-1 periphery.
    return hierarchical_community_digraph(
        n, avg_out_degree=1.8, cross_fraction=0.08, degree_exponent=1.7,
        centers_fraction=0.04, seed=101, name="email-like",
    )


def _web(n: int) -> DiGraph:
    # web-Google: m/n ≈ 5.8, strong host/directory hierarchy.
    return hierarchical_community_digraph(
        n, avg_out_degree=5.8, cross_fraction=0.10, degree_exponent=1.5,
        centers_fraction=0.05, seed=202, name="web-like",
    )


def _youtube(n: int) -> DiGraph:
    # com-Youtube: m/n ≈ 2.6, social communities.
    return hierarchical_community_digraph(
        n, avg_out_degree=2.6, cross_fraction=0.12, degree_exponent=1.6,
        centers_fraction=0.05, seed=303, name="youtube-like",
    )


def _pld(n: int) -> DiGraph:
    # PLD sample: m/n ≈ 6.1 hyperlink graph.
    return hierarchical_community_digraph(
        n, avg_out_degree=6.1, cross_fraction=0.10, degree_exponent=1.5,
        centers_fraction=0.05, seed=404, name="pld-like",
    )


def _pld_full(n: int) -> DiGraph:
    # PLD_full (Appendix B): same family, larger instance, ε = 1e-2 runs.
    return hierarchical_community_digraph(
        n, avg_out_degree=6.1, cross_fraction=0.10, degree_exponent=1.5,
        centers_fraction=0.05, seed=505, name="pld-full-like",
    )


def _meetup(index: int) -> Callable[[int], DiGraph]:
    def build(n: int) -> DiGraph:
        # Meetup M1–M5 (Table 6): dense event co-attendance, m/n ≈ 80–110;
        # scaled here to m/n ≈ 30–40 with the same event mechanism.
        events = int(n * 1.2)
        return meetup_like_digraph(
            n, events, mean_event_size=6.0, seed=600 + index,
            name=f"meetup-M{index}-like",
        )

    return build


_SPECS: dict[str, DatasetSpec] = {}


def _register(spec_: DatasetSpec) -> None:
    _SPECS[spec_.name] = spec_


_register(DatasetSpec(
    "email", "Email (email-EuAll)", 265_214, 420_045, 5,
    base_nodes=1500, builder=_email, hgpa_levels=5,
    description="European research institution email graph",
))
_register(DatasetSpec(
    "web", "Web (web-Google)", 875_713, 5_105_039, 12,
    base_nodes=4000, builder=_web, hgpa_levels=8,
    description="Google programming contest web graph",
))
_register(DatasetSpec(
    "youtube", "Youtube (com-Youtube)", 1_134_890, 2_987_624, 15,
    base_nodes=4500, builder=_youtube, hgpa_levels=9,
    description="Youtube social graph",
))
_register(DatasetSpec(
    "pld", "PLD (Common Crawl sample)", 3_000_000, 18_185_350, 15,
    base_nodes=6000, builder=_pld, hgpa_levels=9,
    description="pay-level-domain hyperlink sample",
))
_register(DatasetSpec(
    "pld_full", "PLD_full (Appendix B)", 101_000_000, 1_940_000_000, 15,
    base_nodes=15_000, builder=_pld_full, hgpa_levels=10,
    description="full hyperlink graph (Amazon EC2 experiment)",
))
for i, (paper_n, paper_m) in enumerate(
    [
        (997_304, 82_966_338),
        (1_197_009, 107_393_088),
        (1_396_054, 129_774_158),
        (1_596_455, 163_320_390),
        (1_796_226, 194_083_414),
    ],
    start=1,
):
    _register(DatasetSpec(
        f"meetup_m{i}", f"Meetup M{i}", paper_n, paper_m, 0,
        base_nodes=600 + 150 * (i - 1), builder=_meetup(i), hgpa_levels=6,
        description="event co-attendance social graph (scalability study)",
    ))


def dataset_names() -> list[str]:
    """All registered stand-in names."""
    return sorted(_SPECS)


def spec(name: str) -> DatasetSpec:
    """Spec for one dataset (raises for unknown names)."""
    try:
        return _SPECS[name]
    except KeyError:
        raise ReproError(
            f"unknown dataset {name!r}; available: {dataset_names()}"
        ) from None


@lru_cache(maxsize=None)
def _load_cached(name: str, scale_key: float) -> DiGraph:
    return spec(name).build()


def load(name: str) -> DiGraph:
    """Build (or fetch from cache) the named stand-in graph."""
    return _load_cached(name, scale_factor())


def query_nodes(graph: DiGraph, count: int, *, seed: int = 9) -> np.ndarray:
    """The evaluation protocol's random query nodes (Section 6.1)."""
    rng = np.random.default_rng(seed)
    count = min(count, graph.num_nodes)
    return rng.choice(graph.num_nodes, size=count, replace=False)
