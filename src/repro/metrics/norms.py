"""Vector-difference accuracy metrics (Section 6.1).

``average_l1`` and ``l_inf`` are the paper's ℓ-norm metrics for comparing a
computed PPV against the power-iteration reference (Figs. 19 and 25):
``L1^avg = Σ_v |r(v) − r̄(v)| / |V|`` and ``L∞ = max_v |r(v) − r̄(v)|``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError

__all__ = ["average_l1", "l_inf", "l1"]


def _check(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape or a.ndim != 1:
        raise ReproError("vectors must be 1-D and of equal length")
    return a, b


def average_l1(a: np.ndarray, b: np.ndarray) -> float:
    """``Σ|a − b| / |V|`` — the paper's average L1-norm."""
    a, b = _check(a, b)
    if a.size == 0:
        return 0.0
    return float(np.abs(a - b).sum() / a.size)


def l1(a: np.ndarray, b: np.ndarray) -> float:
    """Plain ``Σ|a − b|``."""
    a, b = _check(a, b)
    return float(np.abs(a - b).sum())


def l_inf(a: np.ndarray, b: np.ndarray) -> float:
    """``max|a − b|`` — the paper's L∞-norm."""
    a, b = _check(a, b)
    if a.size == 0:
        return 0.0
    return float(np.abs(a - b).max())
