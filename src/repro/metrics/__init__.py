"""Accuracy metrics used throughout the evaluation."""

from repro.metrics.norms import average_l1, l1, l_inf
from repro.metrics.ranking import (
    kendall_tau_at_k,
    precision_at_k,
    rag_at_k,
    top_k_nodes,
)

__all__ = [
    "average_l1",
    "l1",
    "l_inf",
    "top_k_nodes",
    "precision_at_k",
    "rag_at_k",
    "kendall_tau_at_k",
]
