"""Top-k ranking accuracy metrics (Section 6.2.10, following [11, 49]).

Figure 26 compares the top-100 nodes of each algorithm against the
power-iteration result with three measures:

* **Precision@k** — overlap of the two top-k sets.
* **RAG** (relative aggregated goodness [11]) — how much of the best
  attainable top-k "goodness" (sum of exact scores) the approximate top-k
  set captures.
* **Kendall's τ** — fraction-based pair-order agreement over the union of
  the two top-k sets, counting concordant minus discordant pairs.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError

__all__ = ["top_k_nodes", "precision_at_k", "rag_at_k", "kendall_tau_at_k"]


def top_k_nodes(scores: np.ndarray, k: int) -> np.ndarray:
    """Ids of the ``k`` largest entries, best first (ties by id).

    Ties are broken by smaller id *including at the k boundary*: when
    several nodes share the kth score, the smallest ids among them fill
    the remaining slots (argpartition alone would pick an arbitrary
    subset of the tied group).
    """
    scores = np.asarray(scores)
    k = min(k, scores.size)
    if k <= 0:
        return np.empty(0, dtype=np.int64)
    part = np.argpartition(-scores, k - 1)[:k]
    kth = scores[part].min()
    above = np.nonzero(scores > kth)[0]
    tied = np.nonzero(scores == kth)[0][: k - above.size]
    sel = np.concatenate([above, tied])
    return sel[np.lexsort((sel, -scores[sel]))]


def precision_at_k(approx: np.ndarray, exact: np.ndarray, k: int) -> float:
    """``|top_k(approx) ∩ top_k(exact)| / min(k, scores.size)``.

    The denominator is the largest overlap the two sets can achieve: when
    ``k`` exceeds the number of scored nodes, both top-k sets contain
    every node, so a short score vector is graded against ``scores.size``
    rather than the unreachable ``k`` (two identical 3-node vectors score
    1.0 at ``k=100``, not 0.03).  Two empty vectors agree vacuously.
    """
    if k <= 0:
        raise ReproError("k must be positive")
    a = set(top_k_nodes(approx, k).tolist())
    e = set(top_k_nodes(exact, k).tolist())
    # max of both sizes: a one-sided empty vector has zero overlap and
    # must score 0, not a vacuous 1 keyed to the empty side alone.
    denom = min(k, max(np.asarray(approx).size, np.asarray(exact).size))
    if denom == 0:
        return 1.0
    return len(a & e) / denom


def rag_at_k(approx: np.ndarray, exact: np.ndarray, k: int) -> float:
    """Relative aggregated goodness: exact mass captured by approx's top-k."""
    if k <= 0:
        raise ReproError("k must be positive")
    exact = np.asarray(exact, dtype=np.float64)
    a = top_k_nodes(approx, k)
    e = top_k_nodes(exact, k)
    denom = float(exact[e].sum())
    if denom <= 0.0:
        return 1.0
    return float(exact[a].sum()) / denom


def kendall_tau_at_k(approx: np.ndarray, exact: np.ndarray, k: int) -> float:
    """Kendall's τ over the union of both top-k sets.

    Pairs ordered the same way by both score vectors count as concordant;
    opposite orders as discordant; ties in either vector are skipped.
    Returns a value in ``[-1, 1]`` (1 = perfect agreement).
    """
    if k <= 0:
        raise ReproError("k must be positive")
    union = np.union1d(top_k_nodes(approx, k), top_k_nodes(exact, k))
    a = np.asarray(approx, dtype=np.float64)[union]
    e = np.asarray(exact, dtype=np.float64)[union]
    n = union.size
    if n < 2:
        return 1.0
    # O(n²) pair count — n ≤ 2k, tiny for the paper's k=100.
    da = np.sign(a[:, None] - a[None, :])
    de = np.sign(e[:, None] - e[None, :])
    iu = np.triu_indices(n, k=1)
    valid = (da[iu] != 0) & (de[iu] != 0)  # pairs tied in either vector skip
    prod = da[iu][valid] * de[iu][valid]
    if prod.size == 0:
        return 1.0
    concordant = int((prod > 0).sum())
    discordant = int((prod < 0).sum())
    return (concordant - discordant) / prod.size
