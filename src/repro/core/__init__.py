"""The paper's core: exact PPV computation — power iteration, the
Jeh–Widom decomposition, PPV-JW, GPA and HGPA."""

from repro.core.decomposition import (
    as_view,
    expected_iterations,
    partial_vectors,
    skeleton_columns,
    skeleton_single_hub,
    skeleton_vectors_dp,
)
from repro.core.flat_index import FlatPPVIndex, QueryStats
from repro.core.gpa import GPAIndex, build_gpa_index
from repro.core.hgpa import HGPAIndex, build_hgpa_ad_index, build_hgpa_index
from repro.core.incremental import UpdateStats, delete_edge, insert_edge
from repro.core.updates import (
    EdgeUpdate,
    UpdateBatch,
    UpdateReceipt,
    affected_sources,
    apply_edge_update,
    apply_update_batch,
    delete_edge_flat,
    insert_edge_flat,
)
from repro.core.jw import JWIndex, build_jw_index
from repro.core.persistence import load_hgpa_index, save_hgpa_index
from repro.core.linearity import normalize_preference, ppv_for_preference_set
from repro.core.power_iteration import (
    power_iteration_ppv,
    power_iteration_reference,
    preference_vector,
)
from repro.core.sparsevec import SparseVec

__all__ = [
    "SparseVec",
    "QueryStats",
    "power_iteration_ppv",
    "power_iteration_reference",
    "preference_vector",
    "as_view",
    "partial_vectors",
    "skeleton_columns",
    "skeleton_single_hub",
    "skeleton_vectors_dp",
    "expected_iterations",
    "FlatPPVIndex",
    "JWIndex",
    "build_jw_index",
    "GPAIndex",
    "build_gpa_index",
    "HGPAIndex",
    "build_hgpa_index",
    "build_hgpa_ad_index",
    "normalize_preference",
    "ppv_for_preference_set",
    "save_hgpa_index",
    "load_hgpa_index",
    "insert_edge",
    "delete_edge",
    "UpdateStats",
    "EdgeUpdate",
    "UpdateBatch",
    "UpdateReceipt",
    "affected_sources",
    "apply_edge_update",
    "apply_update_batch",
    "insert_edge_flat",
    "delete_edge_flat",
]
