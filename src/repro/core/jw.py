"""PPV-JW: the brute-force extension of Jeh–Widom (Section 2.3).

Hub nodes are the ``k`` highest-PageRank nodes ("most random walks have a
high probability to visit these nodes").  Partial vectors of *every* node
are computed on the whole graph with only those hubs blocking, so nothing
confines their support — the ``O(|V|²)`` worst-case space the paper's GPA
exists to avoid.  Included as the exactness oracle and the space baseline.
"""

from __future__ import annotations

import numpy as np

from repro.core.flat_index import DEFAULT_BATCH, FlatPPVIndex, full_view
from repro.errors import IndexBuildError
from repro.graph.analysis import top_pagerank_nodes
from repro.graph.digraph import DiGraph
from repro.kernels.dispatch import KernelsLike

__all__ = ["JWIndex", "build_jw_index"]


class JWIndex(FlatPPVIndex):
    """Flat index with PageRank-chosen hubs (no partitioning)."""


def build_jw_index(
    graph: DiGraph,
    *,
    num_hubs: int | None = None,
    hubs: np.ndarray | None = None,
    alpha: float = 0.15,
    tol: float = 1e-4,
    prune: float | None = None,
    batch: int = DEFAULT_BATCH,
    kernels: KernelsLike = None,
) -> JWIndex:
    """Pre-compute the PPV-JW index.

    Exactly one of ``num_hubs`` (top-PageRank selection) or an explicit
    ``hubs`` array must be given.  ``prune`` defaults to ``tol`` — stored
    entries below the iteration tolerance carry no information.
    """
    if (num_hubs is None) == (hubs is None):
        raise IndexBuildError("give exactly one of num_hubs or hubs")
    if hubs is None:
        hubs = top_pagerank_nodes(graph, int(num_hubs), alpha=alpha)
    hubs = np.unique(np.asarray(hubs, dtype=np.int64))
    index = JWIndex(
        graph=graph,
        alpha=alpha,
        tol=tol,
        prune=tol if prune is None else prune,
        hubs=hubs,
        kernels=kernels,
    )
    view = full_view(graph)
    hub_local = hubs  # identity mapping on the full view
    index._build_hub_side(view, batch)
    non_hubs = np.setdiff1d(np.arange(graph.num_nodes, dtype=np.int64), hubs)
    index._build_node_partials(view, non_hubs, hub_local, batch)
    return index
