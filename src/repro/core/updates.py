"""Versioned edge updates for every index family — the update pipeline's core.

The paper pre-computes once; a served deployment must keep answering while
the graph changes.  This module is the single entry point the serving
stack builds on:

* :class:`EdgeUpdate` / :class:`UpdateBatch` — the update wire format, a
  declarative ``insert``/``delete`` of one edge (or a sequence of them).
* :func:`apply_edge_update` — functional update of any mutable index
  (:class:`~repro.core.hgpa.HGPAIndex` via the hierarchical chain rebuild
  of :mod:`repro.core.incremental`; :class:`~repro.core.flat_index.
  FlatPPVIndex` families via the affected-column path below).  The old
  index stays valid — staggered rollouts serve the old epoch from it
  while replicas flip one at a time.
* :class:`UpdateReceipt` — what every layer above passes around: whether
  anything changed, the epoch the change produced (filled in by whichever
  layer owns the counter), the *affected sources* report, and the exact
  store-key delta a distributed deployment must re-ship.

Affected sources
----------------
``r_w`` can only change if some walk from ``w`` traverses the updated
edge ``(u, v)`` — i.e. iff ``w`` can reach ``u``.  The reverse-reachable
set of ``u`` is therefore the exact invalidation set: sources outside it
keep *bitwise identical* answers (every stored vector they combine is
untouched, see below), so caches drop exactly these rows and nothing
else.  Out-edge changes at ``u`` never alter who reaches ``u``, so the
set is the same on the old and new graph.

Flat-index incremental path
---------------------------
For PPV-JW and GPA the three stores have different staleness sets:

* hub partials ``P_h`` follow *blocked* walks — ``P_h`` is stale iff
  ``h`` reaches ``u`` through non-hub interior nodes (walks freeze at
  hubs, so a hub ``u`` stales only its own partial);
* skeleton columns ``s_·(h)`` are full PPV values at ``h`` — stale iff
  ``h`` is forward-reachable from the updated edge;
* node partials are blocked like hub partials, and (GPA) confined to the
  updated node's part — the separator keeps every other part untouched.

Only those columns are recomputed, with the same per-column-convergent
solvers the full build uses, so the result is identical to a from-scratch
rebuild over the same partition — the property the serving stack's
1e-12 update-vs-rebuild contract rests on.  A GPA insert that crosses two
parts without touching a hub violates the separator invariant; the repair
mirrors the hierarchical one: ``u`` is promoted into the hub set.
"""

from __future__ import annotations

from typing import Any

import dataclasses
from collections.abc import Iterable, Iterator
from dataclasses import dataclass

import numpy as np

from repro.core.flat_index import DEFAULT_BATCH, FlatPPVIndex, full_view
from repro.core.hgpa import HGPAIndex
from repro.core.incremental import (
    UpdateStats,
    check_endpoints,
    delete_edge,
    insert_edge,
)
from repro.errors import GraphError, UpdateError
from repro.graph.digraph import DiGraph
from repro.graph.subgraph import VirtualSubgraph
from repro.partition.flat import FlatPartition

__all__ = [
    "INSERT",
    "DELETE",
    "UPDATE_WIRE_BYTES",
    "EdgeUpdate",
    "UpdateBatch",
    "UpdateReceipt",
    "affected_sources",
    "apply_edge_update",
    "apply_update_batch",
    "insert_edge_flat",
    "delete_edge_flat",
]

INSERT = "insert"
DELETE = "delete"

UPDATE_WIRE_BYTES = 24
"""Bytes one edge update occupies on a wire: op tag + two int64 node ids
(with alignment) — what update fan-out traffic is metered as."""


@dataclass(frozen=True)
class EdgeUpdate:
    """One declarative edge mutation: ``op`` is ``"insert"`` / ``"delete"``."""

    op: str
    u: int
    v: int

    def __post_init__(self) -> None:
        if self.op not in (INSERT, DELETE):
            raise UpdateError(
                f"unknown update op {self.op!r} (expected {INSERT!r} or {DELETE!r})"
            )
        if self.u != int(self.u) or self.v != int(self.v):
            raise UpdateError(f"edge endpoints must be integers: ({self.u}, {self.v})")

    @classmethod
    def insert(cls, u: int, v: int) -> "EdgeUpdate":
        return cls(INSERT, int(u), int(v))

    @classmethod
    def delete(cls, u: int, v: int) -> "EdgeUpdate":
        return cls(DELETE, int(u), int(v))

    def inverse(self) -> "EdgeUpdate":
        """The update that undoes this one."""
        return EdgeUpdate(DELETE if self.op == INSERT else INSERT, self.u, self.v)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        arrow = "+" if self.op == INSERT else "-"
        return f"{arrow}({self.u}->{self.v})"


@dataclass(frozen=True)
class UpdateBatch:
    """An ordered sequence of :class:`EdgeUpdate`\\ s applied atomically."""

    updates: tuple[EdgeUpdate, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "updates", tuple(self.updates))
        for upd in self.updates:
            if not isinstance(upd, EdgeUpdate):
                raise UpdateError(f"UpdateBatch holds EdgeUpdates, got {upd!r}")

    def __iter__(self) -> Iterator[EdgeUpdate]:
        return iter(self.updates)

    def __len__(self) -> int:
        return len(self.updates)


@dataclass(frozen=True)
class UpdateReceipt:
    """Everything a layer above needs to know about one applied update.

    ``epoch`` is the version the update produced *at the layer that issued
    the receipt* — the core sets 0 and every epoch-owning layer stamps its
    own counter via :meth:`at_epoch`.  ``affected_sources`` is the sorted
    set of source nodes whose PPVs may differ from the previous epoch
    (exact invalidation set; see the module docstring).
    """

    update: EdgeUpdate
    changed: bool
    epoch: int
    affected_sources: np.ndarray
    stats: UpdateStats

    def __post_init__(self) -> None:
        arr = np.asarray(self.affected_sources, dtype=np.int64)
        arr.flags.writeable = False
        object.__setattr__(self, "affected_sources", arr)

    @property
    def num_affected(self) -> int:
        return int(self.affected_sources.size)

    def at_epoch(self, epoch: int) -> "UpdateReceipt":
        """A copy stamped with the caller's epoch counter."""
        return dataclasses.replace(self, epoch=int(epoch))


# ----------------------------------------------------------------------
# Reachability closures.
# ----------------------------------------------------------------------
def _closure(
    indptr: np.ndarray,
    indices: np.ndarray,
    seeds: Iterable[int] | np.ndarray,
    through: np.ndarray | None = None,
) -> np.ndarray:
    """Nodes reachable from ``seeds`` along the given adjacency.

    ``through`` (a boolean mask) restricts which *interior* nodes the
    traversal may pass through; seeds always expand, and blocked nodes are
    still reported when reached (they end paths, they don't hide them).
    """
    n = indptr.size - 1
    visited = np.zeros(n, dtype=bool)
    frontier = np.unique(np.asarray(seeds, dtype=np.int64))
    visited[frontier] = True
    while frontier.size:
        counts = (indptr[frontier + 1] - indptr[frontier]).astype(np.int64)
        total = int(counts.sum())
        if total == 0:
            break
        offsets = np.zeros(frontier.size + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        flat = (
            np.arange(total, dtype=np.int64)
            - np.repeat(offsets[:-1], counts)
            + np.repeat(indptr[frontier].astype(np.int64), counts)
        )
        neigh = np.unique(np.asarray(indices[flat], dtype=np.int64))
        new = neigh[~visited[neigh]]
        visited[new] = True
        frontier = new if through is None else new[through[new]]
    return np.nonzero(visited)[0].astype(np.int64)


def affected_sources(graph: DiGraph, u: int) -> np.ndarray:
    """Sorted source nodes whose PPV can change when an out-edge of ``u``
    is inserted or deleted — the reverse-reachable set of ``u``.

    Sources outside this set keep bitwise-identical answers across the
    update, so it is exactly what serving caches invalidate.
    """
    if not 0 <= u < graph.num_nodes:
        raise GraphError(f"node {u} not in graph (num_nodes={graph.num_nodes})")
    rev = graph.in_csr()
    return _closure(rev.indptr, rev.indices, [u])


# ----------------------------------------------------------------------
# Flat-index (PPV-JW / GPA) incremental path.
# ----------------------------------------------------------------------
def _flat_noop(index: FlatPPVIndex) -> UpdateStats:
    total = (
        len(index.hub_partials)
        + len(index.skeleton_cols)
        + len(index.node_partials)
    )
    return UpdateStats(False, None, 0, 0, total)


def _flat_update(
    index: FlatPPVIndex, u: int, v: int, *, insert: bool
) -> tuple[FlatPPVIndex, UpdateStats]:
    graph = index.graph
    n = graph.num_nodes
    check_endpoints(graph, u, v)
    if insert:
        if graph.has_edge(u, v):
            return index, _flat_noop(index)
    else:
        if not graph.has_edge(u, v):
            return index, _flat_noop(index)
        if graph.out_degree(u) == 1:
            raise GraphError(
                f"removing ({u}, {v}) would leave node {u} dangling; "
                "normalise the graph first"
            )
    src, dst = graph.edge_arrays()
    if insert:
        new_graph = DiGraph.from_arrays(
            n,
            np.concatenate([src, [u]]),
            np.concatenate([dst, [v]]),
            name=graph.name,
        )
    else:
        keep = ~((src == u) & (dst == v))
        new_graph = DiGraph.from_arrays(n, src[keep], dst[keep], name=graph.name)

    hubs = index.hubs
    hub_mask = np.zeros(n, dtype=bool)
    hub_mask[hubs] = True
    u_is_hub = bool(hub_mask[u])

    partition = getattr(index, "partition", None)
    promoted: int | None = None
    new_hubs = hubs
    new_partition = partition
    if partition is not None:
        if (
            insert
            and not u_is_hub
            and not hub_mask[v]
            and int(partition.labels[u]) != int(partition.labels[v])
        ):
            # The new edge bypasses the separator: promote u into the hub
            # set (the flat mirror of the hierarchical repair — after it,
            # no tour can cross between parts without touching a hub).
            promoted = u
            new_hubs = np.insert(hubs, int(np.searchsorted(hubs, u)), u)
            part_of_u = int(partition.labels[u])
            new_part_nodes = [
                nodes if p != part_of_u else nodes[nodes != u]
                for p, nodes in enumerate(partition.part_nodes)
            ]
        else:
            new_part_nodes = partition.part_nodes
        new_partition = FlatPartition(
            graph=new_graph,
            num_parts=partition.num_parts,
            labels=partition.labels,
            hubs=new_hubs,
            part_nodes=new_part_nodes,
        )

    # Staleness sets, computed on the old graph (out-edge changes at u do
    # not alter who reaches u).  Walks freeze at hubs, so an update at a
    # hub node stales only its own partial vector.
    if u_is_hub:
        blocked = np.asarray([u], dtype=np.int64)
    else:
        rev = graph.in_csr()
        blocked = _closure(rev.indptr, rev.indices, [u], through=~hub_mask)
    seeds = [u, v] if insert else [u]
    forward = _closure(graph.indptr, graph.indices, seeds)

    stale_hub_partials = blocked[hub_mask[blocked]]
    stale_skels = forward[hub_mask[forward]]
    stale_parts = blocked[~hub_mask[blocked]]

    overrides: dict[Any, Any] = dict(
        graph=new_graph,
        hubs=new_hubs,
        hub_partials=dict(index.hub_partials),
        skeleton_cols=dict(index.skeleton_cols),
        node_partials=dict(index.node_partials),
        build_cost=dict(index.build_cost),
        _ops_cache=None,
    )
    if partition is not None:
        overrides["partition"] = new_partition
    new_index = dataclasses.replace(index, **overrides)

    dropped: set[tuple[Any, ...]] = set()
    if promoted is not None:
        new_index.node_partials.pop(u, None)
        new_index.build_cost.pop(("part", u), None)
        dropped.add(("part", u))
        stale_hub_partials = np.union1d(stale_hub_partials, [u])
        stale_skels = np.union1d(stale_skels, [u])
        stale_parts = stale_parts[stale_parts != u]

    view = full_view(new_graph)
    new_index._build_hub_partials(view, stale_hub_partials, DEFAULT_BATCH)
    new_index._build_hub_skeletons(view, stale_skels, DEFAULT_BATCH)
    rebuilt: set[tuple[Any, ...]] = {("hub", int(h)) for h in stale_hub_partials.tolist()}
    rebuilt |= {("skel", int(h)) for h in stale_skels.tolist()}

    if stale_parts.size:
        if new_partition is not None:
            # Blocked paths cannot cross the separator, so every stale
            # source lives in u's part — one confined view rebuild.
            for nodes in new_partition.part_nodes:
                mine = np.intersect1d(stale_parts, nodes)
                if mine.size == 0:
                    continue
                pview = VirtualSubgraph(
                    new_graph, np.concatenate([nodes, new_hubs])
                )
                hub_local = np.asarray(
                    pview.to_local(new_hubs), dtype=np.int64
                )
                new_index._build_node_partials(
                    pview, mine, hub_local, DEFAULT_BATCH
                )
        else:
            new_index._build_node_partials(
                view, stale_parts, new_hubs, DEFAULT_BATCH
            )
        rebuilt |= {("part", int(w)) for w in stale_parts.tolist()}

    total = (
        len(new_index.hub_partials)
        + len(new_index.skeleton_cols)
        + len(new_index.node_partials)
    )
    stats = UpdateStats(
        changed=True,
        promoted_hub=promoted,
        rebuilt_subgraphs=0,
        rebuilt_vectors=len(rebuilt),
        total_vectors=total,
        rebuilt_keys=frozenset(rebuilt),
        dropped_keys=frozenset(dropped - rebuilt),
    )
    return new_index, stats


def insert_edge_flat(
    index: FlatPPVIndex, u: int, v: int
) -> tuple[FlatPPVIndex, UpdateStats]:
    """Return a new flat index for ``graph + (u → v)``, rebuilt minimally."""
    return _flat_update(index, u, v, insert=True)


def delete_edge_flat(
    index: FlatPPVIndex, u: int, v: int
) -> tuple[FlatPPVIndex, UpdateStats]:
    """Return a new flat index for ``graph − (u → v)``, rebuilt minimally."""
    return _flat_update(index, u, v, insert=False)


# ----------------------------------------------------------------------
# The uniform entry point.
# ----------------------------------------------------------------------
def apply_edge_update(
    index: HGPAIndex | FlatPPVIndex, update: EdgeUpdate
) -> tuple[HGPAIndex | FlatPPVIndex, UpdateReceipt]:
    """Apply one :class:`EdgeUpdate` to any mutable index, functionally.

    Returns ``(new_index, receipt)``; the old index stays valid for the
    old graph (untouched vectors are shared, not copied).  The receipt's
    ``epoch`` is 0 — layers that own an epoch counter stamp their own via
    :meth:`UpdateReceipt.at_epoch`.
    """
    if not isinstance(update, EdgeUpdate):
        raise UpdateError(f"expected an EdgeUpdate, got {update!r}")
    if isinstance(index, HGPAIndex):
        fn = insert_edge if update.op == INSERT else delete_edge
        new_index, stats = fn(index, update.u, update.v)
    elif isinstance(index, FlatPPVIndex):
        new_index, stats = _flat_update(
            index, update.u, update.v, insert=update.op == INSERT
        )
    else:
        raise UpdateError(
            f"{type(index).__name__} does not support incremental edge updates"
        )
    affected = (
        affected_sources(new_index.graph, update.u)
        if stats.changed
        else np.empty(0, dtype=np.int64)
    )
    receipt = UpdateReceipt(
        update=update,
        changed=stats.changed,
        epoch=0,
        affected_sources=affected,
        stats=stats,
    )
    return new_index, receipt


def apply_update_batch(
    index: HGPAIndex | FlatPPVIndex,
    batch: UpdateBatch | Iterable[EdgeUpdate],
) -> tuple[HGPAIndex | FlatPPVIndex, list[UpdateReceipt]]:
    """Apply an :class:`UpdateBatch` (or iterable of updates) in order.

    Returns ``(new_index, receipts)`` — one receipt per update, in
    application order.
    """
    receipts: list[UpdateReceipt] = []
    for update in batch:
        index, receipt = apply_edge_update(index, update)
        receipts.append(receipt)
    return index, receipts
