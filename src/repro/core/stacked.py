"""Exportable views of the stacked query-op buffers.

The query ops of every engine in this repo are a handful of flat arrays:
a stacked partial-vector CSC, a stacked skeleton CSR and a few int
vectors (see :meth:`repro.core.flat_index.FlatPPVIndex._ops` and
:meth:`repro.distributed.cluster.ClusterBase._stack_ops`).  That layout —
already ``np.shares_memory``-disciplined so store vectors can alias the
stacked buffers — is exactly what zero-copy sharing across processes
needs: this module provides the round trip between matrices/vector
stores and plain named arrays, so :mod:`repro.exec.shm` can publish the
arrays in one ``multiprocessing.shared_memory`` segment and a worker can
rebuild byte-identical matrices as read-only views without copying.

Nothing here touches shared memory itself; these helpers work on any
buffers, which is what keeps them unit-testable in-process.
"""

from __future__ import annotations

from typing import Any

import numpy as np
import scipy.sparse as sp

from repro.core.sparsevec import SparseVec

__all__ = [
    "matrix_arrays",
    "csc_from_arrays",
    "csr_from_arrays",
    "pack_vectors",
    "unpack_vectors",
]


def matrix_arrays(mat: sp.spmatrix) -> dict[str, np.ndarray]:
    """The three flat buffers of a CSC/CSR matrix, by canonical name."""
    return {"data": mat.data, "indices": mat.indices, "indptr": mat.indptr}


def _from_arrays(
    cls: type[Any],
    data: np.ndarray,
    indices: np.ndarray,
    indptr: np.ndarray,
    shape: tuple[int, int],
) -> sp.spmatrix:
    """Rebuild a compressed matrix *around* existing buffers.

    The scipy constructors copy (and may downcast) index arrays; going
    through an empty matrix and assigning the attributes keeps the given
    arrays — typically read-only shared-memory views — as the matrix's
    actual storage.  The stacked builders emit per-column-sorted indices
    (SparseVec order), so the sorted flag is asserted rather than
    recomputed: a later ``sort_indices()`` no-ops instead of attempting
    an in-place sort of a read-only buffer.
    """
    mat = cls(shape)
    mat.data = data
    mat.indices = indices
    mat.indptr = indptr
    mat.has_sorted_indices = True
    return mat


def csc_from_arrays(
    data: np.ndarray,
    indices: np.ndarray,
    indptr: np.ndarray,
    shape: tuple[int, int],
) -> sp.csc_matrix:
    """Zero-copy CSC over existing (possibly read-only) buffers."""
    return _from_arrays(sp.csc_matrix, data, indices, indptr, shape)


def csr_from_arrays(
    data: np.ndarray,
    indices: np.ndarray,
    indptr: np.ndarray,
    shape: tuple[int, int],
) -> sp.csr_matrix:
    """Zero-copy CSR over existing (possibly read-only) buffers."""
    return _from_arrays(sp.csr_matrix, data, indices, indptr, shape)


def pack_vectors(
    vecs: list[SparseVec],
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Concatenate sparse vectors into ``(indptr, idx, val)`` flat arrays.

    The inverse of :func:`unpack_vectors`; vector ``j`` occupies the
    half-open slice ``indptr[j]:indptr[j+1]`` of ``idx``/``val``.
    """
    indptr = np.zeros(len(vecs) + 1, dtype=np.int64)
    if vecs:
        np.cumsum([v.nnz for v in vecs], out=indptr[1:])
        idx = np.concatenate([v.idx for v in vecs])
        val = np.concatenate([v.val for v in vecs])
    else:
        idx = np.empty(0, dtype=np.int64)
        val = np.empty(0, dtype=np.float64)
    return indptr, idx, val


def unpack_vectors(
    indptr: np.ndarray, idx: np.ndarray, val: np.ndarray
) -> list[SparseVec]:
    """Rebuild the packed vectors as trusted *views* of the flat buffers."""
    return [
        SparseVec(
            idx[indptr[j] : indptr[j + 1]],
            val[indptr[j] : indptr[j + 1]],
            _trusted=True,
        )
        for j in range(indptr.size - 1)
    ]
