"""HGPA — the hierarchical graph-partition algorithm (Section 4).

The graph is recursively partitioned into a hub-separated hierarchy.  For
each internal subgraph ``G`` with hub set ``H(G)`` the index stores

* adjusted partial vectors ``P_h[G]`` of its hubs, computed *inside* the
  virtual subgraph ``G̃`` (Theorem 2), and
* skeleton columns ``s_·[G](h)`` — the local PPV value at ``h`` from every
  node of ``G`` (Eq. 8 run inside ``G̃``);

plus, for every leaf subgraph, the full local PPV of each member.  A query
walks the chain of subgraphs containing ``u`` and evaluates Eq. 6:

    ``r_u = Σ_m (1/α) Σ_{h∈H(G_m^{(u)})} S_u[G_m](h)·P_h[G_m] + base``

where the base term is the leaf-level local PPV for non-hub nodes, or the
hub's own (unadjusted) partial vector when ``u`` was selected as a hub.
``HGPA_ad`` (Section 6.2.9) is the same index built with
``prune=1e-4`` — offline scores below that threshold are discarded.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Any

import numpy as np
import scipy.sparse as sp

from repro.core.decomposition import partial_vectors, skeleton_columns
from repro.core.flat_index import (
    DEFAULT_BATCH,
    QueryStats,
    csr_row_dense,
    find_sorted,
    run_in_batches,
    stack_columns,
    topk_in_batches,
    validate_batch,
)
from repro.core.sparse_ops import (
    finalize_csr,
    fold_depth_blocks,
    point_matrix,
    rows_matrix,
    sparse_add,
    sparse_in_batches,
    spgemm_scaled,
    subtract_at,
    weight_row_stats,
    zero_rows_in_columns,
)
from repro.core.sparsevec import SparseVec
from repro.kernels.dispatch import KernelsLike
from repro.errors import IndexBuildError, QueryError
from repro.graph.digraph import DiGraph
from repro.graph.subgraph import VirtualSubgraph
from repro.partition.hierarchy import PartitionHierarchy, build_hierarchy

__all__ = ["HGPAIndex", "build_hgpa_index", "build_hgpa_ad_index"]


@dataclass
class HGPAIndex:
    """Pre-computed hierarchy of partial vectors, skeletons and leaf PPVs.

    All vectors are stored in *global* coordinates.  ``hub_partials[h]`` is
    the adjusted ``P_h`` within the subgraph whose hub set contains ``h``;
    ``skeleton_cols[h]`` holds ``s_u[G](h)`` for every ``u`` in that same
    subgraph; ``leaf_ppv[u]`` is the local PPV of non-hub node ``u`` w.r.t.
    its leaf subgraph.
    """

    graph: DiGraph
    hierarchy: PartitionHierarchy
    alpha: float
    tol: float
    prune: float
    hub_partials: dict[int, SparseVec] = field(default_factory=dict)
    skeleton_cols: dict[int, SparseVec] = field(default_factory=dict)
    leaf_ppv: dict[int, SparseVec] = field(default_factory=dict)
    build_cost: dict[tuple[Any, ...], float] = field(default_factory=dict)
    #: Kernel bundle / backend name the index's hot loops dispatch to
    #: (``None`` = the process default from the capability probe).
    kernels: KernelsLike = None
    _level_ops_cache: dict[int, tuple[Any, ...]] = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------
    def query(self, u: int) -> np.ndarray:
        """Exact PPV of node ``u`` (dense), via the vectorised fast path.

        Per hierarchy level this stacks the level's hub partials into one
        CSC matrix and its skeleton columns into one CSR matrix (cached),
        so a query is a handful of sparse matrix-vector products instead of
        per-hub Python loops — the layout an optimised implementation of
        Algorithm 1 would use.
        """
        if not 0 <= u < self.graph.num_nodes:
            raise QueryError(f"query node {u} out of range")
        n = self.graph.num_nodes
        acc = np.zeros(n)
        chain = self.hierarchy.chain(u)
        u_is_hub = self.hierarchy.is_hub(u)
        inv_alpha = 1.0 / self.alpha
        for sg in chain:
            if sg.hubs.size == 0:
                continue
            part_csc, skel_csr, hubs = self._level_ops(sg.node_id)
            weights = csr_row_dense(skel_csr, u)
            own_level = u_is_hub and sg is chain[-1]
            if own_level:
                adjusted = weights.copy()
                pos = int(np.searchsorted(hubs, u))
                adjusted[pos] -= self.alpha
                acc += part_csc @ (adjusted * inv_alpha)
            else:
                snapshot = acc[hubs].copy()
                acc += part_csc @ (weights * inv_alpha)
                acc[hubs] = snapshot + weights  # port repair (see below)
        if u_is_hub:
            self.hub_partials[u].add_into(acc)
            acc[u] += self.alpha
        else:
            self.leaf_ppv[u].add_into(acc)
        return acc

    def _level_ops(self, sid: int) -> tuple[Any, ...]:
        """Cached (stacked hub partials CSC, stacked skeleton CSR, hubs)."""
        cached = self._level_ops_cache.get(sid)
        if cached is not None:
            return cached
        sg = self.hierarchy.subgraphs[sid]
        hubs = sg.hubs
        n = self.graph.num_nodes
        part_csc = stack_columns([self.hub_partials[h] for h in hubs.tolist()], n)
        skel_csr = stack_columns(
            [self.skeleton_cols[h] for h in hubs.tolist()], n
        ).tocsr()
        ops = (part_csc, skel_csr, hubs)
        self._level_ops_cache[sid] = ops
        return ops

    def invalidate_cache(self) -> None:
        """Drop the stacked-matrix caches (call after mutating the stores)."""
        self._level_ops_cache.clear()

    def query_many(
        self,
        nodes: Sequence[int] | np.ndarray,
        *,
        collect_stats: bool = True,
    ) -> tuple[np.ndarray, list[QueryStats]]:
        """Batched exact PPVs (Eq. 6): one sparse matmul per level group.

        Queries are grouped by the hierarchy subgraphs their chains
        traverse; each group's skeleton weights come from one CSR row
        slice and its level term from one ``CSC @ weights`` product, so
        the per-hub work is shared across the whole batch.  Returns a
        dense ``(len(nodes), n)`` matrix plus per-query work counters.
        ``collect_stats=False`` skips the per-query counter bookkeeping
        (pure overhead on the serving hot path) and returns an empty
        metadata list; the result matrix is identical.
        """
        n = self.graph.num_nodes
        nodes = validate_batch(nodes, n)
        if nodes.size > DEFAULT_BATCH:
            # Bound the dense (n, batch) accumulator.
            return run_in_batches(
                lambda chunk: self.query_many(
                    chunk, collect_stats=collect_stats
                ),
                nodes,
            )
        stats = [QueryStats() for _ in range(nodes.size)] if collect_stats else []
        order, members, hub_flags, _ = _chain_membership(self.hierarchy, nodes)
        ordered = nodes[order]
        acc = np.zeros((n, nodes.size))  # level terms, ordered columns
        inv_alpha = 1.0 / self.alpha
        for sid, (lo, hi, own_list) in members.items():
            part_csc, skel_csr, hubs = self._level_ops(sid)
            nnz_per_hub = np.diff(part_csc.indptr)
            own_arr = np.asarray(own_list, dtype=bool)
            qnodes = ordered[lo:hi]
            raw = skel_csr[qnodes].toarray()
            weights = raw.copy()
            own_rows = np.nonzero(own_arr)[0]
            if own_rows.size:
                # Hub queries at their own level: the f_u(h) adjustment.
                hits, pos = find_sorted(hubs, qnodes[own_rows])
                weights[own_rows[hits], pos[hits]] -= self.alpha
            level = part_csc @ (weights.T * inv_alpha)
            rest = np.nonzero(~own_arr)[0]
            if rest.size:
                # Port repair: a non-own level contributes exactly the raw
                # skeleton weights at its own hub coordinates (see
                # query_detailed).
                level[np.ix_(hubs, rest)] = raw[rest].T
            acc[:, lo:hi] += level
            if collect_stats:
                used = weights != 0.0
                counts = used.sum(axis=1)
                entries = used.astype(np.int64) @ nnz_per_hub
                for k in range(hi - lo):
                    s = stats[order[lo + k]]
                    s.skeleton_lookups += int(hubs.size)
                    s.vectors_used += int(counts[k])
                    s.entries_processed += int(entries[k])
        out = np.empty((nodes.size, n))
        out[order] = acc.T
        for qpos, u in enumerate(nodes.tolist()):
            if hub_flags[qpos]:
                own = self.hub_partials[u]
                own.add_into(out[qpos])
                out[qpos, u] += self.alpha
            else:
                own = self.leaf_ppv[u]
                own.add_into(out[qpos])
            if collect_stats:
                stats[qpos].entries_processed += own.nnz
                stats[qpos].vectors_used += 1
        return out, stats

    def query_many_sparse(
        self,
        nodes: Sequence[int] | np.ndarray,
        *,
        collect_stats: bool = True,
    ) -> tuple[sp.csr_matrix, list[QueryStats]]:
        """Batched exact PPVs as a CSR ``(len(nodes), n)`` matrix.

        The sparse accumulation mode of the batch path: each level
        group's term is a sparse×sparse ``part_csc @ sparse_weights``
        CSR block, the port repair is a structural zero-out plus a
        scattered skeleton-value add, and blocks are merged per chain
        group by sparse addition — the dense ``(n, batch)`` accumulator
        of :meth:`query_many` never exists.  On pruned indexes
        (``HGPA_ad``) the peak footprint is proportional to the PPVs'
        true support, which is what lets batched HGPA *beat* its
        per-query matmul path instead of matching it.  Agrees with the
        dense path exactly (``toarray()`` equality); counters match the
        dense path except ``skeleton_lookups``, which charges the actual
        nnz skeleton entries read per level rather than full hub scans.
        """
        n = self.graph.num_nodes
        nodes = validate_batch(nodes, n)
        if nodes.size > DEFAULT_BATCH:
            # Bound the per-chunk sparse blocks like the dense path.
            return sparse_in_batches(
                lambda chunk: self.query_many_sparse(
                    chunk, collect_stats=collect_stats
                ),
                nodes,
                DEFAULT_BATCH,
            )
        stats = [QueryStats() for _ in range(nodes.size)] if collect_stats else []
        if nodes.size == 0:
            return sp.csr_matrix((0, n)), stats
        order, members, hub_flags, depth_of = _chain_membership(
            self.hierarchy, nodes
        )
        ordered = nodes[order]
        inv_alpha = 1.0 / self.alpha
        # Level-term CSC blocks bucketed by chain depth: same-depth
        # subgraphs cover disjoint query slices, so a whole depth merges
        # by concatenation (port-repair values included as one scattered
        # add per depth) and the accumulator fold costs one sparse add
        # per depth — per entry, terms still add in chain order, exactly
        # the dense accumulation sequence.
        by_depth: dict[int, list[tuple[int, sp.csc_matrix]]] = {}
        ports: dict[int, list[tuple[np.ndarray, np.ndarray, np.ndarray]]] = {}
        for sid, (lo, hi, own_list) in members.items():
            part_csc, skel_csr, hubs = self._level_ops(sid)
            nnz_per_hub = np.diff(part_csc.indptr)
            own_arr = np.asarray(own_list, dtype=bool)
            qnodes = ordered[lo:hi]
            raw = skel_csr[qnodes]  # sparse (hi-lo, |hubs|) weight rows
            weights = raw
            own_rows = np.nonzero(own_arr)[0]
            if own_rows.size:
                # Hub queries at their own level: the f_u(h) adjustment.
                hits, pos = find_sorted(hubs, qnodes[own_rows])
                weights = subtract_at(
                    raw, own_rows[hits], pos[hits], self.alpha
                )
            level = spgemm_scaled(
                part_csc, weights, inv_alpha, kernels=self.kernels
            )
            rest = np.nonzero(~own_arr)[0]
            if rest.size:
                # Port repair, sparse form: the dense overwrite splits
                # into zeroing the matmul contribution at the level's hub
                # coordinates and adding the raw skeleton values there
                # (collected per depth, added after assembly).
                rest_mask = np.zeros(hi - lo, dtype=bool)
                rest_mask[rest] = True
                zero_rows_in_columns(level, hubs, rest_mask)
                raw_rest = raw[rest]
                port_cols = lo + rest[
                    np.repeat(np.arange(rest.size), np.diff(raw_rest.indptr))
                ]
                ports.setdefault(depth_of[sid], []).append(
                    (hubs[raw_rest.indices], port_cols, raw_rest.data)
                )
            by_depth.setdefault(depth_of[sid], []).append((lo, level))
            if collect_stats:
                counts, entries = weight_row_stats(weights, nnz_per_hub)
                # Sparse-aware accounting: charge each query's actual nnz
                # skeleton lookups at this level — the dense path scans
                # (and is charged) the level's full hub set.
                looked = np.diff(raw.indptr)
                for k in range(hi - lo):
                    s = stats[order[lo + k]]
                    s.skeleton_lookups += int(looked[k])
                    s.vectors_used += int(counts[k])
                    s.entries_processed += int(entries[k])
        acc = fold_depth_blocks(
            by_depth, ports, nodes.size, n, kernels=self.kernels
        )
        if acc is None:
            out = sp.csr_matrix((nodes.size, n))
        else:
            inv_order = np.empty_like(order)
            inv_order[order] = np.arange(order.size)
            out = acc.T.tocsr()[inv_order]
        vecs = []
        alpha_rows: list[int] = []
        alpha_cols: list[int] = []
        for qpos, u in enumerate(nodes.tolist()):
            if hub_flags[qpos]:
                own = self.hub_partials[u]
                alpha_rows.append(qpos)
                alpha_cols.append(u)
            else:
                own = self.leaf_ppv[u]
            vecs.append(own)
            if collect_stats:
                stats[qpos].entries_processed += own.nnz
                stats[qpos].vectors_used += 1
        out = sparse_add(out, rows_matrix(vecs, n), kernels=self.kernels)
        if alpha_rows:
            out = sparse_add(
                out,
                point_matrix(
                    np.asarray(alpha_rows),
                    np.asarray(alpha_cols),
                    np.full(len(alpha_rows), self.alpha),
                    (nodes.size, n),
                ),
                kernels=self.kernels,
            )
        return finalize_csr(out, (nodes.size, n)), stats

    def query_topk(
        self, u: int, k: int, *, threshold: float | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Top-``k`` of the exact PPV of ``u``: ``(ids, scores)``, best first.

        Ties break by smaller id; ``k`` larger than the graph returns all
        ``n`` nodes.  ``threshold`` drops entries with ``score <=
        threshold`` before the k-cut (tail padded with id ``-1`` / score
        ``0.0``).
        """
        ids, scores, _ = self.query_many_topk(
            np.asarray([u]), k, threshold=threshold
        )
        return ids[0], scores[0]

    def query_many_topk(
        self,
        nodes: Sequence[int] | np.ndarray,
        k: int,
        *,
        batch: int = DEFAULT_BATCH,
        threshold: float | None = None,
    ) -> tuple[np.ndarray, np.ndarray, list[QueryStats]]:
        """Batched top-``k`` queries without materialising full PPVs.

        Each ``batch``-sized chunk runs through :meth:`query_many` (one
        sparse matmul per level group) and is reduced to its per-row
        top-k before the next chunk is evaluated, bounding the dense
        intermediates at one ``(batch, n)`` block.  ``threshold`` applies
        the :func:`repro.core.flat_index.topk_rows` score cut per row.
        """
        n = self.graph.num_nodes
        nodes = validate_batch(nodes, n)
        return topk_in_batches(
            self.query_many, nodes, k, n, batch, threshold,
            kernels=self.kernels,
        )

    def query_detailed(self, u: int) -> tuple[np.ndarray, QueryStats]:
        """PPV of ``u`` plus work counters (Eq. 6 evaluation).

        For every level above ``u``'s own, the recursion substitutes the
        next level's local PPV for the true partial vector, which omits the
        first-passage ("port") mass deposited *at* that level's hubs.  The
        algebra of the hubs theorem gives the exact repair: the level term
        evaluated at its own hub coordinates must equal the local skeleton
        values ``s_u[G_m](ĥ)``, so those coordinates are overwritten.
        """
        if not 0 <= u < self.graph.num_nodes:
            raise QueryError(f"query node {u} out of range")
        acc = np.zeros(self.graph.num_nodes)
        stats = QueryStats()
        inv_alpha = 1.0 / self.alpha
        chain = self.hierarchy.chain(u)
        u_is_hub = self.hierarchy.is_hub(u)
        for sg in chain:
            if sg.hubs.size == 0:
                continue
            own_level = u_is_hub and sg is chain[-1]
            hubs = sg.hubs.tolist()
            skel_vals = np.asarray(
                [self.skeleton_cols[h].get(u) for h in hubs]
            )
            stats.skeleton_lookups += len(hubs)
            if not own_level:
                snapshot = acc[sg.hubs].copy()
            for pos, h in enumerate(hubs):
                weight = float(skel_vals[pos])
                if h == u:
                    weight -= self.alpha
                if weight == 0.0:
                    continue
                part = self.hub_partials[h]
                part.add_into(acc, weight * inv_alpha)
                stats.entries_processed += part.nnz
                stats.vectors_used += 1
            if not own_level:
                # Port repair: this level contributes exactly s_u[G_m](ĥ)
                # at its own hub coordinates.
                acc[sg.hubs] = snapshot + skel_vals
        if u_is_hub:
            own = self.hub_partials[u]
            own.add_into(acc)
            acc[u] += self.alpha  # un-adjust P_u back to p_u
            stats.entries_processed += own.nnz
        else:
            own = self.leaf_ppv[u]
            own.add_into(acc)
            stats.entries_processed += own.nnz
        stats.vectors_used += 1
        return acc, stats

    # ------------------------------------------------------------------
    def space_report(self) -> dict[str, int]:
        """Wire bytes of the stored vectors, by category."""
        return {
            "hub_partials": sum(v.wire_bytes for v in self.hub_partials.values()),
            "skeleton": sum(v.wire_bytes for v in self.skeleton_cols.values()),
            "leaf_ppv": sum(v.wire_bytes for v in self.leaf_ppv.values()),
        }

    def total_bytes(self) -> int:
        return sum(self.space_report().values())

    def total_nnz(self) -> int:
        stores = (self.hub_partials, self.skeleton_cols, self.leaf_ppv)
        return sum(v.nnz for store in stores for v in store.values())

    def offline_seconds(self) -> float:
        """Total measured pre-computation work (all tasks, one machine)."""
        return float(sum(self.build_cost.values()))


def _chain_membership(
    hierarchy: PartitionHierarchy, nodes: np.ndarray
) -> tuple[
    np.ndarray,
    dict[int, tuple[int, int, list[bool]]],
    np.ndarray,
    dict[int, int],
]:
    """Group queries by the subgraphs their chains traverse.

    Queries are ordered lexicographically by chain, so every subgraph's
    member set becomes one *contiguous* slice of the ordered batch (a
    subgraph's members are exactly the queries whose chain starts with
    the unique root→subgraph path).  Batched query paths can then
    accumulate each level term with a plain block add instead of a
    strided scatter.

    Returns ``(order, members, hub_flags, depth_of)``: ``order[k]`` is
    the original position of the ``k``-th ordered query; ``members``
    maps subgraph id to ``(lo, hi, own-level flags)`` over ordered
    positions; ``hub_flags`` is a per-original-query hub mask;
    ``depth_of`` maps subgraph id to its chain depth (root = 0) — two
    groups of the same depth always occupy *disjoint* column slices, and
    any one query's covering groups have strictly increasing depths, so
    sparse accumulation can merge per depth and still add every entry's
    terms in chain order.  The own-level flag marks a hub query at the
    level that owns it (where Eq. 6 applies the f_u(h) adjustment
    instead of the port repair).
    """
    chains = [hierarchy.chain(int(u)) for u in nodes.tolist()]
    hub_flags = np.asarray(
        [hierarchy.is_hub(int(u)) for u in nodes.tolist()], dtype=bool
    )
    order = np.asarray(
        sorted(
            range(nodes.size),
            key=lambda i: [sg.node_id for sg in chains[i]],
        ),
        dtype=np.int64,
    )
    members: dict[int, list[Any]] = {}
    depth_of: dict[int, int] = {}
    for pos, i in enumerate(order.tolist()):
        chain = chains[i]
        for depth, sg in enumerate(chain):
            if sg.hubs.size == 0:
                continue
            own = bool(hub_flags[i]) and sg is chain[-1]
            entry = members.get(sg.node_id)
            if entry is None:
                members[sg.node_id] = [pos, pos + 1, [own]]
                depth_of[sg.node_id] = depth
            else:
                entry[1] = pos + 1
                entry[2].append(own)
    return (
        order,
        {sid: (lo, hi, owns) for sid, (lo, hi, owns) in members.items()},
        hub_flags,
        depth_of,
    )


def build_hgpa_index(
    graph: DiGraph,
    *,
    hierarchy: PartitionHierarchy | None = None,
    fanout: int = 2,
    max_levels: int | None = None,
    alpha: float = 0.15,
    tol: float = 1e-4,
    prune: float | None = None,
    balance: float = 0.1,
    seed: int = 0,
    cover_method: str = "auto",
    batch: int = DEFAULT_BATCH,
    kernels: KernelsLike = None,
) -> HGPAIndex:
    """Pre-compute the full HGPA index.

    A pre-built :class:`PartitionHierarchy` may be supplied; otherwise one
    is constructed with the given ``fanout``/``max_levels``.  ``prune``
    defaults to ``tol`` (entries below the iteration tolerance carry no
    information); ``HGPA_ad`` uses ``prune=1e-4`` regardless of ``tol``.
    """
    if not 0.0 < alpha < 1.0:
        raise IndexBuildError(f"alpha must be in (0, 1), got {alpha}")
    if hierarchy is None:
        hierarchy = build_hierarchy(
            graph,
            fanout=fanout,
            max_levels=max_levels,
            balance=balance,
            seed=seed,
            cover_method=cover_method,
        )
    index = HGPAIndex(
        graph=graph,
        hierarchy=hierarchy,
        alpha=alpha,
        tol=tol,
        prune=tol if prune is None else prune,
        kernels=kernels,
    )
    for sg in hierarchy.subgraphs:
        if sg.hubs.size:
            view = hierarchy.view(sg.node_id)
            _build_subgraph_hub_side(index, view, sg.hubs, batch)
        if sg.is_leaf and sg.num_nodes:
            view = hierarchy.view(sg.node_id)
            _build_leaf_ppvs(index, view, sg.nodes, batch)
    return index


def build_hgpa_ad_index(graph: DiGraph, **kwargs: Any) -> HGPAIndex:
    """HGPA_ad — HGPA with offline scores below ``1e-4`` discarded."""
    kwargs.setdefault("prune", 1e-4)
    return build_hgpa_index(graph, **kwargs)


def _sparsify(col: np.ndarray, view: VirtualSubgraph, prune: float) -> SparseVec:
    mask = np.abs(col) > prune
    local_idx = np.nonzero(mask)[0]
    return SparseVec(view.nodes[local_idx], col[local_idx], _trusted=True)


def _build_subgraph_hub_side(
    index: HGPAIndex, view: VirtualSubgraph, hubs: np.ndarray, batch: int
) -> None:
    hub_local = np.asarray(view.to_local(hubs), dtype=np.int64)
    for lo in range(0, hubs.size, batch):
        sl = slice(lo, min(lo + batch, hubs.size))
        chunk = hubs[sl]
        t0 = time.perf_counter()
        d, _ = partial_vectors(
            view, hub_local, hub_local[sl],
            alpha=index.alpha, tol=index.tol, per_column=True,
            kernels=index.kernels,
        )
        per_col = (time.perf_counter() - t0) / max(1, chunk.size)
        for j, h in enumerate(chunk.tolist()):
            col = d[:, j]
            col[int(hub_local[sl][j])] -= index.alpha  # adjusted P_h
            index.hub_partials[h] = _sparsify(col, view, index.prune)
            index.build_cost[("hub", h)] = per_col
        t0 = time.perf_counter()
        f = skeleton_columns(
            view, hub_local[sl],
            alpha=index.alpha, tol=index.tol, per_column=True,
        )
        per_col = (time.perf_counter() - t0) / max(1, chunk.size)
        for j, h in enumerate(chunk.tolist()):
            index.skeleton_cols[h] = _sparsify(f[:, j], view, index.prune)
            index.build_cost[("skel", h)] = per_col


def _build_leaf_ppvs(
    index: HGPAIndex, view: VirtualSubgraph, nodes: np.ndarray, batch: int
) -> None:
    empty = np.empty(0, dtype=np.int64)
    src_local = np.asarray(view.to_local(nodes), dtype=np.int64)
    for lo in range(0, nodes.size, batch):
        sl = slice(lo, min(lo + batch, nodes.size))
        t0 = time.perf_counter()
        d, _ = partial_vectors(
            view, empty, src_local[sl],
            alpha=index.alpha, tol=index.tol, per_column=True,
            kernels=index.kernels,
        )
        per_col = (time.perf_counter() - t0) / max(1, nodes[sl].size)
        for j, u in enumerate(nodes[sl].tolist()):
            index.leaf_ppv[u] = _sparsify(d[:, j], view, index.prune)
            index.build_cost[("leaf", u)] = per_col
