"""Sparse query-result machinery shared by every engine's sparse path.

Pruned indexes (HGPA_ad, ``prune=tol``) produce PPVs whose support is a
tiny fraction of ``n``, yet the dense batch paths materialise full
``(batch, n)`` matrices.  The helpers here let every ``query_many_sparse``
implementation stay sparse end to end — adjusted skeleton weights as a
sparse matrix, per-level/ per-machine CSC result blocks, own-term row
matrices, and an exact sparse per-row top-k — while agreeing *bitwise*
with the dense paths.

Exactness rests on two properties, both asserted by the equivalence
suite:

* scipy's CSC @ CSC product accumulates each output entry over the same
  ascending-index term order as the CSC @ dense product the dense paths
  use (skipped terms are exact zeros, which cannot change an IEEE sum);
* sparse matrix addition applies the same per-entry ``a + b`` the dense
  paths apply with ``+=``, so chaining blocks in the dense accumulation
  order reproduces the dense result exactly.
"""

from __future__ import annotations

from typing import Any

from collections.abc import Callable

import numpy as np
import scipy.sparse as sp

from repro.core.sparsevec import SparseVec
from repro.kernels.dispatch import KernelsLike, resolve_kernels

__all__ = [
    "assemble_columns",
    "fold_depth_blocks",
    "rows_matrix",
    "point_matrix",
    "subtract_at",
    "scaled_transpose_csc",
    "spgemm_scaled",
    "sparse_add",
    "zero_rows_in_columns",
    "weight_row_stats",
    "column_sparsevec",
    "row_sparsevec",
    "topk_rows_sparse",
    "sparse_in_batches",
    "finalize_csr",
]


def rows_matrix(vecs: list[SparseVec | None], n: int) -> sp.csr_matrix:
    """Stack sparse vectors as the rows of one ``(len(vecs), n)`` CSR.

    ``None`` entries become empty rows — the own-term matrix of a batch
    where some queries contribute no vector (e.g. a machine that owns
    none of the batch's own vectors).
    """
    counts = [0 if v is None else v.nnz for v in vecs]
    if not vecs or not any(counts):
        return sp.csr_matrix((len(vecs), n))
    idx = np.concatenate([v.idx for v in vecs if v is not None and v.nnz])
    val = np.concatenate([v.val for v in vecs if v is not None and v.nnz])
    indptr = np.concatenate([[0], np.cumsum(counts)])
    return sp.csr_matrix((val, idx, indptr), shape=(len(vecs), n))


def point_matrix(
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
    shape: tuple[int, int],
    fmt: str = "csr",
) -> sp.spmatrix:
    """Scattered point entries as a sparse matrix (COO build, no dups)."""
    coo = sp.coo_matrix(
        (np.asarray(vals, dtype=np.float64), (rows, cols)), shape=shape
    )
    return coo.asformat(fmt)


def subtract_at(
    w: sp.csr_matrix, rows: np.ndarray, cols: np.ndarray, value: float
) -> sp.csr_matrix:
    """``w`` with ``value`` subtracted at the given positions.

    The sparse mirror of ``weights[rows, cols] -= value`` on a dense
    copy: existing entries become ``s - value`` by the same single
    subtraction, absent entries become ``0 - value`` exactly as the
    dense path's ``0.0 - value``.
    """
    rows = np.asarray(rows)
    if rows.size == 0:
        return w
    corr = point_matrix(
        rows, np.asarray(cols), np.full(rows.size, value), w.shape
    )
    return w - corr


def scaled_transpose_csc(
    w: sp.csr_matrix, factor: float, *, divide: bool = False
) -> sp.csc_matrix:
    """``(w * factor).T`` (or ``(w / factor).T``) as CSC on ``w``'s arrays.

    A CSR's (data, indices, indptr) reinterpreted with swapped shape *is*
    its transpose in CSC, so this costs one scaled data buffer and one
    matrix object.  Structure (and therefore the matmul term order) is
    untouched.  ``divide`` must match the dense twin's exact operation —
    ``x / alpha`` and ``x * (1/alpha)`` round differently for most alphas
    (they coincide at the default 0.15), and the sparse paths promise
    bitwise agreement: the core index paths scale with
    ``weights.T * inv_alpha`` (multiply), the distributed runtimes with
    ``weights.T / alpha`` (divide).
    """
    g, h = w.shape
    data = w.data / factor if divide else w.data * factor
    return sp.csc_matrix((data, w.indices, w.indptr), shape=(h, g))


def _as_int64(a: np.ndarray) -> np.ndarray:
    return np.asarray(a, dtype=np.int64)


def _as_float64(a: np.ndarray) -> np.ndarray:
    return np.asarray(a, dtype=np.float64)


def spgemm_scaled(
    part_csc: sp.csc_matrix,
    w: sp.csr_matrix,
    factor: float,
    *,
    divide: bool = False,
    kernels: KernelsLike = None,
) -> sp.csc_matrix:
    """``part_csc @ (w scaled).T`` as a *canonical* (sorted) CSC — the
    level-term product every sparse batch path computes per subgraph.

    The kernel path replays scipy's CSC @ CSC scatter (per output column,
    B's stored entries in stored order, each scattering A's column) so
    the accumulated values are bitwise identical; it emits columns
    row-sorted directly, where scipy emits touch order and the call sites
    sorted afterwards — same canonical matrix either way, which is why
    this wrapper always returns sorted indices and callers drop their
    ``sort_indices()``.
    """
    b = scaled_transpose_csc(w, factor, divide=divide)
    kern = resolve_kernels(kernels).spgemm_csc
    if kern is not None and part_csc.format == "csc":
        n_rows, _ = part_csc.shape
        n_cols = b.shape[1]
        indptr, indices, data = kern(
            _as_int64(part_csc.indptr),
            _as_int64(part_csc.indices),
            _as_float64(part_csc.data),
            _as_int64(b.indptr),
            _as_int64(b.indices),
            _as_float64(b.data),
            n_rows,
            n_cols,
        )
        out = sp.csc_matrix((data, indices, indptr), shape=(n_rows, n_cols))
        out.has_sorted_indices = True
        out.has_canonical_format = True
        return out
    out = part_csc @ b
    out.sort_indices()
    return out


def sparse_add(
    a: sp.spmatrix, b: sp.spmatrix, *, kernels: KernelsLike = None
) -> sp.spmatrix:
    """``a + b`` through the kernel seam — the level-merge / accumulator
    fold of the sparse batch paths.

    The kernel is a two-pointer merge over canonical same-format inputs
    that computes each overlapping entry as the single ``a + b`` scipy's
    canonical binop computes (dropping exact-zero results exactly as
    scipy does); anything not eligible — mixed formats, unsorted or
    non-canonical operands — falls through to scipy's own ``a + b``.
    """
    kern = resolve_kernels(kernels).cs_add
    if (
        kern is not None
        and a.format == b.format
        and a.format in ("csr", "csc")
        and a.shape == b.shape
        and a.has_sorted_indices
        and a.has_canonical_format
        and b.has_sorted_indices
        and b.has_canonical_format
    ):
        indptr, indices, data = kern(
            _as_int64(a.indptr),
            _as_int64(a.indices),
            _as_float64(a.data),
            _as_int64(b.indptr),
            _as_int64(b.indices),
            _as_float64(b.data),
        )
        cls = sp.csr_matrix if a.format == "csr" else sp.csc_matrix
        out = cls((data, indices, indptr), shape=a.shape)
        out.has_sorted_indices = True
        out.has_canonical_format = True
        return out
    return a + b


def assemble_columns(
    blocks: list[tuple[int, sp.csc_matrix]], total_cols: int, n: int
) -> sp.csc_matrix:
    """Column-disjoint CSC blocks placed into one ``(n, total_cols)`` CSC.

    ``blocks`` is a list of ``(lo, (n, g) matrix)`` pairs occupying the
    column ranges ``lo:lo+g``; ranges must not overlap (gaps are fine —
    they become empty columns).  Pure concatenation, no arithmetic: this
    is how the HGPA sparse path merges all level terms of one hierarchy
    *depth* in a single step, so the accumulator fold costs one sparse
    add per depth instead of one per subgraph.
    """
    blocks = sorted(blocks, key=lambda t: t[0])
    indptr = np.zeros(total_cols + 1, dtype=np.int64)
    idx_parts, data_parts = [], []
    nnz = 0
    for lo, mat in blocks:
        g = mat.shape[1]
        indptr[lo + 1 : lo + g + 1] = nnz + mat.indptr[1:]
        nnz += int(mat.indptr[-1])
        idx_parts.append(mat.indices)
        data_parts.append(mat.data)
    np.maximum.accumulate(indptr, out=indptr)  # carry through the gaps
    if not idx_parts:
        return sp.csc_matrix((n, total_cols))
    return sp.csc_matrix(
        (np.concatenate(data_parts), np.concatenate(idx_parts), indptr),
        shape=(n, total_cols),
    )


def fold_depth_blocks(
    by_depth: dict[int, list[tuple[int, sp.csc_matrix]]],
    ports: dict[int, list[tuple[np.ndarray, np.ndarray, np.ndarray]]],
    total_cols: int,
    n: int,
    *,
    kernels: KernelsLike = None,
) -> sp.csc_matrix | None:
    """Merge depth-bucketed level-term blocks into one ``(n, total_cols)``
    CSC accumulator — the shared core of both HGPA sparse batch paths.

    Each depth's column-disjoint blocks are assembled by concatenation,
    canonicalized once, topped with that depth's port-repair values (one
    scattered add of ``(rows, cols, vals)`` triples — the skeleton values
    re-added where the matmul contribution was zeroed), and folded into
    the accumulator in ascending depth order.  Any one query's covering
    subgraphs have strictly increasing depths, so per entry the fold adds
    terms in chain order — exactly the dense accumulation sequence, which
    is what keeps the sparse results bitwise-equal to the dense paths.
    Returns ``None`` when there are no blocks at all.
    """
    acc: sp.csc_matrix | None = None
    for depth in sorted(by_depth):
        mat = assemble_columns(by_depth[depth], total_cols, n)
        mat.sort_indices()  # canonicalize the raw matmul blocks once
        depth_ports = ports.get(depth)
        if depth_ports:
            mat = sparse_add(
                mat,
                point_matrix(
                    np.concatenate([p[0] for p in depth_ports]),
                    np.concatenate([p[1] for p in depth_ports]),
                    np.concatenate([p[2] for p in depth_ports]),
                    (n, total_cols),
                    fmt="csc",
                ),
                kernels=kernels,
            )
        acc = mat if acc is None else sparse_add(acc, mat, kernels=kernels)
    return acc


def zero_rows_in_columns(
    block: sp.csc_matrix, rows: np.ndarray, col_mask: np.ndarray
) -> None:
    """Zero every stored entry of ``block`` whose row is in ``rows`` and
    whose column is flagged in ``col_mask`` (in place, structure kept).

    The sparse half of the HGPA port repair: the dense path *overwrites*
    those coordinates, which splits into "zero the matmul contribution"
    (here) plus "add the skeleton values" (a :func:`point_matrix` add).
    """
    rows = np.asarray(rows)
    if block.nnz == 0 or rows.size == 0:
        return
    colid = np.repeat(
        np.arange(block.shape[1]), np.diff(block.indptr)
    )
    # Sorted-membership probe (rows is a sorted hub array).
    pos = np.searchsorted(rows, block.indices)
    clipped = np.minimum(pos, rows.size - 1)
    member = (pos < rows.size) & (rows[clipped] == block.indices)
    block.data[member & col_mask[colid]] = 0.0


def weight_row_stats(
    w_adj: sp.csr_matrix, nnz_per_hub: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per-row ``(vectors_used, entries_processed)`` of an adjusted
    sparse weight matrix — the sparse mirror of the dense bookkeeping
    ``used = weights != 0; used.sum(1); used @ nnz_per_hub``."""
    g = w_adj.shape[0]
    nz = w_adj.data != 0.0
    rowid = np.repeat(np.arange(g), np.diff(w_adj.indptr))[nz]
    counts = np.bincount(rowid, minlength=g).astype(np.int64)
    entries = np.bincount(
        rowid,
        weights=nnz_per_hub[w_adj.indices[nz]].astype(np.float64),
        minlength=g,
    ).astype(np.int64)
    return counts, entries


def column_sparsevec(mat: sp.csc_matrix, col: int) -> SparseVec:
    """Column ``col`` of a canonical CSC as a :class:`SparseVec`.

    Explicit zeros are dropped, matching ``SparseVec.from_dense`` on the
    dense equivalent (same nnz, hence same wire bytes).
    """
    lo, hi = mat.indptr[col], mat.indptr[col + 1]
    idx = mat.indices[lo:hi]
    val = mat.data[lo:hi]
    keep = val != 0.0
    return SparseVec(
        idx[keep].astype(np.int64, copy=True), val[keep].copy(), _trusted=True
    )


def row_sparsevec(mat: sp.csr_matrix, row: int) -> SparseVec:
    """Row ``row`` of a canonical CSR as a :class:`SparseVec` (explicit
    zeros dropped, buffers copied so the matrix is not pinned)."""
    lo, hi = mat.indptr[row], mat.indptr[row + 1]
    idx = mat.indices[lo:hi]
    val = mat.data[lo:hi]
    keep = val != 0.0
    return SparseVec(
        idx[keep].astype(np.int64, copy=True), val[keep].copy(), _trusted=True
    )


def topk_rows_sparse(
    mat: sp.spmatrix,
    k: int,
    *,
    threshold: float | None = None,
    kernels: KernelsLike = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-row top-k of a sparse ``(rows, n)`` matrix — exact mirror of
    the dense :func:`repro.core.flat_index.topk_rows` contract.

    Candidates per row are the stored entries plus the ``k`` smallest
    *absent* ids (implicit zeros): any other absent id is preceded by
    ``k`` equal-scored candidates with smaller ids, so it can never make
    the top-k under the tie rule (best first, ties by smaller id, also
    at the k boundary).  The chunk is never densified.
    """
    mat = mat.tocsr()
    mat.sum_duplicates()
    mat.sort_indices()
    rows, n = mat.shape
    k = min(k, n)
    if k <= 0 or rows == 0:
        return (
            np.empty((rows, max(k, 0)), dtype=np.int64),
            np.empty((rows, max(k, 0))),
        )
    kern = resolve_kernels(kernels).topk_sparse
    if kern is not None:
        ids, scores = kern(
            _as_int64(mat.indptr),
            _as_int64(mat.indices),
            _as_float64(mat.data),
            n,
            k,
        )
        if threshold is not None:
            dropped = scores <= threshold
            ids[dropped] = -1
            scores[dropped] = 0.0
        return ids, scores
    ids = np.empty((rows, k), dtype=np.int64)
    scores = np.empty((rows, k))
    indptr, indices, data = mat.indptr, mat.indices, mat.data
    for r in range(rows):
        lo, hi = indptr[r], indptr[r + 1]
        idx = indices[lo:hi].astype(np.int64)
        val = data[lo:hi]
        limit = min(n, (hi - lo) + k)
        missing = np.setdiff1d(
            np.arange(limit, dtype=np.int64),
            idx[idx < limit],
            assume_unique=True,
        )[:k]
        cand_ids = np.concatenate([idx, missing])
        cand_vals = np.concatenate([val, np.zeros(missing.size)])
        order = np.lexsort((cand_ids, -cand_vals))[:k]
        ids[r] = cand_ids[order]
        scores[r] = cand_vals[order]
    if threshold is not None:
        dropped = scores <= threshold
        ids[dropped] = -1
        scores[dropped] = 0.0
    return ids, scores


def sparse_in_batches(
    query_many_sparse_fn: Callable[[np.ndarray], tuple[sp.csr_matrix, list[Any]]],
    nodes: np.ndarray,
    batch: int,
) -> tuple[sp.csr_matrix, list[Any]]:
    """Evaluate a ``query_many_sparse``-style callable one batch at a
    time, row-stacking the CSR chunks (the sparse ``run_in_batches``)."""
    if nodes.size == 0:
        out, meta = query_many_sparse_fn(nodes)
        return out, list(meta)
    outs, metas = [], []
    for lo in range(0, nodes.size, batch):
        out, meta = query_many_sparse_fn(nodes[lo : lo + batch])
        outs.append(out)
        metas.extend(meta)
    return sp.vstack(outs, format="csr"), metas


def finalize_csr(mat: sp.spmatrix, shape: tuple[int, int]) -> sp.csr_matrix:
    """Canonical CSR result: sorted indices, explicit zeros dropped.

    Dropping explicit zeros changes no value but makes row nnz equal the
    support a dense row would sparsify to — which is what the serving
    wire accounting (``16 + 12·nnz`` bytes per row) charges.
    """
    out = mat.tocsr()
    if out.shape != shape:  # pragma: no cover - defensive
        out = sp.csr_matrix(out, shape=shape)
    out.sum_duplicates()
    out.eliminate_zeros()
    out.sort_indices()
    return out
