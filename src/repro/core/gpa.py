"""GPA — the graph-partition algorithm (Section 3).

The graph is split into ``m`` balanced subgraphs whose bridging nodes form
the hub set ``H``.  Because every tour between two subgraphs must pass a
hub, the partial vector of a non-hub node is confined to its own subgraph
(Theorem 2), shrinking the dominant space term from ``O((|V|−|H|)²)`` to
``O((|V|−|H|)²/m)`` (Section 3.2).  Query processing is Eq. 5 — identical
to the hubs theorem, with the hub sum distributable across machines.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.flat_index import DEFAULT_BATCH, FlatPPVIndex, full_view
from repro.errors import IndexBuildError
from repro.graph.digraph import DiGraph
from repro.graph.subgraph import VirtualSubgraph
from repro.kernels.dispatch import KernelsLike
from repro.partition.flat import FlatPartition, flat_partition

__all__ = ["GPAIndex", "build_gpa_index"]


@dataclass
class GPAIndex(FlatPPVIndex):
    """Flat index whose hubs separate a balanced partition.

    ``partition`` keeps the part assignment so the distributed runtime can
    place each non-hub partial vector on the machine owning its subgraph.
    """

    partition: FlatPartition | None = None


def build_gpa_index(
    graph: DiGraph,
    num_parts: int,
    *,
    alpha: float = 0.15,
    tol: float = 1e-4,
    prune: float | None = None,
    balance: float = 0.1,
    seed: int = 0,
    cover_method: str = "auto",
    batch: int = DEFAULT_BATCH,
    partition: FlatPartition | None = None,
    kernels: KernelsLike = None,
) -> GPAIndex:
    """Pre-compute the GPA index over an ``num_parts``-way partition.

    A pre-built :class:`FlatPartition` may be passed to skip partitioning
    (used by benchmarks that sweep other parameters).
    """
    if num_parts < 1:
        raise IndexBuildError("num_parts must be >= 1")
    if partition is None:
        partition = flat_partition(
            graph, num_parts, balance=balance, seed=seed, cover_method=cover_method
        )
    index = GPAIndex(
        graph=graph,
        alpha=alpha,
        tol=tol,
        prune=tol if prune is None else prune,
        hubs=partition.hubs,
        partition=partition,
        kernels=kernels,
    )
    # Hub partial vectors and skeleton columns live on the whole graph: a
    # hub's neighbourhood spans the subgraphs it bridges, and skeleton
    # values s_u(h) are global PPV entries.
    index._build_hub_side(full_view(graph), batch)
    # Non-hub partial vectors are local PPVs of each part's virtual
    # subgraph (Theorem 2) plus first-passage deposits at the bridging
    # hubs, so each part's view is extended with the hub set (blocked):
    # walk mass stays inside the part until it freezes on a hub.
    for part_nodes in partition.part_nodes:
        if part_nodes.size == 0:
            continue
        view = VirtualSubgraph(
            graph, np.concatenate([part_nodes, partition.hubs])
        )
        hub_local = np.asarray(view.to_local(partition.hubs), dtype=np.int64)
        index._build_node_partials(view, part_nodes, hub_local, batch)
    return index
