"""Incremental maintenance of HGPA indexes under edge updates.

The paper pre-computes once; real graphs change.  This module updates an
existing index for a single edge insertion or deletion by rebuilding only
the vectors whose defining subgraph actually changed:

* An edge ``u → v`` only alters walks that *leave* ``u``, so the affected
  subgraphs are exactly those containing ``u`` — the chain from the root to
  ``u``'s leaf (or hub level).  Sibling subgraphs keep their vectors.
* Insertion can violate the separator invariant: if ``u`` and ``v`` sit in
  different children of some subgraph ``S`` and neither is a hub of ``S``,
  tours could now bypass ``H(S)``.  The repair promotes ``u`` into ``H(S)``
  at the shallowest violated level (removing it from all deeper levels),
  after which no deeper violation from this edge is possible — a hub's
  out-edges never cross inside a child.
* Deletion never breaks separation (it can only leave hubs that are no
  longer necessary, which is harmless), so it is promotion-free.

The returned index is a new object sharing all untouched vectors with the
old one; the old index stays valid for the old graph.
"""

from __future__ import annotations

from typing import Any

from dataclasses import dataclass

import numpy as np

from repro.core.hgpa import (
    HGPAIndex,
    _build_leaf_ppvs,
    _build_subgraph_hub_side,
)
from repro.errors import GraphError
from repro.graph.digraph import DiGraph
from repro.partition.hierarchy import PartitionHierarchy, SubgraphNode

__all__ = ["UpdateStats", "insert_edge", "delete_edge"]


@dataclass(frozen=True)
class UpdateStats:
    """What one incremental update had to do.

    ``rebuilt_keys`` / ``dropped_keys`` are the store keys (``("hub", h)``,
    ``("skel", h)``, ``("leaf", u)``, ``("part", u)``) an index update
    recomputed / removed-without-replacement — the precise delta a
    deployed runtime must re-ship to the machines owning those vectors.
    ``affected_subgraphs`` lists the hierarchy subgraph ids rebuilt (empty
    for flat indexes).
    """

    changed: bool
    promoted_hub: int | None
    rebuilt_subgraphs: int
    rebuilt_vectors: int
    total_vectors: int
    rebuilt_keys: frozenset[Any] = frozenset()
    dropped_keys: frozenset[Any] = frozenset()
    affected_subgraphs: tuple[Any, ...] = ()

    @property
    def rebuild_fraction(self) -> float:
        """Share of stored vectors that had to be recomputed."""
        if self.total_vectors == 0:
            return 0.0
        return self.rebuilt_vectors / self.total_vectors


def check_endpoints(graph: DiGraph, u: int, v: int) -> None:
    """Reject edges touching node ids absent from the graph.

    Both directions are validated and the offending edge is named — an
    out-of-range endpoint is a *graph* error (the edge cannot exist in
    this graph), not a malformed query.
    """
    n = graph.num_nodes
    for name, node in (("source", u), ("target", v)):
        if not 0 <= node < n:
            raise GraphError(
                f"edge ({u}, {v}): {name} node {node} not in graph "
                f"(num_nodes={n})"
            )


def _contains(sorted_arr: np.ndarray, value: int) -> bool:
    pos = np.searchsorted(sorted_arr, value)
    return bool(pos < sorted_arr.size and sorted_arr[pos] == value)


def _remove_value(sorted_arr: np.ndarray, value: int) -> np.ndarray:
    pos = np.searchsorted(sorted_arr, value)
    if pos < sorted_arr.size and sorted_arr[pos] == value:
        return np.delete(sorted_arr, pos)
    return sorted_arr


def _insert_value(sorted_arr: np.ndarray, value: int) -> np.ndarray:
    pos = np.searchsorted(sorted_arr, value)
    if pos < sorted_arr.size and sorted_arr[pos] == value:
        return sorted_arr
    return np.insert(sorted_arr, pos, value)


def _clone_subgraphs(hierarchy: PartitionHierarchy) -> list[SubgraphNode]:
    return [
        SubgraphNode(
            node_id=sg.node_id,
            level=sg.level,
            nodes=sg.nodes.copy(),
            parent=sg.parent,
            hubs=sg.hubs.copy(),
            children=list(sg.children),
        )
        for sg in hierarchy.subgraphs
    ]


def _rebuild(
    old: HGPAIndex,
    new_graph: DiGraph,
    subgraphs: list[SubgraphNode],
    affected_ids: list[int],
    promoted: int | None,
    dropped_keys: set[tuple[Any, ...]],
) -> tuple[HGPAIndex, UpdateStats]:
    """Assemble the new index, recomputing only affected subgraphs."""
    hierarchy = PartitionHierarchy(new_graph, subgraphs, old.hierarchy.fanout)
    index = HGPAIndex(
        graph=new_graph,
        hierarchy=hierarchy,
        alpha=old.alpha,
        tol=old.tol,
        prune=old.prune,
        hub_partials=dict(old.hub_partials),
        skeleton_cols=dict(old.skeleton_cols),
        leaf_ppv=dict(old.leaf_ppv),
        build_cost=dict(old.build_cost),
    )
    # Drop every stored vector owned by an affected subgraph (old layout),
    # plus explicitly invalidated keys (e.g. the promoted node's old role).
    rebuilt_vectors = 0
    for sid in affected_ids:
        sg_old = old.hierarchy.subgraphs[sid]
        for h in sg_old.hubs.tolist():
            dropped_keys.add(("hub", h))
            dropped_keys.add(("skel", h))
        if sg_old.is_leaf:
            for node in sg_old.nodes.tolist():
                dropped_keys.add(("leaf", node))
    # Only keys that actually existed in the old stores count as dropped:
    # a promoted node's old roles are invalidated defensively (a hub
    # moving levels never had a leaf vector), and phantom keys would send
    # the distributed runtimes' targeted re-deploy after vectors no
    # machine ever owned.
    present: set[tuple[Any, ...]] = set()
    for kind, key in sorted(dropped_keys):
        store = {
            "hub": index.hub_partials,
            "skel": index.skeleton_cols,
            "leaf": index.leaf_ppv,
        }[kind]
        if store.pop(key, None) is not None:
            present.add((kind, key))
        index.build_cost.pop((kind, key), None)
    # Recompute the affected subgraphs against the new graph.
    rebuilt_keys: set[tuple[Any, ...]] = set()
    for sid in affected_ids:
        sg = subgraphs[sid]
        if sg.hubs.size:
            view = hierarchy.view(sid)
            _build_subgraph_hub_side(index, view, sg.hubs, 256)
            rebuilt_vectors += 2 * sg.hubs.size
            for h in sg.hubs.tolist():
                rebuilt_keys.add(("hub", h))
                rebuilt_keys.add(("skel", h))
        if sg.is_leaf and sg.num_nodes:
            view = hierarchy.view(sid)
            _build_leaf_ppvs(index, view, sg.nodes, 256)
            rebuilt_vectors += sg.num_nodes
            for node in sg.nodes.tolist():
                rebuilt_keys.add(("leaf", node))
    total = (
        len(index.hub_partials) + len(index.skeleton_cols) + len(index.leaf_ppv)
    )
    stats = UpdateStats(
        changed=True,
        promoted_hub=promoted,
        rebuilt_subgraphs=len(affected_ids),
        rebuilt_vectors=rebuilt_vectors,
        total_vectors=total,
        rebuilt_keys=frozenset(rebuilt_keys),
        dropped_keys=frozenset(present - rebuilt_keys),
        affected_subgraphs=tuple(affected_ids),
    )
    return index, stats


def insert_edge(index: HGPAIndex, u: int, v: int) -> tuple[HGPAIndex, UpdateStats]:
    """Return a new index for ``graph + (u → v)``, rebuilt minimally."""
    graph = index.graph
    n = graph.num_nodes
    check_endpoints(graph, u, v)
    if graph.has_edge(u, v):
        return index, UpdateStats(False, None, 0, 0,
                                  len(index.hub_partials)
                                  + len(index.skeleton_cols)
                                  + len(index.leaf_ppv))
    src, dst = graph.edge_arrays()
    new_graph = DiGraph.from_arrays(
        n,
        np.concatenate([src, [u]]),
        np.concatenate([dst, [v]]),
        name=graph.name,
    )
    subgraphs = _clone_subgraphs(index.hierarchy)
    chain_ids = [sg.node_id for sg in index.hierarchy.chain(u)]
    dropped: set[tuple[Any, ...]] = set()
    promoted: int | None = None
    # Separator repair: promote u at the shallowest violated level.
    for sid in chain_ids:
        sg = subgraphs[sid]
        if sg.is_leaf or _contains(sg.hubs, u) or _contains(sg.hubs, v):
            continue
        child_of_u = child_of_v = None
        for cid in sg.children:
            child = subgraphs[cid]
            if _contains(child.nodes, u):
                child_of_u = cid
            if _contains(child.nodes, v):
                child_of_v = cid
        if child_of_u is None or child_of_v is None or child_of_u == child_of_v:
            continue
        # Violation: u -> v crosses children of sg without touching H(sg).
        promoted = u
        sg.hubs = _insert_value(sg.hubs, u)
        below = False
        for deeper_id in chain_ids:
            if deeper_id == sid:
                below = True
                continue
            if below:
                deeper = subgraphs[deeper_id]
                deeper.nodes = _remove_value(deeper.nodes, u)
                deeper.hubs = _remove_value(deeper.hubs, u)
        dropped.update({("leaf", u), ("hub", u), ("skel", u)})
        break
    affected = [sid for sid in chain_ids if subgraphs[sid].num_nodes > 0]
    return _rebuild(index, new_graph, subgraphs, affected, promoted, dropped)


def delete_edge(index: HGPAIndex, u: int, v: int) -> tuple[HGPAIndex, UpdateStats]:
    """Return a new index for ``graph − (u → v)``, rebuilt minimally.

    Removal cannot break the separator invariant; hubs that are no longer
    strictly necessary are kept (correct, merely conservative).
    """
    graph = index.graph
    n = graph.num_nodes
    check_endpoints(graph, u, v)
    if not graph.has_edge(u, v):
        return index, UpdateStats(False, None, 0, 0,
                                  len(index.hub_partials)
                                  + len(index.skeleton_cols)
                                  + len(index.leaf_ppv))
    src, dst = graph.edge_arrays()
    keep = ~((src == u) & (dst == v))
    if graph.out_degree(u) == 1:
        raise GraphError(
            f"removing ({u}, {v}) would leave node {u} dangling; "
            "normalise the graph first"
        )
    new_graph = DiGraph.from_arrays(n, src[keep], dst[keep], name=graph.name)
    subgraphs = _clone_subgraphs(index.hierarchy)
    chain_ids = [sg.node_id for sg in index.hierarchy.chain(u)]
    return _rebuild(index, new_graph, subgraphs, chain_ids, None, set())
