"""Shared flat-hub PPV index: the machinery behind PPV-JW and GPA.

Both algorithms pre-compute, for one global hub set ``H``:

* adjusted hub partial vectors ``P_h = p_h − α·x_h``,
* skeleton columns ``s_·(h)`` (one vector per hub, value at every node),
* partial vectors ``p_u`` of every non-hub node,

and answer queries with the hubs theorem (Eq. 4):

    ``r_u = (1/α) Σ_h (s_u(h) − α·f_u(h)) · P_h + p_u``

They differ only in *where the vectors' support lives*: PPV-JW picks hubs by
PageRank, so partial vectors can span the whole graph; GPA picks hubs as a
partition separator, which confines every non-hub partial vector to its own
subgraph — the space win of Section 3.2.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import Any

import numpy as np
import scipy.sparse as sp

from repro.core.decomposition import as_view, partial_vectors, skeleton_columns
from repro.core.sparse_ops import (
    finalize_csr,
    point_matrix,
    rows_matrix,
    sparse_add,
    spgemm_scaled,
    subtract_at,
    topk_rows_sparse,
    weight_row_stats,
)
from repro.core.sparsevec import SparseVec
from repro.kernels.dispatch import KernelsLike, resolve_kernels
from repro.errors import QueryError
from repro.metrics.ranking import top_k_nodes
from repro.graph.digraph import DiGraph
from repro.graph.subgraph import VirtualSubgraph

__all__ = [
    "QueryStats",
    "FlatPPVIndex",
    "DEFAULT_BATCH",
    "stack_columns",
    "csr_row_dense",
    "find_sorted",
    "hub_weights",
    "validate_batch",
    "run_in_batches",
    "topk_rows",
    "topk_rows_reference",
    "topk_in_batches",
]

DEFAULT_BATCH = 256


@dataclass
class QueryStats:
    """Work counters for one query — the cost-model currency.

    ``entries_processed`` counts every stored vector entry touched by an
    axpy (the float-op proxy); ``vectors_used`` counts the pre-computed
    vectors combined; ``skeleton_lookups`` counts hub-weight fetches.
    """

    entries_processed: int = 0
    vectors_used: int = 0
    skeleton_lookups: int = 0

    def merge(self, other: "QueryStats") -> None:
        self.entries_processed += other.entries_processed
        self.vectors_used += other.vectors_used
        self.skeleton_lookups += other.skeleton_lookups


def stack_columns(cols: list[SparseVec], n: int) -> sp.csc_matrix:
    """Stack sparse vectors as the columns of one ``(n, len(cols))`` CSC."""
    if not cols:
        return sp.csc_matrix((n, 0))
    return sp.csc_matrix(
        (
            np.concatenate([v.val for v in cols]),
            np.concatenate([v.idx for v in cols]),
            np.concatenate([[0], np.cumsum([v.nnz for v in cols])]),
        ),
        shape=(n, len(cols)),
    )


def csr_row_dense(csr: sp.csr_matrix, row: int) -> np.ndarray:
    """One CSR row as a dense vector (the skeleton-weight slice)."""
    lo, hi = csr.indptr[row], csr.indptr[row + 1]
    out = np.zeros(csr.shape[1])
    out[csr.indices[lo:hi]] = csr.data[lo:hi]
    return out


def find_sorted(
    haystack: np.ndarray, needles: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Membership probe into a sorted array.

    Returns ``(rows, pos)``: ``rows`` indexes the needles present in
    ``haystack`` and ``pos`` holds every needle's insertion point, so
    ``pos[rows]`` gives the positions of the hits.  (The clip below only
    makes the equality test safe at the array end; the ``pos <`` bound
    is what rejects needles beyond the last element.)
    """
    needles = np.asarray(needles)
    pos = np.searchsorted(haystack, needles)
    if haystack.size == 0:
        return np.empty(0, dtype=np.int64), pos
    clipped = np.minimum(pos, haystack.size - 1)
    rows = np.nonzero((pos < haystack.size) & (haystack[clipped] == needles))[0]
    return rows, pos


def validate_batch(
    nodes: Sequence[int] | np.ndarray, num_nodes: int
) -> np.ndarray:
    """Normalize and range-check a ``query_many`` node batch.

    Only genuine integer ids are accepted — coercing floats would
    silently truncate ``3.7`` to node 3 and return the wrong PPV.
    """
    nodes = np.atleast_1d(np.asarray(nodes))
    if nodes.ndim != 1:
        raise QueryError("query_many expects a 1-D array of node ids")
    if nodes.size and nodes.dtype.kind not in "iu":
        raise QueryError(
            f"query_many expects integer node ids, got dtype {nodes.dtype}"
        )
    nodes = nodes.astype(np.int64, copy=False)
    if nodes.size and not (0 <= nodes.min() and nodes.max() < num_nodes):
        raise QueryError("query node out of range")
    return nodes


def run_in_batches(
    query_many_fn: Callable[[np.ndarray], tuple[np.ndarray, list[Any]]],
    nodes: np.ndarray,
    batch: int = DEFAULT_BATCH,
) -> tuple[np.ndarray, list[Any]]:
    """Evaluate a ``query_many``-style callable one ``batch`` at a time.

    Bounds the dense intermediates of the wrapped engine at
    ``batch × n`` floats per buffer; results and per-query metadata are
    concatenated transparently.  An empty batch is delegated to the
    wrapped engine so the result keeps its ``(0, n)`` shape — callers
    that concatenate rows or index columns must never see ``(0, 0)``.
    """
    if nodes.size == 0:
        out, meta = query_many_fn(nodes)
        return out, list(meta)
    outs, metas = [], []
    for lo in range(0, nodes.size, batch):
        out, meta = query_many_fn(nodes[lo : lo + batch])
        outs.append(out)
        metas.extend(meta)
    return np.vstack(outs), metas


def topk_rows(
    dense: np.ndarray,
    k: int,
    *,
    threshold: float | None = None,
    kernels: KernelsLike = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-row top-k of a ``(rows, n)`` matrix: ``(ids, scores)`` pairs.

    One batched selection over the whole chunk, preserving the
    :func:`repro.metrics.top_k_nodes` tie contract exactly (best first,
    ties by smaller id, also at the k boundary, so the result is
    deterministic even on vectors full of equal entries, e.g. pruned
    PPVs' exact zeros — :func:`topk_rows_reference` is the per-row
    oracle).  ``k`` is clamped to the row length.

    The chunk-wide evaluation: one ``argpartition`` finds each row's kth
    score; entries strictly above it are in by value, and the tied group
    at the boundary is resolved by a cumulative count over ascending
    ids — exactly the smallest tied ids fill the remaining slots.  A
    final stable sort of the k selected columns per row (descending
    score; stability keeps the ascending-id tie order) yields the
    contract ordering without any per-row Python.

    ``threshold`` drops entries with ``score <= threshold`` before the
    k-cut; the arrays keep their ``(rows, k)`` shape, with surviving
    entries as a prefix and the tail padded with id ``-1`` / score
    ``0.0``.  (Because scores are sorted descending, dropping the weak
    entries first and cutting at ``k`` leaves exactly that prefix.)
    """
    rows, n = dense.shape
    k = min(k, n)
    if k <= 0 or rows == 0:
        return (
            np.empty((rows, max(k, 0)), dtype=np.int64),
            np.empty((rows, max(k, 0))),
        )
    kern = resolve_kernels(kernels).topk_dense
    if kern is not None:
        ids, scores = kern(
            np.ascontiguousarray(dense, dtype=np.float64), k
        )
        if threshold is not None:
            dropped = scores <= threshold
            ids[dropped] = -1
            scores[dropped] = 0.0
        return ids, scores
    part = np.argpartition(-dense, k - 1, axis=1)
    kth = np.take_along_axis(dense, part[:, k - 1 : k], axis=1)
    greater = dense > kth
    num_greater = greater.sum(axis=1, keepdims=True)
    tied = dense == kth
    # Among the tied group, the smallest ids take the remaining slots.
    # (int32 cumsum: counts are bounded by n < 2^31, and the temporary is
    # the largest allocation here — half the footprint of the default.)
    take_tied = tied & (
        np.cumsum(tied, axis=1, dtype=np.int32) <= (k - num_greater)
    )
    sel = greater | take_tied  # exactly k True per row
    cols = np.nonzero(sel)[1].reshape(rows, k)  # ascending ids per row
    vals = np.take_along_axis(dense, cols, axis=1)
    order = np.argsort(-vals, axis=1, kind="stable")
    ids = np.take_along_axis(cols, order, axis=1)
    scores = np.take_along_axis(vals, order, axis=1)
    if threshold is not None:
        dropped = scores <= threshold
        ids[dropped] = -1
        scores[dropped] = 0.0
    return ids, scores


def topk_rows_reference(
    dense: np.ndarray, k: int, *, threshold: float | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Row-by-row :func:`repro.metrics.top_k_nodes` — the pre-vectorised
    implementation, kept as the correctness oracle for :func:`topk_rows`."""
    rows, n = dense.shape
    k = min(k, n)
    if k <= 0 or rows == 0:
        return (
            np.empty((rows, max(k, 0)), dtype=np.int64),
            np.empty((rows, max(k, 0))),
        )
    ids = np.empty((rows, k), dtype=np.int64)
    scores = np.empty((rows, k))
    for r in range(rows):
        ids[r] = top_k_nodes(dense[r], k)
        scores[r] = dense[r][ids[r]]
    if threshold is not None:
        dropped = scores <= threshold
        ids[dropped] = -1
        scores[dropped] = 0.0
    return ids, scores


def topk_in_batches(
    query_many_fn: Callable[[np.ndarray], tuple[Any, list[Any]]],
    nodes: np.ndarray,
    k: int,
    num_nodes: int,
    batch: int = DEFAULT_BATCH,
    threshold: float | None = None,
    kernels: KernelsLike = None,
) -> tuple[np.ndarray, np.ndarray, list[Any]]:
    """Chunked top-k reduction over a ``query_many``-style callable.

    Evaluates ``batch`` queries at a time and reduces each chunk to its
    per-row top-k immediately, so the full ``(len(nodes), n)`` matrix
    is never materialised — only the ``(len(nodes), k)`` ids/scores and
    one chunk live at once.  This is the shared engine behind every
    index family's ``query_many_topk`` and the serving adapters for the
    distributed runtimes.  A ``query_many_fn`` returning a *sparse*
    chunk (a ``query_many_sparse`` path) is reduced with the exact
    sparse top-k instead — no dense chunk is ever built.  ``threshold``
    applies the :func:`topk_rows` score cut (``score <= threshold``
    dropped, tail padded with id ``-1`` / score ``0.0``).
    """
    if k <= 0:
        raise QueryError("k must be positive")
    k_eff = min(k, num_nodes)
    ids = np.empty((nodes.size, k_eff), dtype=np.int64)
    scores = np.empty((nodes.size, k_eff))
    metas: list[Any] = []
    step = max(1, batch)
    for lo in range(0, nodes.size, step):
        sl = slice(lo, min(lo + step, nodes.size))
        chunk, meta = query_many_fn(nodes[sl])
        reduce = topk_rows_sparse if sp.issparse(chunk) else topk_rows
        ids[sl], scores[sl] = reduce(
            chunk, k_eff, threshold=threshold, kernels=kernels
        )
        metas.extend(meta)
    return ids, scores, metas


def hub_weights(
    skel_csr: sp.csr_matrix, hubs: np.ndarray, u: int, alpha: float
) -> np.ndarray:
    """Eq. 4/Eq. 5 hub weights ``s_u(h) − α·f_u(h)`` over stacked columns.

    ``skel_csr`` holds one skeleton column per hub of ``hubs`` (any
    subset: a whole hub set, one hierarchy level, one machine's share).
    """
    weights = csr_row_dense(skel_csr, u)
    rows, pos = find_sorted(hubs, np.asarray([u]))
    if rows.size:
        weights[pos[0]] -= alpha
    return weights


@dataclass
class FlatPPVIndex:
    """Pre-computed vectors for a flat hub set (PPV-JW / GPA query side)."""

    graph: DiGraph
    alpha: float
    tol: float
    prune: float
    hubs: np.ndarray
    hub_partials: dict[int, SparseVec] = field(default_factory=dict)
    skeleton_cols: dict[int, SparseVec] = field(default_factory=dict)
    node_partials: dict[int, SparseVec] = field(default_factory=dict)
    build_cost: dict[tuple[Any, ...], float] = field(default_factory=dict)
    #: Kernel bundle / backend name the index's hot loops dispatch to
    #: (``None`` = the process default from the capability probe).
    kernels: KernelsLike = None
    _ops_cache: tuple[Any, ...] | None = field(default=None, repr=False)

    # ------------------------------------------------------------------
    def is_hub(self, u: int) -> bool:
        pos = np.searchsorted(self.hubs, u)
        return bool(pos < self.hubs.size and self.hubs[pos] == u)

    def invalidate_cache(self) -> None:
        """Drop the stacked-matrix cache (call after mutating the stores)."""
        self._ops_cache = None

    def _ops(self) -> tuple[Any, ...]:
        """Cached (stacked hub-partial CSC, stacked skeleton CSR, nnz/hub).

        The hub partials become the columns of one ``(n, |H|)`` CSC matrix
        and the skeleton columns one CSR matrix of the same shape, so a
        query is a skeleton-row slice plus a single ``CSC @ weights``
        product instead of a per-hub Python loop.
        """
        if self._ops_cache is None:
            n = self.graph.num_nodes
            hubs = self.hubs.tolist()
            part_csc = stack_columns([self.hub_partials[h] for h in hubs], n)
            skel_csr = stack_columns(
                [self.skeleton_cols[h] for h in hubs], n
            ).tocsr()
            self._ops_cache = (part_csc, skel_csr, np.diff(part_csc.indptr))
        return self._ops_cache

    def _hub_weights(self, u: int) -> np.ndarray:
        """Eq. 4 hub weights ``s_u(h) − α·f_u(h)`` for every hub."""
        _, skel_csr, _ = self._ops()
        return hub_weights(skel_csr, self.hubs, u, self.alpha)

    def _add_own_term(
        self, u: int, acc: np.ndarray, stats: QueryStats | None
    ) -> None:
        """The ``p_u`` base term of Eq. 4 (plus hub un-adjustment)."""
        if self.is_hub(u):
            own = self.hub_partials[u]
            own.add_into(acc)  # P_u back to p_u: re-add the α·x_u diagonal
            acc[u] += self.alpha
        else:
            own = self.node_partials[u]
            own.add_into(acc)
        if stats is not None:
            stats.entries_processed += own.nnz
            stats.vectors_used += 1

    def query(self, u: int) -> np.ndarray:
        """Exact PPV of node ``u`` (dense)."""
        vec, _ = self.query_detailed(u)
        return vec

    def query_detailed(self, u: int) -> tuple[np.ndarray, QueryStats]:
        """PPV of ``u`` plus work counters, via the vectorised fast path."""
        if not 0 <= u < self.graph.num_nodes:
            raise QueryError(f"query node {u} out of range")
        stats = QueryStats()
        if self.hubs.size:
            part_csc, _, nnz_per_hub = self._ops()
            weights = self._hub_weights(u)
            acc = part_csc @ (weights * (1.0 / self.alpha))
            used = weights != 0.0
            stats.skeleton_lookups = int(self.hubs.size)
            stats.vectors_used = int(np.count_nonzero(used))
            stats.entries_processed = int(nnz_per_hub[used].sum())
        else:
            acc = np.zeros(self.graph.num_nodes)
        self._add_own_term(u, acc, stats)
        return acc, stats

    def query_many(
        self,
        nodes: Sequence[int] | np.ndarray,
        *,
        batch: int | None = DEFAULT_BATCH,
        collect_stats: bool = True,
    ) -> tuple[np.ndarray, list[QueryStats]]:
        """Batched exact PPVs: one sparse matmul per ``batch`` queries.

        Returns a dense ``(len(nodes), n)`` matrix whose row ``k`` is the
        PPV of ``nodes[k]``, plus per-query work counters.  ``batch``
        bounds the dense intermediate at ``batch × n`` floats (``None``
        processes the whole request in one product).
        ``collect_stats=False`` skips the per-query counter bookkeeping
        (the serving hot path) and returns an empty metadata list; the
        result matrix is identical.
        """
        n = self.graph.num_nodes
        nodes = validate_batch(nodes, n)
        out = np.zeros((nodes.size, n))
        stats = [QueryStats() for _ in range(nodes.size)] if collect_stats else []
        if nodes.size == 0:
            return out, stats
        step = nodes.size if batch is None else max(1, batch)
        inv_alpha = 1.0 / self.alpha
        part_csc, skel_csr, nnz_per_hub = self._ops()
        for lo in range(0, nodes.size, step):
            sl = slice(lo, min(lo + step, nodes.size))
            chunk = nodes[sl]
            if self.hubs.size:
                weights = skel_csr[chunk].toarray()
                hub_rows, pos = find_sorted(self.hubs, chunk)
                weights[hub_rows, pos[hub_rows]] -= self.alpha
                out[sl] = (part_csc @ (weights.T * inv_alpha)).T
                if collect_stats:
                    used = weights != 0.0
                    counts = used.sum(axis=1)
                    entries = used.astype(np.int64) @ nnz_per_hub
                    for k in range(chunk.size):
                        s = stats[lo + k]
                        s.skeleton_lookups = int(self.hubs.size)
                        s.vectors_used = int(counts[k])
                        s.entries_processed = int(entries[k])
            for k, u in enumerate(chunk.tolist()):
                self._add_own_term(
                    u, out[lo + k], stats[lo + k] if collect_stats else None
                )
        return out, stats

    def query_many_sparse(
        self,
        nodes: Sequence[int] | np.ndarray,
        *,
        batch: int | None = DEFAULT_BATCH,
        collect_stats: bool = True,
    ) -> tuple[sp.csr_matrix, list[QueryStats]]:
        """Batched exact PPVs as a CSR ``(len(nodes), n)`` matrix.

        The sparse twin of :meth:`query_many`: the hub combination is a
        sparse×sparse product (``part_csc @ sparse_weights``) and own
        terms are sparse row adds, so no ``batch × n`` dense
        intermediate ever exists — on pruned indexes the peak footprint
        is proportional to the result's true support.  Agrees with the
        dense path exactly (``toarray()`` equality; same accumulation
        order, see :mod:`repro.core.sparse_ops`).  Work counters match
        the dense path except ``skeleton_lookups``, which charges the
        actual nnz skeleton entries this path reads rather than the full
        hub-set scan of the dense path.
        """
        n = self.graph.num_nodes
        nodes = validate_batch(nodes, n)
        stats = [QueryStats() for _ in range(nodes.size)] if collect_stats else []
        if nodes.size == 0:
            return sp.csr_matrix((0, n)), stats
        step = nodes.size if batch is None else max(1, batch)
        inv_alpha = 1.0 / self.alpha
        part_csc, skel_csr, nnz_per_hub = self._ops()
        chunks = []
        for lo in range(0, nodes.size, step):
            sl = slice(lo, min(lo + step, nodes.size))
            chunk = nodes[sl]
            if self.hubs.size:
                raw = skel_csr[chunk]
                hub_rows, pos = find_sorted(self.hubs, chunk)
                weights = subtract_at(raw, hub_rows, pos[hub_rows], self.alpha)
                level = spgemm_scaled(
                    part_csc, weights, inv_alpha, kernels=self.kernels
                )
                rows = level.T.tocsr()
                if collect_stats:
                    counts, entries = weight_row_stats(weights, nnz_per_hub)
                    # Sparse-aware accounting: this path never touches the
                    # zero skeleton weights, so charge each query its
                    # actual nnz skeleton lookups — the dense path scans
                    # (and is charged) the full hub set.
                    looked = np.diff(raw.indptr)
                    for k in range(chunk.size):
                        s = stats[lo + k]
                        s.skeleton_lookups = int(looked[k])
                        s.vectors_used = int(counts[k])
                        s.entries_processed = int(entries[k])
            else:
                rows = sp.csr_matrix((chunk.size, n))
            own, alpha_pts = self._own_term_matrix(
                chunk, stats[sl] if collect_stats else None
            )
            rows = sparse_add(rows, own, kernels=self.kernels)
            if alpha_pts is not None:
                rows = sparse_add(rows, alpha_pts, kernels=self.kernels)
            chunks.append(rows)
        out = chunks[0] if len(chunks) == 1 else sp.vstack(chunks, format="csr")
        return finalize_csr(out, (nodes.size, n)), stats

    def _own_term_matrix(
        self, chunk: np.ndarray, stats: list[QueryStats] | None
    ) -> tuple[sp.csr_matrix, sp.csr_matrix | None]:
        """Sparse own-term rows of a chunk plus the hub ``+α`` points.

        The α un-adjustment is a *separate* matrix so the per-entry
        addition order matches the dense path exactly:
        ``(matmul + own) + α``, never ``matmul + (own + α)``.
        """
        n = self.graph.num_nodes
        vecs: list[SparseVec] = []
        alpha_rows: list[int] = []
        alpha_cols: list[int] = []
        for k, u in enumerate(chunk.tolist()):
            if self.is_hub(u):
                own = self.hub_partials[u]
                alpha_rows.append(k)
                alpha_cols.append(u)
            else:
                own = self.node_partials[u]
            vecs.append(own)
            if stats is not None:
                stats[k].entries_processed += own.nnz
                stats[k].vectors_used += 1
        own_mat = rows_matrix(vecs, n)
        alpha_pts = None
        if alpha_rows:
            alpha_pts = point_matrix(
                np.asarray(alpha_rows),
                np.asarray(alpha_cols),
                np.full(len(alpha_rows), self.alpha),
                (chunk.size, n),
            )
        return own_mat, alpha_pts

    def query_topk(
        self, u: int, k: int, *, threshold: float | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Top-``k`` of the exact PPV of ``u``: ``(ids, scores)``, best first.

        Ties break by smaller id (the :func:`repro.metrics.top_k_nodes`
        order); ``k`` larger than the graph returns all ``n`` nodes.
        ``threshold`` drops entries with ``score <= threshold`` before the
        k-cut (tail padded with id ``-1`` / score ``0.0``).
        """
        ids, scores, _ = self.query_many_topk(
            np.asarray([u]), k, threshold=threshold
        )
        return ids[0], scores[0]

    def query_many_topk(
        self,
        nodes: Sequence[int] | np.ndarray,
        k: int,
        *,
        batch: int = DEFAULT_BATCH,
        threshold: float | None = None,
    ) -> tuple[np.ndarray, np.ndarray, list[QueryStats]]:
        """Batched top-``k`` queries without materialising full PPVs.

        Returns ``(ids, scores, stats)`` where ``ids``/``scores`` are
        ``(len(nodes), min(k, n))`` arrays, row ``j`` holding the best-k
        entries of ``nodes[j]``'s PPV.  Dense intermediates are bounded at
        one ``(batch, n)`` chunk — the full ``(len(nodes), n)`` matrix of
        :meth:`query_many` is never built.  ``threshold`` applies the
        :func:`topk_rows` score cut per row.
        """
        n = self.graph.num_nodes
        nodes = validate_batch(nodes, n)
        return topk_in_batches(
            lambda chunk: self.query_many(chunk, batch=None),
            nodes,
            k,
            n,
            batch,
            threshold,
            kernels=self.kernels,
        )

    def query_reference(self, u: int) -> tuple[np.ndarray, QueryStats]:
        """Eq. 4 evaluated hub-by-hub — the pre-vectorisation reference.

        Kept as the correctness oracle for the fast path and as the
        baseline the batch-query benchmark measures against.
        """
        if not 0 <= u < self.graph.num_nodes:
            raise QueryError(f"query node {u} out of range")
        acc = np.zeros(self.graph.num_nodes)
        stats = QueryStats()
        inv_alpha = 1.0 / self.alpha
        for h in self.hubs.tolist():
            weight = self.skeleton_cols[h].get(u)
            stats.skeleton_lookups += 1
            if h == u:
                weight -= self.alpha  # the f_u(h) adjustment of Eq. 4
            if weight == 0.0:
                continue
            part = self.hub_partials[h]
            part.add_into(acc, weight * inv_alpha)
            stats.entries_processed += part.nnz
            stats.vectors_used += 1
        self._add_own_term(u, acc, stats)
        return acc, stats

    # ------------------------------------------------------------------
    def space_report(self) -> dict[str, int]:
        """Wire bytes of the stored vectors, by category."""
        return {
            "hub_partials": sum(v.wire_bytes for v in self.hub_partials.values()),
            "skeleton": sum(v.wire_bytes for v in self.skeleton_cols.values()),
            "node_partials": sum(v.wire_bytes for v in self.node_partials.values()),
        }

    def total_bytes(self) -> int:
        return sum(self.space_report().values())

    def total_nnz(self) -> int:
        stores = (self.hub_partials, self.skeleton_cols, self.node_partials)
        return sum(v.nnz for store in stores for v in store.values())

    # ------------------------------------------------------------------
    # Build helpers shared with JW/GPA constructors and the incremental
    # update path.  All solvers run in per-column convergence mode, so the
    # vectors produced are independent of how sources are grouped into
    # batches — recomputing any subset reproduces a full rebuild exactly.
    # ------------------------------------------------------------------
    def _build_hub_side(self, view: VirtualSubgraph, batch: int) -> None:
        """Hub partial vectors and skeleton columns on ``view``."""
        self._build_hub_partials(view, self.hubs, batch)
        self._build_hub_skeletons(view, self.hubs, batch)

    def _build_hub_partials(
        self, view: VirtualSubgraph, which: np.ndarray, batch: int
    ) -> None:
        """Adjusted partial vectors ``P_h`` of the hubs in ``which``."""
        if which.size == 0:
            return
        hub_local = np.asarray(view.to_local(self.hubs), dtype=np.int64)
        which_local = np.asarray(view.to_local(which), dtype=np.int64)
        for lo in range(0, which.size, batch):
            chunk = slice(lo, min(lo + batch, which.size))
            hubs_chunk = which[chunk]
            t0 = time.perf_counter()
            d, _ = partial_vectors(
                view, hub_local, which_local[chunk],
                alpha=self.alpha, tol=self.tol, per_column=True,
                kernels=self.kernels,
            )
            per_col = (time.perf_counter() - t0) / max(1, hubs_chunk.size)
            for j, h in enumerate(hubs_chunk.tolist()):
                col = d[:, j]
                col[int(which_local[chunk][j])] -= self.alpha  # adjusted P_h
                self.hub_partials[h] = _sparsify(col, view, self.prune)
                self.build_cost[("hub", h)] = per_col

    def _build_hub_skeletons(
        self, view: VirtualSubgraph, which: np.ndarray, batch: int
    ) -> None:
        """Skeleton columns ``s_·(h)`` of the hubs in ``which``."""
        if which.size == 0:
            return
        which_local = np.asarray(view.to_local(which), dtype=np.int64)
        for lo in range(0, which.size, batch):
            chunk = slice(lo, min(lo + batch, which.size))
            hubs_chunk = which[chunk]
            t0 = time.perf_counter()
            f = skeleton_columns(
                view, which_local[chunk],
                alpha=self.alpha, tol=self.tol, per_column=True,
            )
            per_col = (time.perf_counter() - t0) / max(1, hubs_chunk.size)
            for j, h in enumerate(hubs_chunk.tolist()):
                self.skeleton_cols[h] = _sparsify(f[:, j], view, self.prune)
                self.build_cost[("skel", h)] = per_col

    def _build_node_partials(
        self, view: VirtualSubgraph, sources: np.ndarray, hub_local: np.ndarray, batch: int
    ) -> None:
        """Partial vectors of (non-hub) ``sources``, confined to ``view``."""
        src_local = np.asarray(view.to_local(sources), dtype=np.int64)
        for lo in range(0, sources.size, batch):
            chunk = slice(lo, min(lo + batch, sources.size))
            t0 = time.perf_counter()
            d, _ = partial_vectors(
                view, hub_local, src_local[chunk],
                alpha=self.alpha, tol=self.tol, per_column=True,
                kernels=self.kernels,
            )
            per_col = (time.perf_counter() - t0) / max(1, sources[chunk].size)
            for j, u in enumerate(sources[chunk].tolist()):
                self.node_partials[u] = _sparsify(d[:, j], view, self.prune)
                self.build_cost[("part", u)] = per_col


def _sparsify(local_dense: np.ndarray, view: VirtualSubgraph, prune: float) -> SparseVec:
    """Local dense column → global-coordinate :class:`SparseVec`."""
    mask = np.abs(local_dense) > prune
    local_idx = np.nonzero(mask)[0]
    return SparseVec(view.nodes[local_idx], local_dense[local_idx], _trusted=True)


def full_view(graph: DiGraph) -> VirtualSubgraph:
    """The whole graph as a view (identity local/global mapping)."""
    return as_view(graph)
