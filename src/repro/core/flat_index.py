"""Shared flat-hub PPV index: the machinery behind PPV-JW and GPA.

Both algorithms pre-compute, for one global hub set ``H``:

* adjusted hub partial vectors ``P_h = p_h − α·x_h``,
* skeleton columns ``s_·(h)`` (one vector per hub, value at every node),
* partial vectors ``p_u`` of every non-hub node,

and answer queries with the hubs theorem (Eq. 4):

    ``r_u = (1/α) Σ_h (s_u(h) − α·f_u(h)) · P_h + p_u``

They differ only in *where the vectors' support lives*: PPV-JW picks hubs by
PageRank, so partial vectors can span the whole graph; GPA picks hubs as a
partition separator, which confines every non-hub partial vector to its own
subgraph — the space win of Section 3.2.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.decomposition import as_view, partial_vectors, skeleton_columns
from repro.core.sparsevec import SparseVec
from repro.errors import QueryError
from repro.graph.digraph import DiGraph
from repro.graph.subgraph import VirtualSubgraph

__all__ = ["QueryStats", "FlatPPVIndex", "DEFAULT_BATCH"]

DEFAULT_BATCH = 256


@dataclass
class QueryStats:
    """Work counters for one query — the cost-model currency.

    ``entries_processed`` counts every stored vector entry touched by an
    axpy (the float-op proxy); ``vectors_used`` counts the pre-computed
    vectors combined; ``skeleton_lookups`` counts hub-weight fetches.
    """

    entries_processed: int = 0
    vectors_used: int = 0
    skeleton_lookups: int = 0

    def merge(self, other: "QueryStats") -> None:
        self.entries_processed += other.entries_processed
        self.vectors_used += other.vectors_used
        self.skeleton_lookups += other.skeleton_lookups


@dataclass
class FlatPPVIndex:
    """Pre-computed vectors for a flat hub set (PPV-JW / GPA query side)."""

    graph: DiGraph
    alpha: float
    tol: float
    prune: float
    hubs: np.ndarray
    hub_partials: dict[int, SparseVec] = field(default_factory=dict)
    skeleton_cols: dict[int, SparseVec] = field(default_factory=dict)
    node_partials: dict[int, SparseVec] = field(default_factory=dict)
    build_cost: dict[tuple, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def is_hub(self, u: int) -> bool:
        pos = np.searchsorted(self.hubs, u)
        return bool(pos < self.hubs.size and self.hubs[pos] == u)

    def query(self, u: int) -> np.ndarray:
        """Exact PPV of node ``u`` (dense)."""
        vec, _ = self.query_detailed(u)
        return vec

    def query_detailed(self, u: int) -> tuple[np.ndarray, QueryStats]:
        """PPV of ``u`` plus work counters."""
        if not 0 <= u < self.graph.num_nodes:
            raise QueryError(f"query node {u} out of range")
        acc = np.zeros(self.graph.num_nodes)
        stats = QueryStats()
        inv_alpha = 1.0 / self.alpha
        for h in self.hubs.tolist():
            weight = self.skeleton_cols[h].get(u)
            stats.skeleton_lookups += 1
            if h == u:
                weight -= self.alpha  # the f_u(h) adjustment of Eq. 4
            if weight == 0.0:
                continue
            part = self.hub_partials[h]
            part.add_into(acc, weight * inv_alpha)
            stats.entries_processed += part.nnz
            stats.vectors_used += 1
        if self.is_hub(u):
            own = self.hub_partials[u]
            own.add_into(acc)  # P_u back to p_u: re-add the α·x_u diagonal
            acc[u] += self.alpha
            stats.entries_processed += own.nnz
        else:
            own = self.node_partials[u]
            own.add_into(acc)
            stats.entries_processed += own.nnz
        stats.vectors_used += 1
        return acc, stats

    # ------------------------------------------------------------------
    def space_report(self) -> dict[str, int]:
        """Wire bytes of the stored vectors, by category."""
        return {
            "hub_partials": sum(v.wire_bytes for v in self.hub_partials.values()),
            "skeleton": sum(v.wire_bytes for v in self.skeleton_cols.values()),
            "node_partials": sum(v.wire_bytes for v in self.node_partials.values()),
        }

    def total_bytes(self) -> int:
        return sum(self.space_report().values())

    def total_nnz(self) -> int:
        stores = (self.hub_partials, self.skeleton_cols, self.node_partials)
        return sum(v.nnz for store in stores for v in store.values())

    # ------------------------------------------------------------------
    # Build helpers shared with JW/GPA constructors.
    # ------------------------------------------------------------------
    def _build_hub_side(self, view: VirtualSubgraph, batch: int) -> None:
        """Hub partial vectors and skeleton columns on ``view``."""
        if self.hubs.size == 0:
            return
        hub_local = np.asarray(view.to_local(self.hubs), dtype=np.int64)
        for lo in range(0, self.hubs.size, batch):
            chunk = slice(lo, min(lo + batch, self.hubs.size))
            hubs_chunk = self.hubs[chunk]
            t0 = time.perf_counter()
            d, _ = partial_vectors(
                view, hub_local, hub_local[chunk],
                alpha=self.alpha, tol=self.tol,
            )
            per_col = (time.perf_counter() - t0) / max(1, hubs_chunk.size)
            for j, h in enumerate(hubs_chunk.tolist()):
                col = d[:, j]
                local_h = int(hub_local[chunk][j])
                col[local_h] -= self.alpha  # store the adjusted P_h
                self.hub_partials[h] = _sparsify(col, view, self.prune)
                self.build_cost[("hub", h)] = per_col
            t0 = time.perf_counter()
            f = skeleton_columns(
                view, hub_local[chunk], alpha=self.alpha, tol=self.tol
            )
            per_col = (time.perf_counter() - t0) / max(1, hubs_chunk.size)
            for j, h in enumerate(hubs_chunk.tolist()):
                self.skeleton_cols[h] = _sparsify(f[:, j], view, self.prune)
                self.build_cost[("skel", h)] = per_col

    def _build_node_partials(
        self, view: VirtualSubgraph, sources: np.ndarray, hub_local: np.ndarray, batch: int
    ) -> None:
        """Partial vectors of (non-hub) ``sources``, confined to ``view``."""
        src_local = np.asarray(view.to_local(sources), dtype=np.int64)
        for lo in range(0, sources.size, batch):
            chunk = slice(lo, min(lo + batch, sources.size))
            t0 = time.perf_counter()
            d, _ = partial_vectors(
                view, hub_local, src_local[chunk],
                alpha=self.alpha, tol=self.tol,
            )
            per_col = (time.perf_counter() - t0) / max(1, sources[chunk].size)
            for j, u in enumerate(sources[chunk].tolist()):
                self.node_partials[u] = _sparsify(d[:, j], view, self.prune)
                self.build_cost[("part", u)] = per_col


def _sparsify(local_dense: np.ndarray, view: VirtualSubgraph, prune: float) -> SparseVec:
    """Local dense column → global-coordinate :class:`SparseVec`."""
    mask = np.abs(local_dense) > prune
    local_idx = np.nonzero(mask)[0]
    return SparseVec(view.nodes[local_idx], local_dense[local_idx], _trusted=True)


def full_view(graph: DiGraph) -> VirtualSubgraph:
    """The whole graph as a view (identity local/global mapping)."""
    return as_view(graph)
