"""Jeh–Widom decomposition primitives (Sections 2, 5 and Appendix E).

Three computations, all expressed as sparse-matrix iterations so that many
sources/hubs are processed per pass:

* :func:`partial_vectors` — selective expansion (Eq. 9).  Walk mass at
  non-hub nodes deposits an ``α`` share into the result and forwards the
  rest; mass reaching a hub freezes.  The source node is always expanded at
  step 0, even when it is itself a hub, so ``p_h^H(h) = α`` exactly as the
  hubs theorem requires.
* :func:`skeleton_columns` — the paper's improved per-hub iteration
  (Eq. 8, Theorem 6): ``F ← (1-α)·W·F + α·x_h`` converges to the column
  ``s_·(h) = r_·(h)`` of local PPV values at hub ``h``.  Batched across
  hubs; space is ``O(|V|)`` per column, the paper's Section 5.2 point.
* :func:`skeleton_vectors_dp` — the *original* dynamic program (Eq. 10)
  that iterates full skeleton vectors for every node simultaneously.  Kept
  for the ablation benchmark comparing its memory footprint against Eq. 8.

Everything here works on :class:`~repro.graph.subgraph.VirtualSubgraph`
views in *local* coordinates; callers translate to global ids.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.errors import ConvergenceError
from repro.graph.digraph import DiGraph
from repro.graph.subgraph import VirtualSubgraph
from repro.kernels.dispatch import KernelsLike, resolve_kernels

__all__ = [
    "as_view",
    "partial_vectors",
    "skeleton_columns",
    "skeleton_single_hub",
    "skeleton_vectors_dp",
    "expected_iterations",
]


def as_view(graph: DiGraph | VirtualSubgraph) -> VirtualSubgraph:
    """Adapt a whole digraph to the :class:`VirtualSubgraph` interface."""
    if isinstance(graph, VirtualSubgraph):
        return graph
    return VirtualSubgraph(graph, np.arange(graph.num_nodes, dtype=np.int64))


def expected_iterations(alpha: float, tol: float) -> int:
    """Iterations for residual mass ``(1-α)^k`` to drop below ``tol``."""
    if tol >= 1.0:
        return 1
    return int(np.ceil(np.log(tol) / np.log(1.0 - alpha))) + 2


def partial_vectors(
    view: VirtualSubgraph,
    hub_local: np.ndarray,
    source_local: np.ndarray,
    *,
    alpha: float = 0.15,
    tol: float = 1e-4,
    max_iter: int = 100_000,
    per_column: bool = False,
    kernels: KernelsLike = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Partial vectors for many sources at once via selective expansion.

    Parameters
    ----------
    view:
        The (virtual) subgraph the walk is confined to.
    hub_local:
        Local indices of the blocking hub set ``H`` (may be empty, in which
        case the result is the full local PPV of every source).
    source_local:
        Local indices of the source nodes (columns of the result).
    per_column:
        Freeze each column individually once *its* expandable mass drops
        below ``tol`` (instead of iterating until the worst column
        converges).  Columns are independent, so the result is identical
        to solving each source on its own — which is what batched query
        paths need to reproduce per-query results exactly.

    Tours may *end* at a hub — only interior hub visits block a tour — so
    ``p_u^H(h)`` is the first-passage mass ``α·E(h)``; without it the hubs
    theorem cannot reconstruct PPV values at hub coordinates.

    Returns
    -------
    (D, E):
        ``D[v, j] = p_{source_j}^H(v)`` — the partial vectors (hub first-
        passage deposits included); and the final residual matrix ``E``
        whose hub rows hold the frozen pre-stop hub mass
        ``E[h, j] = p_{source_j}^H(h)/α`` (used by FastPPV's scheduled
        expansion).
    """
    n = view.num_nodes
    sources = np.asarray(source_local, dtype=np.int64)
    num_src = sources.size
    d = np.zeros((n, num_src))
    if n == 0 or num_src == 0:
        return d, np.zeros((n, num_src))
    wt = view.transition_T()
    expandable = np.ones(n, dtype=bool)
    expandable[np.asarray(hub_local, dtype=np.int64)] = False
    if per_column:
        # Per-column mode is column-independent by contract, so the
        # kernel backend may solve each source on its own — replaying the
        # batched numpy branch bitwise per column (see pykernels).
        kern = resolve_kernels(kernels).percol_solve
        if kern is not None and sp.issparse(wt) and wt.format == "csr":
            d, e, ok = kern(
                np.asarray(wt.indptr, dtype=np.int64),
                np.asarray(wt.indices, dtype=np.int64),
                np.asarray(wt.data, dtype=np.float64),
                expandable,
                sources,
                alpha,
                tol,
                max_iter,
            )
            if not ok:
                raise ConvergenceError(
                    f"partial_vectors: no convergence in {max_iter} iterations"
                )
            return d, e
    # Step 0: expand every source unconditionally (hub sources included) —
    # the zero-length tour deposits α at the source itself.
    d[sources, np.arange(num_src)] = alpha
    e = np.zeros((n, num_src))
    start = np.zeros((n, num_src))
    start[sources, np.arange(num_src)] = 1.0
    e[:] = (1.0 - alpha) * (wt @ start)
    # Regular selective-expansion rounds.
    mask = expandable[:, None]
    if per_column:
        active = np.ones(num_src, dtype=bool)
        for _ in range(max_iter):
            cols = np.nonzero(active)[0]
            expand = np.where(mask, e[:, cols], 0.0)
            done = (
                expand.max(axis=0) <= tol
                if expand.size
                else np.ones(cols.size, dtype=bool)
            )
            if done.any():
                active[cols[done]] = False
                cols = cols[~done]
                expand = expand[:, ~done]
            if cols.size == 0:
                break
            d[:, cols] += alpha * expand
            e[:, cols] = np.where(mask, 0.0, e[:, cols]) + (1.0 - alpha) * (
                wt @ expand
            )
        else:
            raise ConvergenceError(
                f"partial_vectors: no convergence in {max_iter} iterations"
            )
    else:
        for _ in range(max_iter):
            expand = np.where(mask, e, 0.0)
            if not expand.size or expand.max() <= tol:
                break
            d += alpha * expand
            e = np.where(mask, 0.0, e) + (1.0 - alpha) * (wt @ expand)
        else:
            raise ConvergenceError(
                f"partial_vectors: no convergence in {max_iter} iterations"
            )
    # Deposit (a) the frozen hub mass — tours stopping at a hub belong to
    # the partial vector — and (b) the remaining sub-tolerance expandable
    # mass, so the result is a lower approximation within tol of the true
    # limit (Appendix E.1).
    d += alpha * e
    return d, e


def skeleton_columns(
    view: VirtualSubgraph,
    hub_local: np.ndarray,
    *,
    alpha: float = 0.15,
    tol: float = 1e-4,
    max_iter: int = 100_000,
    per_column: bool = False,
) -> np.ndarray:
    """Skeleton values ``s_u(h)`` for every node ``u`` and hub ``h`` (Eq. 8).

    Returns ``F`` with ``F[u, j] = r_u(h_j)`` w.r.t. ``view``: column ``j``
    is the full skeleton column of hub ``hub_local[j]``.  The iteration is
    the value-propagation fixed point ``F ← (1-α)·W·F + α·x_h``; each
    column is independent (Theorem 6), so batching is exact.

    ``per_column`` freezes each column as soon as *its* delta converges
    (instead of iterating until the worst column does), which makes the
    result independent of how the hubs are grouped into batches — the
    property incremental updates rely on to recompute a subset of columns
    bit-identically to a full rebuild.
    """
    n = view.num_nodes
    hubs = np.asarray(hub_local, dtype=np.int64)
    f = np.zeros((n, hubs.size))
    if n == 0 or hubs.size == 0:
        return f
    w = view.transition()
    cols = np.arange(hubs.size)
    if per_column:
        active = np.ones(hubs.size, dtype=bool)
        for _ in range(max_iter):
            live = np.nonzero(active)[0]
            cur = f[:, live]
            nxt = (1.0 - alpha) * (w @ cur)
            nxt[hubs[live], np.arange(live.size)] += alpha
            deltas = np.abs(nxt - cur).max(axis=0)
            f[:, live] = nxt
            done = deltas <= tol * alpha
            if done.any():
                active[live[done]] = False
            if not active.any():
                return f
        raise ConvergenceError(
            f"skeleton_columns: no convergence in {max_iter} iterations"
        )
    for _ in range(max_iter):
        nxt = (1.0 - alpha) * (w @ f)
        nxt[hubs, cols] += alpha
        delta = np.abs(nxt - f).max()
        f = nxt
        if delta <= tol * alpha:
            return f
    raise ConvergenceError(f"skeleton_columns: no convergence in {max_iter} iterations")


def skeleton_single_hub(
    view: VirtualSubgraph,
    hub_local: int,
    *,
    alpha: float = 0.15,
    tol: float = 1e-4,
    max_iter: int = 100_000,
) -> np.ndarray:
    """One skeleton column with ``O(|V|)`` peak memory — the paper's
    distributed formulation (Eq. 8) verbatim."""
    n = view.num_nodes
    f = np.zeros(n)
    w = view.transition()
    for _ in range(max_iter):
        nxt = (1.0 - alpha) * (w @ f)
        nxt[hub_local] += alpha
        delta = np.abs(nxt - f).max()
        f = nxt
        if delta <= tol * alpha:
            return f
    raise ConvergenceError(f"skeleton_single_hub: no convergence in {max_iter} iterations")


def skeleton_vectors_dp(
    view: VirtualSubgraph,
    hub_local: np.ndarray,
    *,
    alpha: float = 0.15,
    tol: float = 1e-4,
    max_iter: int = 100_000,
) -> np.ndarray:
    """The original Jeh–Widom dynamic program (Eq. 10), hub coordinates only.

    Iterates the skeleton vector of *every* node simultaneously —
    ``D_{k+1}[u] = (1-α)/|Out(u)| Σ D_k[Out_i(u)] + α·x_u`` — which needs
    ``O(|V|·|H|)`` memory throughout, the cost the paper's Section 5.2
    improves on.  Included for the ablation benchmark; the result equals
    :func:`skeleton_columns` (Theorem 6).
    """
    n = view.num_nodes
    hubs = np.asarray(hub_local, dtype=np.int64)
    d = np.zeros((n, hubs.size))
    if n == 0 or hubs.size == 0:
        return d
    # E_0[u] = x_u, restricted to the hub coordinates we are solving for.
    e = np.zeros((n, hubs.size))
    cols = np.arange(hubs.size)
    e[hubs, cols] = 1.0
    w = view.transition()
    for _ in range(max_iter):
        d = (1.0 - alpha) * (w @ d)
        d[hubs, cols] += alpha
        e = (1.0 - alpha) * (w @ e)
        if e.max() <= tol:
            return d
    raise ConvergenceError(f"skeleton_vectors_dp: no convergence in {max_iter} iterations")
