"""The linearity property of PPVs (Jeh–Widom [25], used in Section 1).

For a weighted preference set ``P`` with normalised weights ``w``, the PPV
is the weighted sum of single-node PPVs::

    r_P = Σ_{u ∈ P} w_u · r_u

so any index answering single-node queries answers arbitrary preference-set
queries — the capability PPV-JW restricted to hub nodes and this paper
restores for every node.
"""

from __future__ import annotations

from typing import Callable, Mapping

import numpy as np

from repro.errors import QueryError

__all__ = ["ppv_for_preference_set", "normalize_preference"]


def normalize_preference(preference: Mapping[int, float]) -> dict[int, float]:
    """Validate and normalise preference weights to sum to one."""
    if not preference:
        raise QueryError("preference set must not be empty")
    total = float(sum(preference.values()))
    if total <= 0:
        raise QueryError("preference weights must sum to a positive value")
    for node, weight in preference.items():
        if weight < 0:
            raise QueryError(f"negative preference weight for node {node}")
    return {int(u): float(w) / total for u, w in preference.items() if w > 0}


def ppv_for_preference_set(
    query_fn: Callable[[int], np.ndarray],
    preference: Mapping[int, float],
) -> np.ndarray:
    """Combine single-node PPVs from ``query_fn`` by linearity."""
    weights = normalize_preference(preference)
    acc: np.ndarray | None = None
    for node, weight in weights.items():
        vec = query_fn(node)
        acc = weight * vec if acc is None else acc + weight * vec
    assert acc is not None  # normalize_preference guarantees non-empty
    return acc
