"""Power-iteration PPV baselines.

Two implementations:

* :func:`power_iteration_ppv` — vectorised fixed point
  ``x ← (1-α)·Wᵀ·x + α·u_P``; the reference every exactness experiment is
  measured against, and the workhorse inside the Pregel+/Blogel engine
  programs.
* :func:`power_iteration_reference` — the paper's Algorithm 2 (Appendix C)
  transcribed faithfully: a queue of valued nodes, per-node teleport and
  scatter, dangling nodes optionally redirected to the query node.  Pure
  Python, kept for study and as an oracle in tests.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np
import scipy.sparse as sp

from repro.errors import ConvergenceError, QueryError
from repro.graph.digraph import DiGraph
from repro.kernels.dispatch import KernelsLike, resolve_kernels

__all__ = ["power_iteration_ppv", "power_iteration_reference", "preference_vector"]


def preference_vector(graph: DiGraph, preference: int | Mapping[int, float]) -> np.ndarray:
    """Normalise a preference node (or weighted node set) to a distribution."""
    u = np.zeros(graph.num_nodes)
    if isinstance(preference, (int, np.integer)):
        if not 0 <= int(preference) < graph.num_nodes:
            raise QueryError(f"query node {preference} out of range")
        u[int(preference)] = 1.0
        return u
    if not preference:
        raise QueryError("preference set must not be empty")
    for node, weight in preference.items():
        if not 0 <= int(node) < graph.num_nodes:
            raise QueryError(f"preference node {node} out of range")
        if weight < 0:
            raise QueryError("preference weights must be non-negative")
        u[int(node)] = float(weight)
    total = u.sum()
    if total <= 0:
        raise QueryError("preference weights must not all be zero")
    return u / total


def power_iteration_ppv(
    graph: DiGraph,
    preference: int | Mapping[int, float],
    *,
    alpha: float = 0.15,
    tol: float = 1e-4,
    max_iter: int = 100_000,
    kernels: KernelsLike = None,
) -> np.ndarray:
    """PPV by power iteration, converged when ``max |x_new − x| ≤ tol``.

    Dangling mass is absorbed (sub-stochastic ``W``), matching the
    convention of the decomposition algorithms; normalise graphs with
    ``with_dangling_policy("self_loop")`` for stochastic semantics.
    """
    u = preference_vector(graph, preference)
    wt = graph.transition_T()
    kern = resolve_kernels(kernels).power_solve
    if kern is not None and sp.issparse(wt) and wt.format == "csr":
        x, iters = kern(
            np.asarray(wt.indptr, dtype=np.int64),
            np.asarray(wt.indices, dtype=np.int64),
            np.asarray(wt.data, dtype=np.float64),
            u,
            alpha,
            tol,
            max_iter,
        )
        if iters < 0:
            raise ConvergenceError(
                f"power iteration: no convergence in {max_iter} iterations"
            )
        return x
    x = u.copy()
    for _ in range(max_iter):
        nxt = (1.0 - alpha) * (wt @ x) + alpha * u
        delta = np.abs(nxt - x).max()
        x = nxt
        if delta <= tol:
            return x
    raise ConvergenceError(f"power iteration: no convergence in {max_iter} iterations")


def power_iteration_reference(
    graph: DiGraph,
    query: int,
    *,
    alpha: float = 0.15,
    tol: float = 1e-4,
    max_iter: int = 100_000,
    dangling: str = "to_query",
) -> np.ndarray:
    """Algorithm 2 of the paper, queue-based, one node at a time.

    ``dangling="to_query"`` reproduces lines 14–16 (a dangling node's
    forward mass returns to the query node); ``"absorb"`` drops it, matching
    :func:`power_iteration_ppv` on graphs that still have dangling nodes.
    """
    if dangling not in ("to_query", "absorb"):
        raise QueryError(f"unknown dangling mode {dangling!r}")
    n = graph.num_nodes
    if not 0 <= query < n:
        raise QueryError(f"query node {query} out of range")
    ppv = np.zeros(n)
    ppv[query] = 1.0
    in_queue = np.zeros(n, dtype=bool)
    valued = [query]
    in_queue[query] = True
    for _ in range(max_iter):
        tmp = np.zeros(n)
        new_nodes: list[int] = []
        for u in valued:
            mass = ppv[u]
            if mass == 0.0:
                continue
            tmp[query] += mass * alpha  # teleport back to the origin
            succ = graph.successors(u)
            if succ.size == 0:
                if dangling == "to_query":
                    tmp[query] += mass * (1.0 - alpha)
                continue
            share = mass * (1.0 - alpha) / succ.size
            for v in succ.tolist():
                tmp[v] += share
                if not in_queue[v]:
                    in_queue[v] = True
                    new_nodes.append(v)
        valued.extend(new_nodes)
        converged = True
        for u in valued:
            if abs(ppv[u] - tmp[u]) > tol:
                converged = False
                break
        ppv = tmp
        if converged:
            return ppv
    raise ConvergenceError(f"Algorithm 2: no convergence in {max_iter} iterations")
