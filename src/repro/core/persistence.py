"""Persist and reload HGPA indexes.

The paper's workflow is offline pre-computation followed by online serving;
that split needs the index to survive a process restart.  This module
stores everything — graph CSR, the partition hierarchy, every pre-computed
vector and its build cost — in a single compressed ``.npz`` archive using
flat concatenated arrays (no pickling, loadable anywhere numpy runs).
"""

from __future__ import annotations

from typing import Any

from collections.abc import Mapping

import os

import numpy as np

from repro.core.hgpa import HGPAIndex
from repro.core.sparsevec import SparseVec
from repro.errors import SerializationError
from repro.graph.digraph import DiGraph
from repro.partition.hierarchy import PartitionHierarchy, SubgraphNode

__all__ = ["save_hgpa_index", "load_hgpa_index"]

_FORMAT_VERSION = 1


def _pack_store(
    store: dict[int, SparseVec], costs: dict[tuple[Any, ...], float], kind: str
) -> dict[str, np.ndarray]:
    keys = np.asarray(sorted(store), dtype=np.int64)
    vecs = [store[int(k)] for k in keys]
    nnzs = np.asarray([v.nnz for v in vecs], dtype=np.int64)
    idx = (
        np.concatenate([v.idx for v in vecs]) if vecs else np.empty(0, dtype=np.int64)
    )
    val = np.concatenate([v.val for v in vecs]) if vecs else np.empty(0)
    cost = np.asarray([costs.get((kind, int(k)), 0.0) for k in keys])
    return {
        f"{kind}_keys": keys,
        f"{kind}_nnz": nnzs,
        f"{kind}_idx": idx,
        f"{kind}_val": val,
        f"{kind}_cost": cost,
    }


def _unpack_store(
    data: Mapping[str, np.ndarray],
    kind: str,
    store: dict[int, SparseVec],
    costs: dict[tuple[Any, ...], float],
) -> None:
    keys = data[f"{kind}_keys"]
    nnzs = data[f"{kind}_nnz"]
    idx = data[f"{kind}_idx"]
    val = data[f"{kind}_val"]
    cost = data[f"{kind}_cost"]
    offsets = np.zeros(keys.size + 1, dtype=np.int64)
    np.cumsum(nnzs, out=offsets[1:])
    for j, key in enumerate(keys.tolist()):
        lo, hi = offsets[j], offsets[j + 1]
        store[int(key)] = SparseVec(idx[lo:hi].copy(), val[lo:hi].copy(), _trusted=True)
        costs[(kind, int(key))] = float(cost[j])


def save_hgpa_index(index: HGPAIndex, path: str | os.PathLike) -> None:
    """Write the full index (graph + hierarchy + vectors) to ``path``."""
    h = index.hierarchy
    nodes_concat = (
        np.concatenate([sg.nodes for sg in h.subgraphs])
        if h.subgraphs
        else np.empty(0, dtype=np.int64)
    )
    hubs_concat = (
        np.concatenate([sg.hubs for sg in h.subgraphs])
        if h.subgraphs
        else np.empty(0, dtype=np.int64)
    )
    payload: dict[str, np.ndarray] = {
        "format_version": np.asarray([_FORMAT_VERSION]),
        "alpha": np.asarray([index.alpha]),
        "tol": np.asarray([index.tol]),
        "prune": np.asarray([index.prune]),
        "fanout": np.asarray([h.fanout]),
        "graph_indptr": index.graph.indptr,
        "graph_indices": index.graph.indices,
        "graph_name": np.array(index.graph.name),
        "sub_levels": np.asarray([sg.level for sg in h.subgraphs], dtype=np.int64),
        "sub_parents": np.asarray(
            [-1 if sg.parent is None else sg.parent for sg in h.subgraphs],
            dtype=np.int64,
        ),
        "sub_node_counts": np.asarray(
            [sg.nodes.size for sg in h.subgraphs], dtype=np.int64
        ),
        "sub_hub_counts": np.asarray(
            [sg.hubs.size for sg in h.subgraphs], dtype=np.int64
        ),
        "sub_nodes": nodes_concat,
        "sub_hubs": hubs_concat,
    }
    payload.update(_pack_store(index.hub_partials, index.build_cost, "hub"))
    payload.update(_pack_store(index.skeleton_cols, index.build_cost, "skel"))
    payload.update(_pack_store(index.leaf_ppv, index.build_cost, "leaf"))
    np.savez_compressed(path, **payload)


def load_hgpa_index(path: str | os.PathLike) -> HGPAIndex:
    """Reload an index written by :func:`save_hgpa_index`."""
    with np.load(path, allow_pickle=False) as data:
        if "format_version" not in data:
            raise SerializationError(f"{path}: not a repro index archive")
        version = int(data["format_version"][0])
        if version != _FORMAT_VERSION:
            raise SerializationError(
                f"{path}: unsupported index format {version} "
                f"(expected {_FORMAT_VERSION})"
            )
        graph = DiGraph(
            data["graph_indptr"], data["graph_indices"], name=str(data["graph_name"])
        )
        levels = data["sub_levels"]
        parents = data["sub_parents"]
        node_counts = data["sub_node_counts"]
        hub_counts = data["sub_hub_counts"]
        node_off = np.zeros(levels.size + 1, dtype=np.int64)
        np.cumsum(node_counts, out=node_off[1:])
        hub_off = np.zeros(levels.size + 1, dtype=np.int64)
        np.cumsum(hub_counts, out=hub_off[1:])
        subgraphs: list[SubgraphNode] = []
        for i in range(levels.size):
            subgraphs.append(
                SubgraphNode(
                    node_id=i,
                    level=int(levels[i]),
                    nodes=data["sub_nodes"][node_off[i] : node_off[i + 1]].copy(),
                    parent=None if parents[i] < 0 else int(parents[i]),
                    hubs=data["sub_hubs"][hub_off[i] : hub_off[i + 1]].copy(),
                )
            )
        for sg in subgraphs:
            if sg.parent is not None:
                subgraphs[sg.parent].children.append(sg.node_id)
        hierarchy = PartitionHierarchy(graph, subgraphs, int(data["fanout"][0]))
        index = HGPAIndex(
            graph=graph,
            hierarchy=hierarchy,
            alpha=float(data["alpha"][0]),
            tol=float(data["tol"][0]),
            prune=float(data["prune"][0]),
        )
        _unpack_store(data, "hub", index.hub_partials, index.build_cost)
        _unpack_store(data, "skel", index.skeleton_cols, index.build_cost)
        _unpack_store(data, "leaf", index.leaf_ppv, index.build_cost)
        return index
