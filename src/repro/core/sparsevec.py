"""Sparse vector type used for every pre-computed and transmitted PPV piece.

Partial vectors, skeleton columns and leaf-level PPVs are sparse by
construction (tours are blocked by hubs, so most entries are zero); queries
accumulate them into a dense buffer.  The default wire size of a vector —
what a machine ships to the coordinator — is ``16 + 12·nnz`` bytes (header
plus int32 index and float64 value per entry), which is what all
communication accounting in :mod:`repro.distributed` is based on.  Version
2 of the codec widens indices to int64 (``16 + 20·nnz`` bytes) for graphs
whose node ids overflow int32; the header's second slot carries the
version, so ``from_wire`` decodes either without being told which.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SerializationError

__all__ = [
    "SparseVec",
    "WIRE_HEADER_BYTES",
    "WIRE_ENTRY_BYTES",
    "WIRE_ENTRY_BYTES_V2",
]

WIRE_HEADER_BYTES = 16
WIRE_ENTRY_BYTES = 12  # v1: int32 index + float64 value
WIRE_ENTRY_BYTES_V2 = 16  # v2: int64 index + float64 value

_WIRE_IDX_MIN = np.iinfo(np.int32).min
_WIRE_IDX_MAX = np.iinfo(np.int32).max


class SparseVec:
    """Immutable sparse vector: sorted unique indices + nonzero values.

    Both arrays are marked read-only, so derived vectors (``scaled``,
    ``pruned``) may share buffers with their parent without any mutation
    path from one corrupting the other.
    """

    __slots__ = ("idx", "val")

    def __init__(
        self, idx: np.ndarray, val: np.ndarray, *, _trusted: bool = False
    ) -> None:
        if not _trusted:
            idx = np.asarray(idx, dtype=np.int64)
            val = np.asarray(val, dtype=np.float64)
            if idx.shape != val.shape or idx.ndim != 1:
                raise SerializationError(
                    "idx and val must be 1-D arrays of equal length"
                )
            order = np.argsort(idx, kind="stable")
            idx, val = idx[order], val[order]
            if idx.size and np.any(idx[1:] == idx[:-1]):
                # Collapse duplicates by summation.
                uniq, inverse = np.unique(idx, return_inverse=True)
                summed = np.zeros(uniq.size)
                np.add.at(summed, inverse, val)
                idx, val = uniq, summed
            keep = val != 0.0
            idx, val = idx[keep], val[keep]
        idx.flags.writeable = False
        val.flags.writeable = False
        self.idx = idx
        self.val = val

    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "SparseVec":
        return cls(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64), _trusted=True
        )

    @classmethod
    def from_dense(cls, arr: np.ndarray, *, prune: float = 0.0) -> "SparseVec":
        """Sparsify a dense array, dropping entries with ``|x| <= prune``."""
        arr = np.asarray(arr, dtype=np.float64)
        mask = np.abs(arr) > prune
        idx = np.nonzero(mask)[0].astype(np.int64)
        return cls(idx, arr[idx].copy(), _trusted=True)

    @classmethod
    def one_hot(cls, index: int, value: float = 1.0) -> "SparseVec":
        """The basic vector ``value · x_index``."""
        return cls(
            np.asarray([index], dtype=np.int64),
            np.asarray([value], dtype=np.float64),
            _trusted=True,
        )

    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(self.idx.size)

    @property
    def wire_bytes(self) -> int:
        """Serialized size in bytes (communication-cost accounting)."""
        return WIRE_HEADER_BYTES + WIRE_ENTRY_BYTES * self.nnz

    def wire_bytes_at(self, version: int) -> int:
        """Serialized size under an explicit wire-format version.

        Space accounting must use the version the deployment actually
        ships (v2 entries are 16 bytes, not 12), so meters and store
        metrics take the version rather than assuming v1.
        """
        if version == 1:
            return WIRE_HEADER_BYTES + WIRE_ENTRY_BYTES * self.nnz
        if version == 2:
            return WIRE_HEADER_BYTES + WIRE_ENTRY_BYTES_V2 * self.nnz
        raise SerializationError(f"unknown wire version {version!r}")

    def get(self, i: int) -> float:
        """Value at index ``i`` (0.0 when absent)."""
        pos = np.searchsorted(self.idx, i)
        if pos < self.idx.size and self.idx[pos] == i:
            return float(self.val[pos])
        return 0.0

    def sum(self) -> float:
        return float(self.val.sum())

    def to_dense(self, n: int) -> np.ndarray:
        out = np.zeros(n)
        out[self.idx] = self.val
        return out

    def add_into(self, dense: np.ndarray, scale: float = 1.0) -> None:
        """``dense[idx] += scale * val`` — the query-time axpy.

        Fancy-index ``+=`` is safe (and ~10x faster than ``np.add.at``)
        because indices are unique by construction.
        """
        if scale == 1.0:
            dense[self.idx] += self.val
        else:
            dense[self.idx] += scale * self.val

    def pruned(self, eps: float) -> "SparseVec":
        """Copy without entries of magnitude ``<= eps``."""
        keep = np.abs(self.val) > eps
        return SparseVec(self.idx[keep], self.val[keep], _trusted=True)

    def scaled(self, factor: float) -> "SparseVec":
        return SparseVec(self.idx, self.val * factor, _trusted=True)

    def __add__(self, other: "SparseVec") -> "SparseVec":
        return SparseVec(
            np.concatenate([self.idx, other.idx]),
            np.concatenate([self.val, other.val]),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SparseVec):
            return NotImplemented
        return np.array_equal(self.idx, other.idx) and np.array_equal(
            self.val, other.val
        )

    def __hash__(self) -> int:  # pragma: no cover - rarely used
        return hash((self.nnz, float(self.val.sum()) if self.nnz else 0.0))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<SparseVec nnz={self.nnz} sum={self.sum():.4g}>"

    # ------------------------------------------------------------------
    def to_wire(self, *, version: int = 1) -> bytes:
        """Serialize to the wire format used between machines.

        Version 1 (the default) carries indices as int32; anything outside
        that range cannot be represented and silently wrapping it would
        corrupt node ids, so the codec refuses instead (indices are sorted,
        so checking the two ends covers every entry).  Version 2 widens
        indices to int64 — 4 extra bytes per entry buy the full id range.
        The header's second slot records the version (``0`` for the
        historical v1 layout, ``2`` for v2), which is how :meth:`from_wire`
        tells them apart.
        """
        if version == 2:
            head = np.asarray([self.nnz, 2], dtype=np.int64).tobytes()
            return head + self.idx.astype(np.int64).tobytes() + self.val.tobytes()
        if version != 1:
            raise SerializationError(f"unknown wire version {version!r}")
        if self.nnz and (self.idx[0] < _WIRE_IDX_MIN or self.idx[-1] > _WIRE_IDX_MAX):
            raise SerializationError(
                f"index out of int32 wire range: idx spans "
                f"[{int(self.idx[0])}, {int(self.idx[-1])}], representable "
                f"range is [{_WIRE_IDX_MIN}, {_WIRE_IDX_MAX}]"
            )
        head = np.asarray([self.nnz, 0], dtype=np.int64).tobytes()
        return head + self.idx.astype(np.int32).tobytes() + self.val.tobytes()

    @classmethod
    def from_wire(cls, payload: bytes) -> "SparseVec":
        """Decode a payload produced by :meth:`to_wire` (either version)."""
        if len(payload) < WIRE_HEADER_BYTES:
            raise SerializationError("payload shorter than header")
        head = np.frombuffer(payload, dtype=np.int64, count=2)
        nnz, flag = int(head[0]), int(head[1])
        if flag == 0:
            idx_dtype, idx_bytes, entry_bytes = np.int32, 4, WIRE_ENTRY_BYTES
        elif flag == 2:
            idx_dtype, idx_bytes, entry_bytes = np.int64, 8, WIRE_ENTRY_BYTES_V2
        else:
            raise SerializationError(f"unknown wire version flag {flag}")
        expect = WIRE_HEADER_BYTES + nnz * entry_bytes
        if len(payload) != expect:
            raise SerializationError(
                f"payload length {len(payload)} != expected {expect}"
            )
        idx = np.frombuffer(
            payload, dtype=idx_dtype, count=nnz, offset=WIRE_HEADER_BYTES
        ).astype(np.int64)
        val = np.frombuffer(
            payload,
            dtype=np.float64,
            count=nnz,
            offset=WIRE_HEADER_BYTES + idx_bytes * nnz,
        ).copy()
        return cls(idx, val, _trusted=True)
