"""The kernel dispatch seam: one object that says how hot loops run.

A :class:`Kernels` bundle holds one optional callable per operation
family; ``None`` means "run the inline scipy/numpy baseline at the call
site" — the baselines stay where they always were (they are the
oracles), so the scipy backend is the empty bundle and a missing
accelerator changes nothing but speed.  :func:`resolve_kernels` is what
every dispatching call site funnels through:

* ``None``     → the process-wide default from the capability probe
  (``REPRO_KERNELS`` / auto-detection — one switch flips the stack);
* a string     → that backend by name (strings thread through the
  picklable distributed machine builders);
* a bundle     → used as-is (an index's ``kernels`` field).

Bundles are cached per backend; building the numba bundle compiles the
kernels once and silently downgrades to scipy (reason recorded in the
report) if compilation fails.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Callable

from repro.errors import QueryError
from repro.kernels.capability import KernelReport, probe
from repro.kernels.pykernels import KERNEL_OPS

__all__ = [
    "Kernels",
    "KernelsLike",
    "get_kernels",
    "active_kernels",
    "resolve_kernels",
]


@dataclass(frozen=True)
class Kernels:
    """One backend's kernel table (``None`` slot = inline baseline).

    ``backend`` names what actually dispatches (a requested-but-broken
    numba build carries ``backend="scipy"`` with the reason in
    ``report.notes``); ``report`` is the capability report benchmarks
    serialise next to their timings.
    """

    backend: str
    report: KernelReport
    topk_dense: Callable[..., Any] | None = None
    topk_sparse: Callable[..., Any] | None = None
    spgemm_csc: Callable[..., Any] | None = None
    cs_add: Callable[..., Any] | None = None
    power_solve: Callable[..., Any] | None = None
    percol_solve: Callable[..., Any] | None = None

    def implementation(self, op: str) -> Callable[..., Any]:
        """The callable that actually executes operation ``op``.

        An accelerated kernel when one is registered, else the baseline
        the call site runs inline — which is what the fallback tests
        assert: with numba absent or ``REPRO_KERNELS=scipy``, dispatch
        returns the original implementations.
        """
        if op not in KERNEL_OPS:
            raise QueryError(f"unknown kernel op {op!r}")
        fn: Callable[..., Any] | None = getattr(self, op)
        if fn is not None:
            return fn
        return _baseline(op)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        slots = [
            f.name
            for f in fields(self)
            if f.name in KERNEL_OPS and getattr(self, f.name) is not None
        ]
        return f"<Kernels backend={self.backend} accelerated={slots}>"


#: What dispatching call sites accept: a bundle, a backend name, or
#: ``None`` for the probe's process-wide default.
KernelsLike = Kernels | str | None


def _baseline(op: str) -> Callable[..., Any]:
    """The inline implementation a ``None`` slot falls back to.

    Late imports: the kernels package must stay importable from
    ``repro.core`` without a cycle.
    """
    import operator

    if op == "topk_dense":
        from repro.core.flat_index import topk_rows

        return topk_rows
    if op == "topk_sparse":
        from repro.core.sparse_ops import topk_rows_sparse

        return topk_rows_sparse
    if op == "spgemm_csc":
        return operator.matmul
    if op == "cs_add":
        return operator.add
    if op == "power_solve":
        from repro.core.power_iteration import power_iteration_ppv

        return power_iteration_ppv
    from repro.core.decomposition import partial_vectors

    return partial_vectors


_CACHE: dict[str, Kernels] = {}


def get_kernels(backend: str | None = None) -> Kernels:
    """The (cached) kernel bundle for ``backend``.

    ``None``/``"auto"`` resolve to the capability probe's pick; unknown
    names downgrade to scipy with the reason recorded — never an error,
    matching the probe's silent-fallback contract.
    """
    report = probe()
    name = report.backend if backend is None else backend.strip().lower()
    if name == "auto":
        name = report.backend
    cached = _CACHE.get(name)
    if cached is None:
        cached = _build(name, report)
        _CACHE[name] = cached
    return cached


def active_kernels() -> Kernels:
    """The process-wide default bundle (``REPRO_KERNELS`` / probe)."""
    return get_kernels(None)


def resolve_kernels(kernels: KernelsLike) -> Kernels:
    """Normalise a call-site ``kernels=`` argument to a bundle."""
    if isinstance(kernels, Kernels):
        return kernels
    return get_kernels(kernels)


def _build(name: str, report: KernelReport) -> Kernels:
    if name == "scipy":
        return Kernels(backend="scipy", report=report.retarget("scipy"))
    if name == "python":
        from repro.kernels.pykernels import build_kernels

        table = build_kernels(lambda f: f)
        return Kernels(
            backend="python", report=report.retarget("python"), **table
        )
    if name == "numba":
        from repro.kernels import numba_backend

        table, reason = numba_backend.load()
        if table is None:
            return Kernels(
                backend="scipy",
                report=report.with_downgrade(
                    "scipy", f"numba kernels unavailable: {reason}"
                ),
            )
        return Kernels(  # pragma: no cover - requires numba installed
            backend="numba", report=report.retarget("numba"), **table
        )
    return Kernels(
        backend="scipy",
        report=report.with_downgrade(
            "scipy", f"unknown kernel backend {name!r}; using scipy"
        ),
    )
