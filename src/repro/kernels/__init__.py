"""Pluggable fast kernels behind capability detection.

The query stack's hot loops (sparse products, level merging, per-row
top-k, the batched solves) dispatch through this package: a cached
capability :func:`probe` picks a backend (``REPRO_KERNELS=auto|scipy|
numba|python``, auto = numba when it compiles, else scipy), and every
call site accepts ``kernels=`` — a :class:`Kernels` bundle, a backend
name, or ``None`` for the process default.  Backends are exact, not
approximate: each kernel replays its scipy/numpy twin's accumulation
order term-by-term (dense bitwise-equal, sparse ``toarray``-equal), so
flipping the backend can never change a result, only its speed.
"""

from repro.kernels.capability import Capability, KernelReport, probe
from repro.kernels.dispatch import (
    Kernels,
    KernelsLike,
    active_kernels,
    get_kernels,
    resolve_kernels,
)

__all__ = [
    "Capability",
    "KernelReport",
    "Kernels",
    "KernelsLike",
    "probe",
    "active_kernels",
    "get_kernels",
    "resolve_kernels",
]
