"""Capability detection for the fast-kernel dispatch seam.

One cached :func:`probe` decides which kernel backend the process uses:

* ``REPRO_KERNELS=auto`` (the default) picks ``numba`` when the JIT
  compiles, else ``scipy``;
* ``REPRO_KERNELS=scipy|numba|python`` forces a backend — forcing an
  unavailable one silently downgrades to ``scipy`` with the reason
  recorded in the report (never an exception: a missing accelerator
  must not change program behaviour, only speed);
* ``cupy`` is detected and reported for forward compatibility but no
  kernel family is registered for it yet.

The probe runs once per process (logged once); its
:class:`KernelReport` is what benchmarks embed in their JSON output so
every measured number is attributable to the backend that produced it.
"""

from __future__ import annotations

import importlib.util
import logging
import os
from dataclasses import dataclass, replace
from typing import Any

__all__ = [
    "Capability",
    "KernelReport",
    "probe",
    "VALID_BACKENDS",
    "ENV_VAR",
]

logger = logging.getLogger(__name__)

ENV_VAR = "REPRO_KERNELS"

#: Values accepted in ``REPRO_KERNELS`` (``python`` runs the njit-able
#: kernel sources uncompiled — the numba path's logic without numba,
#: used by the equivalence suite and never selected by ``auto``).
VALID_BACKENDS = ("auto", "scipy", "numba", "python")


@dataclass(frozen=True)
class Capability:
    """One detected (or missing) accelerator."""

    name: str
    available: bool
    version: str | None = None
    reason: str | None = None

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "available": self.available,
            "version": self.version,
            "reason": self.reason,
        }


@dataclass(frozen=True)
class KernelReport:
    """The probe's verdict: what was asked for, what runs, and why.

    ``requested`` is the (normalised) ``REPRO_KERNELS`` value,
    ``backend`` the backend actually dispatching, ``capabilities`` the
    per-accelerator detection results, and ``notes`` every silent
    downgrade's recorded reason.
    """

    requested: str
    backend: str
    capabilities: tuple[Capability, ...] = ()
    notes: tuple[str, ...] = ()

    def capability(self, name: str) -> Capability | None:
        for cap in self.capabilities:
            if cap.name == name:
                return cap
        return None

    def with_downgrade(self, backend: str, reason: str) -> "KernelReport":
        return replace(
            self, backend=backend, notes=self.notes + (reason,)
        )

    def retarget(self, backend: str) -> "KernelReport":
        """The same report with ``backend`` switched (explicit requests
        for an available backend — no downgrade note to record)."""
        if backend == self.backend:
            return self
        return replace(self, backend=backend)

    def as_dict(self) -> dict[str, Any]:
        """JSON-serialisable form (the ``kernel_report`` bench field)."""
        return {
            "requested": self.requested,
            "backend": self.backend,
            "capabilities": [c.as_dict() for c in self.capabilities],
            "notes": list(self.notes),
        }


def _detect_numba() -> Capability:
    """Import numba and smoke-compile a trivial function.

    Never raises: any failure (missing package, broken toolchain, a
    compile error) is recorded as the unavailability reason.
    """
    try:
        import numba
    except Exception as exc:  # pragma: no cover - depends on environment
        return Capability("numba", False, reason=f"import failed: {exc}")
    try:  # pragma: no cover - requires numba installed
        probe_fn = numba.njit(cache=False)(_probe_source)
        if probe_fn(20) != 21:
            return Capability(
                "numba",
                False,
                version=getattr(numba, "__version__", None),
                reason="probe compile returned a wrong value",
            )
    except Exception as exc:  # pragma: no cover - depends on environment
        return Capability(
            "numba",
            False,
            version=getattr(numba, "__version__", None),
            reason=f"probe compile failed: {exc}",
        )
    return Capability(  # pragma: no cover - requires numba installed
        "numba", True, version=getattr(numba, "__version__", None)
    )


def _probe_source(x: int) -> int:
    """The trivial function the numba probe compiles."""
    return x + 1


def _detect_cupy() -> Capability:
    """Spec-only cupy detection (no import: importing without a GPU can
    be slow or fatal).  Reported for forward compatibility; no kernel
    family dispatches to it yet."""
    try:
        spec = importlib.util.find_spec("cupy")
    except Exception as exc:  # pragma: no cover - defensive
        return Capability("cupy", False, reason=f"detection failed: {exc}")
    if spec is None:
        return Capability("cupy", False, reason="not installed")
    return Capability(  # pragma: no cover - requires cupy installed
        "cupy", True, reason="detected; no kernel family registered yet"
    )


_REPORT: KernelReport | None = None


def probe(*, refresh: bool = False) -> KernelReport:
    """The process-wide capability report (cached; computed once).

    ``refresh=True`` re-reads ``REPRO_KERNELS`` and re-detects
    accelerators — only tests need it; index builds and query paths hit
    the cache.
    """
    global _REPORT
    if _REPORT is not None and not refresh:
        return _REPORT
    raw = os.environ.get(ENV_VAR, "auto").strip().lower()
    requested = raw or "auto"
    notes: tuple[str, ...] = ()
    if requested not in VALID_BACKENDS:
        notes += (
            f"unknown {ENV_VAR}={requested!r}; falling back to auto",
        )
        requested = "auto"
    capabilities = (_detect_numba(), _detect_cupy())
    numba_cap = capabilities[0]
    if requested in ("auto", "numba"):
        if numba_cap.available:  # pragma: no cover - requires numba
            backend = "numba"
        else:
            backend = "scipy"
            if requested == "numba":
                notes += (
                    f"numba requested but unavailable "
                    f"({numba_cap.reason}); using scipy",
                )
    else:
        backend = requested
    _REPORT = KernelReport(
        requested=requested,
        backend=backend,
        capabilities=capabilities,
        notes=notes,
    )
    logger.info(
        "kernel probe: backend=%s requested=%s numba=%s",
        _REPORT.backend,
        _REPORT.requested,
        "yes" if numba_cap.available else f"no ({numba_cap.reason})",
    )
    return _REPORT
