"""numba compilation of the kernel sources, with a warm-up smoke test.

:func:`load` jits :mod:`repro.kernels.pykernels` through ``numba.njit``
(``fastmath`` stays off — exactness is the contract) and runs every
kernel once on tiny inputs so compile errors surface here, not on the
query path.  Any failure returns ``(None, reason)`` and the dispatcher
downgrades to scipy; nothing raises.  The result is cached per process
— compilation happens at most once.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

__all__ = ["load"]

_LOADED: tuple[dict[str, Callable[..., Any]] | None, str | None] | None = None


def load() -> tuple[dict[str, Callable[..., Any]] | None, str | None]:
    """``(kernel_table, None)`` or ``(None, downgrade_reason)``, cached."""
    global _LOADED
    if _LOADED is None:
        _LOADED = _load()
    return _LOADED


def _load() -> tuple[dict[str, Callable[..., Any]] | None, str | None]:
    try:
        import numba
    except Exception as exc:  # pragma: no cover - depends on environment
        return None, f"numba import failed: {exc}"
    try:  # pragma: no cover - requires numba installed
        from repro.kernels.pykernels import build_kernels

        table = build_kernels(numba.njit(cache=False))
        _warm(table)
    except Exception as exc:  # pragma: no cover - requires numba installed
        return None, f"numba kernel compile failed: {exc}"
    return table, None  # pragma: no cover - requires numba installed


def _warm(table: dict[str, Callable[..., Any]]) -> None:  # pragma: no cover
    """Force one compilation of every kernel at its production signature
    (int64 index arrays, float64 data) on inputs tiny enough to be free."""
    iptr = np.asarray([0, 1], dtype=np.int64)
    idx = np.asarray([0], dtype=np.int64)
    val = np.asarray([0.5], dtype=np.float64)
    table["topk_dense"](np.zeros((1, 2), dtype=np.float64), 1)
    table["topk_sparse"](iptr, idx, val, 2, 1)
    table["spgemm_csc"](iptr, idx, val, iptr, idx, val, 1, 1)
    table["cs_add"](iptr, idx, val, iptr, idx, val)
    x, iters = table["power_solve"](
        iptr.copy(), idx, val, np.asarray([1.0]), 0.15, 0.5, 5
    )
    if iters < 0 or x.shape[0] != 1:
        raise RuntimeError("power_solve warm-up diverged")
    d, _, ok = table["percol_solve"](
        np.asarray([0, 0], dtype=np.int64),
        idx,
        val,
        np.asarray([True]),
        np.asarray([0], dtype=np.int64),
        0.15,
        0.5,
        5,
    )
    if not ok or d.shape != (1, 1):
        raise RuntimeError("percol_solve warm-up diverged")
