"""Kernel sources: njit-able hot loops, one per dispatch operation.

:func:`build_kernels` builds the whole kernel table through a ``jit``
decorator — ``numba.njit`` for the compiled backend, the identity for
the pure-``python`` backend the equivalence suite runs without numba.
Every function below therefore sticks to the numba-nopython subset:
numpy arrays and scalars only, no Python objects, helpers referenced by
closure so the compiled callers bind the compiled helpers.

Exactness is the whole contract (see ``repro/core/sparse_ops.py``):
each kernel replays its scipy/numpy twin's accumulation order
term-by-term, so dense results are bitwise-equal and sparse results
equal on ``toarray()``.  The specific order replayed is documented per
kernel; the fuzz suite in ``tests/test_kernels.py`` asserts it.

Array calling convention: index arrays are ``int64``, value arrays
``float64`` (wrappers in the call-site modules cast); compressed
matrices arrive as raw ``(indptr, indices, data)`` triples so the same
source compiles for CSR and CSC majors.
"""

from __future__ import annotations

from typing import Any, Callable, TypeVar

import numpy as np

__all__ = ["build_kernels", "KERNEL_OPS"]

F = TypeVar("F", bound=Callable[..., Any])

#: Operation names, in the order the dispatch table lists them.
KERNEL_OPS = (
    "topk_dense",
    "topk_sparse",
    "spgemm_csc",
    "cs_add",
    "power_solve",
    "percol_solve",
)


def build_kernels(jit: Callable[[F], F]) -> dict[str, Callable[..., Any]]:
    """Build the kernel table through ``jit`` (identity or ``numba.njit``)."""

    # ----- bounded-heap top-k selection --------------------------------
    # The heap is a min-heap under the "worse" order: entry a is worse
    # than entry b iff a's score is smaller, or the scores tie and a's id
    # is larger — so the root is always the entry the contract would
    # evict first, and the surviving k are exactly the (score desc,
    # id asc) best, ids unique per row making the order strict (the
    # selection is feed-order independent).

    @jit
    def _sift(hs: np.ndarray, hi: np.ndarray, pos: int, size: int) -> None:
        while True:
            child = 2 * pos + 1
            if child >= size:
                return
            right = child + 1
            if right < size and (
                hs[right] < hs[child]
                or (hs[right] == hs[child] and hi[right] > hi[child])
            ):
                child = right
            if hs[child] < hs[pos] or (
                hs[child] == hs[pos] and hi[child] > hi[pos]
            ):
                hs[pos], hs[child] = hs[child], hs[pos]
                hi[pos], hi[child] = hi[child], hi[pos]
                pos = child
            else:
                return

    @jit
    def _offer(
        hs: np.ndarray, hi: np.ndarray, size: int, k: int, v: float, j: int
    ) -> int:
        if size < k:
            hs[size] = v
            hi[size] = j
            size += 1
            if size == k:
                for pos in range(k // 2 - 1, -1, -1):
                    _sift(hs, hi, pos, k)
        elif hs[0] < v or (hs[0] == v and hi[0] > j):
            hs[0] = v
            hi[0] = j
            _sift(hs, hi, 0, k)
        return size

    @jit
    def _drain(
        hs: np.ndarray,
        hi: np.ndarray,
        k: int,
        ids: np.ndarray,
        scores: np.ndarray,
        r: int,
    ) -> None:
        # Pop worst-first, filling the output back to front: best first,
        # ties by smaller id — the metrics.top_k_nodes contract order.
        size = k
        for out in range(k - 1, -1, -1):
            ids[r, out] = hi[0]
            scores[r, out] = hs[0]
            size -= 1
            hs[0] = hs[size]
            hi[0] = hi[size]
            _sift(hs, hi, 0, size)

    @jit
    def topk_dense(
        dense: np.ndarray, k: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-row top-k of a dense ``(rows, n)`` chunk; needs ``0 < k <= n``.

        Scores are selected values, never arithmetic, so they are
        bitwise the baseline's; ids ascend through each row so the heap
        sees candidates in the same id order the oracle sorts by.
        """
        rows, n = dense.shape
        ids = np.empty((rows, k), dtype=np.int64)
        scores = np.empty((rows, k), dtype=np.float64)
        hs = np.empty(k, dtype=np.float64)
        hi = np.empty(k, dtype=np.int64)
        for r in range(rows):
            size = 0
            for j in range(n):
                size = _offer(hs, hi, size, k, dense[r, j], j)
            _drain(hs, hi, k, ids, scores, r)
        return ids, scores

    @jit
    def topk_sparse(
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
        n: int,
        k: int,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-row top-k of a canonical CSR; needs ``0 < k <= n``.

        Mirrors ``topk_rows_sparse``'s candidate set exactly: a row's
        stored entries plus its first ``k`` absent ids below
        ``min(n, nnz + k)`` as explicit zeros (any later absent id loses
        every tie to those k).  That pool always holds >= k candidates,
        so the heap fills.
        """
        rows = indptr.shape[0] - 1
        ids = np.empty((rows, k), dtype=np.int64)
        scores = np.empty((rows, k), dtype=np.float64)
        hs = np.empty(k, dtype=np.float64)
        hi = np.empty(k, dtype=np.int64)
        for r in range(rows):
            lo = indptr[r]
            hi_p = indptr[r + 1]
            limit = hi_p - lo + k
            if n < limit:
                limit = n
            size = 0
            for p in range(lo, hi_p):
                size = _offer(hs, hi, size, k, data[p], indices[p])
            p = lo
            miss = 0
            expect = 0
            while expect < limit and miss < k:
                if p < hi_p and indices[p] == expect:
                    p += 1
                else:
                    size = _offer(hs, hi, size, k, 0.0, expect)
                    miss += 1
                expect += 1
            _drain(hs, hi, k, ids, scores, r)
        return ids, scores

    @jit
    def spgemm_csc(
        ap: np.ndarray,
        ai: np.ndarray,
        ax: np.ndarray,
        bp: np.ndarray,
        bi: np.ndarray,
        bx: np.ndarray,
        n_rows: int,
        n_cols: int,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """CSC @ CSC product with sorted output indices.

        Replays scipy's SMMP accumulation exactly: per output column
        ``j``, B's stored entries ``(kk, bval)`` are walked in stored
        (ascending-``kk``) order and each scatters ``bval * a_val`` over
        A's column ``kk`` — so every output entry sums its terms in the
        same sequence as both ``A @ B`` and the dense twin
        ``A @ dense``, starting from the same ``0.0``.  scipy emits the
        indices unsorted and callers canonicalize; here each column is
        emitted sorted directly.
        """
        indptr = np.zeros(n_cols + 1, dtype=np.int64)
        mark = np.full(n_rows, -1, dtype=np.int64)
        for j in range(n_cols):
            count = 0
            for pb in range(bp[j], bp[j + 1]):
                kk = bi[pb]
                for pa in range(ap[kk], ap[kk + 1]):
                    r = ai[pa]
                    if mark[r] != j:
                        mark[r] = j
                        count += 1
            indptr[j + 1] = indptr[j] + count
        nnz = indptr[n_cols]
        indices = np.empty(nnz, dtype=np.int64)
        data = np.empty(nnz, dtype=np.float64)
        acc = np.zeros(n_rows, dtype=np.float64)
        touched = np.empty(n_rows, dtype=np.int64)
        mark[:] = -1
        for j in range(n_cols):
            tcount = 0
            for pb in range(bp[j], bp[j + 1]):
                kk = bi[pb]
                bval = bx[pb]
                for pa in range(ap[kk], ap[kk + 1]):
                    r = ai[pa]
                    v = bval * ax[pa]
                    if mark[r] != j:
                        mark[r] = j
                        acc[r] = 0.0 + v  # scipy's workspace starts at 0
                        touched[tcount] = r
                        tcount += 1
                    else:
                        acc[r] += v
            rows_sorted = np.sort(touched[:tcount])
            base = indptr[j]
            for t in range(tcount):
                rr = rows_sorted[t]
                indices[base + t] = rr
                data[base + t] = acc[rr]
        return indptr, indices, data

    @jit
    def cs_add(
        ap: np.ndarray,
        ai: np.ndarray,
        ax: np.ndarray,
        bp: np.ndarray,
        bi: np.ndarray,
        bx: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Canonical compressed-sparse ``a + b`` (either major order).

        The sorted two-pointer merge scipy's canonical ``csr_plus_csr``
        runs: shared coordinates get the single ``a + b`` addition in
        operand order, one-sided coordinates copy through, and exact-zero
        results are dropped — value-identical to the dense ``+=`` twin
        either way, since a dropped zero and an implicit zero read back
        equal.
        """
        n_major = ap.shape[0] - 1
        nnz_max = ax.shape[0] + bx.shape[0]
        indptr = np.zeros(n_major + 1, dtype=np.int64)
        indices = np.empty(nnz_max, dtype=np.int64)
        data = np.empty(nnz_max, dtype=np.float64)
        pos = 0
        for j in range(n_major):
            pa = ap[j]
            ea = ap[j + 1]
            pb = bp[j]
            eb = bp[j + 1]
            while pa < ea and pb < eb:
                ia = ai[pa]
                ib = bi[pb]
                if ia == ib:
                    v = ax[pa] + bx[pb]
                    pa += 1
                    pb += 1
                elif ia < ib:
                    v = ax[pa]
                    ib = ia
                    pa += 1
                else:
                    v = bx[pb]
                    pb += 1
                if v != 0.0:
                    indices[pos] = ib
                    data[pos] = v
                    pos += 1
            while pa < ea:
                if ax[pa] != 0.0:
                    indices[pos] = ai[pa]
                    data[pos] = ax[pa]
                    pos += 1
                pa += 1
            while pb < eb:
                if bx[pb] != 0.0:
                    indices[pos] = bi[pb]
                    data[pos] = bx[pb]
                    pos += 1
                pb += 1
            indptr[j + 1] = pos
        return indptr, indices[:pos].copy(), data[:pos].copy()

    @jit
    def power_solve(
        wp: np.ndarray,
        wi: np.ndarray,
        wx: np.ndarray,
        u: np.ndarray,
        alpha: float,
        tol: float,
        max_iter: int,
    ) -> tuple[np.ndarray, int]:
        """Fused power iteration ``x <- (1-a)*(Wt @ x) + a*u``.

        Replays the numpy loop bitwise: each row's mat-vec sum runs over
        the CSR's stored entries in stored order from 0.0 (scipy's
        ``csr_matvec``), then ``(1-a)*s + a*u[i]`` applies the same two
        multiplies and one add per element, and the convergence test is
        the identical ``max |nxt - x| <= tol`` — so the returned vector
        *and* the iteration count match the baseline exactly.  Returns
        ``(x, iterations)``; ``-1`` iterations means no convergence.
        """
        n = u.shape[0]
        omalpha = 1.0 - alpha
        x = u.copy()
        nxt = np.empty(n, dtype=np.float64)
        for it in range(max_iter):
            delta = 0.0
            for i in range(n):
                s = 0.0
                for p in range(wp[i], wp[i + 1]):
                    s += wx[p] * x[wi[p]]
                v = omalpha * s + alpha * u[i]
                diff = v - x[i]
                if diff < 0.0:
                    diff = -diff
                if diff > delta:
                    delta = diff
                nxt[i] = v
            tmp = x
            x = nxt
            nxt = tmp
            if delta <= tol:
                return x, it
        return x, -1

    @jit
    def percol_solve(
        wp: np.ndarray,
        wi: np.ndarray,
        wx: np.ndarray,
        expandable: np.ndarray,
        sources: np.ndarray,
        alpha: float,
        tol: float,
        max_iter: int,
    ) -> tuple[np.ndarray, np.ndarray, bool]:
        """Per-column-convergent selective expansion (``partial_vectors``).

        Column independence is what the baseline's ``per_column`` mode
        guarantees, so each source is solved on its own here — replaying
        the batched numpy branch bitwise per column: the step-0 one-hot
        mat-vec runs each row's stored entries in stored order (scipy
        ``csr_matvecs`` is column-independent, and the skipped terms are
        exact ``+0.0``); every round masks, checks ``max <= tol``
        *before* updating, then applies ``d += a*expand`` /
        ``e = masked + (1-a)*(Wt @ expand)`` with the same elementwise
        operation order; the final ``d += a*e`` deposit is applied per
        converged column.  Returns ``(d, e, ok)``; ``ok`` False means
        some column hit ``max_iter``.
        """
        n = expandable.shape[0]
        num = sources.shape[0]
        d = np.zeros((n, num), dtype=np.float64)
        e = np.zeros((n, num), dtype=np.float64)
        omalpha = 1.0 - alpha
        x = np.empty(n, dtype=np.float64)
        y = np.empty(n, dtype=np.float64)
        dcol = np.empty(n, dtype=np.float64)
        ecol = np.empty(n, dtype=np.float64)
        ok = True
        for j in range(num):
            src = sources[j]
            for i in range(n):
                dcol[i] = 0.0
                x[i] = 0.0
            dcol[src] = alpha
            x[src] = 1.0
            for i in range(n):
                s = 0.0
                for p in range(wp[i], wp[i + 1]):
                    s += wx[p] * x[wi[p]]
                ecol[i] = omalpha * s
            converged = False
            for _ in range(max_iter):
                mx = -np.inf
                for i in range(n):
                    v = ecol[i] if expandable[i] else 0.0
                    x[i] = v
                    if v > mx:
                        mx = v
                if mx <= tol:
                    converged = True
                    break
                for i in range(n):
                    dcol[i] = dcol[i] + alpha * x[i]
                for i in range(n):
                    s = 0.0
                    for p in range(wp[i], wp[i + 1]):
                        s += wx[p] * x[wi[p]]
                    y[i] = s
                for i in range(n):
                    base = 0.0 if expandable[i] else ecol[i]
                    ecol[i] = base + omalpha * y[i]
            if not converged:
                ok = False
                break
            for i in range(n):
                d[i, j] = dcol[i] + alpha * ecol[i]
                e[i, j] = ecol[i]
        return d, e, ok

    return {
        "topk_dense": topk_dense,
        "topk_sparse": topk_sparse,
        "spgemm_csc": spgemm_csc,
        "cs_add": cs_add,
        "power_solve": power_solve,
        "percol_solve": percol_solve,
    }
