"""Shared plumbing for the general-purpose graph-engine baselines.

The paper's Section 6.2.8 compares HGPA against power iteration running on
Pregel+ [48] and Blogel [47].  What decides that comparison is *how many
rounds of communication* each system needs and *how many bytes* cross
machine boundaries per round — counts these simulated engines reproduce
exactly, with a :class:`~repro.distributed.network.CostModel` translating
them into seconds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.distributed.network import DEFAULT_COST_MODEL, CostModel
from repro.errors import ClusterError
from repro.graph.digraph import DiGraph

__all__ = ["EngineReport", "hash_machine_assignment", "cross_machine_message_counts"]


@dataclass(frozen=True)
class EngineReport:
    """Execution summary of one engine query."""

    engine: str
    supersteps: int
    communication_bytes: int
    runtime_seconds: float
    wall_seconds: float
    max_machine_edges: int

    @property
    def communication_kb(self) -> float:
        return self.communication_bytes / 1024.0


def hash_machine_assignment(num_nodes: int, num_machines: int) -> np.ndarray:
    """Pregel-style hash placement: vertex ``v`` lives on ``v mod n``."""
    if num_machines < 1:
        raise ClusterError("need at least one machine")
    return np.arange(num_nodes, dtype=np.int64) % num_machines


MESSAGE_BYTES = 12  # vertex id (int32) + value (float64)


def cross_machine_message_counts(
    graph: DiGraph, machine_of: np.ndarray, *, combiner: bool = True
) -> tuple[int, int]:
    """Per-superstep message statistics for an all-vertices-active step.

    Returns ``(combined_messages, raw_messages)`` crossing machine
    boundaries.  With a sender-side sum combiner (Pregel+), all messages
    from machine ``i`` to the same target vertex collapse into one — the
    count of distinct ``(source machine, target vertex)`` pairs.
    """
    src, dst = graph.edge_arrays()
    crossing = machine_of[src] != machine_of[dst]
    raw = int(crossing.sum())
    if not combiner:
        return raw, raw
    pairs = machine_of[src[crossing]] * np.int64(graph.num_nodes) + dst[crossing]
    combined = int(np.unique(pairs).size)
    return combined, raw


def per_machine_edge_counts(graph: DiGraph, machine_of: np.ndarray) -> np.ndarray:
    """Out-edges owned by each machine (the per-superstep compute load)."""
    num_machines = int(machine_of.max()) + 1 if machine_of.size else 1
    counts = np.zeros(num_machines, dtype=np.int64)
    np.add.at(counts, machine_of, graph.out_degrees)
    return counts


def bsp_superstep_seconds(
    cost_model: CostModel,
    max_machine_edges: int,
    comm_bytes: int,
    num_machines: int,
) -> float:
    """Modeled duration of one BSP superstep: slowest machine's scatter,
    the message exchange, and the barrier."""
    return (
        cost_model.compute_seconds(max_machine_edges)
        + cost_model.transfer_seconds(comm_bytes, num_machines)
    )


DEFAULT = DEFAULT_COST_MODEL
