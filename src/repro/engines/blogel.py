"""A Blogel-style block-centric engine running power-iteration PPV.

Blogel [47] breaks the vertex-centric bottleneck by operating on whole
blocks (connected partitions): within one global superstep every block
solves its *local* subproblem to convergence, and only boundary values move
between blocks.  For PPV this is block-Jacobi on the linear system
``x = (1-α)Wᵀx + α·x_q``: the within-block part of ``Wᵀ`` is solved
iteratively per superstep with the cross-block inflow frozen, so the number
of *communication rounds* drops from ≈ ``log ε / log(1-α)`` (Pregel) to the
block-coupling mixing time, and traffic per round shrinks to the cross-block
boundary — exactly why the paper's Figs. 21–22 place Blogel between Pregel+
and HGPA.
"""

from __future__ import annotations

import time

import numpy as np
import scipy.sparse as sp

from repro.distributed.network import DEFAULT_COST_MODEL, CostModel
from repro.engines.base import EngineReport, MESSAGE_BYTES
from repro.errors import ConvergenceError, QueryError
from repro.graph.digraph import DiGraph
from repro.partition.kway import partition_kway

__all__ = ["BlogelPPR"]


class BlogelPPR:
    """Block-centric PPV on a simulated Blogel deployment."""

    def __init__(
        self,
        graph: DiGraph,
        num_machines: int,
        *,
        num_blocks: int | None = None,
        alpha: float = 0.15,
        partition_seed: int = 0,
        cost_model: CostModel = DEFAULT_COST_MODEL,
    ) -> None:
        self.graph = graph
        self.num_machines = num_machines
        self.alpha = alpha
        self.cost_model = cost_model
        # One block per machine by default: the coarsest (best) Blogel
        # deployment, which maximises the within-block share of edges and so
        # minimises communication rounds.
        self.num_blocks = num_blocks or num_machines
        self.block_of = partition_kway(graph, self.num_blocks, seed=partition_seed)
        self.machine_of_block = (
            np.arange(self.num_blocks, dtype=np.int64) % num_machines
        )
        machine_of = self.machine_of_block[self.block_of]
        # Split Wᵀ into within-block and cross-block parts.
        wt = graph.transition_T().tocoo()
        # wt[v, u] corresponds to the edge u -> v.
        same_block = self.block_of[wt.col] == self.block_of[wt.row]
        self._wt_in = sp.csr_matrix(
            (wt.data[same_block], (wt.row[same_block], wt.col[same_block])),
            shape=wt.shape,
        )
        cross = ~same_block
        self._wt_cross = sp.csr_matrix(
            (wt.data[cross], (wt.row[cross], wt.col[cross])), shape=wt.shape
        )
        # Communication: combined boundary messages crossing machines.
        src, dst = wt.col[cross], wt.row[cross]
        between_machines = machine_of[src] != machine_of[dst]
        pairs = (
            machine_of[src[between_machines]] * np.int64(graph.num_nodes)
            + dst[between_machines]
        )
        self._combined_msgs = int(np.unique(pairs).size)
        # Compute load: within-block edges per machine.
        counts = np.zeros(num_machines, dtype=np.int64)
        np.add.at(counts, machine_of, np.asarray(graph.out_degrees))
        self._max_machine_edges = int(counts.max())

    @property
    def per_superstep_bytes(self) -> int:
        """Cross-machine boundary bytes of one global superstep."""
        return self._combined_msgs * MESSAGE_BYTES

    def query(
        self,
        query: int,
        *,
        tol: float = 1e-4,
        inner_tol_factor: float = 0.1,
        max_supersteps: int = 10_000,
        max_inner: int = 500,
    ) -> tuple[np.ndarray, EngineReport]:
        """Run PPV(query) to convergence; returns the vector and metrics."""
        n = self.graph.num_nodes
        if not 0 <= query < n:
            raise QueryError(f"query node {query} out of range")
        x = np.zeros(n)
        x[query] = 1.0
        one_minus = 1.0 - self.alpha
        inner_tol = tol * inner_tol_factor
        t0 = time.perf_counter()
        runtime = 0.0
        comm_bytes = 0
        supersteps = 0
        for supersteps in range(1, max_supersteps + 1):
            inflow = one_minus * (self._wt_cross @ x)  # boundary exchange
            comm_bytes += self.per_superstep_bytes
            prev = x
            # Local (block-diagonal) solve with the inflow frozen.
            inner_iters = 0
            y = x.copy()
            for inner_iters in range(1, max_inner + 1):
                nxt = one_minus * (self._wt_in @ y) + inflow
                nxt[query] += self.alpha
                delta_in = np.abs(nxt - y).max()
                y = nxt
                if delta_in <= inner_tol:
                    break
            x = y
            runtime += self.cost_model.compute_seconds(
                inner_iters * self._max_machine_edges
            ) + self.cost_model.transfer_seconds(
                self.per_superstep_bytes, self.num_machines
            )
            if np.abs(x - prev).max() <= tol:
                break
        else:
            raise ConvergenceError(
                f"Blogel PPR: no convergence in {max_supersteps} supersteps"
            )
        wall = time.perf_counter() - t0
        report = EngineReport(
            engine="blogel",
            supersteps=supersteps,
            communication_bytes=comm_bytes,
            runtime_seconds=runtime,
            wall_seconds=wall,
            max_machine_edges=self._max_machine_edges,
        )
        return x, report
