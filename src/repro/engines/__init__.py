"""General distributed graph-processing baselines (Pregel+, Blogel)."""

from repro.engines.base import (
    EngineReport,
    cross_machine_message_counts,
    hash_machine_assignment,
)
from repro.engines.blogel import BlogelPPR
from repro.engines.pregel import PregelPPR

__all__ = [
    "EngineReport",
    "hash_machine_assignment",
    "cross_machine_message_counts",
    "PregelPPR",
    "BlogelPPR",
]
