"""A Pregel+-style vertex-centric BSP engine running power-iteration PPV.

Faithful to the execution model of [36, 48]: vertices are hash-partitioned
across machines; in every superstep each vertex scatters
``(1-α)·x_v / out(v)`` along its out-edges, messages to the same target
from one machine are merged by a sender-side sum combiner (the Pregel+
message-reduction technique), and a global aggregator checks convergence.
Because computing iteration ``k+1`` needs iteration ``k``'s values from
*other* machines, every superstep is a full communication round — the
structural reason the paper's Figs. 21–22 show these engines orders of
magnitude behind HGPA, whose query needs exactly one round.
"""

from __future__ import annotations

import time

import numpy as np

from repro.distributed.network import DEFAULT_COST_MODEL, CostModel
from repro.engines.base import (
    EngineReport,
    MESSAGE_BYTES,
    bsp_superstep_seconds,
    cross_machine_message_counts,
    hash_machine_assignment,
    per_machine_edge_counts,
)
from repro.errors import ConvergenceError, QueryError
from repro.graph.digraph import DiGraph

__all__ = ["PregelPPR"]


class PregelPPR:
    """Power-iteration PPV on a simulated Pregel+ deployment."""

    def __init__(
        self,
        graph: DiGraph,
        num_machines: int,
        *,
        alpha: float = 0.15,
        combiner: bool = True,
        cost_model: CostModel = DEFAULT_COST_MODEL,
    ) -> None:
        self.graph = graph
        self.num_machines = num_machines
        self.alpha = alpha
        self.combiner = combiner
        self.cost_model = cost_model
        self.machine_of = hash_machine_assignment(graph.num_nodes, num_machines)
        self._combined_msgs, self._raw_msgs = cross_machine_message_counts(
            graph, self.machine_of, combiner=combiner
        )
        self._machine_edges = per_machine_edge_counts(graph, self.machine_of)

    @property
    def per_superstep_bytes(self) -> int:
        """Cross-machine message bytes of one all-active superstep."""
        return self._combined_msgs * MESSAGE_BYTES

    def query(
        self,
        query: int,
        *,
        tol: float = 1e-4,
        max_supersteps: int = 10_000,
    ) -> tuple[np.ndarray, EngineReport]:
        """Run PPV(query) to convergence; returns the vector and metrics."""
        n = self.graph.num_nodes
        if not 0 <= query < n:
            raise QueryError(f"query node {query} out of range")
        wt = self.graph.transition_T()
        x = np.zeros(n)
        x[query] = 1.0
        max_edges = int(self._machine_edges.max())
        step_seconds = bsp_superstep_seconds(
            self.cost_model, max_edges, self.per_superstep_bytes, self.num_machines
        )
        t0 = time.perf_counter()
        supersteps = 0
        for supersteps in range(1, max_supersteps + 1):
            nxt = (1.0 - self.alpha) * (wt @ x)
            nxt[query] += self.alpha
            delta = np.abs(nxt - x).max()  # the convergence aggregator
            x = nxt
            if delta <= tol:
                break
        else:
            raise ConvergenceError(
                f"Pregel PPR: no convergence in {max_supersteps} supersteps"
            )
        wall = time.perf_counter() - t0
        report = EngineReport(
            engine="pregel+" if self.combiner else "pregel",
            supersteps=supersteps,
            communication_bytes=supersteps * self.per_superstep_bytes,
            runtime_seconds=supersteps * step_seconds,
            wall_seconds=wall,
            max_machine_edges=max_edges,
        )
        return x, report
