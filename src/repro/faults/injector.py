"""The fault injector: a plan interpreted against a live router.

:meth:`FaultInjector.attach` installs three small hooks on a
:class:`~repro.sharding.router.ShardRouter` — no serving code is
patched or subclassed, the seams are first-class:

* every :class:`~repro.sharding.replica.Replica` gets a ``fault_hook``
  the shard probes before serving an attempt (raises scheduled
  ``WorkerDied``/link faults, reports injected straggler latency);
* the router's :class:`~repro.distributed.network.NetworkMeter` gets an
  ``on_record`` hook that loses or corrupts scheduled wire payloads
  *after* charging them (retransmissions pay the wire twice, like real
  ones);
* the router's execution backend (when present) gets a submit-time
  ``fault_hook`` so worker deaths also fire at the
  :class:`~repro.exec.backend.ProcessPoolBackend` seam.

All scheduling is clock-driven: events fire when the router's injected
clock passes their ``at``, either at the next batch (the router pumps
the injector) or at an explicit :meth:`FaultInjector.pump`.  Under a
:class:`~repro.serving.service.SimulatedClock` the whole run — faults,
retries, backoff waits, recoveries — replays identically from the plan.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.errors import (
    FaultPlanError,
    LinkDropped,
    PayloadTruncated,
    WorkerDied,
)
from repro.faults.plan import FaultEvent, FaultPlan

if TYPE_CHECKING:
    from repro.sharding.router import ShardRouter

__all__ = ["FaultInjector", "ReplicaProbe"]


class _ReplicaFaultState:
    """Mutable per-replica schedule state: kills pending, stragglers."""

    __slots__ = ("kills", "latency_windows")

    def __init__(self) -> None:
        # [at, remaining] pairs: kills arm once the clock passes `at`.
        self.kills: list[list[float]] = []
        self.latency_windows: list[tuple[float, float, float]] = []

    def take_kill(self, now: float) -> bool:
        """Consume one armed worker-kill, if any is due."""
        for pending in self.kills:
            if pending[0] <= now and pending[1] > 0:
                pending[1] -= 1
                return True
        return False

    def delay(self, now: float) -> float:
        """Injected extra latency at clock time ``now`` (stacked spikes)."""
        return sum(
            delay for at, until, delay in self.latency_windows
            if at <= now < until
        )


class ReplicaProbe:
    """The hook a :class:`~repro.sharding.replica.Replica` carries.

    ``before_serve`` raises any point fault due for this replica;
    ``latency`` reports the straggler delay to add to the attempt.
    """

    __slots__ = ("_injector", "_state")

    def __init__(
        self, injector: "FaultInjector", state: _ReplicaFaultState
    ) -> None:
        self._injector = injector
        self._state = state

    def before_serve(self, now: float) -> None:
        self._injector.pump(now)
        if self._state.take_kill(now):
            self._injector.count("kill_worker")
            raise WorkerDied("injected worker death")

    def latency(self, now: float) -> float:
        return self._state.delay(now)


class FaultInjector:
    """Fire one :class:`~repro.faults.plan.FaultPlan` against a router."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.router: "ShardRouter | None" = None
        self.injected: dict[str, int] = {}
        self._replica_states: dict[tuple[int, int], _ReplicaFaultState] = {}
        self._crashes: list[FaultEvent] = []  # not yet fired, time-sorted
        self._link_faults: dict[int, list[list[Any]]] = {}
        self._by_replica_id: dict[int, tuple[int, int]] = {}

    # ----- wiring -------------------------------------------------------
    def attach(self, router: "ShardRouter") -> "FaultInjector":
        """Install the hooks on ``router`` and arm the schedule.

        The plan's targets are validated against the router's actual
        shard/replica layout first — a plan naming a replica that does
        not exist is a bug in the experiment, not a fault to inject.
        """
        if self.router is not None:
            raise FaultPlanError("injector is already attached to a router")
        num_shards = len(router.shards)
        min_replicas = min(len(s.replicas) for s in router.shards)
        self.plan.check_targets(num_shards, min_replicas)
        self.router = router
        self._crashes = list(self.plan.for_kind("crash"))
        for event in self.plan.events:
            if event.kind == "kill_worker":
                state = self._state_for(event.shard, event.replica)
                state.kills.append([event.at, float(event.count)])
            elif event.kind == "latency":
                state = self._state_for(event.shard, event.replica)
                state.latency_windows.append(
                    (event.at, event.until, event.delay)
                )
            elif event.kind in ("drop", "truncate"):
                self._link_faults.setdefault(event.shard, []).append(
                    [event.at, float(event.count), event.kind]
                )
        for sid, shard in enumerate(router.shards):
            for rid, replica in enumerate(shard.replicas):
                state = self._state_for(sid, rid)
                replica.fault_hook = ReplicaProbe(self, state)
                self._by_replica_id[id(replica)] = (sid, rid)
        router.meter.on_record = self._on_record
        if router.exec_backend is not None:
            router.exec_backend.fault_hook = self._on_submit
        router.fault_injector = self
        return self

    def _state_for(self, sid: int, rid: int) -> _ReplicaFaultState:
        key = (sid, rid)
        state = self._replica_states.get(key)
        if state is None:
            state = self._replica_states[key] = _ReplicaFaultState()
        return state

    def count(self, kind: str) -> None:
        """Account one fired injection (the chaos suite asserts these
        replay identically for the same seed)."""
        self.injected[kind] = self.injected.get(kind, 0) + 1

    # ----- clock-driven events -----------------------------------------
    def pump(self, now: float | None = None) -> None:
        """Fire every crash event the clock has passed.

        The router pumps at each batch and every replica probe pumps
        before serving, so a crash scheduled mid-stream takes its target
        out of rotation before the next answer is computed.
        """
        router = self.router
        if router is None:
            raise FaultPlanError("injector is not attached to a router")
        if now is None:
            now = float(router.clock.now())
        while self._crashes and self._crashes[0].at <= now:
            event = self._crashes.pop(0)
            if event.until > now:
                replica = router.shards[event.shard].replicas[event.replica]
                replica.mark_down(until=event.until)
                self.count("crash")
            else:
                # The clock jumped clean over the outage window: the
                # replica crashed *and* recovered in between batches.
                self.count("crash_elapsed")

    # ----- hook bodies --------------------------------------------------
    def _on_record(self, sender: str, receiver: str, num_bytes: int) -> None:
        """Wire hook: lose or corrupt scheduled payloads on shard links.

        Called after the meter charged the bytes — a lost payload still
        crossed the wire, and its retransmission is charged again.
        """
        del num_bytes
        sid = self._shard_of_link(sender, receiver)
        if sid is None:
            return
        faults = self._link_faults.get(sid)
        if not faults:
            return
        assert self.router is not None
        now = float(self.router.clock.now())
        for pending in faults:
            if pending[0] <= now and pending[1] > 0:
                pending[1] -= 1
                kind = str(pending[2])
                self.count(kind)
                if kind == "drop":
                    raise LinkDropped(
                        f"injected payload loss on link {sender}->{receiver}"
                    )
                raise PayloadTruncated(
                    "injected payload corruption on link "
                    f"{sender}->{receiver}"
                )

    @staticmethod
    def _shard_of_link(sender: str, receiver: str) -> int | None:
        for name in (receiver, sender):
            if name.startswith("shard-"):
                try:
                    return int(name.split("-", 1)[1])
                except ValueError:
                    return None
        return None

    def _on_submit(self, key: Any, method: str) -> None:
        """Execution-seam hook: scheduled worker deaths fire at submit.

        Replica keys carry the replica object's id; anything else (a
        distributed runtime's machine states) is left alone.
        """
        del method
        if not (isinstance(key, tuple) and key and key[0] == "replica"):
            return
        target = self._by_replica_id.get(int(key[1]))
        if target is None:
            return
        assert self.router is not None
        now = float(self.router.clock.now())
        state = self._state_for(*target)
        if state.take_kill(now):
            self.count("kill_worker")
            raise WorkerDied("injected worker death at submit")
