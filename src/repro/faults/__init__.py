"""Deterministic fault injection for the serving stack.

The distributed runtimes and the shard tier carry the seams real
deployments need — ``mark_down``/timed recovery, ``WorkerDied``
failover, an injected clock — but seams that are never *exercised* rot.
This package drives them systematically:

* :class:`FaultPlan` — a seeded, fully explicit schedule of fault
  events: replica crashes and recoveries, worker deaths, per-replica
  latency spikes (stragglers), dropped and truncated wire payloads.
  ``FaultPlan.generate(seed, ...)`` draws a random schedule from a
  ``random.Random(seed)`` — the same seed always yields the same plan —
  and can guarantee every shard keeps at least one healthy replica
  (``keep_quorum``), the precondition of the exactness contract.
* :class:`FaultInjector` — attaches a plan to a
  :class:`~repro.sharding.router.ShardRouter` through three small
  hooks (replica serve probes, the :class:`~repro.distributed.network.
  NetworkMeter` record hook, the execution backend's submit hook) and
  fires events as the router's clock passes them.  Everything is driven
  by the injected clock, never wall time, so a chaos run replays
  bit-for-bit from its seed.

The headline contract the chaos suite enforces on top: under *any*
plan that leaves one healthy replica per shard, every non-degraded
answer equals the fault-free run bitwise, and degraded/shed responses
are always explicitly marked — never silently wrong.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import EVENT_KINDS, FaultEvent, FaultPlan

__all__ = ["EVENT_KINDS", "FaultEvent", "FaultPlan", "FaultInjector"]
