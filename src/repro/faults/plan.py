"""Fault schedules: explicit, validated, seeded — and replayable.

A :class:`FaultPlan` is nothing but a sorted tuple of
:class:`FaultEvent` records; all randomness lives in
:meth:`FaultPlan.generate`, which draws a schedule from a
``random.Random(seed)`` so a chaos run is identified by one integer.
Plans are data, not behavior: the :class:`~repro.faults.injector.
FaultInjector` interprets them against a live router.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from repro.errors import FaultPlanError

__all__ = ["FaultEvent", "FaultPlan", "EVENT_KINDS"]

EVENT_KINDS = ("crash", "kill_worker", "latency", "drop", "truncate")
"""Every fault kind the injector knows how to fire.

``crash``       — replica leaves rotation at ``at`` for ``duration``
                  seconds of clock time (timed recovery brings it back);
``kill_worker`` — the replica's next ``count`` serve/submit attempts
                  after ``at`` raise :class:`~repro.errors.WorkerDied`
                  (a flaky worker: transient, survives a retry);
``latency``     — attempts on the replica between ``at`` and
                  ``at + duration`` are ``delay`` seconds slower (a
                  straggler: drives timeouts and hedging);
``drop``        — the next ``count`` messages on the shard's router
                  link after ``at`` are lost in flight
                  (:class:`~repro.errors.LinkDropped`);
``truncate``    — like ``drop`` but the payload arrives corrupt and is
                  *detected* (:class:`~repro.errors.PayloadTruncated`).
"""


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.  ``shard``/``replica`` index into the router
    the plan is attached to; ``replica = -1`` on link-level events."""

    at: float
    kind: str
    shard: int = 0
    replica: int = -1
    duration: float = 0.0
    delay: float = 0.0
    count: int = 1

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r} (known: {EVENT_KINDS})"
            )
        if self.at < 0:
            raise FaultPlanError(f"event time must be >= 0, got {self.at}")
        if self.duration < 0 or self.delay < 0:
            raise FaultPlanError("duration/delay must be >= 0")
        if self.count < 1:
            raise FaultPlanError(f"count must be >= 1, got {self.count}")
        if self.shard < 0:
            raise FaultPlanError(f"shard must be >= 0, got {self.shard}")
        if self.kind in ("crash", "kill_worker", "latency") and self.replica < 0:
            raise FaultPlanError(f"{self.kind} events need a replica index")

    @property
    def until(self) -> float:
        """End of the event's active window (``at`` for point events)."""
        return self.at + self.duration


@dataclass(frozen=True)
class FaultPlan:
    """A validated, time-sorted fault schedule."""

    events: tuple[FaultEvent, ...] = ()
    seed: int | None = None  # provenance only; generate() stamps it

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(self.events, key=lambda e: (e.at, EVENT_KINDS.index(e.kind)))
        )
        object.__setattr__(self, "events", ordered)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def for_kind(self, kind: str) -> tuple[FaultEvent, ...]:
        if kind not in EVENT_KINDS:
            raise FaultPlanError(
                f"unknown fault kind {kind!r} (known: {EVENT_KINDS})"
            )
        return tuple(e for e in self.events if e.kind == kind)

    def check_targets(self, num_shards: int, replicas_per_shard: int) -> None:
        """Raise unless every event targets a real shard/replica."""
        for event in self.events:
            if event.shard >= num_shards:
                raise FaultPlanError(
                    f"event targets shard {event.shard} but the router has "
                    f"{num_shards} shard(s)"
                )
            if event.replica >= replicas_per_shard:
                raise FaultPlanError(
                    f"event targets replica {event.replica} but shards have "
                    f"{replicas_per_shard} replica(s)"
                )

    def keeps_quorum(self, num_shards: int, replicas_per_shard: int) -> bool:
        """Whether at every instant each shard keeps >= 1 replica outside
        any crash window — the precondition of the exactness contract.

        Only ``crash`` windows count: every other kind is transient
        (survived by retry/hedging) and never removes a replica from
        rotation by itself.
        """
        for sid in range(num_shards):
            windows = [
                (e.replica, e.at, e.until)
                for e in self.events
                if e.kind == "crash" and e.shard == sid
            ]
            # Check at every window start: how many replicas are down?
            for _, start, _ in windows:
                down = {
                    rep
                    for rep, lo, hi in windows
                    if lo <= start < hi
                }
                if len(down) >= replicas_per_shard:
                    return False
        return True

    @classmethod
    def generate(
        cls,
        seed: int,
        *,
        num_shards: int,
        replicas_per_shard: int,
        horizon: float = 10.0,
        crashes: int = 2,
        crash_duration: float = 2.0,
        kills: int = 2,
        stragglers: int = 2,
        straggler_delay: float = 0.05,
        straggler_duration: float = 2.0,
        drops: int = 2,
        keep_quorum: bool = True,
    ) -> "FaultPlan":
        """Draw a random schedule from ``random.Random(seed)``.

        The same arguments and seed always produce the same plan.  With
        ``keep_quorum`` (the default) a crash is only scheduled when the
        target shard keeps at least one replica outside every crash
        window overlapping the new one — the generated plan provably
        satisfies :meth:`keeps_quorum`.
        """
        if num_shards < 1 or replicas_per_shard < 1:
            raise FaultPlanError("need >= 1 shard and >= 1 replica per shard")
        if horizon <= 0:
            raise FaultPlanError(f"horizon must be positive, got {horizon}")
        rng = random.Random(seed)
        events: list[FaultEvent] = []
        crash_windows: dict[int, list[tuple[int, float, float]]] = {}
        for _ in range(crashes):
            sid = rng.randrange(num_shards)
            rep = rng.randrange(replicas_per_shard)
            at = rng.uniform(0.0, horizon)
            dur = rng.uniform(0.25, 1.0) * crash_duration
            if keep_quorum:
                taken = crash_windows.get(sid, [])
                overlapping = {
                    r for r, lo, hi in taken if lo < at + dur and at < hi
                }
                overlapping.add(rep)
                if len(overlapping) >= replicas_per_shard:
                    continue  # would leave the shard empty: skip this draw
            crash_windows.setdefault(sid, []).append((rep, at, at + dur))
            events.append(
                FaultEvent(at, "crash", shard=sid, replica=rep, duration=dur)
            )
        for _ in range(kills):
            sid = rng.randrange(num_shards)
            rep = rng.randrange(replicas_per_shard)
            events.append(
                FaultEvent(
                    rng.uniform(0.0, horizon),
                    "kill_worker",
                    shard=sid,
                    replica=rep,
                    count=1,
                )
            )
        for _ in range(stragglers):
            sid = rng.randrange(num_shards)
            rep = rng.randrange(replicas_per_shard)
            events.append(
                FaultEvent(
                    rng.uniform(0.0, horizon),
                    "latency",
                    shard=sid,
                    replica=rep,
                    duration=rng.uniform(0.25, 1.0) * straggler_duration,
                    delay=rng.uniform(0.5, 1.5) * straggler_delay,
                )
            )
        for _ in range(drops):
            sid = rng.randrange(num_shards)
            kind = "drop" if rng.random() < 0.5 else "truncate"
            events.append(
                FaultEvent(
                    rng.uniform(0.0, horizon),
                    kind,
                    shard=sid,
                    count=rng.randrange(1, 3),
                )
            )
        return cls(events=tuple(events), seed=seed)
