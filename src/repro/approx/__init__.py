"""Approximate PPV baselines: FastPPV [49] and Monte-Carlo simulation."""

from repro.approx.fastppv import FastPPVIndex, FastPPVQueryInfo, build_fastppv_index
from repro.approx.monte_carlo import monte_carlo_ppv

__all__ = [
    "FastPPVIndex",
    "FastPPVQueryInfo",
    "build_fastppv_index",
    "monte_carlo_ppv",
]
