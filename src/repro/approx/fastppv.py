"""FastPPV (Zhu et al. [49]) — scheduled hub-based approximation.

The comparison baseline of Sections 6.2.9–6.2.10.  Tours are partitioned by
*hub length* (how many interior hub nodes they pass); contributions are
aggregated from the most important tour set (hub length 0 — the partial
vector) outwards, one hub expansion at a time, most-massive-first.  The
pre-computed index stores, per hub ``h``: its partial vector ``p_h`` and
its *hub frontier* (the first-passage mass it forwards to other hubs) —
the "prime subgraph" products of the original paper.

Accuracy/time are traded by ``num_hubs`` (Fast-100, Fast-1000, … in the
figures) and by the expansion budget; the un-expanded frontier mass bounds
the remaining error, so the approximation is accuracy-aware like the
original.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.core.decomposition import as_view, partial_vectors
from repro.core.flat_index import (
    DEFAULT_BATCH,
    run_in_batches,
    topk_in_batches,
    validate_batch,
)
from repro.core.sparse_ops import finalize_csr
from repro.core.sparsevec import SparseVec
from repro.kernels.dispatch import KernelsLike
from repro.errors import IndexBuildError, QueryError
from repro.graph.analysis import top_pagerank_nodes
from repro.graph.digraph import DiGraph

__all__ = ["FastPPVIndex", "build_fastppv_index", "FastPPVQueryInfo"]


@dataclass(frozen=True)
class FastPPVQueryInfo:
    """Diagnostics of one FastPPV query."""

    expansions: int
    residual_mass: float
    wall_seconds: float


@dataclass
class FastPPVIndex:
    """Pre-computed hub partials and hub-to-hub frontiers."""

    graph: DiGraph
    alpha: float
    tol: float
    hubs: np.ndarray
    hub_partials: dict[int, SparseVec] = field(default_factory=dict)
    hub_frontier: dict[int, SparseVec] = field(default_factory=dict)
    #: Kernel bundle / backend name the query-time solves dispatch to
    #: (``None`` = the process default from the capability probe).
    kernels: KernelsLike = None

    def total_bytes(self) -> int:
        stores = (self.hub_partials, self.hub_frontier)
        return sum(v.wire_bytes for store in stores for v in store.values())

    # ------------------------------------------------------------------
    def query(
        self,
        u: int,
        *,
        max_expansions: int | None = None,
        frontier_cutoff: float | None = None,
    ) -> np.ndarray:
        """Approximate PPV of ``u``."""
        vec, _ = self.query_detailed(
            u, max_expansions=max_expansions, frontier_cutoff=frontier_cutoff
        )
        return vec

    def query_detailed(
        self,
        u: int,
        *,
        max_expansions: int | None = None,
        frontier_cutoff: float | None = None,
    ) -> tuple[np.ndarray, FastPPVQueryInfo]:
        """Scheduled aggregation: expand hub frontiers most-massive-first.

        ``max_expansions`` bounds the number of hub expansions (``None`` =
        until every frontier entry falls below ``frontier_cutoff``, which
        defaults to ``tol/100``); the residual frontier mass is reported as
        the error bound.
        """
        n = self.graph.num_nodes
        if not 0 <= u < n:
            raise QueryError(f"query node {u} out of range")
        t0 = time.perf_counter()
        d, e = partial_vectors(
            as_view(self.graph),
            self.hubs,
            np.asarray([u]),
            alpha=self.alpha,
            tol=self.tol,
        )
        acc = d[:, 0]
        expansions, residual = self._expand_frontier(
            acc, e[:, 0], max_expansions, frontier_cutoff
        )
        info = FastPPVQueryInfo(
            expansions=expansions,
            residual_mass=residual,
            wall_seconds=time.perf_counter() - t0,
        )
        return acc, info

    def query_many(
        self,
        nodes: np.ndarray,
        *,
        max_expansions: int | None = None,
        frontier_cutoff: float | None = None,
        collect_stats: bool = True,
    ) -> tuple[np.ndarray, list[FastPPVQueryInfo]]:
        """Batched approximate PPVs.

        The query-time partial vectors of all sources are solved in one
        batched selective expansion (with per-column convergence, so each
        row equals the per-node :meth:`query` result exactly); the
        scheduled frontier expansion then runs per query.  Returns a
        dense ``(len(nodes), n)`` matrix plus per-query diagnostics
        (``collect_stats=False`` skips the per-query timing/diagnostic
        objects and returns an empty list; the matrix is identical).
        """
        n = self.graph.num_nodes
        nodes = validate_batch(nodes, n)
        if nodes.size == 0:
            return np.zeros((0, n)), []
        if nodes.size > DEFAULT_BATCH:
            # Bound the dense (n, batch) solve matrices.
            return run_in_batches(
                lambda chunk: self.query_many(
                    chunk,
                    max_expansions=max_expansions,
                    frontier_cutoff=frontier_cutoff,
                    collect_stats=collect_stats,
                ),
                nodes,
            )
        out = np.zeros((nodes.size, n))
        t0 = time.perf_counter()
        d, e = partial_vectors(
            as_view(self.graph),
            self.hubs,
            nodes,
            alpha=self.alpha,
            tol=self.tol,
            per_column=True,
            kernels=self.kernels,
        )
        solve_each = (time.perf_counter() - t0) / nodes.size
        infos: list[FastPPVQueryInfo] = []
        for j in range(nodes.size):
            t1 = time.perf_counter()
            acc = d[:, j]
            expansions, residual = self._expand_frontier(
                acc, e[:, j], max_expansions, frontier_cutoff
            )
            out[j] = acc
            if collect_stats:
                infos.append(
                    FastPPVQueryInfo(
                        expansions=expansions,
                        residual_mass=residual,
                        wall_seconds=solve_each + time.perf_counter() - t1,
                    )
                )
        return out, infos

    def query_many_sparse(
        self,
        nodes: np.ndarray,
        *,
        max_expansions: int | None = None,
        frontier_cutoff: float | None = None,
        collect_stats: bool = True,
    ) -> tuple[sp.csr_matrix, list[FastPPVQueryInfo]]:
        """Batched approximate PPVs as a CSR ``(len(nodes), n)`` matrix.

        FastPPV's query-time solve is inherently dense (the selective
        expansion works on full columns), so the sparse form is a
        post-solve conversion for pipeline uniformity — exact zeros are
        dropped, every kept value is bitwise the dense row's.  The
        memory wins of the sparse pipeline come from the pruned exact
        indexes; this keeps FastPPV servable behind the same
        ``query_many_sparse`` capability.
        """
        dense, infos = self.query_many(
            nodes,
            max_expansions=max_expansions,
            frontier_cutoff=frontier_cutoff,
            collect_stats=collect_stats,
        )
        return finalize_csr(sp.csr_matrix(dense), dense.shape), infos

    def query_topk(
        self,
        u: int,
        k: int,
        *,
        threshold: float | None = None,
        max_expansions: int | None = None,
        frontier_cutoff: float | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Top-``k`` of the approximate PPV of ``u``: ``(ids, scores)``.

        Best first, ties broken by smaller id; ``k`` larger than the
        graph returns all ``n`` nodes.  ``threshold`` drops entries with
        ``score <= threshold`` before the k-cut (tail padded with id
        ``-1`` / score ``0.0``).
        """
        ids, scores, _ = self.query_many_topk(
            np.asarray([u]),
            k,
            threshold=threshold,
            max_expansions=max_expansions,
            frontier_cutoff=frontier_cutoff,
        )
        return ids[0], scores[0]

    def query_many_topk(
        self,
        nodes: np.ndarray,
        k: int,
        *,
        batch: int = DEFAULT_BATCH,
        threshold: float | None = None,
        max_expansions: int | None = None,
        frontier_cutoff: float | None = None,
    ) -> tuple[np.ndarray, np.ndarray, list[FastPPVQueryInfo]]:
        """Batched approximate top-``k`` without materialising full PPVs.

        Each ``batch``-sized chunk is solved and expanded via
        :meth:`query_many`, then reduced to its per-row top-k before the
        next chunk runs, bounding dense intermediates at ``(batch, n)``.
        ``threshold`` applies the score cut of
        :func:`repro.core.flat_index.topk_rows` per row.
        """
        n = self.graph.num_nodes
        nodes = validate_batch(nodes, n)
        return topk_in_batches(
            lambda chunk: self.query_many(
                chunk,
                max_expansions=max_expansions,
                frontier_cutoff=frontier_cutoff,
            ),
            nodes,
            k,
            n,
            batch,
            threshold,
            kernels=self.kernels,
        )

    def _expand_frontier(
        self,
        acc: np.ndarray,
        residual_col: np.ndarray,
        max_expansions: int | None,
        frontier_cutoff: float | None,
    ) -> tuple[int, float]:
        """Scheduled most-massive-first hub expansion into ``acc``."""
        if frontier_cutoff is None:
            frontier_cutoff = self.tol * 0.01
        # Frontier: pre-stop mass waiting at each hub (continuations of
        # tours whose hub length is about to grow by one).
        frontier: dict[int, float] = {}
        heap: list[tuple[float, int]] = []
        for h in self.hubs.tolist():
            mass = float(residual_col[h])
            if mass > frontier_cutoff:
                frontier[h] = mass
                heapq.heappush(heap, (-mass, h))
        expansions = 0
        budget = np.inf if max_expansions is None else max_expansions
        while heap and expansions < budget:
            neg_mass, h = heapq.heappop(heap)
            mass = frontier.get(h, 0.0)
            if mass <= frontier_cutoff or -neg_mass != mass:
                continue  # stale entry
            frontier[h] = 0.0
            expansions += 1
            # A walker of pre-stop mass `mass` sits at h: its stopped share
            # is already in acc via the port deposit of p_u / previous
            # expansions... it contributes mass·(p_h − α·x_h) plus onward
            # frontier mass·E_h.
            part = self.hub_partials[h]
            part.add_into(acc, mass)
            fwd = self.hub_frontier[h]
            for h2, m2 in zip(fwd.idx.tolist(), fwd.val.tolist()):
                new_mass = frontier.get(h2, 0.0) + mass * m2
                frontier[h2] = new_mass
                if new_mass > frontier_cutoff:
                    heapq.heappush(heap, (-new_mass, h2))
        return expansions, float(sum(frontier.values()))


def build_fastppv_index(
    graph: DiGraph,
    num_hubs: int,
    *,
    alpha: float = 0.15,
    tol: float = 1e-4,
    prune: float | None = None,
    batch: int = 256,
    kernels: KernelsLike = None,
) -> FastPPVIndex:
    """Pre-compute the FastPPV index with the top-``num_hubs`` PageRank hubs."""
    if num_hubs < 1:
        raise IndexBuildError("num_hubs must be >= 1")
    hubs = np.unique(top_pagerank_nodes(graph, num_hubs, alpha=alpha))
    index = FastPPVIndex(
        graph=graph,
        alpha=alpha,
        tol=tol,
        hubs=hubs,
        kernels=kernels,
    )
    cutoff = tol if prune is None else prune
    view = as_view(graph)
    for lo in range(0, hubs.size, batch):
        chunk = hubs[lo : lo + batch]
        d, e = partial_vectors(view, hubs, chunk, alpha=alpha, tol=tol)
        for j, h in enumerate(chunk.tolist()):
            col = d[:, j].copy()
            col[h] -= alpha  # adjusted P_h, as in the exact algorithms
            index.hub_partials[h] = SparseVec.from_dense(col, prune=cutoff)
            fwd = np.zeros(graph.num_nodes)
            fwd[hubs] = e[hubs, j]
            index.hub_frontier[h] = SparseVec.from_dense(fwd, prune=cutoff)
    return index
