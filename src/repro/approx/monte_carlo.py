"""Monte-Carlo PPV estimation (Fogaras et al. [14], Bahmani et al. [5, 6]).

The classic approximate family the related-work section contrasts with:
simulate ``N`` random walks from the query node, each of geometric length
(stop with probability α per step); the empirical end-point distribution is
an unbiased PPV estimate with error ``O(1/√N)`` per entry.  Walks are
simulated in vectorised batches.
"""

from __future__ import annotations

import numpy as np

from repro.errors import QueryError
from repro.graph.digraph import DiGraph

__all__ = ["monte_carlo_ppv"]


def monte_carlo_ppv(
    graph: DiGraph,
    query: int,
    *,
    num_walks: int = 10_000,
    alpha: float = 0.15,
    max_length: int = 200,
    seed: int = 0,
) -> np.ndarray:
    """Estimate PPV(query) from ``num_walks`` terminating random walks.

    Dangling-node behaviour matches the absorb convention: a walk stuck on
    a dangling node is restarted (its sample counts at the dangling node).
    """
    n = graph.num_nodes
    if not 0 <= query < n:
        raise QueryError(f"query node {query} out of range")
    if num_walks < 1:
        raise QueryError("num_walks must be >= 1")
    rng = np.random.default_rng(seed)
    positions = np.full(num_walks, query, dtype=np.int64)
    alive = np.ones(num_walks, dtype=bool)
    counts = np.zeros(n)
    indptr, indices = graph.indptr, graph.indices
    degrees = graph.out_degrees
    for _ in range(max_length):
        stop = rng.random(num_walks) < alpha
        ending = alive & stop
        if ending.any():
            np.add.at(counts, positions[ending], 1.0)
            alive &= ~stop
        if not alive.any():
            break
        walkers = np.nonzero(alive)[0]
        pos = positions[walkers]
        deg = degrees[pos]
        stuck = deg == 0
        if stuck.any():
            stuck_ids = walkers[stuck]
            np.add.at(counts, positions[stuck_ids], 1.0)
            alive[stuck_ids] = False
            walkers, pos, deg = walkers[~stuck], pos[~stuck], deg[~stuck]
        if walkers.size == 0:
            continue
        offsets = (rng.random(walkers.size) * deg).astype(np.int64)
        positions[walkers] = indices[indptr[pos] + offsets]
    # Walks still alive at max_length count where they stand (bias ≤ (1-α)^L).
    if alive.any():
        np.add.at(counts, positions[alive], 1.0)
    return counts / num_walks
