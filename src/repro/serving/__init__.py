"""Serving layer: micro-batching frontend, result cache, backend adapters.

The indexes exist to *serve* PPV queries; this package turns the batched
``query_many`` engines into a query service shaped like production PPR
traffic — single-node requests, heavy skew, top-k answers:

* :class:`PPVService` — accepts requests, micro-batches them inside a
  configurable window, answers each batch with one ``query_many`` call;
* :class:`PPVCache` — byte-budgeted LRU over dense PPV rows with
  hit/miss/eviction accounting and read-only entries;
* :func:`as_backend` — one interface over every index family and both
  simulated distributed runtimes.
"""

from repro.serving.adapters import (
    MutableBackend,
    QueryBackend,
    as_backend,
    as_mutable_backend,
)
from repro.serving.admission import FrequencySketch
from repro.serving.cache import CacheStats, PPVCache
from repro.serving.service import (
    PPVService,
    ServiceStats,
    SimulatedClock,
    SystemClock,
    Ticket,
)

__all__ = [
    "QueryBackend",
    "MutableBackend",
    "as_backend",
    "as_mutable_backend",
    "FrequencySketch",
    "CacheStats",
    "PPVCache",
    "PPVService",
    "ServiceStats",
    "SimulatedClock",
    "SystemClock",
    "Ticket",
]
