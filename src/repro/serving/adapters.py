"""Uniform query backend over every index family and distributed runtime.

The serving frontend only needs three things from an engine: how many
nodes the graph has, a batched ``query_many`` returning a dense
``(batch, n)`` matrix, and a batched top-k.  The centralized indexes
(:class:`~repro.core.flat_index.FlatPPVIndex` subclasses,
:class:`~repro.core.hgpa.HGPAIndex`,
:class:`~repro.approx.fastppv.FastPPVIndex`) and the simulated
distributed runtimes (:class:`~repro.distributed.gpa_runtime.DistributedGPA`,
:class:`~repro.distributed.hgpa_runtime.DistributedHGPA`) expose those
with slightly different shapes — indexes hang ``num_nodes`` off their
graph and return per-query :class:`~repro.core.flat_index.QueryStats`,
runtimes carry ``num_nodes`` themselves and return
:class:`~repro.distributed.cluster.QueryReport` lists — so
:func:`as_backend` wraps either behind one interface.
"""

from __future__ import annotations

import numpy as np

from repro.core.flat_index import DEFAULT_BATCH, topk_in_batches, validate_batch
from repro.distributed.cluster import ClusterBase
from repro.errors import ServingError

__all__ = ["QueryBackend", "as_backend"]


class QueryBackend:
    """One engine behind the uniform serving interface.

    ``query_many(nodes)`` returns ``(dense (len, n) matrix, per-query
    metadata list)``; ``query_many_topk(nodes, k)`` returns ``(ids,
    scores, metadata)`` with chunk-bounded dense intermediates, using the
    engine's native top-k path when it has one.
    """

    def __init__(self, engine, num_nodes: int):
        self.engine = engine
        self.num_nodes = int(num_nodes)

    def query_many(self, nodes) -> tuple[np.ndarray, list]:
        return self.engine.query_many(nodes)

    def query_many_topk(
        self,
        nodes,
        k: int,
        *,
        batch: int = DEFAULT_BATCH,
        threshold: float | None = None,
    ) -> tuple[np.ndarray, np.ndarray, list]:
        native = getattr(self.engine, "query_many_topk", None)
        if native is not None:
            return native(nodes, k, batch=batch, threshold=threshold)
        nodes = validate_batch(nodes, self.num_nodes)
        return topk_in_batches(
            self.engine.query_many, nodes, k, self.num_nodes, batch, threshold
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<QueryBackend over {type(self.engine).__name__}>"


def as_backend(engine) -> QueryBackend:
    """Wrap an index or distributed runtime as a :class:`QueryBackend`.

    Accepts anything with a ``query_many``: the centralized indexes
    (``num_nodes`` read off ``engine.graph``) and the distributed
    runtimes (``num_nodes`` on the runtime itself).  An existing backend
    passes through unchanged.
    """
    if isinstance(engine, QueryBackend):
        return engine
    if not callable(getattr(engine, "query_many", None)):
        raise ServingError(
            f"{type(engine).__name__} has no query_many — not a servable engine"
        )
    if isinstance(engine, ClusterBase):
        return QueryBackend(engine, engine.num_nodes)
    graph = getattr(engine, "graph", None)
    if graph is not None and hasattr(graph, "num_nodes"):
        return QueryBackend(engine, graph.num_nodes)
    raise ServingError(
        f"cannot determine num_nodes for {type(engine).__name__}"
    )
