"""Uniform query backend over every index family and distributed runtime.

The serving frontend only needs three things from an engine: how many
nodes the graph has, a batched ``query_many`` returning a dense
``(batch, n)`` matrix, and a batched top-k.  The centralized indexes
(:class:`~repro.core.flat_index.FlatPPVIndex` subclasses,
:class:`~repro.core.hgpa.HGPAIndex`,
:class:`~repro.approx.fastppv.FastPPVIndex`) and the simulated
distributed runtimes (:class:`~repro.distributed.gpa_runtime.DistributedGPA`,
:class:`~repro.distributed.hgpa_runtime.DistributedHGPA`) expose those
with slightly different shapes — indexes hang ``num_nodes`` off their
graph and return per-query :class:`~repro.core.flat_index.QueryStats`,
runtimes carry ``num_nodes`` themselves and return
:class:`~repro.distributed.cluster.QueryReport` lists — so
:func:`as_backend` wraps either behind one interface.
"""

from __future__ import annotations

import inspect
from collections.abc import Callable, Sequence
from typing import Any

import numpy as np
import scipy.sparse as sp

from repro.core.flat_index import (
    DEFAULT_BATCH,
    FlatPPVIndex,
    topk_in_batches,
    validate_batch,
)
from repro.core.hgpa import HGPAIndex
from repro.core.sparse_ops import finalize_csr
from repro.core.updates import EdgeUpdate, UpdateReceipt, apply_edge_update
from repro.distributed.cluster import ClusterBase
from repro.errors import ServingError

__all__ = ["QueryBackend", "MutableBackend", "as_backend", "as_mutable_backend"]


def _accepts_collect_stats(fn: Callable[..., Any] | None) -> bool:
    """Whether a query callable takes the ``collect_stats`` keyword."""
    if fn is None:
        return False
    try:
        return "collect_stats" in inspect.signature(fn).parameters
    except (TypeError, ValueError):  # pragma: no cover - exotic callables
        return False


class QueryBackend:
    """One engine behind the uniform serving interface.

    ``query_many(nodes)`` returns ``(dense (len, n) matrix, per-query
    metadata list)``; ``query_many_topk(nodes, k)`` returns ``(ids,
    scores, metadata)`` with chunk-bounded dense intermediates, using the
    engine's native top-k path when it has one.

    **Sparse results (optional capability).**
    ``query_many_sparse(nodes)`` returns ``(CSR (len, n) matrix,
    metadata)`` whose ``toarray()`` is exactly the dense
    ``query_many`` result.  Engines with a native sparse path (the index
    families and both distributed runtimes) keep the whole evaluation
    sparse — on pruned indexes the peak intermediate footprint tracks
    the PPVs' true support instead of ``batch × n``; any other engine is
    served by a post-hoc sparsification of its dense result, so the
    capability is always present behind the adapter even when the win is
    not.  Check ``supports_sparse`` to tell the two apart.

    **Stats fast mode.** Both batch calls accept ``collect_stats=False``
    to skip the engine's per-query metadata bookkeeping (pure overhead
    on the serving hot path); engines without the keyword are called
    plainly and their metadata passed through unchanged.

    Every backend carries an ``epoch`` — the version of the graph its
    answers are computed against.  A static backend stays at 0 forever;
    :class:`MutableBackend` (and the runtimes/routers that subclass or
    implement this interface) advance it per applied update, and the
    serving frontend tags each response with the epoch it was answered
    at.
    """

    epoch = 0

    def __init__(self, engine: Any, num_nodes: int) -> None:
        self.engine = engine
        self.num_nodes = int(num_nodes)
        self._stats_kw = _accepts_collect_stats(
            getattr(engine, "query_many", None)
        )
        self._sparse_stats_kw = _accepts_collect_stats(
            getattr(engine, "query_many_sparse", None)
        )

    @property
    def supports_sparse(self) -> bool:
        """Whether the engine has a *native* sparse result path (the
        adapter's ``query_many_sparse`` works either way)."""
        return callable(getattr(self.engine, "query_many_sparse", None))

    def query_many(
        self,
        nodes: Sequence[int] | np.ndarray,
        *,
        collect_stats: bool = True,
    ) -> tuple[np.ndarray, list[Any]]:
        if self._stats_kw:
            return self.engine.query_many(nodes, collect_stats=collect_stats)
        return self.engine.query_many(nodes)

    def query_many_sparse(
        self,
        nodes: Sequence[int] | np.ndarray,
        *,
        collect_stats: bool = True,
    ) -> tuple[sp.csr_matrix, list[Any]]:
        """Batched PPVs as a CSR matrix (see the class docstring).

        Falls back to sparsifying the dense ``query_many`` result when
        the engine has no native sparse path — exact either way.
        """
        native = getattr(self.engine, "query_many_sparse", None)
        if native is not None:
            if self._sparse_stats_kw:
                return native(nodes, collect_stats=collect_stats)
            return native(nodes)
        out, meta = self.query_many(nodes, collect_stats=collect_stats)
        return finalize_csr(sp.csr_matrix(out), out.shape), meta

    def query_many_topk(
        self,
        nodes: Sequence[int] | np.ndarray,
        k: int,
        *,
        batch: int = DEFAULT_BATCH,
        threshold: float | None = None,
    ) -> tuple[np.ndarray, np.ndarray, list[Any]]:
        native = getattr(self.engine, "query_many_topk", None)
        if native is not None:
            return native(nodes, k, batch=batch, threshold=threshold)
        nodes = validate_batch(nodes, self.num_nodes)
        return topk_in_batches(
            self.engine.query_many,
            nodes,
            k,
            self.num_nodes,
            batch,
            threshold,
            kernels=getattr(self.engine, "kernels", None),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<QueryBackend over {type(self.engine).__name__}>"


class MutableBackend(QueryBackend):
    """A query backend whose engine accepts live :class:`EdgeUpdate`\\ s.

    This is the ``MutableBackend`` protocol the whole update pipeline
    rides on: ``apply_update(EdgeUpdate) -> UpdateReceipt`` plus an
    ``epoch`` counter.  Functional engines (the index families) are
    swapped for their updated successors — the *old* index object stays
    valid, which is what lets a staggered rollout keep serving the old
    epoch from replicas that have not flipped yet.  Engines with a native
    ``apply_update`` (the distributed runtimes) are delegated to and
    their epoch mirrored.
    """

    def __init__(self, engine: Any, num_nodes: int) -> None:
        super().__init__(engine, num_nodes)
        self._epoch = 0

    @property
    def epoch(self) -> int:
        native = getattr(self.engine, "epoch", None)
        return self._epoch if native is None else int(native)

    def apply_update(
        self, update: EdgeUpdate, *, shared: dict[Any, Any] | None = None
    ) -> UpdateReceipt:
        """Apply one update; returns the receipt stamped with this
        backend's epoch.

        ``shared`` (a dict) memoizes the expensive index rebuild by
        engine identity: several backends wrapping one shared engine
        object — the common in-process replica setup — recompute once and
        all rebind to the same successor index.
        """
        native = getattr(self.engine, "apply_update", None)
        if native is not None:
            key = id(self.engine)
            if shared is not None and key in shared:
                _, receipt = shared[key]
            else:
                receipt = native(update)
                if shared is not None:
                    shared[key] = (self.engine, receipt)
            return receipt
        key = id(self.engine)
        if shared is not None and key in shared:
            new_engine, receipt = shared[key]
        else:
            new_engine, receipt = apply_edge_update(self.engine, update)
            if shared is not None:
                shared[key] = (new_engine, receipt)
        if receipt.changed:
            self.engine = new_engine
            self._epoch += 1
        return receipt.at_epoch(self._epoch)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<MutableBackend over {type(self.engine).__name__} "
            f"@epoch {self.epoch}>"
        )


def as_backend(engine: Any) -> QueryBackend:
    """Wrap an index or distributed runtime as a :class:`QueryBackend`.

    Accepts anything with a ``query_many``: the centralized indexes
    (``num_nodes`` read off ``engine.graph``) and the distributed
    runtimes (``num_nodes`` on the runtime itself).  An existing backend
    passes through unchanged.
    """
    if isinstance(engine, QueryBackend):
        return engine
    if not callable(getattr(engine, "query_many", None)):
        raise ServingError(
            f"{type(engine).__name__} has no query_many — not a servable engine"
        )
    if isinstance(engine, ClusterBase):
        return QueryBackend(engine, engine.num_nodes)
    graph = getattr(engine, "graph", None)
    if graph is not None and hasattr(graph, "num_nodes"):
        return QueryBackend(engine, graph.num_nodes)
    raise ServingError(
        f"cannot determine num_nodes for {type(engine).__name__}"
    )


def as_mutable_backend(engine: Any) -> QueryBackend:
    """Wrap an engine for live updates behind the uniform interface.

    Accepts the mutable index families (:class:`FlatPPVIndex` subclasses,
    :class:`HGPAIndex`), anything with a native ``apply_update`` (the
    distributed runtimes, a :class:`~repro.sharding.router.ShardRouter`),
    or an existing backend over one of those.  Engines without an update
    path (e.g. the Monte-Carlo approximations) are rejected up front.
    """
    if isinstance(engine, MutableBackend):
        return engine
    if isinstance(engine, QueryBackend):
        if callable(getattr(engine, "apply_update", None)):
            return engine  # e.g. a ShardRouter — already mutable
        engine = engine.engine
    if not callable(getattr(engine, "query_many", None)):
        raise ServingError(
            f"{type(engine).__name__} has no query_many — not a servable engine"
        )
    updatable = isinstance(engine, (FlatPPVIndex, HGPAIndex)) or callable(
        getattr(engine, "apply_update", None)
    )
    if not updatable:
        raise ServingError(
            f"{type(engine).__name__} cannot apply incremental edge updates"
        )
    if isinstance(engine, ClusterBase):
        return MutableBackend(engine, engine.num_nodes)
    return MutableBackend(engine, engine.graph.num_nodes)
