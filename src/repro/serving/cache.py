"""LRU cache of PPV results (dense rows or sparse vectors), keyed by node.

The serving workload of a PPR system is heavily skewed — a small set of
hot users accounts for most queries (the traffic shape Lin's distributed
fully-personalized-PPR work designs for) — so answering repeats from a
result cache removes most of the backend load.  The budget is expressed
in *bytes* because the operator sizes the cache against machine memory,
not entry counts: a dense row costs its ``8n`` buffer, a sparse
:class:`~repro.core.sparsevec.SparseVec` row costs its wire size
(``16 + 12·nnz``) — so under a pruned-index workload the same budget
holds ~10–100× more entries than dense rows would.

Cached dense arrays are stored and returned **read-only**: a hit hands
the caller the cache's own buffer (no copy on the hot path), and NumPy's
writeable flag guarantees no caller can corrupt the shared entry.
``SparseVec`` entries are immutable by construction.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from collections.abc import Callable, Iterable
from dataclasses import dataclass

import numpy as np

from repro.core.sparsevec import SparseVec
from repro.errors import ServingError
from repro.serving.admission import FrequencySketch

__all__ = ["CacheStats", "PPVCache", "DEFAULT_EVICTION_SAMPLE", "entry_bytes"]


def entry_bytes(entry: np.ndarray | SparseVec) -> int:
    """Budgeted size of one cache entry: buffer bytes for a dense row,
    wire bytes (true nnz) for a :class:`SparseVec`."""
    if isinstance(entry, SparseVec):
        return entry.wire_bytes
    return entry.nbytes

DEFAULT_EVICTION_SAMPLE = 8
"""LRU-end candidates examined per cost-aware eviction (Redis-style)."""


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of one :class:`PPVCache`.

    ``admission_rejects`` counts inserts the TinyLFU doorkeeper turned
    away; ``invalidations`` counts rows dropped by targeted
    :meth:`PPVCache.invalidate` calls (live graph updates).
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    inserts: int = 0
    admission_rejects: int = 0
    invalidations: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0.0 when unused)."""
        total = self.requests
        return self.hits / total if total else 0.0


class PPVCache:
    """Byte-budgeted LRU over PPV rows — dense arrays or sparse vectors.

    ``get`` returns the stored entry without copying (or ``None`` on a
    miss); ``put`` inserts and evicts least-recently-used entries until
    the budget holds.  A dense row is stored as a read-only array and
    charged its ``8n`` buffer; a :class:`~repro.core.sparsevec.SparseVec`
    row (the sparse serving pipeline) is stored as-is — it is immutable —
    and charged its ``16 + 12·nnz`` wire size, so the byte budget
    reflects each entry's *true* support and pruned workloads fit far
    more rows.  Dense and sparse entries may coexist; readers convert as
    needed.  A vector larger than the whole budget is rejected outright
    instead of evicting everything for an entry that cannot help future
    queries.

    ``weight`` turns eviction cost-aware: a ``weight(u, vec) -> float``
    callable scores each entry at insert time (e.g. by its backend
    rebuild cost — what a sharded deployment loses when the row must be
    recomputed), and eviction removes the *cheapest* of the ``sample``
    least-recently-used entries instead of blindly the oldest.  Without
    ``weight`` the cache is exactly the original pure-LRU byte-budgeted
    store.  Note ``vec`` is whatever form was inserted: a read-only
    dense row on the dense serving paths, a :class:`SparseVec` on the
    sparse ones — hooks serving both pipelines should key on ``u`` or
    handle both types.

    ``admission`` adds a TinyLFU doorkeeper (``"tinylfu"`` for defaults,
    or a pre-sized :class:`~repro.serving.admission.FrequencySketch`):
    every *lookup* counts into the sketch — exactly once per access, the
    canonical TinyLFU accounting; the serving flows always probe before
    inserting — and an insert that would evict is admitted only if the
    candidate's estimated frequency *beats* the would-be victim's — scan
    resistance under adversarial one-shot streams, with rejects counted
    in ``stats.admission_rejects``.
    """

    def __init__(
        self,
        max_bytes: int,
        *,
        weight: Callable[[int, np.ndarray | SparseVec], float] | None = None,
        sample: int = DEFAULT_EVICTION_SAMPLE,
        admission: FrequencySketch | str | None = None,
    ) -> None:
        if max_bytes <= 0:
            raise ServingError(f"cache budget must be positive, got {max_bytes}")
        if weight is not None and not callable(weight):
            raise ServingError("weight must be a callable (u, vec) -> float")
        if sample < 1:
            raise ServingError(f"eviction sample must be >= 1, got {sample}")
        if isinstance(admission, str):
            if admission != "tinylfu":
                raise ServingError(
                    f"unknown admission policy {admission!r} (known: 'tinylfu')"
                )
            admission = FrequencySketch()
        if admission is not None and not isinstance(admission, FrequencySketch):
            raise ServingError(
                "admission must be 'tinylfu' or a FrequencySketch instance"
            )
        self.max_bytes = int(max_bytes)
        self.current_bytes = 0
        self.weight = weight
        self.sample = int(sample)
        self.admission = admission
        self.stats = CacheStats()
        self._store: OrderedDict[int, np.ndarray | SparseVec] = OrderedDict()
        self._weights: dict[int, float] = {}

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, u: int) -> bool:
        """Membership probe without touching recency or hit/miss stats."""
        return u in self._store

    def get(self, u: int) -> np.ndarray | SparseVec | None:
        """The cached PPV of ``u`` (read-only, shared) or ``None``.

        The entry comes back in the form it was inserted — dense row or
        :class:`SparseVec`; mixed-mode readers convert on their side.
        """
        if self.admission is not None:
            self.admission.increment(u)
        arr = self._store.get(u)
        if arr is None:
            self.stats.misses += 1
            return None
        self._store.move_to_end(u)
        self.stats.hits += 1
        return arr

    def put(self, u: int, vec: np.ndarray | SparseVec) -> bool:
        """Insert the PPV of ``u``; returns False if it can never fit.

        ``vec`` is either a dense row or a
        :class:`~repro.core.sparsevec.SparseVec`.  Already-read-only
        float64 arrays are stored as-is (the service shares one buffer
        between the cache and every resolved request); anything writeable
        is defensively copied first; ``SparseVec`` entries are immutable
        and stored directly at their wire size.
        """
        if isinstance(vec, SparseVec):
            arr = vec
        else:
            arr = np.asarray(vec, dtype=np.float64)
            if arr.ndim != 1:
                raise ServingError("cache entries must be 1-D PPV rows")
            if arr.flags.writeable or arr.base is not None:
                # Copy anything writeable — and any *view*, which would
                # pin its whole base buffer while only the row is
                # accounted.
                arr = arr.copy()
                arr.flags.writeable = False
        nbytes = entry_bytes(arr)
        if nbytes > self.max_bytes:
            return False
        if self.admission is not None:
            if (
                u not in self._store
                and self.current_bytes + nbytes > self.max_bytes
                and len(self._store) > 0
            ):
                # Admission duel: the candidate must beat the entry its
                # insert would evict, else it bounces off the full cache.
                victim = self._peek_victim()
                if self.admission.estimate(u) <= self.admission.estimate(victim):
                    self.stats.admission_rejects += 1
                    return False
        if self.weight is not None:
            w = float(self.weight(u, arr))
            if not math.isfinite(w):
                raise ServingError(
                    f"weight({u}, ...) returned non-finite {w!r}"
                )
        old = self._store.pop(u, None)
        if old is not None:
            self.current_bytes -= entry_bytes(old)
        self._store[u] = arr
        if self.weight is not None:
            self._weights[u] = w
        self.current_bytes += nbytes
        self.stats.inserts += 1
        while self.current_bytes > self.max_bytes:
            evicted = self._evict_one()
            self.current_bytes -= entry_bytes(evicted)
            self.stats.evictions += 1
        return True

    def _evict_one(self) -> np.ndarray | SparseVec:
        """Remove and return one entry under the configured policy.

        Pure LRU without a ``weight`` hook; with one, the lightest of the
        ``sample`` least-recently-used entries goes (ties keep eviction
        order deterministic: the least recent of the tied candidates).
        The most-recent entry is never a candidate — it is the row being
        inserted right now, and evicting it would make ``put`` a lie —
        matching the structural protection of the pure-LRU path.
        """
        if self.weight is None:
            _, evicted = self._store.popitem(last=False)
            return evicted
        victim = None
        victim_w = math.inf
        candidates = min(self.sample, len(self._store) - 1)
        for i, u in enumerate(self._store):
            if i >= candidates:
                break
            w = self._weights[u]
            if w < victim_w:
                victim, victim_w = u, w
        self._weights.pop(victim, None)
        return self._store.pop(victim)

    def _peek_victim(self) -> int:
        """The key :meth:`_evict_one` would remove next, without removing.

        Mirrors the eviction policy exactly — pure LRU takes the least
        recent entry, cost-aware takes the lightest of the ``sample``
        least-recent candidates — so the admission duel compares the
        candidate against the true would-be victim.
        """
        if self.weight is None:
            return next(iter(self._store))
        victim = None
        victim_w = math.inf
        candidates = min(self.sample, len(self._store))
        for i, u in enumerate(self._store):
            if i >= candidates:
                break
            w = self._weights[u]
            if w < victim_w:
                victim, victim_w = u, w
        return victim

    def invalidate(self, nodes: Iterable[int] | np.ndarray) -> int:
        """Drop exactly the given rows (a live update's affected sources).

        Returns how many entries were actually present and removed; rows
        of unaffected nodes stay resident — the point of the affected-
        sources report is that a graph update never needs a full flush.
        """
        dropped = 0
        for u in np.atleast_1d(np.asarray(nodes, dtype=np.int64)).tolist():
            arr = self._store.pop(u, None)
            if arr is not None:
                self.current_bytes -= entry_bytes(arr)
                self._weights.pop(u, None)
                dropped += 1
        self.stats.invalidations += dropped
        return dropped

    def clear(self) -> None:
        """Drop every entry (stats are kept — they describe the workload)."""
        self._store.clear()
        self._weights.clear()
        self.current_bytes = 0
