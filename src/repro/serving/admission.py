"""TinyLFU-style admission: a count-min doorkeeper for the PPV cache.

A pure LRU (even the cost-aware variant) admits every insert, so an
adversarial one-shot stream — each key requested exactly once — flushes
the hot working set straight out of the cache.  TinyLFU (Einziger et
al.) fixes that with a tiny frequency sketch consulted *at admission
time*: a candidate only displaces the would-be eviction victim when its
estimated request frequency beats the victim's, so one-shot keys bounce
off the full cache while genuinely hot keys still get in.

:class:`FrequencySketch` is the doorkeeper: a count-min sketch (``depth``
hash rows over a power-of-two ``width``) with conservative-increment
updates and periodic halving, so frequencies age out and the sketch
tracks the *recent* workload rather than all history.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ServingError

__all__ = ["FrequencySketch"]

_SEEDS = (
    0x9E3779B97F4A7C15,
    0xC2B2AE3D27D4EB4F,
    0x165667B19E3779F9,
    0x27D4EB2F165667C5,
)
_MASK64 = (1 << 64) - 1


class FrequencySketch:
    """Count-min sketch with halving decay — the admission doorkeeper.

    ``width`` is rounded up to a power of two; ``reset_interval`` bounds
    how many increments are absorbed before every counter is halved
    (decay keeps estimates proportional to *recent* frequency — without
    it a key hot last week would outrank today's working set forever).
    """

    def __init__(
        self,
        width: int = 1024,
        *,
        depth: int = 4,
        reset_interval: int | None = None,
    ) -> None:
        if width < 1:
            raise ServingError(f"sketch width must be >= 1, got {width}")
        if not 1 <= depth <= len(_SEEDS):
            raise ServingError(
                f"sketch depth must be in [1, {len(_SEEDS)}], got {depth}"
            )
        self.width = 1 << int(np.ceil(np.log2(width)))
        self.depth = int(depth)
        self.reset_interval = (
            int(reset_interval) if reset_interval is not None else 8 * self.width
        )
        if self.reset_interval < 1:
            raise ServingError("reset_interval must be positive")
        self._counters = np.zeros((self.depth, self.width), dtype=np.int64)
        self._increments = 0
        self.resets = 0

    # ------------------------------------------------------------------
    def _cells(self, key: int) -> list[int]:
        key = (int(key) + 1) & _MASK64
        shift = 64 - int(np.log2(self.width)) if self.width > 1 else 64
        return [
            ((key * _SEEDS[r]) & _MASK64) >> shift if shift < 64 else 0
            for r in range(self.depth)
        ]

    def increment(self, key: int) -> None:
        """Count one request for ``key`` (conservative increment)."""
        cells = self._cells(key)
        rows = np.arange(self.depth)
        current = self._counters[rows, cells]
        low = current.min()
        # Conservative update: only the minimal cells grow, which tightens
        # the overestimate the sketch's shared counters introduce.
        bump = current == low
        self._counters[rows[bump], np.asarray(cells)[bump]] += 1
        self._increments += 1
        if self._increments >= self.reset_interval:
            self._counters >>= 1
            self._increments = 0
            self.resets += 1

    def estimate(self, key: int) -> int:
        """Estimated request count of ``key`` (an upper bound)."""
        cells = self._cells(key)
        return int(self._counters[np.arange(self.depth), cells].min())
