"""Micro-batching PPV query frontend.

A PPR serving system sees a stream of single-node requests, but the
engines underneath answer *batches* far more cheaply than loops of
single queries (one stacked sparse matmul amortises the skeleton-row
slicing across the whole batch — the PR 1 ``query_many`` win).
:class:`PPVService` bridges the two: requests are queued, held for at
most one *batch window* (a few milliseconds), deduplicated, answered by
a single ``query_many`` call, and optionally remembered in an LRU
:class:`~repro.serving.cache.PPVCache` so the skewed tail of repeat
queries never reaches the backend at all.

Time is injected through a clock object so tests and simulations are
deterministic: :class:`SystemClock` follows ``time.monotonic`` for real
deployments, :class:`SimulatedClock` is advanced manually (e.g. by a
recorded arrival process) and makes batch formation reproducible.
"""

from __future__ import annotations

import operator
import time
from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from typing import Any

import numpy as np
import scipy.sparse as sp

from repro.core.flat_index import DEFAULT_BATCH, topk_rows, validate_batch
from repro.core.sparse_ops import row_sparsevec, rows_matrix, topk_rows_sparse
from repro.core.sparsevec import SparseVec
from repro.core.updates import EdgeUpdate, UpdateReceipt
from repro.errors import (
    DegradedResult,
    ServingError,
    ShardingError,
    TransientFault,
)
from repro.kernels.dispatch import KernelsLike
from repro.serving.adapters import as_backend
from repro.serving.cache import PPVCache

__all__ = [
    "SystemClock",
    "SimulatedClock",
    "Ticket",
    "ServiceStats",
    "PPVService",
]


class SystemClock:
    """Real time — ``time.monotonic`` behind the clock interface."""

    def now(self) -> float:
        return time.monotonic()


class SimulatedClock:
    """Manually-advanced clock for deterministic batching in tests."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, dt: float) -> None:
        if dt < 0:
            raise ServingError("cannot advance a clock backwards")
        self._now += dt

    def advance_to(self, t: float) -> None:
        """Jump to ``t`` (no-op when ``t`` is in the past — arrivals may tie)."""
        self._now = max(self._now, float(t))


_PENDING = object()


class Ticket:
    """One submitted request; resolves when its batch is flushed.

    ``epoch`` is the graph version the answer was computed against —
    tagged at resolve time from the backend's counter, so callers of a
    live-updated service can tell exactly which epoch each response
    reflects.

    ``status`` is the degradation contract surfaced per request:
    ``"ok"`` answers are fresh and exact; ``"degraded"`` answers were
    served stale from a cache while their partition was unreachable
    (exact values, unconfirmed freshness); ``"shed"`` requests got no
    answer at all — reading :attr:`result` raises
    :class:`~repro.errors.DegradedResult` so a shed zero row can never
    be mistaken for a real PPV.  ``latency_seconds`` is the request's
    modeled latency: clock time from submit to resolve plus any
    injected/modeled serving delay the backend reported.
    """

    __slots__ = (
        "node",
        "cached",
        "epoch",
        "status",
        "submitted_at",
        "resolved_at",
        "extra_latency_seconds",
        "_value",
    )

    def __init__(self, node: int) -> None:
        self.node = node
        self.cached = False
        self.epoch: int | None = None
        self.status = "ok"
        self.submitted_at: float | None = None
        self.resolved_at: float | None = None
        self.extra_latency_seconds = 0.0
        self._value = _PENDING

    @property
    def done(self) -> bool:
        return self._value is not _PENDING

    @property
    def shed(self) -> bool:
        return self.status == "shed"

    @property
    def degraded(self) -> bool:
        return self.status == "degraded"

    @property
    def latency_seconds(self) -> float | None:
        """Modeled request latency (``None`` while still queued)."""
        if self.submitted_at is None or self.resolved_at is None:
            return None
        return (
            self.resolved_at - self.submitted_at + self.extra_latency_seconds
        )

    @property
    def result(self) -> np.ndarray:
        """The PPV (a read-only dense row, or a
        :class:`~repro.core.sparsevec.SparseVec` when the service runs in
        sparse mode); raises while still queued, and raises
        :class:`~repro.errors.DegradedResult` for a shed request."""
        if self._value is _PENDING:
            raise ServingError(
                f"request for node {self.node} not served yet — "
                "call poll()/flush() on the service"
            )
        if self.status == "shed":
            raise DegradedResult(
                f"request for node {self.node} was shed — no replica and "
                "no cached row could answer it"
            )
        return self._value

    def _resolve(self, value: np.ndarray, epoch: int = 0) -> None:
        self._value = value
        self.epoch = int(epoch)


@dataclass
class ServiceStats:
    """Traffic counters of one :class:`PPVService`.

    The degradation/SLO block: ``degraded``/``shed`` count explicitly
    marked non-fresh answers (the graceful-degradation contract);
    ``slo_met``/``slo_missed`` classify every *answered* request against
    the service's ``slo_seconds`` target (shed requests are availability
    failures, not latency ones, and are excluded); latency totals are
    modeled request latency — queue wait plus any serving delay the
    backend reported.
    """

    requests: int = 0
    cache_hits: int = 0
    batches: int = 0
    batched_queries: int = 0  # deduplicated nodes sent to the backend
    updates: int = 0  # edge updates applied through the service
    degraded: int = 0  # answers served stale, explicitly marked
    shed: int = 0  # requests refused (zero row + DegradedResult)
    slo_met: int = 0  # answered within slo_seconds (when configured)
    slo_missed: int = 0  # answered late (when configured)
    total_latency_seconds: float = 0.0
    max_latency_seconds: float = 0.0

    @property
    def mean_batch_size(self) -> float:
        return self.batched_queries / self.batches if self.batches else 0.0

    @property
    def availability(self) -> float:
        """Fraction of requests that got an answer (1.0 with no traffic):
        degraded answers count as available, shed requests do not."""
        if not self.requests:
            return 1.0
        return 1.0 - self.shed / self.requests

    @property
    def mean_latency_seconds(self) -> float:
        return (
            self.total_latency_seconds / self.requests if self.requests else 0.0
        )


class PPVService:
    """Micro-batching frontend over any servable engine.

    ``submit`` enqueues a single-node request and returns a
    :class:`Ticket`; the queue is flushed into one backend
    ``query_many`` call when the oldest pending request has waited
    ``window`` seconds (checked by :meth:`poll`) or ``max_batch``
    requests are pending (checked eagerly).  With a cache attached,
    hits resolve immediately and never reach the backend.

    Results are read-only arrays shared between the cache and every
    ticket of the same node — exact to the backend's ``query_many``,
    which each index family keeps within 1e-12 of its per-node ``query``.
    With ``sparse=True`` batches run through the backend's
    ``query_many_sparse`` instead: tickets resolve to immutable
    :class:`~repro.core.sparsevec.SparseVec` rows with exactly the dense
    values, and the cache charges each row its true-nnz wire size, so a
    pruned-index deployment fits ~10–100× more entries in the same
    budget.  ``collect_stats=False`` skips engine-level per-query
    metadata on every flush (the hot-path fast mode).
    """

    def __init__(
        self,
        engine: Any,
        *,
        window: float = 0.01,
        max_batch: int = DEFAULT_BATCH,
        cache: PPVCache | int | None = None,
        clock: Any = None,
        sparse: bool = False,
        collect_stats: bool = True,
        kernels: KernelsLike = None,
        slo_seconds: float | None = None,
        degrade: bool = False,
        shed_above: int | None = None,
    ) -> None:
        if window < 0:
            raise ServingError(f"window must be >= 0, got {window}")
        if max_batch < 1:
            raise ServingError(f"max_batch must be >= 1, got {max_batch}")
        if slo_seconds is not None and slo_seconds <= 0:
            raise ServingError(
                f"slo_seconds must be positive, got {slo_seconds}"
            )
        if shed_above is not None and shed_above < 1:
            raise ServingError(
                f"shed_above must be >= 1, got {shed_above}"
            )
        self.backend = as_backend(engine)
        self.window = float(window)
        self.max_batch = int(max_batch)
        if isinstance(cache, int):
            cache = PPVCache(cache)
        self.cache = cache
        self.clock = clock if clock is not None else SystemClock()
        # Sparse mode: batches go through the backend's query_many_sparse,
        # tickets resolve to SparseVec rows and the cache stores them at
        # their true-nnz byte cost (values agree with dense mode exactly).
        self.sparse = bool(sparse)
        # collect_stats=False asks engines to skip per-query metadata
        # bookkeeping — the serving hot-path fast mode.  Epoch tagging
        # then falls back to the backend's batch-level epoch (identical
        # unless a staggered rollout serves mixed epochs mid-flight).
        self.collect_stats = bool(collect_stats)
        #: Kernel bundle / backend name the frontend's own top-k
        #: reductions dispatch to (``None`` = the process default); the
        #: wrapped engine keeps whatever ``kernels=`` it was built with.
        self.kernels: KernelsLike = kernels
        #: Per-request latency target for the SLO counters in
        #: :class:`ServiceStats` (``None`` = don't classify).
        self.slo_seconds = slo_seconds
        # Graceful degradation: when the backend itself fails a flush
        # (every replica of a partition gone), serve-stale from the
        # service cache / shed instead of raising — each answer
        # explicitly marked.  Markers the backend already produced (a
        # resilient ShardRouter with degrade=True) propagate regardless.
        self.degrade = bool(degrade)
        # Admission control: with more than `shed_above` requests
        # already queued, new submits are shed on arrival — an
        # overloaded service answers fewer requests rather than all of
        # them late.
        self.shed_above = shed_above
        self.stats = ServiceStats()
        self._pending: list[Ticket] = []
        self._deadline: float | None = None
        self._cache_epoch = self.epoch

    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Requests waiting for the current batch window to close."""
        return len(self._pending)

    @property
    def epoch(self) -> int:
        """The backend's current graph version (0 for static backends)."""
        return int(getattr(self.backend, "epoch", 0))

    def _sync_cache_epoch(self) -> None:
        """Drop the whole cache if the backend's epoch moved behind our
        back — an update applied directly to the backend (e.g. a
        ``ShardRouter`` rollout driven outside this service) never told
        us which rows it affected, so only a full drop is safe.  Updates
        routed through :meth:`apply_update` invalidate precisely and keep
        this a no-op.
        """
        if self.cache is not None and self.epoch != self._cache_epoch:
            self.cache.clear()
            self._cache_epoch = self.epoch

    def apply_update(self, update: EdgeUpdate) -> UpdateReceipt:
        """Apply one live edge update at a batch boundary.

        Pending requests are flushed *first* — they were submitted
        against the current epoch and are answered at it — then the
        update goes through the backend (which must be mutable: an
        :func:`~repro.serving.adapters.as_mutable_backend` wrapper, a
        distributed runtime, or a shard router) and exactly the affected
        rows are dropped from the service cache.  The returned receipt
        carries the epoch subsequent answers are tagged with.
        """
        apply = getattr(self.backend, "apply_update", None)
        if apply is None:
            raise ServingError(
                f"{self.backend!r} cannot apply updates — wrap the engine "
                "with as_mutable_backend()"
            )
        self.flush()
        self._sync_cache_epoch()
        receipt = apply(update)
        if self.cache is not None and receipt.changed:
            self.cache.invalidate(receipt.affected_sources)
        self._cache_epoch = self.epoch
        self.stats.updates += 1
        return receipt

    def submit(self, u: int) -> Ticket:
        """Enqueue one request; resolves on cache hit or at the flush.

        Only genuine integer ids are accepted — truncating ``3.7`` to
        node 3 would serve the wrong PPV without any error (the same
        contract as ``validate_batch`` on the direct batch API).
        """
        try:
            u = operator.index(u)
        except TypeError:
            raise ServingError(
                f"query node ids must be integers, got {u!r}"
            ) from None
        if not 0 <= u < self.backend.num_nodes:
            raise ServingError(f"query node {u} out of range")
        # An expired batch flushes before this request joins the queue —
        # submit-only callers keep the at-most-one-window latency bound
        # without ever driving poll() themselves.
        self.poll()
        self.stats.requests += 1
        self._sync_cache_epoch()
        ticket = Ticket(u)
        ticket.submitted_at = self.clock.now()
        if self.cache is not None:
            hit = self.cache.get(u)
            if hit is not None:
                self.stats.cache_hits += 1
                ticket.cached = True
                self._finish_ticket(ticket, self._coerce(hit), self.epoch)
                return ticket
        if self.shed_above is not None and len(self._pending) >= self.shed_above:
            # Admission control: the queue is past the shedding mark —
            # refuse on arrival instead of answering everyone late.
            self._finish_ticket(
                ticket, self._zero_row(), self.epoch, status="shed"
            )
            return ticket
        if not self._pending:
            self._deadline = ticket.submitted_at + self.window
        self._pending.append(ticket)
        if len(self._pending) >= self.max_batch:
            self._flush()
        return ticket

    def poll(self) -> int:
        """Flush if the batch window has closed; returns tickets resolved."""
        if self._pending and (
            self._deadline is not None and self.clock.now() >= self._deadline
        ):
            return self._flush()
        return 0

    def flush(self) -> int:
        """Force the pending batch out now; returns tickets resolved."""
        if not self._pending:
            return 0
        return self._flush()

    def _coerce(self, entry: np.ndarray | SparseVec) -> np.ndarray | SparseVec:
        """A cache entry in this service's result form (dense or sparse).

        Entries are stored in the mode that inserted them; a service of
        the other mode converts on read — same values either way.
        """
        if self.sparse:
            if isinstance(entry, SparseVec):
                return entry
            return SparseVec.from_dense(entry)
        if isinstance(entry, SparseVec):
            row = entry.to_dense(self.backend.num_nodes)
            row.flags.writeable = False
            return row
        return entry

    def _zero_row(self) -> np.ndarray | SparseVec:
        """The explicit payload of a shed request (its ticket raises
        :class:`~repro.errors.DegradedResult` on ``result`` anyway)."""
        if self.sparse:
            return SparseVec.empty()
        row = np.zeros(self.backend.num_nodes)
        row.flags.writeable = False
        return row

    def _finish_ticket(
        self,
        ticket: Ticket,
        value: np.ndarray | SparseVec,
        epoch: int,
        *,
        status: str = "ok",
        extra_latency: float = 0.0,
    ) -> None:
        """Resolve one ticket and account its latency/SLO/degradation.

        Shed requests count against availability, not the SLO latency
        classification — a refused request was never answered late.
        """
        ticket.status = status
        ticket.extra_latency_seconds = float(extra_latency)
        ticket._resolve(value, epoch)
        ticket.resolved_at = self.clock.now()
        latency = ticket.latency_seconds
        assert latency is not None
        stats = self.stats
        if status == "degraded":
            stats.degraded += 1
        elif status == "shed":
            stats.shed += 1
        stats.total_latency_seconds += latency
        if latency > stats.max_latency_seconds:
            stats.max_latency_seconds = latency
        if self.slo_seconds is not None and status != "shed":
            if latency <= self.slo_seconds:
                stats.slo_met += 1
            else:
                stats.slo_missed += 1

    def _flush_degraded(self, tickets: list[Ticket]) -> None:
        """The backend failed the whole flush: serve-stale what the
        service cache still holds (exact rows, explicitly marked
        ``degraded``) and shed the rest — never raise at the frontend,
        never invent a value."""
        base = self.epoch
        for ticket in tickets:
            hit = self.cache.get(ticket.node) if self.cache is not None else None
            if hit is not None:
                self._finish_ticket(
                    ticket, self._coerce(hit), base, status="degraded"
                )
            else:
                self._finish_ticket(
                    ticket, self._zero_row(), base, status="shed"
                )
        self.stats.batches += 1

    def _flush(self) -> int:
        tickets, self._pending = self._pending, []
        self._deadline = None
        self._sync_cache_epoch()
        unique = np.unique(
            np.asarray([t.node for t in tickets], dtype=np.int64)
        )
        try:
            if self.sparse:
                out, meta = self.backend.query_many_sparse(
                    unique, collect_stats=self.collect_stats
                )
            else:
                out, meta = self.backend.query_many(
                    unique, collect_stats=self.collect_stats
                )
        except (ShardingError, TransientFault):
            if not self.degrade:
                raise
            self._flush_degraded(tickets)
            return len(tickets)
        base = self.epoch
        # Mid-rollout a sharded backend serves mixed epochs: per-row
        # metadata carries the truth, and nothing may enter the cache
        # (epoch-untagged rows from ahead-of-epoch replicas would be
        # served as the completed version later).
        mixed = bool(getattr(self.backend, "rollout_in_progress", False))
        rows: dict[int, np.ndarray | SparseVec] = {}
        epochs: dict[int, int] = {}
        statuses: dict[int, str] = {}
        delays: dict[int, float] = {}
        for j, u in enumerate(unique.tolist()):
            if self.sparse:
                row = row_sparsevec(out, j)
            else:
                row = out[j].copy()
                row.flags.writeable = False
            rows[u] = row
            info = meta[j] if j < len(meta) else None
            epochs[u] = int(getattr(info, "epoch", base)) if info else base
            statuses[u] = str(getattr(info, "status", "ok")) if info else "ok"
            delays[u] = (
                float(getattr(info, "latency_seconds", 0.0)) if info else 0.0
            )
            # Only fresh exact rows may enter the cache: a degraded row's
            # freshness is unconfirmed and a shed row is an explicit zero.
            if self.cache is not None and not mixed and statuses[u] == "ok":
                self.cache.put(u, row)
        for ticket in tickets:
            u = ticket.node
            self._finish_ticket(
                ticket,
                rows[u],
                epochs[u],
                status=statuses[u],
                extra_latency=delays[u],
            )
        self.stats.batches += 1
        self.stats.batched_queries += int(unique.size)
        return len(tickets)

    # ------------------------------------------------------------------
    def query(self, u: int) -> np.ndarray | SparseVec:
        """Synchronous convenience: submit, drain the queue, return the PPV
        (a read-only dense row, or a :class:`SparseVec` in sparse mode).

        Note this flushes *all* pending requests (they share the batch),
        so interleaving ``query`` with ``submit`` shortens open windows.
        """
        ticket = self.submit(u)
        if not ticket.done:
            self.flush()
        return ticket.result

    def query_topk(
        self, u: int, k: int, *, threshold: float | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Top-``k`` of the served PPV: ``(ids, scores)``, best first.

        Served through the same cache/batch path as :meth:`query` — the
        full row is what the cache stores, the reduction is per-request
        (sparse mode reduces the sparse row directly, same result).
        ``threshold`` drops entries with ``score <= threshold`` before
        the k-cut (tail padded with id ``-1`` / score ``0.0``).
        """
        if k <= 0:
            raise ServingError("k must be positive")
        vec = self.query(u)
        if isinstance(vec, SparseVec):
            ids, scores = topk_rows_sparse(
                rows_matrix([vec], self.backend.num_nodes),
                k,
                threshold=threshold,
                kernels=self.kernels,
            )
        else:
            ids, scores = topk_rows(
                vec[np.newaxis], k, threshold=threshold, kernels=self.kernels
            )
        return ids[0], scores[0]

    def serve(
        self,
        nodes: Sequence[int] | np.ndarray,
        arrivals: Sequence[float] | np.ndarray | None = None,
    ) -> np.ndarray | sp.csr_matrix:
        """Drive a whole request stream; returns the ``(len, n)`` results
        (dense, or one CSR matrix in sparse mode — same values).

        ``arrivals`` (seconds, non-decreasing) replays an arrival process
        against a :class:`SimulatedClock`: the clock jumps to each
        request's arrival time and expired windows flush on the way —
        exactly the batches a live service with this window would form.
        Without ``arrivals`` the queue is driven by ``max_batch`` alone
        (and whatever real time elapses under a :class:`SystemClock`).
        """
        nodes = validate_batch(nodes, self.backend.num_nodes)
        if arrivals is not None:
            arrivals = np.asarray(arrivals, dtype=np.float64)
            if arrivals.shape != nodes.shape:
                raise ServingError("arrivals must match nodes in length")
            if not hasattr(self.clock, "advance_to"):
                raise ServingError(
                    "replaying arrivals needs a SimulatedClock"
                )
        tickets = []
        for i, u in enumerate(nodes.tolist()):
            if arrivals is not None:
                self.clock.advance_to(float(arrivals[i]))
            self.poll()
            tickets.append(self.submit(u))
        self.flush()
        # Shed tickets hold explicit zero rows; the stacked matrix keeps
        # them in place (ticket.result raises for per-request callers —
        # stream callers read ServiceStats for the degradation report).
        if self.sparse:
            return rows_matrix(
                [t._value for t in tickets], self.backend.num_nodes
            )
        if not tickets:
            return np.zeros((0, self.backend.num_nodes))
        return np.vstack([t._value for t in tickets])

    def replay(
        self, events: Iterable[tuple[float, object]]
    ) -> list[Any]:
        """Replay a mixed query/update arrival stream deterministically.

        ``events`` is an iterable of ``(arrival_seconds, item)`` pairs in
        non-decreasing time order, where ``item`` is either a query node
        id or an :class:`~repro.core.updates.EdgeUpdate`.  The clock (a
        :class:`SimulatedClock`) jumps to each arrival, expired batch
        windows flush on the way, and updates apply at batch boundaries
        exactly as a live service would sequence them.  Returns one
        outcome per event, in order: a resolved-or-pending
        :class:`Ticket` for queries (all resolved by the final flush), an
        :class:`~repro.core.updates.UpdateReceipt` for updates — each
        tagged with the epoch it was answered/applied at.
        """
        if not hasattr(self.clock, "advance_to"):
            raise ServingError("replaying arrivals needs a SimulatedClock")
        outcomes: list[Any] = []
        last = None
        for t, item in events:
            t = float(t)
            if last is not None and t < last:
                raise ServingError("replay arrivals must be non-decreasing")
            last = t
            self.clock.advance_to(t)
            self.poll()
            if isinstance(item, EdgeUpdate):
                outcomes.append(self.apply_update(item))
            else:
                outcomes.append(self.submit(int(item)))
        self.flush()
        return outcomes
