"""A shard: one partition's replica group plus its result cache.

A shard owns a group of :class:`~repro.sharding.replica.Replica` backends
(each able to answer any query of the deployment — in a real cluster each
would hold a copy of the partition's precomputed owned-hub vectors), an
optional per-shard :class:`~repro.serving.cache.PPVCache`, and the wire
accounting of its link to the router.  Replica selection is deterministic:
the healthy replica with the fewest served queries wins, ties going to
the lowest replica id, so a marked-down replica's traffic reroutes to its
siblings and drifts back after recovery — no randomness, fully testable
with a :class:`~repro.serving.service.SimulatedClock`.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.core.flat_index import DEFAULT_BATCH, topk_in_batches, validate_batch
from repro.core.sparse_ops import row_sparsevec, rows_matrix
from repro.core.sparsevec import WIRE_ENTRY_BYTES, WIRE_HEADER_BYTES, SparseVec
from repro.kernels.dispatch import KernelsLike
from repro.core.updates import UPDATE_WIRE_BYTES, EdgeUpdate, UpdateReceipt
from repro.distributed.network import NetworkMeter
from repro.errors import ShardingError, WorkerDied
from repro.serving.cache import PPVCache
from repro.serving.service import SystemClock
from repro.sharding.replica import Replica

if TYPE_CHECKING:
    from repro.exec.backend import ExecutionBackend

__all__ = ["RouteInfo", "Shard", "NODE_ID_WIRE_BYTES", "TOPK_ENTRY_WIRE_BYTES"]

NODE_ID_WIRE_BYTES = 8
"""Bytes per node id on the router→shard request leg."""

TOPK_ENTRY_WIRE_BYTES = 16
"""Bytes per (id, score) pair on a top-k response row."""


@dataclass(frozen=True)
class RouteInfo:
    """Per-query routing record returned as ``query_many`` metadata.

    ``replica`` is ``-1`` for rows answered from the shard's cache
    (no replica did any work).  ``epoch`` is the graph version of the
    answer — the serving replica's epoch, or the shard's completed epoch
    for cache hits; mid-rollout it tells exactly which version each row
    reflects.
    """

    shard: int
    replica: int
    cached: bool
    epoch: int = 0


class _PendingBatch:
    """One routed batch between its submit and finish halves.

    The router submits one of these per shard before finishing any of
    them, so with a process-pool execution backend every shard's worker
    computes concurrently — the real fan-out the serial loop simulates.
    """

    __slots__ = (
        "nodes",
        "sparse",
        "out",
        "row_vecs",
        "infos",
        "miss_rows",
        "unique",
        "inverse",
        "replica",
        "future",
    )


class Shard:
    """One partition's replica group behind the router."""

    def __init__(
        self,
        shard_id: int,
        replicas: list[Any],
        *,
        cache: PPVCache | None = None,
        meter: NetworkMeter | None = None,
        clock: Any = None,
        backend: ExecutionBackend | None = None,
        kernels: KernelsLike = None,
    ) -> None:
        if not replicas:
            raise ShardingError(f"shard {shard_id} needs at least one replica")
        self.shard_id = int(shard_id)
        self.replicas = [
            r if isinstance(r, Replica) else Replica(r, i)
            for i, r in enumerate(replicas)
        ]
        sizes = {r.num_nodes for r in self.replicas}
        if len(sizes) != 1:
            raise ShardingError(
                f"shard {shard_id} replicas disagree on num_nodes: {sorted(sizes)}"
            )
        self.num_nodes = sizes.pop()
        self.cache = cache
        self.meter = meter if meter is not None else NetworkMeter()
        # Real time by default so a standalone shard's timed outages
        # still elapse; the router injects its own (possibly simulated)
        # clock so failover scenarios replay deterministically.
        self.clock = clock if clock is not None else SystemClock()
        # Execution seam: None serves replicas inline (today's behavior);
        # an ExecutionBackend offloads replica compute, with WorkerDied
        # triggering mark_down failover to a sibling replica.
        self.exec_backend = backend
        #: Kernel bundle / backend name the shard's top-k reduction
        #: dispatches to (``None`` = the process default).
        self.kernels: KernelsLike = kernels
        self.queries = 0  # rows served, cached or computed
        self.batches = 0
        self._held: set[int] | None = None

    # ----- updates ------------------------------------------------------
    @property
    def epoch(self) -> int:
        """The shard's *completed* graph version: the minimum across its
        replicas (mid-rollout some replicas run ahead)."""
        return min(r.epoch for r in self.replicas)

    def apply_update(
        self,
        update: EdgeUpdate,
        shared: dict[Any, Any] | None = None,
        *,
        replica: int | None = None,
    ) -> UpdateReceipt:
        """Fan one edge update to every replica (or just ``replica`` for a
        staggered-rollout wave), metering the update messages.

        When the whole group updated at once, the affected rows are
        dropped from the shard cache immediately; a staggered rollout
        manages cache validity itself via :meth:`begin_hold` /
        :meth:`release_hold`.
        """
        targets = (
            self.replicas if replica is None else [self.replicas[replica]]
        )
        receipt: UpdateReceipt | None = None
        for rep in targets:
            receipt = rep.apply_update(update, shared)
            self.meter.record(
                "router", f"shard-{self.shard_id}", UPDATE_WIRE_BYTES
            )
        if replica is None and receipt.changed and self.cache is not None:
            self.cache.invalidate(receipt.affected_sources)
        return receipt

    def begin_hold(self, nodes: np.ndarray) -> None:
        """Enter mid-rollout mode for the given affected nodes: their
        cached rows are dropped now and they bypass the cache (no lookups,
        no inserts) until :meth:`release_hold` — replicas at different
        epochs must not share rows through it.  Unaffected rows are
        identical at both epochs and keep serving from cache."""
        self._held = {int(x) for x in np.atleast_1d(np.asarray(nodes)).tolist()}
        if self.cache is not None:
            self.cache.invalidate(nodes)

    def release_hold(self) -> None:
        self._held = None

    # ----- failover -----------------------------------------------------
    def _now(self) -> float:
        return self.clock.now()

    def mark_down(self, replica: int, *, for_seconds: float | None = None) -> None:
        """Take one replica out of rotation (until ``mark_up``, or for
        ``for_seconds`` of clock time when given)."""
        until = None if for_seconds is None else self._now() + float(for_seconds)
        self.replicas[replica].mark_down(until=until)

    def mark_up(self, replica: int) -> None:
        self.replicas[replica].mark_up()

    def pick_replica(self) -> Replica:
        """Deterministic choice: least served queries among healthy
        replicas, ties to the lowest replica id."""
        now = self._now()
        best = None
        for replica in self.replicas:
            if not replica.is_up(now):
                continue
            if best is None or replica.served_queries < best.served_queries:
                best = replica
        if best is None:
            raise ShardingError(
                f"shard {self.shard_id}: every replica is marked down"
            )
        return best

    # ----- serving ------------------------------------------------------
    def _submit_compute(
        self, unique: np.ndarray, *, sparse: bool
    ) -> tuple[Replica, Any]:
        """Pick a replica and hand it the deduplicated batch.

        Returns ``(replica, future)`` where ``future`` is ``None`` when
        the batch will be served inline at finish time (no execution
        backend, or an engine without a worker-side layout).  A worker
        that died before accepting the batch marks its replica down and
        the next healthy sibling is picked; :meth:`pick_replica` raises
        :class:`~repro.errors.ShardingError` once none remain.
        """
        while True:
            replica = self.pick_replica()
            try:
                future = replica.exec_submit(
                    self.exec_backend, unique, sparse=sparse
                )
            except WorkerDied:
                self.mark_down(replica.replica_id)
                continue
            return replica, future

    def _finish_compute(
        self, replica: Replica, future: Any, unique: np.ndarray, *, sparse: bool
    ) -> tuple[Any, Replica]:
        """Resolve one submitted batch, failing over on worker death.

        A :class:`~repro.errors.WorkerDied` from the future marks the
        serving replica down and resubmits the same batch to a sibling —
        the caller never observes a partial answer.  Successful worker
        batches charge the worker's measured compute wall to the replica
        via :meth:`~repro.sharding.replica.Replica.note_served`.
        """
        while True:
            if future is None:
                if sparse:
                    result, _ = replica.query_many_sparse(
                        unique, collect_stats=False
                    )
                else:
                    result, _ = replica.query_many(unique, collect_stats=False)
                return result, replica
            try:
                result, wall = future.result()
            except WorkerDied:
                self.mark_down(replica.replica_id)
                replica, future = self._submit_compute(unique, sparse=sparse)
                continue
            replica.note_served(int(unique.size), wall)
            return result, replica

    def _plan(self, nodes: np.ndarray, *, sparse: bool) -> _PendingBatch:
        """Submit half of one batch: cache scan, then replica hand-off.

        Cache hits are resolved immediately (dense path densifies sparse
        entries on read, sparse path sparsifies dense entries — same
        values either way); the deduplicated misses are submitted via
        :meth:`_submit_compute`.  Nodes under a mid-rollout hold bypass
        the cache in both directions.
        """
        plan = _PendingBatch()
        plan.nodes = nodes
        plan.sparse = sparse
        plan.out = None if sparse else np.empty((nodes.size, self.num_nodes))
        plan.row_vecs = [None] * nodes.size if sparse else None
        plan.infos = [None] * nodes.size
        held = self._held if self._held is not None else ()
        miss_rows: list[int] = []
        if self.cache is not None:
            for i, u in enumerate(nodes.tolist()):
                hit = None if u in held else self.cache.get(u)
                if hit is None:
                    miss_rows.append(i)
                elif sparse:
                    plan.row_vecs[i] = (
                        hit
                        if isinstance(hit, SparseVec)
                        else SparseVec.from_dense(hit)
                    )
                    plan.infos[i] = RouteInfo(self.shard_id, -1, True, self.epoch)
                else:
                    if isinstance(hit, SparseVec):
                        plan.out[i] = hit.to_dense(self.num_nodes)
                    else:
                        plan.out[i] = hit
                    plan.infos[i] = RouteInfo(self.shard_id, -1, True, self.epoch)
        else:
            miss_rows = list(range(nodes.size))
        plan.miss_rows = miss_rows
        if miss_rows:
            rows = np.asarray(miss_rows, dtype=np.int64)
            plan.unique, plan.inverse = np.unique(
                nodes[rows], return_inverse=True
            )
            plan.replica, plan.future = self._submit_compute(
                plan.unique, sparse=sparse
            )
        else:
            plan.unique = plan.inverse = None
            plan.replica = plan.future = None
        return plan

    def _finish(self, plan: _PendingBatch) -> tuple[Any, ...]:
        """Finish half of one batch: resolve, scatter, fill the cache.

        Rows are epoch-tagged: cache hits carry the shard's completed
        epoch, computed rows the serving replica's.  The sparse return
        is one CSR matrix whose ``toarray()`` equals the dense path's
        result exactly.
        """
        if plan.miss_rows:
            result, replica = self._finish_compute(
                plan.replica, plan.future, plan.unique, sparse=plan.sparse
            )
            held = self._held if self._held is not None else ()
            info = RouteInfo(
                self.shard_id, replica.replica_id, False, replica.epoch
            )
            if plan.sparse:
                unique_vecs = [
                    row_sparsevec(result, j) for j in range(plan.unique.size)
                ]
                for pos, i in enumerate(plan.miss_rows):
                    plan.row_vecs[i] = unique_vecs[plan.inverse[pos]]
                    plan.infos[i] = info
                if self.cache is not None:
                    for j, u in enumerate(plan.unique.tolist()):
                        if u in held:
                            continue
                        self.cache.put(u, unique_vecs[j])
            else:
                rows = np.asarray(plan.miss_rows, dtype=np.int64)
                plan.out[rows] = result[plan.inverse]
                for i in plan.miss_rows:
                    plan.infos[i] = info
                if self.cache is not None:
                    for j, u in enumerate(plan.unique.tolist()):
                        if u in held:
                            continue
                        row = result[j].copy()
                        row.flags.writeable = False
                        self.cache.put(u, row)
        self.queries += int(plan.nodes.size)
        if plan.sparse:
            return rows_matrix(plan.row_vecs, self.num_nodes), plan.infos
        return plan.out, plan.infos

    def _serve_dense(self, nodes: np.ndarray) -> tuple[np.ndarray, list[Any]]:
        """Dense rows for ``nodes`` via cache + chosen replica (unmetered)."""
        return self._finish(self._plan(nodes, sparse=False))

    def _serve_sparse(self, nodes: np.ndarray) -> tuple[Any, ...]:
        """Sparse rows for ``nodes`` via cache + chosen replica (unmetered)."""
        return self._finish(self._plan(nodes, sparse=True))

    def query_many_submit(
        self, nodes: Sequence[int] | np.ndarray
    ) -> _PendingBatch:
        """Start one routed dense batch: meter the request leg, scan the
        cache and submit the misses; resolve with
        :meth:`query_many_finish`.  The router submits to every shard
        before finishing any, so shard workers overlap."""
        nodes = validate_batch(nodes, self.num_nodes)
        self.meter.record(
            "router", f"shard-{self.shard_id}", NODE_ID_WIRE_BYTES * nodes.size
        )
        return self._plan(nodes, sparse=False)

    def query_many_finish(
        self, plan: _PendingBatch
    ) -> tuple[np.ndarray, list[RouteInfo]]:
        """Finish a batch from :meth:`query_many_submit`, metering the
        dense ``8n``-byte response rows."""
        out, infos = self._finish(plan)
        self.batches += 1
        self.meter.record(f"shard-{self.shard_id}", "router", out.nbytes)
        return out, infos

    def query_many_sparse_submit(
        self, nodes: Sequence[int] | np.ndarray
    ) -> _PendingBatch:
        """Sparse twin of :meth:`query_many_submit`."""
        nodes = validate_batch(nodes, self.num_nodes)
        self.meter.record(
            "router", f"shard-{self.shard_id}", NODE_ID_WIRE_BYTES * nodes.size
        )
        return self._plan(nodes, sparse=True)

    def query_many_sparse_finish(self, plan: _PendingBatch) -> tuple[Any, ...]:
        """Finish a batch from :meth:`query_many_sparse_submit`, metering
        each response row at its sparse wire size (``16 + 12·nnz``
        bytes) — on pruned indexes a fraction of the dense ``8n``-byte
        rows, which is the bandwidth win of the sparse pipeline."""
        out, infos = self._finish(plan)
        self.batches += 1
        self.meter.record(
            f"shard-{self.shard_id}",
            "router",
            WIRE_HEADER_BYTES * plan.nodes.size + WIRE_ENTRY_BYTES * out.nnz,
        )
        return out, infos

    def query_many(
        self, nodes: Sequence[int] | np.ndarray
    ) -> tuple[np.ndarray, list[RouteInfo]]:
        """Serve one routed batch of dense PPV rows, metering the wire.

        Request: ``8`` bytes per node id; response: one dense ``8n``-byte
        row per query — what a real router↔shard link would carry.
        """
        return self.query_many_finish(self.query_many_submit(nodes))

    def query_many_sparse(self, nodes: Sequence[int] | np.ndarray) -> tuple[Any, ...]:
        """Serve one routed batch as sparse CSR rows, metering the wire.

        Request: ``8`` bytes per node id; response: one *sparse* row per
        query at its wire size (``16 + 12·nnz`` bytes).
        """
        return self.query_many_sparse_finish(self.query_many_sparse_submit(nodes))

    def query_many_topk(
        self,
        nodes: Sequence[int] | np.ndarray,
        k: int,
        *,
        batch: int = DEFAULT_BATCH,
        threshold: float | None = None,
        sparse: bool = False,
    ) -> tuple[np.ndarray, np.ndarray, list[RouteInfo]]:
        """Shard-side top-k: rows reduced before they hit the wire.

        Only the ``(rows, k)`` ids/scores ship back to the router (16
        bytes per entry), never the rows — the whole point of pushing
        the k-cut (and the ``threshold`` score cut) to the shard.  With
        ``sparse=True`` the rows are served sparse and reduced by the
        exact sparse top-k, so not even a ``(batch, n)`` dense chunk
        exists shard-side; ids and scores are identical either way.
        """
        nodes = validate_batch(nodes, self.num_nodes)
        self.meter.record(
            "router", f"shard-{self.shard_id}", NODE_ID_WIRE_BYTES * nodes.size
        )
        serve = self._serve_sparse if sparse else self._serve_dense
        ids, scores, infos = topk_in_batches(
            serve, nodes, k, self.num_nodes, batch, threshold,
            kernels=self.kernels,
        )
        self.batches += 1
        self.meter.record(
            f"shard-{self.shard_id}",
            "router",
            TOPK_ENTRY_WIRE_BYTES * ids.size,
        )
        return ids, scores, infos

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Shard {self.shard_id}: {len(self.replicas)} replica(s), "
            f"{self.queries} queries>"
        )
