"""A shard: one partition's replica group plus its result cache.

A shard owns a group of :class:`~repro.sharding.replica.Replica` backends
(each able to answer any query of the deployment — in a real cluster each
would hold a copy of the partition's precomputed owned-hub vectors), an
optional per-shard :class:`~repro.serving.cache.PPVCache`, and the wire
accounting of its link to the router.  Replica selection is deterministic:
the healthy replica with the fewest served queries wins, ties going to
the lowest replica id, so a marked-down replica's traffic reroutes to its
siblings and drifts back after recovery — no randomness, fully testable
with a :class:`~repro.serving.service.SimulatedClock`.
"""

from __future__ import annotations

from collections.abc import Collection, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.core.flat_index import DEFAULT_BATCH, topk_in_batches, validate_batch
from repro.core.sparse_ops import row_sparsevec, rows_matrix
from repro.core.sparsevec import WIRE_ENTRY_BYTES, WIRE_HEADER_BYTES, SparseVec
from repro.kernels.dispatch import KernelsLike
from repro.core.updates import UPDATE_WIRE_BYTES, EdgeUpdate, UpdateReceipt
from repro.distributed.network import NetworkMeter
from repro.errors import (
    DeadlineExceeded,
    ReplicaUnavailable,
    ShardingError,
    TransientFault,
    WorkerDied,
)
from repro.serving.cache import PPVCache
from repro.serving.service import SystemClock
from repro.sharding.replica import Replica
from repro.sharding.resilience import (
    CircuitBreaker,
    ResilienceStats,
    RetryPolicy,
    charge_wait,
)

if TYPE_CHECKING:
    from repro.exec.backend import ExecutionBackend

__all__ = ["RouteInfo", "Shard", "NODE_ID_WIRE_BYTES", "TOPK_ENTRY_WIRE_BYTES"]

NODE_ID_WIRE_BYTES = 8
"""Bytes per node id on the router→shard request leg."""

TOPK_ENTRY_WIRE_BYTES = 16
"""Bytes per (id, score) pair on a top-k response row."""


@dataclass(frozen=True)
class RouteInfo:
    """Per-query routing record returned as ``query_many`` metadata.

    ``replica`` is ``-1`` for rows answered from the shard's cache
    (no replica did any work).  ``epoch`` is the graph version of the
    answer — the serving replica's epoch, or the shard's completed epoch
    for cache hits; mid-rollout it tells exactly which version each row
    reflects.

    ``status`` is the degradation contract: ``"ok"`` rows are exact,
    fresh answers (bitwise-equal to a fault-free run no matter what
    failover produced them); ``"degraded"`` rows were served from the
    shard cache while the partition's replicas were unreachable (exact
    values, but freshness could not be confirmed); ``"shed"`` rows
    carry *zeros* — the shard had no replica and no cached row, and the
    router explicitly refused to invent an answer.  ``latency_seconds``
    is the modeled extra latency of the serving attempt (injected
    straggler delay under fault injection; 0.0 otherwise).
    """

    shard: int
    replica: int
    cached: bool
    epoch: int = 0
    status: str = "ok"
    latency_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """Whether this row is a fresh exact answer."""
        return self.status == "ok"


class _PendingBatch:
    """One routed batch between its submit and finish halves.

    The router submits one of these per shard before finishing any of
    them, so with a process-pool execution backend every shard's worker
    computes concurrently — the real fan-out the serial loop simulates.
    """

    __slots__ = (
        "nodes",
        "sparse",
        "out",
        "row_vecs",
        "infos",
        "miss_rows",
        "unique",
        "inverse",
        "replica",
        "future",
        "failed",
    )


class Shard:
    """One partition's replica group behind the router."""

    def __init__(
        self,
        shard_id: int,
        replicas: list[Any],
        *,
        cache: PPVCache | None = None,
        meter: NetworkMeter | None = None,
        clock: Any = None,
        backend: ExecutionBackend | None = None,
        kernels: KernelsLike = None,
        resilience: RetryPolicy | None = None,
        res_stats: ResilienceStats | None = None,
    ) -> None:
        if not replicas:
            raise ShardingError(f"shard {shard_id} needs at least one replica")
        self.shard_id = int(shard_id)
        self.replicas = [
            r if isinstance(r, Replica) else Replica(r, i)
            for i, r in enumerate(replicas)
        ]
        sizes = {r.num_nodes for r in self.replicas}
        if len(sizes) != 1:
            raise ShardingError(
                f"shard {shard_id} replicas disagree on num_nodes: {sorted(sizes)}"
            )
        self.num_nodes = sizes.pop()
        self.cache = cache
        self.meter = meter if meter is not None else NetworkMeter()
        # Real time by default so a standalone shard's timed outages
        # still elapse; the router injects its own (possibly simulated)
        # clock so failover scenarios replay deterministically.
        self.clock = clock if clock is not None else SystemClock()
        # Execution seam: None serves replicas inline (today's behavior);
        # an ExecutionBackend offloads replica compute, with WorkerDied
        # triggering mark_down failover to a sibling replica.
        self.exec_backend = backend
        #: Kernel bundle / backend name the shard's top-k reduction
        #: dispatches to (``None`` = the process default).
        self.kernels: KernelsLike = kernels
        self.queries = 0  # rows served, cached or computed
        self.batches = 0
        self._held: set[int] | None = None
        # Resilience policy: None keeps the legacy path (WorkerDied
        # failover only); a RetryPolicy adds bounded retries with
        # backoff, per-attempt deadlines, hedging and circuit breakers.
        # The stats block is shared across a router's shards so retry/
        # hedge overhead is reported fleet-wide.
        self.resilience = resilience
        self.res_stats = res_stats if res_stats is not None else ResilienceStats()
        if resilience is not None:
            for replica in self.replicas:
                if replica.breaker is None:
                    replica.breaker = CircuitBreaker(
                        resilience.breaker_failures,
                        resilience.breaker_reset_seconds,
                    )

    # ----- updates ------------------------------------------------------
    @property
    def epoch(self) -> int:
        """The shard's *completed* graph version: the minimum across its
        replicas (mid-rollout some replicas run ahead)."""
        return min(r.epoch for r in self.replicas)

    def apply_update(
        self,
        update: EdgeUpdate,
        shared: dict[Any, Any] | None = None,
        *,
        replica: int | None = None,
    ) -> UpdateReceipt:
        """Fan one edge update to every replica (or just ``replica`` for a
        staggered-rollout wave), metering the update messages.

        When the whole group updated at once, the affected rows are
        dropped from the shard cache immediately; a staggered rollout
        manages cache validity itself via :meth:`begin_hold` /
        :meth:`release_hold`.
        """
        targets = (
            self.replicas if replica is None else [self.replicas[replica]]
        )
        receipt: UpdateReceipt | None = None
        for rep in targets:
            receipt = rep.apply_update(update, shared)
            self._record_wire(
                "router", f"shard-{self.shard_id}", UPDATE_WIRE_BYTES
            )
        if replica is None and receipt.changed and self.cache is not None:
            self.cache.invalidate(receipt.affected_sources)
        return receipt

    def begin_hold(self, nodes: np.ndarray) -> None:
        """Enter mid-rollout mode for the given affected nodes: their
        cached rows are dropped now and they bypass the cache (no lookups,
        no inserts) until :meth:`release_hold` — replicas at different
        epochs must not share rows through it.  Unaffected rows are
        identical at both epochs and keep serving from cache."""
        self._held = {int(x) for x in np.atleast_1d(np.asarray(nodes)).tolist()}
        if self.cache is not None:
            self.cache.invalidate(nodes)

    def release_hold(self) -> None:
        self._held = None

    # ----- failover -----------------------------------------------------
    def _now(self) -> float:
        return self.clock.now()

    def mark_down(self, replica: int, *, for_seconds: float | None = None) -> None:
        """Take one replica out of rotation (until ``mark_up``, or for
        ``for_seconds`` of clock time when given)."""
        until = None if for_seconds is None else self._now() + float(for_seconds)
        self.replicas[replica].mark_down(until=until)

    def mark_up(self, replica: int) -> None:
        self.replicas[replica].mark_up()

    def pick_replica(self, exclude: Collection[int] = ()) -> Replica:
        """Deterministic choice: least served queries among healthy
        replicas, ties to the lowest replica id.

        Replicas in ``exclude`` (already tried for this batch) are
        passed over, as are replicas whose circuit breaker is open — but
        an open breaker never makes the shard unavailable: when every
        healthy candidate's breaker is open the breakers are bypassed
        (counted in ``breaker_skips``) rather than failing the batch.
        """
        now = self._now()
        healthy = [
            r
            for r in self.replicas
            if r.replica_id not in exclude and r.is_up(now)
        ]
        candidates = [
            r for r in healthy if r.breaker is None or r.breaker.allow(now)
        ]
        if len(candidates) < len(healthy):
            self.res_stats.breaker_skips += len(healthy) - len(candidates)
        if not candidates:
            candidates = healthy  # availability beats the breakers
        best: Replica | None = None
        for replica in candidates:
            if best is None or replica.served_queries < best.served_queries:
                best = replica
        if best is None:
            raise ReplicaUnavailable(
                f"shard {self.shard_id}: every replica is marked down"
            )
        return best

    # ----- serving ------------------------------------------------------
    @property
    def _degrade(self) -> bool:
        return self.resilience is not None and self.resilience.degrade

    def _record_wire(self, sender: str, receiver: str, num_bytes: int) -> None:
        """Meter one message, retransmitting on injected link faults.

        Without a resilience policy the meter's fault hook (if any)
        raises straight through — the unprotected stack's behavior.
        With one, each lost/corrupt payload is retransmitted after a
        backoff (every send is charged: real retransmits pay the wire
        again); exhaustion raises :class:`~repro.errors.
        ReplicaUnavailable` chained to the last wire fault.
        """
        policy = self.resilience
        if policy is None:
            self.meter.record(sender, receiver, num_bytes)
            return
        last_error: TransientFault | None = None
        for attempt in range(policy.max_attempts):
            try:
                self.meter.record(sender, receiver, num_bytes)
                return
            except TransientFault as exc:
                last_error = exc
                self.res_stats.retries += 1
                charge_wait(
                    self.clock,
                    policy.backoff(attempt, self.shard_id),
                    self.res_stats,
                )
                continue
        raise ReplicaUnavailable(
            f"shard {self.shard_id}: link {sender}->{receiver} kept "
            f"failing after {policy.max_attempts} send(s)"
        ) from last_error

    def _submit_to(self, replica: Replica, unique: np.ndarray, *, sparse: bool) -> Any:
        """Submit the batch to one replica's worker, retrying once on a
        transient :class:`~repro.errors.WorkerDied`: the execution key
        re-registers afresh (on a process pool that lands round-robin on
        a *different* worker), so one flaky worker doesn't force a
        mark-down.  A second death propagates for escalation."""
        try:
            return replica.exec_submit(self.exec_backend, unique, sparse=sparse)
        except WorkerDied:
            self.res_stats.worker_retries += 1
            replica.reset_exec()
            return replica.exec_submit(self.exec_backend, unique, sparse=sparse)

    def _submit_compute(
        self, unique: np.ndarray, *, sparse: bool, exclude: Collection[int] = ()
    ) -> tuple[Replica, Any]:
        """Pick a replica and hand it the deduplicated batch.

        Returns ``(replica, future)`` where ``future`` is ``None`` when
        the batch will be served inline at finish time (no execution
        backend, or an engine without a worker-side layout).  A worker
        that died twice before accepting the batch (see
        :meth:`_submit_to`) marks its replica down and the next healthy
        sibling is picked; :meth:`pick_replica` raises
        :class:`~repro.errors.ReplicaUnavailable` once none remain.
        """
        while True:
            replica = self.pick_replica(exclude=exclude)
            try:
                future = self._submit_to(replica, unique, sparse=sparse)
            except WorkerDied:
                self.mark_down(replica.replica_id)
                continue
            return replica, future

    def _finish_compute(
        self, replica: Replica, future: Any, unique: np.ndarray, *, sparse: bool
    ) -> tuple[Any, Replica, float]:
        """Resolve one submitted batch; returns ``(result, serving
        replica, modeled extra latency)``.  Dispatches to the legacy
        failover path or the resilient path by policy."""
        if self.resilience is None:
            return self._finish_compute_basic(replica, future, unique, sparse=sparse)
        return self._finish_compute_resilient(replica, future, unique, sparse=sparse)

    def _finish_compute_basic(
        self, replica: Replica, future: Any, unique: np.ndarray, *, sparse: bool
    ) -> tuple[Any, Replica, float]:
        """Legacy failover: worker death retries once in place, then
        marks the replica down and resubmits to a sibling — the caller
        never observes a partial answer.  Injected link faults and
        straggler latency surface unhandled (no policy, no protection).
        Successful worker batches charge the worker's measured compute
        wall to the replica via
        :meth:`~repro.sharding.replica.Replica.note_served`.
        """
        retried: set[int] = set()
        while True:
            try:
                delay = replica.probe_faults(self._now())
                if future is None:
                    if sparse:
                        result, _ = replica.query_many_sparse(
                            unique, collect_stats=False
                        )
                    else:
                        result, _ = replica.query_many(
                            unique, collect_stats=False
                        )
                    return result, replica, delay
                result, wall = future.result()
            except WorkerDied:
                if replica.replica_id not in retried:
                    # Transient death: retry once on the same replica
                    # before escalating to mark_down failover.
                    retried.add(replica.replica_id)
                    self.res_stats.worker_retries += 1
                    replica.reset_exec()
                    try:
                        future = self._submit_to(replica, unique, sparse=sparse)
                        continue
                    except WorkerDied:
                        pass
                self.mark_down(replica.replica_id)
                replica, future = self._submit_compute(unique, sparse=sparse)
                continue
            replica.note_served(int(unique.size), wall)
            return result, replica, delay

    def _resolve(
        self, replica: Replica, future: Any, unique: np.ndarray, *, sparse: bool
    ) -> Any:
        """Resolve one attempt's answer (inline serve or worker future),
        retrying a resolve-time worker death once in place."""
        if future is None:
            if sparse:
                result, _ = replica.query_many_sparse(unique, collect_stats=False)
            else:
                result, _ = replica.query_many(unique, collect_stats=False)
            return result
        try:
            result, wall = future.result()
        except WorkerDied:
            self.res_stats.worker_retries += 1
            replica.reset_exec()
            future = self._submit_to(replica, unique, sparse=sparse)
            if future is None:  # engine lost its worker-side layout
                return self._resolve(replica, None, unique, sparse=sparse)
            result, wall = future.result()
        replica.note_served(int(unique.size), wall)
        return result

    def _note_failure(self, replica: Replica, now: float) -> None:
        if replica.breaker is not None and replica.breaker.record_failure(now):
            self.res_stats.breaker_opens += 1

    def _fail_and_rotate(
        self,
        replica: Replica,
        exc: Exception,
        unique: np.ndarray,
        *,
        sparse: bool,
        attempt: int,
        tried: set[int],
    ) -> tuple[Replica, Any]:
        """Account one failed attempt, back off, resubmit elsewhere.

        The failed replica feeds its breaker and joins ``tried`` so the
        next pick prefers an untried sibling — it is *not* marked down:
        transient faults pass, and a replica that keeps failing is
        isolated by its breaker opening, which unlike a mark-down heals
        on its own after the cool-off.  When every candidate was tried
        the exclusion resets — a second lap beats giving up early.
        """
        del exc  # kept in the signature for the failure taxonomy
        self._note_failure(replica, self._now())
        tried.add(replica.replica_id)
        assert self.resilience is not None
        charge_wait(
            self.clock,
            self.resilience.backoff(attempt, self.shard_id),
            self.res_stats,
        )
        try:
            return self._submit_compute(unique, sparse=sparse, exclude=tried)
        except ReplicaUnavailable:
            tried.clear()
            return self._submit_compute(unique, sparse=sparse)

    def _try_hedge(
        self,
        unique: np.ndarray,
        *,
        sparse: bool,
        primary: Replica,
        primary_delay: float,
    ) -> tuple[Replica, Any, float] | None:
        """Race a sibling against a slow primary (tail-latency hedging).

        The hedge launches ``hedge_after_seconds`` into the primary's
        wait, so its effective latency carries that head start.  Returns
        the winning ``(replica, future, effective_delay)``, or ``None``
        when no sibling can serve or the primary still wins — both
        attempts are charged either way; the stats show the overhead.
        """
        policy = self.resilience
        assert policy is not None and policy.hedge_after_seconds is not None
        stats = self.res_stats
        try:
            sibling = self.pick_replica(exclude={primary.replica_id})
        except ReplicaUnavailable:
            return None
        stats.hedges += 1
        stats.attempts += 1
        try:
            sibling_delay = sibling.probe_faults(self._now())
            effective = policy.hedge_after_seconds + sibling_delay
            if effective >= primary_delay:
                return None  # the primary still wins; the hedge was waste
            future = self._submit_to(sibling, unique, sparse=sparse)
        except TransientFault:
            return None  # the hedge failed; the primary attempt stands
        stats.hedge_wins += 1
        return sibling, future, effective

    def _finish_compute_resilient(
        self, replica: Replica, future: Any, unique: np.ndarray, *, sparse: bool
    ) -> tuple[Any, Replica, float]:
        """Bounded-retry resolve: probe → hedge → deadline → serve.

        Each attempt first probes the injected fault hook (point faults
        raise, stragglers report latency), hedges to a sibling when the
        primary is slower than ``hedge_after_seconds``, abandons the
        attempt past ``timeout_seconds``, then serves.  Transient
        failures rotate to a sibling after a jittered backoff charged to
        the clock.  On exhaustion: if *every* failure was a missed
        deadline the answer is served late (replicas are slow, not gone
        — an exact answer late beats shedding it, counted in
        ``deadline_overruns``); otherwise
        :class:`~repro.errors.ReplicaUnavailable` is raised chained to
        the last failure.
        """
        policy = self.resilience
        assert policy is not None
        stats = self.res_stats
        last_error: Exception | None = None
        only_slow = True
        tried: set[int] = set()
        for attempt in range(policy.max_attempts):
            stats.attempts += 1
            if attempt:
                stats.retries += 1
            try:
                delay = replica.probe_faults(self._now())
                if (
                    policy.hedge_after_seconds is not None
                    and delay > policy.hedge_after_seconds
                ):
                    hedge = self._try_hedge(
                        unique,
                        sparse=sparse,
                        primary=replica,
                        primary_delay=delay,
                    )
                    if hedge is not None:
                        replica, future, delay = hedge
                if (
                    policy.timeout_seconds is not None
                    and delay > policy.timeout_seconds
                ):
                    stats.deadline_exceeded += 1
                    raise DeadlineExceeded(
                        f"shard {self.shard_id}: modeled attempt latency "
                        f"{delay:.4f}s exceeds the per-attempt deadline "
                        f"of {policy.timeout_seconds:.4f}s"
                    )
                result = self._resolve(replica, future, unique, sparse=sparse)
            except (TransientFault, DeadlineExceeded) as exc:
                last_error = exc
                if not isinstance(exc, DeadlineExceeded):
                    only_slow = False
                replica, future = self._fail_and_rotate(
                    replica, exc, unique, sparse=sparse, attempt=attempt,
                    tried=tried,
                )
                continue
            if replica.breaker is not None:
                replica.breaker.record_success()
            return result, replica, delay
        if only_slow and last_error is not None:
            # Every failure was a deadline: the fleet is slow, not gone.
            stats.deadline_overruns += 1
            replica, future = self._submit_compute(unique, sparse=sparse)
            return self._finish_compute_basic(
                replica, future, unique, sparse=sparse
            )
        raise ReplicaUnavailable(
            f"shard {self.shard_id}: gave up after {policy.max_attempts} "
            f"attempt(s)"
        ) from last_error

    def _plan(self, nodes: np.ndarray, *, sparse: bool) -> _PendingBatch:
        """Submit half of one batch: cache scan, then replica hand-off.

        Cache hits are resolved immediately (dense path densifies sparse
        entries on read, sparse path sparsifies dense entries — same
        values either way); the deduplicated misses are submitted via
        :meth:`_submit_compute`.  Nodes under a mid-rollout hold bypass
        the cache in both directions.
        """
        plan = _PendingBatch()
        plan.nodes = nodes
        plan.sparse = sparse
        plan.out = None if sparse else np.empty((nodes.size, self.num_nodes))
        plan.row_vecs = [None] * nodes.size if sparse else None
        plan.infos = [None] * nodes.size
        held = self._held if self._held is not None else ()
        miss_rows: list[int] = []
        if self.cache is not None:
            for i, u in enumerate(nodes.tolist()):
                hit = None if u in held else self.cache.get(u)
                if hit is None:
                    miss_rows.append(i)
                elif sparse:
                    plan.row_vecs[i] = (
                        hit
                        if isinstance(hit, SparseVec)
                        else SparseVec.from_dense(hit)
                    )
                    plan.infos[i] = RouteInfo(self.shard_id, -1, True, self.epoch)
                else:
                    if isinstance(hit, SparseVec):
                        plan.out[i] = hit.to_dense(self.num_nodes)
                    else:
                        plan.out[i] = hit
                    plan.infos[i] = RouteInfo(self.shard_id, -1, True, self.epoch)
        else:
            miss_rows = list(range(nodes.size))
        plan.miss_rows = miss_rows
        plan.failed = False
        plan.unique = plan.inverse = None
        plan.replica = plan.future = None
        if miss_rows:
            rows = np.asarray(miss_rows, dtype=np.int64)
            plan.unique, plan.inverse = np.unique(
                nodes[rows], return_inverse=True
            )
            try:
                plan.replica, plan.future = self._submit_compute(
                    plan.unique, sparse=sparse
                )
            except ReplicaUnavailable:
                if not self._degrade:
                    raise
                plan.failed = True  # finish serves degraded/shed rows
        return plan

    def _plan_lost(self, nodes: np.ndarray, *, sparse: bool) -> _PendingBatch:
        """A batch whose request payload never reached the shard: no
        cache scan, no compute — every row sheds at finish time."""
        plan = _PendingBatch()
        plan.nodes = nodes
        plan.sparse = sparse
        plan.out = None if sparse else np.empty((nodes.size, self.num_nodes))
        plan.row_vecs = [None] * nodes.size if sparse else None
        plan.infos = [None] * nodes.size
        plan.miss_rows = []
        plan.unique = plan.inverse = None
        plan.replica = plan.future = None
        plan.failed = True
        return plan

    def _finish(self, plan: _PendingBatch) -> tuple[Any, ...]:
        """Finish half of one batch: resolve, scatter, fill the cache.

        Rows are epoch-tagged: cache hits carry the shard's completed
        epoch, computed rows the serving replica's.  The sparse return
        is one CSR matrix whose ``toarray()`` equals the dense path's
        result exactly.
        """
        if plan.failed:
            return self._finish_degraded(plan)
        if plan.miss_rows:
            try:
                result, replica, delay = self._finish_compute(
                    plan.replica, plan.future, plan.unique, sparse=plan.sparse
                )
            except ReplicaUnavailable:
                if not self._degrade:
                    raise
                return self._finish_degraded(plan)
            held = self._held if self._held is not None else ()
            info = RouteInfo(
                self.shard_id,
                replica.replica_id,
                False,
                replica.epoch,
                latency_seconds=delay,
            )
            if plan.sparse:
                unique_vecs = [
                    row_sparsevec(result, j) for j in range(plan.unique.size)
                ]
                for pos, i in enumerate(plan.miss_rows):
                    plan.row_vecs[i] = unique_vecs[plan.inverse[pos]]
                    plan.infos[i] = info
                if self.cache is not None:
                    for j, u in enumerate(plan.unique.tolist()):
                        if u in held:
                            continue
                        self.cache.put(u, unique_vecs[j])
            else:
                rows = np.asarray(plan.miss_rows, dtype=np.int64)
                plan.out[rows] = result[plan.inverse]
                for i in plan.miss_rows:
                    plan.infos[i] = info
                if self.cache is not None:
                    for j, u in enumerate(plan.unique.tolist()):
                        if u in held:
                            continue
                        row = result[j].copy()
                        row.flags.writeable = False
                        self.cache.put(u, row)
        self.queries += int(plan.nodes.size)
        if plan.sparse:
            return rows_matrix(plan.row_vecs, self.num_nodes), plan.infos
        return plan.out, plan.infos

    def _finish_degraded(self, plan: _PendingBatch) -> tuple[Any, ...]:
        """Graceful degradation: failover exhausted with ``degrade`` on.

        Rows the cache already answered are kept and explicitly marked
        ``"degraded"`` — the values are exact (the cache only holds
        exact rows) but the dead partition could not confirm their
        freshness.  Rows with no cached answer are *shed*: zeros with
        ``status="shed"``, never an invented score.  The caller decides
        what a shed row means (the service surfaces it as an error-
        carrying ticket).
        """
        stats = self.res_stats
        for i in range(int(plan.nodes.size)):
            info = plan.infos[i]
            if info is not None:
                plan.infos[i] = RouteInfo(
                    info.shard,
                    info.replica,
                    info.cached,
                    info.epoch,
                    status="degraded",
                )
                stats.degraded_rows += 1
            else:
                plan.infos[i] = RouteInfo(
                    self.shard_id, -1, False, self.epoch, status="shed"
                )
                if plan.sparse:
                    plan.row_vecs[i] = SparseVec.empty()
                else:
                    plan.out[i] = 0.0
                stats.shed_rows += 1
        self.queries += int(plan.nodes.size)
        if plan.sparse:
            return rows_matrix(plan.row_vecs, self.num_nodes), plan.infos
        return plan.out, plan.infos

    def _shed_response(
        self, plan: _PendingBatch, infos: list[RouteInfo]
    ) -> tuple[Any, list[RouteInfo]]:
        """The response payload was lost for good: the router never saw
        these rows, so the whole batch sheds — computed work included."""
        stats = self.res_stats
        new_infos: list[RouteInfo] = []
        for info in infos:
            if info.status == "shed":
                new_infos.append(info)
                continue
            stats.shed_rows += 1
            new_infos.append(
                RouteInfo(self.shard_id, -1, False, self.epoch, status="shed")
            )
        n = int(plan.nodes.size)
        if plan.sparse:
            return rows_matrix([None] * n, self.num_nodes), new_infos
        return np.zeros((n, self.num_nodes)), new_infos

    def _serve_dense(self, nodes: np.ndarray) -> tuple[np.ndarray, list[Any]]:
        """Dense rows for ``nodes`` via cache + chosen replica (unmetered)."""
        return self._finish(self._plan(nodes, sparse=False))

    def _serve_sparse(self, nodes: np.ndarray) -> tuple[Any, ...]:
        """Sparse rows for ``nodes`` via cache + chosen replica (unmetered)."""
        return self._finish(self._plan(nodes, sparse=True))

    def query_many_submit(
        self, nodes: Sequence[int] | np.ndarray
    ) -> _PendingBatch:
        """Start one routed dense batch: meter the request leg, scan the
        cache and submit the misses; resolve with
        :meth:`query_many_finish`.  The router submits to every shard
        before finishing any, so shard workers overlap."""
        nodes = validate_batch(nodes, self.num_nodes)
        try:
            self._record_wire(
                "router",
                f"shard-{self.shard_id}",
                NODE_ID_WIRE_BYTES * nodes.size,
            )
        except ReplicaUnavailable:
            if not self._degrade:
                raise
            return self._plan_lost(nodes, sparse=False)
        return self._plan(nodes, sparse=False)

    def query_many_finish(
        self, plan: _PendingBatch
    ) -> tuple[np.ndarray, list[RouteInfo]]:
        """Finish a batch from :meth:`query_many_submit`, metering the
        dense ``8n``-byte response rows."""
        out, infos = self._finish(plan)
        self.batches += 1
        try:
            self._record_wire(f"shard-{self.shard_id}", "router", out.nbytes)
        except ReplicaUnavailable:
            if not self._degrade:
                raise
            out, infos = self._shed_response(plan, infos)
        return out, infos

    def query_many_sparse_submit(
        self, nodes: Sequence[int] | np.ndarray
    ) -> _PendingBatch:
        """Sparse twin of :meth:`query_many_submit`."""
        nodes = validate_batch(nodes, self.num_nodes)
        try:
            self._record_wire(
                "router",
                f"shard-{self.shard_id}",
                NODE_ID_WIRE_BYTES * nodes.size,
            )
        except ReplicaUnavailable:
            if not self._degrade:
                raise
            return self._plan_lost(nodes, sparse=True)
        return self._plan(nodes, sparse=True)

    def query_many_sparse_finish(self, plan: _PendingBatch) -> tuple[Any, ...]:
        """Finish a batch from :meth:`query_many_sparse_submit`, metering
        each response row at its sparse wire size (``16 + 12·nnz``
        bytes) — on pruned indexes a fraction of the dense ``8n``-byte
        rows, which is the bandwidth win of the sparse pipeline."""
        out, infos = self._finish(plan)
        self.batches += 1
        try:
            self._record_wire(
                f"shard-{self.shard_id}",
                "router",
                WIRE_HEADER_BYTES * plan.nodes.size + WIRE_ENTRY_BYTES * out.nnz,
            )
        except ReplicaUnavailable:
            if not self._degrade:
                raise
            out, infos = self._shed_response(plan, infos)
        return out, infos

    def query_many(
        self, nodes: Sequence[int] | np.ndarray
    ) -> tuple[np.ndarray, list[RouteInfo]]:
        """Serve one routed batch of dense PPV rows, metering the wire.

        Request: ``8`` bytes per node id; response: one dense ``8n``-byte
        row per query — what a real router↔shard link would carry.
        """
        return self.query_many_finish(self.query_many_submit(nodes))

    def query_many_sparse(self, nodes: Sequence[int] | np.ndarray) -> tuple[Any, ...]:
        """Serve one routed batch as sparse CSR rows, metering the wire.

        Request: ``8`` bytes per node id; response: one *sparse* row per
        query at its wire size (``16 + 12·nnz`` bytes).
        """
        return self.query_many_sparse_finish(self.query_many_sparse_submit(nodes))

    def query_many_topk(
        self,
        nodes: Sequence[int] | np.ndarray,
        k: int,
        *,
        batch: int = DEFAULT_BATCH,
        threshold: float | None = None,
        sparse: bool = False,
    ) -> tuple[np.ndarray, np.ndarray, list[RouteInfo]]:
        """Shard-side top-k: rows reduced before they hit the wire.

        Only the ``(rows, k)`` ids/scores ship back to the router (16
        bytes per entry), never the rows — the whole point of pushing
        the k-cut (and the ``threshold`` score cut) to the shard.  With
        ``sparse=True`` the rows are served sparse and reduced by the
        exact sparse top-k, so not even a ``(batch, n)`` dense chunk
        exists shard-side; ids and scores are identical either way.
        """
        nodes = validate_batch(nodes, self.num_nodes)
        try:
            self._record_wire(
                "router",
                f"shard-{self.shard_id}",
                NODE_ID_WIRE_BYTES * nodes.size,
            )
        except ReplicaUnavailable:
            if not self._degrade:
                raise
            self.batches += 1
            return self._shed_topk(nodes, k, count_queries=True)
        serve = self._serve_sparse if sparse else self._serve_dense
        ids, scores, infos = topk_in_batches(
            serve, nodes, k, self.num_nodes, batch, threshold,
            kernels=self.kernels,
        )
        self.batches += 1
        try:
            self._record_wire(
                f"shard-{self.shard_id}",
                "router",
                TOPK_ENTRY_WIRE_BYTES * ids.size,
            )
        except ReplicaUnavailable:
            if not self._degrade:
                raise
            return self._shed_topk(nodes, k)
        return ids, scores, infos

    def _shed_topk(
        self, nodes: np.ndarray, k: int, *, count_queries: bool = False
    ) -> tuple[np.ndarray, np.ndarray, list[RouteInfo]]:
        """Shed one top-k batch whose request or response was lost for
        good: zero ids/scores, every row explicitly ``status="shed"``.
        ``count_queries`` is set on the request-leg loss, where the rows
        never reached the serving path that normally counts them."""
        k_eff = min(int(k), self.num_nodes)
        self.res_stats.shed_rows += int(nodes.size)
        if count_queries:
            self.queries += int(nodes.size)
        infos = [
            RouteInfo(self.shard_id, -1, False, self.epoch, status="shed")
            for _ in range(int(nodes.size))
        ]
        return (
            np.zeros((nodes.size, k_eff), dtype=np.int64),
            np.zeros((nodes.size, k_eff)),
            infos,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Shard {self.shard_id}: {len(self.replicas)} replica(s), "
            f"{self.queries} queries>"
        )
