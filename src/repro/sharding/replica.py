"""One replica of a shard: a query backend plus health and load state.

A replica wraps any servable engine (an index family, a distributed
runtime, or an existing :class:`~repro.serving.adapters.QueryBackend`)
behind the uniform backend interface and adds what a router needs to
balance and fail over: cumulative load counters and a health flag with
optional *timed* recovery.  Health transitions are explicit (``mark_down``
/ ``mark_up``) or clock-driven (``mark_down(until=t)``), never inferred
from exceptions, so failure scenarios replay deterministically under a
:class:`~repro.serving.service.SimulatedClock`.

In the simulation several replicas may share one underlying engine object
(replicating a read-only index costs nothing in-process); in a real
deployment each replica would be a separate process holding its own copy
of the partition's precomputed vectors.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.core.updates import EdgeUpdate, UpdateReceipt
from repro.exec.states import engine_builder
from repro.serving.adapters import MutableBackend, as_backend, as_mutable_backend

if TYPE_CHECKING:
    from repro.exec.backend import ExecutionBackend
    from repro.faults.injector import ReplicaProbe
    from repro.sharding.resilience import CircuitBreaker

__all__ = ["Replica"]


class Replica:
    """A health-tracked query backend inside a shard's replica group."""

    def __init__(self, engine: Any, replica_id: int) -> None:
        self.backend = as_backend(engine)
        self.replica_id = int(replica_id)
        self.served_queries = 0
        self.served_batches = 0
        self.busy_seconds = 0.0
        self._down = False
        self._down_until: float | None = None
        # Fault-injection seam: a FaultInjector installs a probe here;
        # the shard consults it before every serve attempt.  None (the
        # default) costs one attribute read on the serving path.
        self.fault_hook: ReplicaProbe | None = None
        # Per-replica circuit breaker, installed by the owning shard
        # when the router runs with a resilience policy.
        self.breaker: CircuitBreaker | None = None
        # Worker-side execution state, per (execution backend, engine
        # epoch): None = not probed, False = engine has no shared-memory
        # layout (serve inline), a key = registered with that backend.
        self._exec_key = None
        self._exec_backend = None

    @property
    def num_nodes(self) -> int:
        return self.backend.num_nodes

    @property
    def epoch(self) -> int:
        """Graph version this replica currently serves."""
        return int(getattr(self.backend, "epoch", 0))

    # ----- updates ------------------------------------------------------
    def apply_update(
        self, update: EdgeUpdate, shared: dict[Any, Any] | None = None
    ) -> UpdateReceipt:
        """Apply one live edge update to this replica's backend.

        The backend is upgraded to a
        :class:`~repro.serving.adapters.MutableBackend` on first use;
        ``shared`` memoizes the index rebuild by engine identity so
        replicas sharing one engine object (the in-process default)
        recompute it once and flip together.
        """
        if not callable(getattr(self.backend, "apply_update", None)):
            self.backend = as_mutable_backend(self.backend)
        self._drop_exec()
        if isinstance(self.backend, MutableBackend):
            return self.backend.apply_update(update, shared=shared)
        return self.backend.apply_update(update)

    # ----- health -------------------------------------------------------
    def mark_down(self, *, until: float | None = None) -> None:
        """Take the replica out of rotation, optionally only until
        clock time ``until`` (timed recovery)."""
        self._down = True
        self._down_until = None if until is None else float(until)

    def mark_up(self) -> None:
        self._down = False
        self._down_until = None

    def is_up(self, now: float) -> bool:
        """Health at clock time ``now``; a timed outage auto-recovers."""
        if self._down and self._down_until is not None and now >= self._down_until:
            self.mark_up()
        return not self._down

    # ----- worker-side execution ---------------------------------------
    def exec_submit(
        self, backend: ExecutionBackend | None, nodes: np.ndarray, *, sparse: bool
    ) -> Any:
        """Submit one batch to the execution backend, or ``None`` to
        serve inline.

        ``None`` means no backend was given or the engine has no
        worker-side layout (see
        :func:`~repro.exec.states.engine_builder`); otherwise returns a
        future resolving to ``(matrix, wall_seconds)``.  The engine's
        worker state registers lazily on first submit and is dropped by
        :meth:`apply_update` — a new epoch means a new engine object,
        republished under a fresh key.
        """
        if backend is None:
            return None
        if self._exec_backend is not backend:
            self._drop_exec()
            self._exec_backend = backend
        if self._exec_key is None:
            builder = engine_builder(self.backend, backend)
            if builder is None:
                self._exec_key = False
            else:
                key = ("replica", id(self), self.epoch, id(backend))
                backend.register(key, builder)
                self._exec_key = key
        if self._exec_key is False:
            return None
        return backend.submit(
            self._exec_key, "sparse" if sparse else "dense", nodes
        )

    def note_served(self, num_queries: int, seconds: float) -> None:
        """Account a worker-served batch to this replica's load counters
        (the worker reports its measured compute wall)."""
        self.busy_seconds += float(seconds)
        self.served_queries += int(num_queries)
        self.served_batches += 1

    # ----- fault probes -------------------------------------------------
    def probe_faults(self, now: float) -> float:
        """Consult the injected fault hook before a serve attempt.

        Raises the scheduled fault when one is due (``WorkerDied``, a
        link fault), else returns the injected straggler latency at
        clock time ``now`` — charged to ``busy_seconds`` so stragglers
        show up in the shard makespan like real slow compute.  Without
        a hook this is a no-op returning 0.0.
        """
        if self.fault_hook is None:
            return 0.0
        self.fault_hook.before_serve(now)
        delay = float(self.fault_hook.latency(now))
        if delay > 0.0:
            self.busy_seconds += delay
        return delay

    def reset_exec(self) -> None:
        """Drop worker-side execution state so the next submit registers
        afresh — the transient-``WorkerDied`` retry path: with a process
        pool the key re-registers round-robin on a *different* worker,
        so one flaky worker doesn't permanently drain this replica."""
        self._drop_exec()

    def _drop_exec(self) -> None:
        if self._exec_key not in (None, False) and self._exec_backend is not None:
            self._exec_backend.unregister(self._exec_key)
        self._exec_key = None
        self._exec_backend = None

    # ----- serving ------------------------------------------------------
    def query_many(
        self, nodes: np.ndarray, *, collect_stats: bool = True
    ) -> tuple[np.ndarray, list[Any]]:
        """Serve one batch, accounting load to this replica."""
        t0 = time.perf_counter()
        out, meta = self.backend.query_many(nodes, collect_stats=collect_stats)
        self.busy_seconds += time.perf_counter() - t0
        self.served_queries += int(np.asarray(nodes).size)
        self.served_batches += 1
        return out, meta

    def query_many_sparse(
        self, nodes: np.ndarray, *, collect_stats: bool = True
    ) -> tuple[Any, ...]:
        """Serve one batch as sparse CSR rows, accounting load.

        Exact: ``toarray()`` equals the dense :meth:`query_many` result
        (the adapter sparsifies dense-only engines transparently).
        """
        t0 = time.perf_counter()
        out, meta = self.backend.query_many_sparse(
            nodes, collect_stats=collect_stats
        )
        self.busy_seconds += time.perf_counter() - t0
        self.served_queries += int(np.asarray(nodes).size)
        self.served_batches += 1
        return out, meta

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "down" if self._down else "up"
        return f"<Replica {self.replica_id} ({state}) over {self.backend!r}>"
