"""Staggered update rollout: flip one replica per shard per wave.

An immediate :meth:`~repro.sharding.router.ShardRouter.apply_update`
updates every replica of every shard at once — correct, but each shard
briefly has *all* of its capacity busy installing the update.  A
:class:`StaggeredRollout` spreads the same update over waves: wave ``i``
applies it to replica ``i`` of every shard that has one and marks that
replica down for ``update_seconds`` of clock time, so its siblings keep
serving their current epoch and the group never stops answering.

The driver interleaves queries with :meth:`StaggeredRollout.step` calls
(advancing the shared :class:`~repro.serving.service.SimulatedClock`
between waves); routing away from the mid-update replica is the shard's
ordinary deterministic failover, so a replay is byte-identical run to
run.  Mid-rollout a shard may serve *both* epochs — every answer's
:class:`~repro.sharding.shard.RouteInfo` carries the epoch of the
replica that produced it, and the per-shard caches drop the affected
rows at wave 0 and bypass those nodes until the rollout completes
(unaffected rows are identical at both epochs and keep serving from
cache).  The router's own epoch advances only when the last wave lands —
it counts *completed* versions.
"""

from __future__ import annotations

from typing import Any, TYPE_CHECKING

from repro.core.updates import EdgeUpdate, UpdateReceipt
from repro.errors import ShardingError

if TYPE_CHECKING:  # circular at runtime: the router drives rollouts
    from repro.sharding.router import ShardRouter

__all__ = ["StaggeredRollout"]


class StaggeredRollout:
    """Wave-by-wave fan-out of one edge update across a shard router."""

    def __init__(
        self, router: "ShardRouter", update: EdgeUpdate, update_seconds: float
    ) -> None:
        if update_seconds < 0:
            raise ShardingError(
                f"update_seconds must be >= 0, got {update_seconds}"
            )
        self.router = router
        self.update = update
        self.update_seconds = float(update_seconds)
        self.waves = max(len(shard.replicas) for shard in router.shards)
        self.wave = 0
        self.receipt: UpdateReceipt | None = None
        self._shared: dict[Any, Any] = {}

    @property
    def done(self) -> bool:
        return self.wave >= self.waves

    def step(self) -> UpdateReceipt:
        """Apply the update to the next wave's replicas (one per shard).

        Returns the update receipt stamped with the router's *completed*
        epoch — the old one until the final wave, the new one after it.
        """
        if self.done:
            raise ShardingError("rollout already complete")
        i = self.wave
        first = self.receipt is None
        for shard in self.router.shards:
            if i >= len(shard.replicas):
                continue
            receipt = shard.apply_update(self.update, self._shared, replica=i)
            if self.receipt is None:
                self.receipt = receipt
            if receipt.changed and self.update_seconds > 0:
                shard.mark_down(i, for_seconds=self.update_seconds)
        assert self.receipt is not None
        if not self.receipt.changed:
            # No-op update (duplicate insert / missing delete): nothing to
            # roll out, nothing to hold, no epoch to bump.
            self.wave = self.waves
            self.router._rollout = None
            return self.receipt.at_epoch(self.router.epoch)
        if first:
            for shard in self.router.shards:
                shard.begin_hold(self.receipt.affected_sources)
        self.wave += 1
        if self.done:
            for shard in self.router.shards:
                shard.release_hold()
            self.router.epoch += 1
            self.router._rollout = None
        return self.receipt.at_epoch(self.router.epoch)

    def run(self) -> UpdateReceipt:
        """Drive the remaining waves back to back (no serving between
        them) — the degenerate rollout used when nothing queries mid-way."""
        receipt = None
        while not self.done:
            receipt = self.step()
        return receipt

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<StaggeredRollout {self.update} wave {self.wave}/{self.waves}>"
        )
