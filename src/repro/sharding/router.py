"""The shard router: a ``QueryBackend`` that fans batches across shards.

This is the paper's one-round fan-out/merge protocol lifted to the
serving tier: where the distributed runtimes broadcast one node id and
sum one sparse vector per machine (Sections 3.1/4.4, Theorem 4), the
:class:`ShardRouter` splits a ``query_many`` batch across per-partition
shards — each a replica group able to answer its share outright — and
scatters the per-shard answers back into batch order.  Because the
router *is* a :class:`~repro.serving.adapters.QueryBackend`, it drops
behind :class:`~repro.serving.service.PPVService` unchanged: micro-batch
window in front, partition fan-out behind, per-shard caches in between.

Construction composes the repo's layers::

    part   = flat_partition(graph, 8)                  # partition/
    index  = build_gpa_index(graph, 8, partition=part)  # core/
    owner  = owner_map_from_partition(part, num_shards=4)
    router = ShardRouter([[index, index]] * 4, policy="owner",
                         owner_map=owner, cache_bytes=32 << 20)
    service = PPVService(router, window=0.005)          # serving/

A distributed runtime plugs in the same way — its ``owner_map()`` is the
affinity map and the runtime itself (or one deployment per shard) the
replica engine.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

import numpy as np
import scipy.sparse as sp

from repro.core.flat_index import DEFAULT_BATCH, validate_batch
from repro.core.updates import EdgeUpdate, UpdateReceipt
from repro.distributed.network import NetworkMeter
from repro.errors import QueryError, ShardingError
from repro.kernels.dispatch import KernelsLike
from repro.serving.adapters import QueryBackend
from repro.serving.cache import CacheStats, PPVCache
from repro.serving.service import SystemClock
from repro.sharding.resilience import ResilienceStats, RetryPolicy
from repro.sharding.rollout import StaggeredRollout
from repro.sharding.routing import RoutingPolicy, resolve_policy
from repro.sharding.shard import RouteInfo, Shard

if TYPE_CHECKING:
    from repro.exec.backend import ExecutionBackend
    from repro.faults.injector import FaultInjector

__all__ = ["ShardStats", "ShardRouter"]


@dataclass
class ShardStats:
    """Traffic report of one :class:`ShardRouter`, per shard.

    ``bytes_by_shard`` counts both legs of each router↔shard link;
    ``busy_seconds_by_shard`` sums replica compute per shard, so
    ``makespan_seconds`` (the slowest shard) is the simulated parallel
    wall time of the whole run — shards ship nothing to each other, so
    like the paper's runtime metric the fleet is as fast as its slowest
    member.
    """

    policy: str
    queries_by_shard: list[int]
    batches_by_shard: list[int]
    bytes_by_shard: list[int]
    busy_seconds_by_shard: list[float]
    cache: CacheStats | None
    resilience: ResilienceStats | None = None
    """Fault-handling counters (retries, hedges, degraded/shed rows) —
    always present on routers built by :class:`ShardRouter`, ``None``
    only for hand-built stats."""

    @property
    def num_shards(self) -> int:
        return len(self.queries_by_shard)

    @property
    def total_queries(self) -> int:
        return sum(self.queries_by_shard)

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes_by_shard)

    @property
    def load_imbalance(self) -> float:
        """max/mean of per-shard queries (1.0 = perfectly balanced)."""
        mean = self.total_queries / max(1, self.num_shards)
        return (max(self.queries_by_shard) / mean) if mean > 0 else 1.0

    @property
    def makespan_seconds(self) -> float:
        return max(self.busy_seconds_by_shard, default=0.0)

    @property
    def busy_total_seconds(self) -> float:
        return sum(self.busy_seconds_by_shard)


class ShardRouter(QueryBackend):
    """Fan ``query_many`` batches out to per-partition replica shards.

    ``shard_engines`` is one replica group per shard — a list of servable
    engines (or ready :class:`~repro.serving.adapters.QueryBackend` /
    :class:`~repro.sharding.replica.Replica` objects) per entry; a bare
    engine is a single-replica shard.  ``policy`` is ``"owner"`` (needs
    ``owner_map``), ``"round_robin"``, ``"least_loaded"`` or any
    :class:`~repro.sharding.routing.RoutingPolicy` instance.

    ``cache_bytes`` gives every shard its own
    :class:`~repro.serving.cache.PPVCache` (``cache_weight`` forwards
    the cost-aware eviction hook); per-shard traffic is metered through
    one shared :class:`~repro.distributed.network.NetworkMeter`.
    Answers are exact — byte-identical routing policies aside, every
    query is answered by a full replica of its shard, so the router
    matches an unsharded backend to 1e-12.
    """

    def __init__(
        self,
        shard_engines: list[Any],
        *,
        policy: RoutingPolicy | str = "round_robin",
        owner_map: np.ndarray | None = None,
        cache_bytes: int | None = None,
        cache_weight: Callable[..., float] | None = None,
        clock: Any = None,
        backend: ExecutionBackend | None = None,
        kernels: KernelsLike = None,
        resilience: RetryPolicy | None = None,
    ) -> None:
        if not shard_engines:
            raise ShardingError("need at least one shard")
        self.clock = clock if clock is not None else SystemClock()
        self.meter = NetworkMeter()
        # Resilience policy shared by every shard (None = legacy
        # failover only); one stats block reports the whole fleet's
        # retry/hedge/degradation overhead.  A FaultInjector attaches
        # itself here so batch entry points pump its schedule.
        self.resilience = resilience
        self.res_stats = ResilienceStats()
        self.fault_injector: FaultInjector | None = None
        # Execution seam, shared by every shard: with a process-pool
        # backend the router's two-phase fan-out (submit to all shards,
        # then finish in order) runs shard replicas concurrently in
        # worker processes; the default None serves inline as before.
        self.exec_backend = backend
        #: Kernel bundle / backend name every shard's top-k reduction
        #: dispatches to (``None`` = the process default) — one switch
        #: flips the whole fleet.
        self.kernels: KernelsLike = kernels
        self.shards: list[Shard] = []
        for sid, group in enumerate(shard_engines):
            if not isinstance(group, (list, tuple)):
                group = [group]
            cache = (
                PPVCache(cache_bytes, weight=cache_weight)
                if cache_bytes is not None
                else None
            )
            self.shards.append(
                Shard(
                    sid,
                    list(group),
                    cache=cache,
                    meter=self.meter,
                    clock=self.clock,
                    backend=backend,
                    kernels=kernels,
                    resilience=resilience,
                    res_stats=self.res_stats,
                )
            )
        sizes = {shard.num_nodes for shard in self.shards}
        if len(sizes) != 1:
            raise ShardingError(
                f"shards disagree on num_nodes: {sorted(sizes)}"
            )
        super().__init__(engine=None, num_nodes=sizes.pop())
        self.policy = resolve_policy(policy, owner_map)
        self.batches = 0
        self.epoch = 0
        self._rollout: StaggeredRollout | None = None

    # ----- live updates -------------------------------------------------
    @property
    def rollout_in_progress(self) -> bool:
        """Whether a staggered rollout is mid-flight (answers may mix
        epochs; frontends must not cache epoch-untagged rows)."""
        return self._rollout is not None and not self._rollout.done

    def apply_update(self, update: EdgeUpdate) -> UpdateReceipt:
        """Fan one edge update to every replica of every shard at once.

        Shared engine objects are updated a single time (replicas rebind
        to the successor index), per-shard caches drop exactly the
        affected rows, update messages are metered on each router↔shard
        link, and the router epoch bumps when anything changed.  Use
        :meth:`begin_rollout` instead to keep every shard serving while
        replicas flip one wave at a time.
        """
        if self._rollout is not None and not self._rollout.done:
            raise ShardingError(
                "a staggered rollout is in progress — finish it before "
                "applying further updates"
            )
        shared: dict[Any, Any] = {}
        receipt: UpdateReceipt | None = None
        for shard in self.shards:
            receipt = shard.apply_update(update, shared)
        if receipt.changed:
            self.epoch += 1
        return receipt.at_epoch(self.epoch)

    def begin_rollout(
        self, update: EdgeUpdate, *, update_seconds: float = 0.0
    ) -> StaggeredRollout:
        """Start a staggered rollout of ``update``: each
        :meth:`~repro.sharding.rollout.StaggeredRollout.step` flips one
        replica per shard and routes traffic away from it for
        ``update_seconds`` of clock time, so the group keeps serving
        (shards need ≥ 2 replicas for that).  Queries interleaved between
        waves are answered at the epoch of whichever replica serves them
        — see :class:`~repro.sharding.shard.RouteInfo`."""
        if self._rollout is not None and not self._rollout.done:
            raise ShardingError("a staggered rollout is already in progress")
        self._rollout = StaggeredRollout(self, update, update_seconds)
        return self._rollout

    # ----- failover convenience ----------------------------------------
    def mark_down(
        self, shard: int, replica: int, *, for_seconds: float | None = None
    ) -> None:
        """Take one replica of one shard out of rotation."""
        self.shards[shard].mark_down(replica, for_seconds=for_seconds)

    def mark_up(self, shard: int, replica: int) -> None:
        self.shards[shard].mark_up(replica)

    # ----- QueryBackend interface --------------------------------------
    supports_sparse = True  # native sparse fan-out below

    def _pump_faults(self) -> None:
        """Fire any scheduled faults the clock has passed (no-op without
        an attached :class:`~repro.faults.injector.FaultInjector`)."""
        if self.fault_injector is not None:
            self.fault_injector.pump()

    def query_many(
        self,
        nodes: Sequence[int] | np.ndarray,
        *,
        collect_stats: bool = True,
    ) -> tuple[np.ndarray, list[RouteInfo]]:
        """Route, fan out, merge: dense ``(len(nodes), n)`` rows in batch
        order plus one :class:`~repro.sharding.shard.RouteInfo` each.

        ``collect_stats`` exists for interface uniformity with the other
        backends: shards already skip engine-level stats on their
        replicas (the metadata is discarded there), and the
        :class:`RouteInfo` list — the router's own cheap metadata, which
        carries the per-row epoch — is always returned.
        """
        del collect_stats  # see docstring
        nodes = validate_batch(nodes, self.num_nodes)
        out = np.empty((nodes.size, self.num_nodes))
        infos: list[RouteInfo | None] = [None] * nodes.size
        if nodes.size == 0:
            return out, []
        self._pump_faults()
        assigned = self.policy.assign(nodes, self)
        self.batches += 1
        # Two-phase fan-out: submit every shard's share before finishing
        # any, so a process-pool backend computes the shards in parallel.
        sids = np.unique(assigned).tolist()
        plans = []
        for sid in sids:
            rows = np.nonzero(assigned == sid)[0]
            plans.append((sid, rows, self.shards[sid].query_many_submit(nodes[rows])))
        for sid, rows, plan in plans:
            dense, shard_infos = self.shards[sid].query_many_finish(plan)
            out[rows] = dense
            for r, info in zip(rows.tolist(), shard_infos):
                infos[r] = info
        return out, infos

    def query_many_sparse(
        self,
        nodes: Sequence[int] | np.ndarray,
        *,
        collect_stats: bool = True,
    ) -> tuple[Any, ...]:
        """Route, fan out, merge — sparse: CSR ``(len(nodes), n)`` rows
        in batch order plus one :class:`RouteInfo` each.

        Each shard serves its share as sparse rows over the metered link
        (``16 + 12·nnz`` bytes per row instead of dense ``8n``), shard
        caches hold :class:`~repro.core.sparsevec.SparseVec` entries at
        their true-nnz cost, and the merged matrix's ``toarray()`` equals
        :meth:`query_many` exactly.
        """
        del collect_stats  # see query_many
        nodes = validate_batch(nodes, self.num_nodes)
        if nodes.size == 0:
            return sp.csr_matrix((0, self.num_nodes)), []
        infos: list[RouteInfo | None] = [None] * nodes.size
        self._pump_faults()
        assigned = self.policy.assign(nodes, self)
        self.batches += 1
        parts: list[Any] = []
        positions: list[np.ndarray] = []
        # Two-phase fan-out, as in query_many: submit all, then finish
        # in shard order so the merge stays deterministic.
        plans = []
        for sid in np.unique(assigned).tolist():
            rows = np.nonzero(assigned == sid)[0]
            plans.append(
                (sid, rows, self.shards[sid].query_many_sparse_submit(nodes[rows]))
            )
        for sid, rows, plan in plans:
            mat, shard_infos = self.shards[sid].query_many_sparse_finish(plan)
            parts.append(mat)
            positions.append(rows)
            for r, info in zip(rows.tolist(), shard_infos):
                infos[r] = info
        stacked = parts[0] if len(parts) == 1 else sp.vstack(parts, format="csr")
        cat = np.concatenate(positions)
        inv = np.empty(nodes.size, dtype=np.int64)
        inv[cat] = np.arange(nodes.size)
        return stacked[inv], infos

    def query_many_topk(
        self,
        nodes: Sequence[int] | np.ndarray,
        k: int,
        *,
        batch: int = DEFAULT_BATCH,
        threshold: float | None = None,
        sparse: bool = False,
    ) -> tuple[np.ndarray, np.ndarray, list[RouteInfo]]:
        """Routed top-k: the k-cut (and ``threshold`` score cut) runs
        shard-side, so only ``(rows, k)`` ids/scores cross each link.
        ``sparse=True`` makes every shard serve and reduce its rows
        sparsely (identical ids/scores, no dense chunk shard-side)."""
        if k <= 0:
            raise QueryError("k must be positive")
        nodes = validate_batch(nodes, self.num_nodes)
        k_eff = min(k, self.num_nodes)
        ids = np.empty((nodes.size, k_eff), dtype=np.int64)
        scores = np.empty((nodes.size, k_eff))
        infos: list[RouteInfo | None] = [None] * nodes.size
        if nodes.size == 0:
            return ids, scores, []
        self._pump_faults()
        assigned = self.policy.assign(nodes, self)
        self.batches += 1
        for sid in np.unique(assigned).tolist():
            rows = np.nonzero(assigned == sid)[0]
            s_ids, s_scores, shard_infos = self.shards[sid].query_many_topk(
                nodes[rows], k, batch=batch, threshold=threshold, sparse=sparse
            )
            ids[rows] = s_ids
            scores[rows] = s_scores
            for r, info in zip(rows.tolist(), shard_infos):
                infos[r] = info
        return ids, scores, infos

    # ----- reporting ----------------------------------------------------
    def stats(self) -> ShardStats:
        """Per-shard traffic, compute makespan and aggregated cache stats."""
        bytes_by_shard = []
        for shard in self.shards:
            name = f"shard-{shard.shard_id}"
            bytes_by_shard.append(
                self.meter.by_link.get(("router", name), 0)
                + self.meter.by_link.get((name, "router"), 0)
            )
        cache = None
        if any(shard.cache is not None for shard in self.shards):
            cache = CacheStats()
            for shard in self.shards:
                if shard.cache is not None:
                    cache.hits += shard.cache.stats.hits
                    cache.misses += shard.cache.stats.misses
                    cache.evictions += shard.cache.stats.evictions
                    cache.inserts += shard.cache.stats.inserts
        return ShardStats(
            policy=self.policy.name,
            queries_by_shard=[shard.queries for shard in self.shards],
            batches_by_shard=[shard.batches for shard in self.shards],
            bytes_by_shard=bytes_by_shard,
            busy_seconds_by_shard=[
                sum(r.busy_seconds for r in shard.replicas)
                for shard in self.shards
            ],
            cache=cache,
            resilience=self.res_stats,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ShardRouter: {len(self.shards)} shard(s), "
            f"policy {self.policy.name!r}>"
        )
