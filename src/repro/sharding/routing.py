"""Routing policies: which shard answers which query of a batch.

A policy maps a validated batch of query node ids to shard indices.  All
three are deterministic (the failover tests replay byte-identical
traffic):

* :class:`OwnerAffinityPolicy` — a query goes to the shard owning its
  node's partition (from a :func:`~repro.partition.flat.flat_partition`
  assignment or a distributed runtime's ``owner_map()``); unowned nodes
  (hubs, which separate the parts and belong to none) fall back to a
  multiplicative hash.  Affinity keeps each node's repeats on one shard,
  so the per-shard caches see the full repeat fraction instead of
  ``1/num_shards`` of it.
* :class:`RoundRobinPolicy` — queries cycle through shards in arrival
  order, ignoring ownership: perfect load spread, zero cache affinity.
* :class:`LeastLoadedPolicy` — each query greedily picks the shard with
  the fewest served-plus-assigned queries (ties to the lowest shard id),
  balancing even under skewed streams.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ShardingError
from repro.partition.flat import FlatPartition

if TYPE_CHECKING:  # circular at runtime: router imports the policies
    from repro.sharding.router import ShardRouter

__all__ = [
    "RoutingPolicy",
    "OwnerAffinityPolicy",
    "RoundRobinPolicy",
    "LeastLoadedPolicy",
    "resolve_policy",
    "owner_map_from_partition",
]

_KNUTH_HASH = 2654435761  # multiplicative hash for ownerless node ids


class RoutingPolicy:
    """Maps each query of a batch to a shard index."""

    name = "base"

    def assign(self, nodes: np.ndarray, router: "ShardRouter") -> np.ndarray:
        """Shard index per query; ``router`` exposes shards and loads."""
        raise NotImplementedError


class OwnerAffinityPolicy(RoutingPolicy):
    """Partition-owner affinity with a hash fallback for unowned nodes.

    ``owner_map[u]`` is the partition/machine owning node ``u`` (``-1``
    for none); owners are folded onto shards modulo the shard count, so
    one shard may serve several partitions when there are fewer shards
    than parts.
    """

    name = "owner"

    def __init__(self, owner_map: np.ndarray) -> None:
        owner_map = np.asarray(owner_map, dtype=np.int64)
        if owner_map.ndim != 1:
            raise ShardingError("owner_map must be a 1-D node->owner array")
        self.owner_map = owner_map

    def assign(self, nodes: np.ndarray, router: "ShardRouter") -> np.ndarray:
        num_shards = len(router.shards)
        if self.owner_map.size != router.num_nodes:
            raise ShardingError(
                f"owner_map covers {self.owner_map.size} nodes, "
                f"router serves {router.num_nodes}"
            )
        owners = self.owner_map[nodes]
        shards = owners % num_shards
        orphans = owners < 0
        if np.any(orphans):
            hashed = (nodes[orphans].astype(np.uint64) * _KNUTH_HASH) % (1 << 32)
            shards[orphans] = (hashed % num_shards).astype(np.int64)
        return shards


class RoundRobinPolicy(RoutingPolicy):
    """Cycle through shards in arrival order (stateful across batches)."""

    name = "round_robin"

    def __init__(self) -> None:
        self._next = 0

    def assign(self, nodes: np.ndarray, router: "ShardRouter") -> np.ndarray:
        num_shards = len(router.shards)
        shards = (self._next + np.arange(nodes.size, dtype=np.int64)) % num_shards
        self._next = int((self._next + nodes.size) % num_shards)
        return shards


class LeastLoadedPolicy(RoutingPolicy):
    """Greedy least-outstanding-load assignment across replicas' shards.

    Load is the shard's cumulative served queries plus what this batch
    has already assigned to it — the synchronous stand-in for in-flight
    requests.  Ties go to the lowest shard id.
    """

    name = "least_loaded"

    def assign(self, nodes: np.ndarray, router: "ShardRouter") -> np.ndarray:
        loads = np.asarray(
            [shard.queries for shard in router.shards], dtype=np.int64
        )
        shards = np.empty(nodes.size, dtype=np.int64)
        for i in range(nodes.size):
            s = int(np.argmin(loads))  # argmin takes the first (lowest) tie
            shards[i] = s
            loads[s] += 1
        return shards


_POLICIES = {
    RoundRobinPolicy.name: RoundRobinPolicy,
    LeastLoadedPolicy.name: LeastLoadedPolicy,
}


def resolve_policy(
    policy: RoutingPolicy | str, owner_map: np.ndarray | None
) -> RoutingPolicy:
    """A policy instance from an instance, ``"owner"``, ``"round_robin"``
    or ``"least_loaded"`` (``"owner"`` requires ``owner_map``)."""
    if isinstance(policy, RoutingPolicy):
        return policy
    if policy == OwnerAffinityPolicy.name:
        if owner_map is None:
            raise ShardingError(
                "policy 'owner' needs an owner_map (see "
                "owner_map_from_partition or a runtime's owner_map())"
            )
        return OwnerAffinityPolicy(owner_map)
    try:
        return _POLICIES[policy]()
    except KeyError:
        known = ", ".join(sorted([*_POLICIES, OwnerAffinityPolicy.name]))
        raise ShardingError(
            f"unknown routing policy {policy!r} (known: {known})"
        ) from None


def owner_map_from_partition(
    partition: FlatPartition, num_shards: int | None = None
) -> np.ndarray:
    """Node→shard affinity from a flat GPA partition.

    Non-hub nodes map to their part (folded modulo ``num_shards`` when
    given); hubs — the separator, owned by no part — map to ``-1`` and
    are hashed by :class:`OwnerAffinityPolicy`.
    """
    owners = np.asarray(partition.labels, dtype=np.int64).copy()
    if num_shards is not None:
        if num_shards < 1:
            raise ShardingError(f"num_shards must be >= 1, got {num_shards}")
        owners %= num_shards
    owners[partition.hubs] = -1
    return owners
