"""Sharded query routing: fan ``PPVService`` batches out to replicas.

The paper's query protocol is one fan-out/merge round; this package is
that round at the serving tier.  A :class:`ShardRouter` — itself a
:class:`~repro.serving.adapters.QueryBackend`, so it drops behind
:class:`~repro.serving.service.PPVService` unchanged — owns a set of
:class:`Shard` replica groups, routes each query of a batch by a
pluggable :class:`~repro.sharding.routing.RoutingPolicy` (partition-owner
affinity, round-robin, least-loaded), merges per-shard answers back into
batch order, and meters every router↔shard byte.  Per-shard
:class:`~repro.serving.cache.PPVCache` instances, deterministic replica
failover (mark down / reroute / timed recovery under a
:class:`~repro.serving.service.SimulatedClock`) and a :class:`ShardStats`
report round out the subsystem.

Routers built with ``resilience=RetryPolicy(...)`` additionally get
bounded retries with deterministic-jitter backoff, per-attempt
deadlines, tail-latency hedging, per-replica circuit breakers and —
with ``degrade=True`` — graceful degradation (explicitly marked
``"degraded"``/``"shed"`` rows instead of errors when a whole partition
is unreachable).  See :mod:`repro.sharding.resilience` and the chaos
harness in :mod:`repro.faults`.
"""

from repro.sharding.replica import Replica
from repro.sharding.resilience import (
    CircuitBreaker,
    ResilienceStats,
    RetryPolicy,
    charge_wait,
)
from repro.sharding.rollout import StaggeredRollout
from repro.sharding.router import ShardRouter, ShardStats
from repro.sharding.routing import (
    LeastLoadedPolicy,
    OwnerAffinityPolicy,
    RoundRobinPolicy,
    RoutingPolicy,
    owner_map_from_partition,
)
from repro.sharding.shard import RouteInfo, Shard

__all__ = [
    "Replica",
    "Shard",
    "RouteInfo",
    "ShardRouter",
    "ShardStats",
    "StaggeredRollout",
    "RetryPolicy",
    "CircuitBreaker",
    "ResilienceStats",
    "charge_wait",
    "RoutingPolicy",
    "OwnerAffinityPolicy",
    "RoundRobinPolicy",
    "LeastLoadedPolicy",
    "owner_map_from_partition",
]
