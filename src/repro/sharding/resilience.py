"""Retry, timeout, hedging and circuit-breaking policy for the shard tier.

Real deployments lose machines and grow stragglers as a matter of
course; the serving tier's job is to keep every *answer* exact while the
fleet misbehaves underneath.  This module holds the policy objects the
:class:`~repro.sharding.shard.Shard` serving path consults when a
:class:`~repro.sharding.router.ShardRouter` is built with
``resilience=``:

* :class:`RetryPolicy` — bounded retries with exponential backoff and
  *deterministic* jitter (seeded ``random.Random`` keyed by attempt, so
  the same seed replays the same waits), a per-attempt deadline, an
  optional hedging delay, circuit-breaker thresholds, and the graceful-
  degradation switch;
* :class:`CircuitBreaker` — per-replica consecutive-failure breaker with
  clock-driven half-open probes (never wall-clock: the shard's injected
  clock decides when the cool-off elapsed);
* :class:`ResilienceStats` — one shared counter block per router, so the
  stats report shows exactly how much work fault handling added.

Every wait is *charged* to the injected clock via :func:`charge_wait`
rather than slept: under a
:class:`~repro.serving.service.SimulatedClock` time advances
deterministically (timed outages recover, fault schedules fire), and
under a real clock the wait is only accounted, never blocking the
serving thread.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any

from repro.errors import ShardingError

__all__ = [
    "RetryPolicy",
    "CircuitBreaker",
    "ResilienceStats",
    "charge_wait",
]


def charge_wait(clock: Any, seconds: float, stats: "ResilienceStats | None" = None) -> None:
    """Charge a backoff/hedge wait to the injected clock.

    A :class:`~repro.serving.service.SimulatedClock` is advanced (the
    wait *happens* in simulated time — timed recoveries and scheduled
    faults due within it fire); a real clock has no ``advance`` and the
    wait is only accounted on ``stats``.  Never calls ``time.sleep`` —
    RPR006's discipline: waits are charged, not slept.
    """
    if seconds <= 0.0:
        return
    advance = getattr(clock, "advance", None)
    if advance is not None:
        advance(seconds)
    if stats is not None:
        stats.backoff_seconds += float(seconds)


@dataclass
class ResilienceStats:
    """Fault-handling counters, shared by every shard of one router."""

    attempts: int = 0  # replica serve attempts, including retries/hedges
    retries: int = 0  # attempts beyond the first for a batch
    hedges: int = 0  # hedged (duplicate) attempts issued
    hedge_wins: int = 0  # hedges that beat the primary replica
    deadline_exceeded: int = 0  # attempts abandoned at the deadline
    deadline_overruns: int = 0  # answers served past deadline (last resort)
    breaker_opens: int = 0  # circuit-breaker open transitions
    breaker_skips: int = 0  # replica picks skipped on an open breaker
    worker_retries: int = 0  # transient WorkerDied retried in place
    degraded_rows: int = 0  # rows served stale from a shard cache
    shed_rows: int = 0  # rows shed (no replica, no stale row)
    backoff_seconds: float = 0.0  # total wait charged to the clock

    @property
    def extra_attempts(self) -> int:
        """Attempts beyond the minimum (the retry/hedge overhead)."""
        return self.retries + self.hedges


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-retry/timeout/hedging policy of one router.

    ``backoff(attempt)`` grows exponentially from ``backoff_seconds`` by
    ``backoff_multiplier`` up to ``max_backoff_seconds``, then adds
    deterministic jitter: a ``random.Random`` seeded from ``(seed,
    attempt, salt)`` scales the wait by up to ``jitter`` — the same seed
    replays the same schedule bit for bit, while distinct salts (e.g.
    shard ids) decorrelate the fleet so retries don't stampede in step.

    ``timeout_seconds`` is the per-attempt deadline on the *modeled*
    attempt latency; ``hedge_after_seconds`` issues a duplicate attempt
    on a sibling replica when the primary is slower than the threshold
    (tail-latency hedging — the faster answer wins, both are charged).
    ``degrade`` switches exhaustion from raising
    :class:`~repro.errors.ReplicaUnavailable` to explicitly-marked
    degraded/shed rows (see :class:`~repro.sharding.shard.Shard`).
    """

    max_attempts: int = 3
    backoff_seconds: float = 0.005
    backoff_multiplier: float = 2.0
    max_backoff_seconds: float = 0.25
    jitter: float = 0.1
    seed: int = 0
    timeout_seconds: float | None = None
    hedge_after_seconds: float | None = None
    breaker_failures: int = 5
    breaker_reset_seconds: float = 30.0
    degrade: bool = False

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ShardingError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_seconds < 0 or self.max_backoff_seconds < 0:
            raise ShardingError("backoff times must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ShardingError("backoff_multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ShardingError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ShardingError("timeout_seconds must be positive")
        if self.hedge_after_seconds is not None and self.hedge_after_seconds < 0:
            raise ShardingError("hedge_after_seconds must be >= 0")
        if self.breaker_failures < 1:
            raise ShardingError("breaker_failures must be >= 1")
        if self.breaker_reset_seconds < 0:
            raise ShardingError("breaker_reset_seconds must be >= 0")

    def backoff(self, attempt: int, salt: int = 0) -> float:
        """The wait before retry number ``attempt`` (0-based), jittered
        deterministically by ``(seed, attempt, salt)``."""
        base = min(
            self.backoff_seconds * self.backoff_multiplier ** max(0, attempt),
            self.max_backoff_seconds,
        )
        if self.jitter <= 0.0 or base <= 0.0:
            return base
        # One integer mixes (seed, attempt, salt) into the RNG seed —
        # same triple, same jitter, on every run.
        rng = random.Random(
            self.seed * 1_000_003 + int(attempt) * 1_009 + int(salt)
        )
        return base * (1.0 + self.jitter * rng.random())


class CircuitBreaker:
    """Per-replica consecutive-failure breaker with clock-time reset.

    Closed until ``failures_to_open`` consecutive failures, then open
    for ``reset_seconds`` of clock time; the first ``allow`` after the
    cool-off is a half-open probe — success closes the breaker, failure
    re-opens it for another full cool-off.  All transitions are driven
    by the caller's clock reads, so breaker behavior replays exactly
    under a :class:`~repro.serving.service.SimulatedClock`.
    """

    def __init__(self, failures_to_open: int, reset_seconds: float) -> None:
        if failures_to_open < 1:
            raise ShardingError("failures_to_open must be >= 1")
        if reset_seconds < 0:
            raise ShardingError("reset_seconds must be >= 0")
        self.failures_to_open = int(failures_to_open)
        self.reset_seconds = float(reset_seconds)
        self.failures = 0
        self.open_until: float | None = None
        self._probing = False

    @property
    def is_open(self) -> bool:
        return self.open_until is not None

    def allow(self, now: float) -> bool:
        """Whether an attempt may be sent through at clock time ``now``."""
        if self.open_until is None:
            return True
        if now >= self.open_until:
            self._probing = True  # half-open: one probe flies
            return True
        return False

    def record_success(self) -> None:
        self.failures = 0
        self.open_until = None
        self._probing = False

    def record_failure(self, now: float) -> bool:
        """Count one failure; returns True when this *opened* the breaker."""
        if self._probing:
            # Failed half-open probe: straight back to open.
            self._probing = False
            self.open_until = now + self.reset_seconds
            return True
        self.failures += 1
        if self.open_until is None and self.failures >= self.failures_to_open:
            self.open_until = now + self.reset_seconds
            return True
        return False
