"""Live graph updates through the full serving stack.

The acceptance contract of the dynamic pipeline: after any sequence of
edge updates applied through a runtime / ``ShardRouter`` / ``PPVService``,
every query answer matches a from-scratch rebuild *at the same epoch* to
1e-12 — on every routing policy, including mid-rollout while one replica
per shard is updating — and per-shard caches drop exactly the affected
rows, never the whole store.
"""

import numpy as np
import pytest

from repro.core import (
    EdgeUpdate,
    apply_edge_update,
    build_gpa_index,
    build_hgpa_index,
)
from repro.distributed import DistributedGPA, DistributedHGPA
from repro.errors import ServingError, ShardingError
from repro.serving import (
    PPVCache,
    PPVService,
    SimulatedClock,
    as_backend,
    as_mutable_backend,
)
from repro.sharding import ShardRouter, owner_map_from_partition

from test_updates import _deletable_edge, _missing_edge, upd_graph  # noqa: F401

ATOL = 1e-12
TOL = 1e-8  # solver tolerance; rebuild-vs-incremental identity is exact
POLICIES = ("owner", "round_robin", "least_loaded")


@pytest.fixture(scope="module")
def gpa_live(upd_graph):  # noqa: F811 - fixture reuse
    return build_gpa_index(upd_graph, 4, tol=TOL, seed=0)


@pytest.fixture(scope="module")
def hgpa_live(upd_graph):  # noqa: F811 - fixture reuse
    return build_hgpa_index(upd_graph, tol=TOL, max_levels=3, seed=0)


def _local_insert(graph, rng, *, tries=60):
    """An insert whose source has a small reverse-reachable set, so the
    affected-sources report leaves most of the graph untouched."""
    from repro.core import affected_sources

    best = None
    for _ in range(tries):
        u = int(rng.integers(0, graph.num_nodes))
        size = affected_sources(graph, u).size
        if best is None or size < best[1]:
            best = (u, size)
        if size == 1:
            break
    u = best[0]
    v = next(
        w
        for w in rng.permutation(graph.num_nodes).tolist()
        if w != u and not graph.has_edge(u, int(w))
    )
    return u, int(v)


def _rebuild_oracle(index):
    """From-scratch rebuild of an updated index, same partition layout."""
    if hasattr(index, "hierarchy"):
        return build_hgpa_index(index.graph, hierarchy=index.hierarchy, tol=TOL)
    if getattr(index, "partition", None) is not None:
        return build_gpa_index(
            index.graph,
            index.partition.num_parts,
            tol=TOL,
            seed=0,
            partition=index.partition,
        )
    raise AssertionError("unexpected index family")


def _random_updates(graph, rng, count, *, partition=None):
    """A valid mixed insert/delete sequence against the evolving graph."""
    updates = []
    for i in range(count):
        if i % 2 == 0:
            u, v = _missing_edge(graph, rng, partition=None)
            upd = EdgeUpdate.insert(u, v)
        else:
            u, v = _deletable_edge(graph, rng)
            upd = EdgeUpdate.delete(u, v)
        updates.append(upd)
        src, dst = graph.edge_arrays()
        if upd.op == "insert":
            from repro.graph import DiGraph

            graph = DiGraph.from_arrays(
                graph.num_nodes,
                np.concatenate([src, [u]]),
                np.concatenate([dst, [v]]),
            )
        else:
            keep = ~((src == u) & (dst == v))
            from repro.graph import DiGraph

            graph = DiGraph.from_arrays(graph.num_nodes, src[keep], dst[keep])
    return updates


# ----------------------------------------------------------------------
class TestMutableBackend:
    def test_epoch_counts_changed_updates_only(self, gpa_live):
        rng = np.random.default_rng(1)
        backend = as_mutable_backend(gpa_live)
        assert backend.epoch == 0
        u, v = _missing_edge(gpa_live.graph, rng)
        r1 = backend.apply_update(EdgeUpdate.insert(u, v))
        assert r1.changed and backend.epoch == 1 and r1.epoch == 1
        r2 = backend.apply_update(EdgeUpdate.insert(u, v))  # duplicate
        assert not r2.changed and backend.epoch == 1 and r2.epoch == 1

    def test_shared_dedup_flips_all_wrappers(self, gpa_live):
        rng = np.random.default_rng(2)
        a = as_mutable_backend(gpa_live)
        b = as_mutable_backend(gpa_live)
        shared = {}
        u, v = _missing_edge(gpa_live.graph, rng)
        a.apply_update(EdgeUpdate.insert(u, v), shared=shared)
        b.apply_update(EdgeUpdate.insert(u, v), shared=shared)
        assert a.engine is b.engine  # one rebuild, both rebound
        assert a.engine is not gpa_live
        assert a.epoch == b.epoch == 1

    def test_static_backend_rejected(self, upd_graph):  # noqa: F811
        class Static:
            def __init__(self, graph):
                self.graph = graph

            def query_many(self, nodes):
                return np.zeros((len(nodes), self.graph.num_nodes)), []

        with pytest.raises(ServingError, match="cannot apply"):
            as_mutable_backend(Static(upd_graph))

    def test_plain_backend_epoch_is_zero(self, gpa_live):
        assert as_backend(gpa_live).epoch == 0


# ----------------------------------------------------------------------
@pytest.mark.parametrize("runtime_cls", [DistributedGPA, DistributedHGPA])
class TestDistributedLiveUpdates:
    def _engine(self, runtime_cls, gpa_live, hgpa_live):
        return gpa_live if runtime_cls is DistributedGPA else hgpa_live

    def test_update_matches_fresh_deployment(
        self, runtime_cls, gpa_live, hgpa_live
    ):
        rng = np.random.default_rng(3)
        index = self._engine(runtime_cls, gpa_live, hgpa_live)
        dep = runtime_cls(index, 3)
        nodes = np.arange(0, index.graph.num_nodes, 9)
        dep.query_many(nodes)  # build some stacked ops first
        for upd in _random_updates(index.graph, rng, 3):
            receipt = dep.apply_update(upd)
            assert receipt.changed and receipt.epoch == dep.epoch
            fresh = runtime_cls(_rebuild_oracle(dep.index), 3)
            got, _ = dep.query_many(nodes)
            want, _ = fresh.query_many(nodes)
            np.testing.assert_allclose(got, want, atol=ATOL, rtol=0)
            dep.validate_deployment()

    def test_noop_update_keeps_epoch(self, runtime_cls, gpa_live, hgpa_live):
        index = self._engine(runtime_cls, gpa_live, hgpa_live)
        dep = runtime_cls(index, 2)
        src, dst = index.graph.edge_arrays()
        receipt = dep.apply_update(EdgeUpdate.insert(int(src[0]), int(dst[0])))
        assert not receipt.changed and dep.epoch == 0 and receipt.epoch == 0

    def test_update_traffic_metered(self, runtime_cls, gpa_live, hgpa_live):
        rng = np.random.default_rng(4)
        index = self._engine(runtime_cls, gpa_live, hgpa_live)
        dep = runtime_cls(index, 3)
        before = dep.coordinator.meter.total_bytes
        u, v = _missing_edge(index.graph, rng)
        receipt = dep.apply_update(EdgeUpdate.insert(u, v))
        shipped = dep.coordinator.meter.total_bytes - before
        rebuilt_wire = sum(
            {
                "hub": dep.index.hub_partials,
                "skel": dep.index.skeleton_cols,
                "part": getattr(dep.index, "node_partials", {}),
                "leaf": getattr(dep.index, "leaf_ppv", {}),
            }[kind][node].wire_bytes
            for kind, node in receipt.stats.rebuilt_keys
        )
        assert shipped >= rebuilt_wire > 0

    def test_unaffected_ops_caches_survive(
        self, runtime_cls, gpa_live, hgpa_live
    ):
        rng = np.random.default_rng(5)
        index = self._engine(runtime_cls, gpa_live, hgpa_live)
        dep = runtime_cls(index, 3)
        nodes = np.arange(0, index.graph.num_nodes, 5)
        dep.query_many(nodes)
        cache = (
            dep._machine_ops if runtime_cls is DistributedGPA else dep._level_ops
        )
        before = {k: id(v) for k, v in cache.items()}
        u, v = _missing_edge(index.graph, rng)
        receipt = dep.apply_update(EdgeUpdate.insert(u, v))
        kept = {k for k, v in cache.items() if before.get(k) == id(v)}
        # Exactly the owners of rebuilt hub vectors lose their stacked
        # ops; everything else keeps serving from the cached CSC/CSR.
        if runtime_cls is DistributedGPA:
            hit = {
                dep._hub_owner[node]
                for kind, node in receipt.stats.rebuilt_keys
                if kind in ("hub", "skel")
            }
            expect_kept = set(before) - hit
        else:
            hit_levels = set(receipt.stats.affected_subgraphs)
            expect_kept = {
                (mid, sid) for (mid, sid) in before if sid not in hit_levels
            }
            assert expect_kept, "chain rebuild unexpectedly touched all levels"
        assert kept == expect_kept


class TestZeroCopyStores:
    def test_gpa_store_vectors_view_stacked_buffers(self, gpa_live):
        dep = DistributedGPA(gpa_live, 3)
        dep.query_many(np.arange(8))
        for mid, ops in dep._machine_ops.items():
            owned, part_csc, _, _ = ops
            machine = dep.machines[mid]
            for h in owned.tolist():
                stored = machine.store[("hub", h)]
                assert np.shares_memory(stored.val, part_csc.data)
                assert not stored.val.flags.writeable
                assert stored == gpa_live.hub_partials[h]
                assert machine.store[("skel", h)] == gpa_live.skeleton_cols[h]

    def test_hgpa_store_vectors_view_stacked_buffers(self, hgpa_live):
        dep = DistributedHGPA(hgpa_live, 3)
        dep.query_many(np.arange(8))
        assert dep._level_ops, "no ops were built"
        shared = 0
        for (mid, _), ops in dep._level_ops.items():
            owned, part_csc, _, _ = ops
            machine = dep.machines[mid]
            for h in owned.tolist():
                stored = machine.store[("hub", h)]
                if np.shares_memory(stored.val, part_csc.data):
                    shared += 1
                assert stored == hgpa_live.hub_partials[h]
        assert shared > 0

    def test_space_metric_unchanged_by_rebinding(self, gpa_live):
        dep_cold = DistributedGPA(gpa_live, 3)
        cold = [m.stored_bytes for m in dep_cold.machines]
        dep_hot = DistributedGPA(gpa_live, 3)
        dep_hot.query_many(np.arange(8))
        hot = [m.stored_bytes for m in dep_hot.machines]
        assert cold == hot


# ----------------------------------------------------------------------
class TestServiceLiveUpdates:
    def test_epoch_tagged_tickets_and_exact_answers(self, gpa_live):
        rng = np.random.default_rng(6)
        svc = PPVService(
            as_mutable_backend(gpa_live),
            window=0.005,
            max_batch=4,
            cache=PPVCache(1 << 22),
            clock=SimulatedClock(),
        )
        t0 = svc.submit(3)
        svc.flush()
        assert t0.epoch == 0
        u, v = _missing_edge(gpa_live.graph, rng)
        receipt = svc.apply_update(EdgeUpdate.insert(u, v))
        assert receipt.epoch == svc.epoch == 1
        t1 = svc.submit(u)
        svc.flush()
        assert t1.epoch == 1
        oracle = _rebuild_oracle(svc.backend.engine)
        np.testing.assert_allclose(
            t1.result, oracle.query(u), atol=ATOL, rtol=0
        )

    def test_cache_keeps_unaffected_rows_across_update(self, gpa_live):
        rng = np.random.default_rng(7)
        svc = PPVService(
            as_mutable_backend(gpa_live),
            window=0.005,
            max_batch=4,
            cache=PPVCache(1 << 22),
            clock=SimulatedClock(),
        )
        u, v = _local_insert(gpa_live.graph, rng)
        _, receipt = apply_edge_update(gpa_live, EdgeUpdate.insert(u, v))
        affected = set(receipt.affected_sources.tolist())
        unaffected = next(
            w for w in range(gpa_live.graph.num_nodes) if w not in affected
        )
        for w in (u, unaffected):
            svc.query(w)
        live = svc.apply_update(EdgeUpdate.insert(u, v))
        assert set(live.affected_sources.tolist()) == affected
        assert svc.cache.stats.invalidations >= 1
        t_unaffected = svc.submit(unaffected)
        assert t_unaffected.cached and t_unaffected.epoch == 1
        t_affected = svc.submit(u)
        assert not t_affected.done  # dropped from the cache, recomputed
        svc.flush()
        oracle = _rebuild_oracle(svc.backend.engine)
        np.testing.assert_allclose(
            t_unaffected.result, oracle.query(unaffected), atol=ATOL, rtol=0
        )
        np.testing.assert_allclose(
            t_affected.result, oracle.query(u), atol=ATOL, rtol=0
        )

    def test_static_backend_update_rejected(self, gpa_live):
        svc = PPVService(gpa_live, clock=SimulatedClock())
        with pytest.raises(ServingError, match="as_mutable_backend"):
            svc.apply_update(EdgeUpdate.insert(0, 1))

    def test_replay_mixed_stream_deterministic(self, gpa_live):
        rng = np.random.default_rng(8)
        u, v = _missing_edge(gpa_live.graph, rng)
        n = gpa_live.graph.num_nodes
        qs = rng.integers(0, n, size=12).tolist()
        events = [(0.001 * i, q) for i, q in enumerate(qs[:6])]
        events.append((0.02, EdgeUpdate.insert(u, v)))
        events += [(0.03 + 0.001 * i, q) for i, q in enumerate(qs[6:])]

        def run():
            svc = PPVService(
                as_mutable_backend(gpa_live),
                window=0.005,
                max_batch=4,
                cache=PPVCache(1 << 22),
                clock=SimulatedClock(),
            )
            return svc.replay(events)

        out_a, out_b = run(), run()
        for a, b in zip(out_a, out_b):
            assert a.epoch == b.epoch
            if hasattr(a, "result"):
                np.testing.assert_array_equal(a.result, b.result)
            else:
                np.testing.assert_array_equal(
                    a.affected_sources, b.affected_sources
                )
        # epochs before the update are 0, after it 1
        assert [t.epoch for t in out_a[:6]] == [0] * 6
        assert [t.epoch for t in out_a[7:]] == [1] * 6

    def test_replay_rejects_time_travel(self, gpa_live):
        svc = PPVService(as_mutable_backend(gpa_live), clock=SimulatedClock())
        with pytest.raises(ServingError, match="non-decreasing"):
            svc.replay([(1.0, 0), (0.5, 1)])


# ----------------------------------------------------------------------
class TestRouterLiveUpdates:
    def _router(self, index, policy, *, replicas=2, cache=True):
        return ShardRouter(
            [[index] * replicas for _ in range(4)],
            policy=policy,
            owner_map=owner_map_from_partition(index.partition, 4),
            cache_bytes=(1 << 22) if cache else None,
            clock=SimulatedClock(),
        )

    @pytest.mark.parametrize("policy", POLICIES)
    def test_immediate_update_exact_on_all_policies(self, gpa_live, policy):
        rng = np.random.default_rng(9)
        router = self._router(gpa_live, policy)
        n = router.num_nodes
        nodes = rng.integers(0, n, size=30)
        router.query_many(nodes)
        current = gpa_live
        for upd in _random_updates(gpa_live.graph, rng, 3):
            receipt = router.apply_update(upd)
            current, _ = apply_edge_update(current, upd)
            assert receipt.changed and receipt.epoch == router.epoch
            oracle = _rebuild_oracle(current)
            got, infos = router.query_many(nodes)
            want, _ = oracle.query_many(nodes)
            np.testing.assert_allclose(got, want, atol=ATOL, rtol=0)
            assert {info.epoch for info in infos} == {router.epoch}
        ids, scores, _ = router.query_many_topk(nodes, 10)
        oids, oscores, _ = oracle.query_many_topk(nodes, 10)
        np.testing.assert_array_equal(ids, oids)
        np.testing.assert_allclose(scores, oscores, atol=ATOL, rtol=0)

    def test_caches_drop_exactly_affected_rows(self, gpa_live):
        rng = np.random.default_rng(10)
        router = self._router(gpa_live, "owner")
        u, v = _local_insert(gpa_live.graph, rng)
        _, receipt = apply_edge_update(gpa_live, EdgeUpdate.insert(u, v))
        affected = set(receipt.affected_sources.tolist())
        unaffected = [
            w for w in range(router.num_nodes) if w not in affected
        ][:8]
        router.query_many(np.asarray([u] + unaffected))
        cached_before = {
            w
            for shard in router.shards
            for w in ([u] + unaffected)
            if shard.cache is not None and w in shard.cache
        }
        assert u in cached_before
        router.apply_update(EdgeUpdate.insert(u, v))
        for shard in router.shards:
            assert u not in shard.cache
            for w in unaffected:
                if w in cached_before:
                    # unaffected rows survive the update untouched
                    assert (w in shard.cache) == (
                        w in cached_before and w in shard.cache
                    )
        still_cached = sum(
            1
            for shard in router.shards
            for w in unaffected
            if w in shard.cache
        )
        assert still_cached > 0, "update flushed unaffected rows"


# ----------------------------------------------------------------------
class TestStaggeredRollout:
    def _router(self, index, clock):
        return ShardRouter(
            [[index, index] for _ in range(3)],
            policy="owner",
            owner_map=owner_map_from_partition(index.partition, 3),
            cache_bytes=1 << 22,
            clock=clock,
        )

    def test_no_outage_and_epoch_exactness_mid_rollout(self, gpa_live):
        rng = np.random.default_rng(11)
        clock = SimulatedClock()
        router = self._router(gpa_live, clock)
        nodes = rng.integers(0, router.num_nodes, size=40)
        router.query_many(nodes)
        u, v = _missing_edge(gpa_live.graph, rng)
        upd = EdgeUpdate.insert(u, v)
        new_index, _ = apply_edge_update(gpa_live, upd)
        old_oracle = _rebuild_oracle(gpa_live)
        new_oracle = _rebuild_oracle(new_index)

        rollout = router.begin_rollout(upd, update_seconds=1.0)
        receipt = rollout.step()  # wave 0: replica 0 of every shard flips
        assert not rollout.done and receipt.epoch == router.epoch == 0
        # Mid-rollout: every query is answered (no outage), each row
        # matching the rebuild at the epoch it is tagged with.
        got, infos = router.query_many(nodes)
        for k, info in enumerate(infos):
            oracle = new_oracle if info.epoch == 1 else old_oracle
            np.testing.assert_allclose(
                got[k], oracle.query(int(nodes[k])), atol=ATOL, rtol=0
            )
        # The updating replicas are routed away from deterministically.
        assert all(info.replica != 0 or info.cached for info in infos)
        clock.advance(1.0)  # wave-0 replicas finish installing
        got, infos = router.query_many(nodes)
        for k, info in enumerate(infos):
            oracle = new_oracle if info.epoch == 1 else old_oracle
            np.testing.assert_allclose(
                got[k], oracle.query(int(nodes[k])), atol=ATOL, rtol=0
            )
        receipt = rollout.step()  # wave 1: the rollout completes
        assert rollout.done and receipt.epoch == router.epoch == 1
        clock.advance(1.0)
        got, infos = router.query_many(nodes)
        want, _ = new_oracle.query_many(nodes)
        np.testing.assert_allclose(got, want, atol=ATOL, rtol=0)
        assert {info.epoch for info in infos} == {1}

    def test_affected_rows_held_out_of_cache_mid_rollout(self, gpa_live):
        rng = np.random.default_rng(12)
        clock = SimulatedClock()
        router = self._router(gpa_live, clock)
        u, v = _missing_edge(gpa_live.graph, rng)
        upd = EdgeUpdate.insert(u, v)
        router.query_many(np.asarray([u, u]))
        assert any(u in shard.cache for shard in router.shards)
        rollout = router.begin_rollout(upd, update_seconds=1.0)
        rollout.step()
        for shard in router.shards:
            assert u not in shard.cache  # dropped at wave 0
        _, infos = router.query_many(np.asarray([u, u]))
        assert all(not info.cached for info in infos)  # bypass while held
        for shard in router.shards:
            assert u not in shard.cache
        clock.advance(1.0)
        rollout.step()
        router.query_many(np.asarray([u]))
        assert any(u in shard.cache for shard in router.shards)  # released

    def test_rollout_guards(self, gpa_live):
        rng = np.random.default_rng(13)
        clock = SimulatedClock()
        router = self._router(gpa_live, clock)
        u, v = _missing_edge(gpa_live.graph, rng)
        rollout = router.begin_rollout(EdgeUpdate.insert(u, v))
        with pytest.raises(ShardingError, match="in progress"):
            router.begin_rollout(EdgeUpdate.insert(u, v))
        with pytest.raises(ShardingError, match="in progress"):
            router.apply_update(EdgeUpdate.insert(u, v))
        rollout.run()
        assert rollout.done and router.epoch == 1
        with pytest.raises(ShardingError, match="complete"):
            rollout.step()

    def test_cached_service_over_router_survives_rollout(self, gpa_live):
        """Regression: a PPVService with its *own* cache wrapping the
        router must not serve stale pre-update rows tagged with the new
        epoch after a rollout driven directly on the router."""
        rng = np.random.default_rng(14)
        clock = SimulatedClock()
        router = self._router(gpa_live, clock)
        service = PPVService(
            router,
            window=0.005,
            max_batch=4,
            cache=PPVCache(1 << 22),
            clock=clock,
        )
        u, v = _missing_edge(gpa_live.graph, rng)
        t_before = service.submit(u)
        service.flush()
        assert t_before.epoch == 0
        router.begin_rollout(EdgeUpdate.insert(u, v)).run()
        assert router.epoch == 1
        new_index = router.shards[0].replicas[0].backend.engine
        oracle = _rebuild_oracle(new_index)
        ticket = service.submit(u)
        service.flush()
        assert ticket.epoch == 1 and not ticket.cached
        np.testing.assert_allclose(
            ticket.result, oracle.query(u), atol=ATOL, rtol=0
        )

    def test_service_tickets_tagged_per_row_mid_rollout(self, gpa_live):
        """Mid-rollout the router serves mixed epochs; service tickets
        must carry each answer's true epoch, and nothing may enter the
        service cache until the rollout completes."""
        rng = np.random.default_rng(15)
        clock = SimulatedClock()
        router = self._router(gpa_live, clock)
        service = PPVService(
            router,
            window=0.005,
            max_batch=4,
            cache=PPVCache(1 << 22),
            clock=clock,
        )
        u, v = _missing_edge(gpa_live.graph, rng)
        upd = EdgeUpdate.insert(u, v)
        new_index, _ = apply_edge_update(gpa_live, upd)
        old_oracle, new_oracle = _rebuild_oracle(gpa_live), _rebuild_oracle(
            new_index
        )
        rollout = router.begin_rollout(upd, update_seconds=1.0)
        rollout.step()
        clock.advance(1.0)  # wave-0 replicas recover: both epochs serve
        inserts_before = service.cache.stats.inserts
        tickets = [service.submit(int(w)) for w in (u, v, 3)]
        service.flush()
        assert service.cache.stats.inserts == inserts_before
        for t in tickets:
            oracle = new_oracle if t.epoch == 1 else old_oracle
            np.testing.assert_allclose(
                t.result, oracle.query(t.node), atol=ATOL, rtol=0
            )
        rollout.step()

    def test_noop_rollout_short_circuits(self, gpa_live):
        clock = SimulatedClock()
        router = self._router(gpa_live, clock)
        src, dst = gpa_live.graph.edge_arrays()
        rollout = router.begin_rollout(
            EdgeUpdate.insert(int(src[0]), int(dst[0]))
        )
        receipt = rollout.step()
        assert rollout.done and not receipt.changed and router.epoch == 0
        # A new rollout can start immediately.
        router.begin_rollout(EdgeUpdate.insert(int(src[0]), int(dst[0])))


# ----------------------------------------------------------------------
def _backend_under_test(kind, index):
    if kind in ("gpa", "hgpa"):
        return as_mutable_backend(index)
    if kind == "dist_gpa":
        return as_mutable_backend(DistributedGPA(index, 3))
    if kind == "dist_hgpa":
        return as_mutable_backend(DistributedHGPA(index, 3))
    if kind.startswith("sharded_"):
        policy = kind[len("sharded_") :]
        return ShardRouter(
            [[index, index], [index, index]],
            policy=policy,
            owner_map=owner_map_from_partition(index.partition, 2),
            cache_bytes=1 << 22,
            clock=SimulatedClock(),
        )
    raise AssertionError(kind)


class TestInterleavingProperty:
    """Property-style drive: random inserts/deletes interleaved with
    ``query_many_topk`` calls against every backend family, every answer
    compared to a freshly rebuilt oracle at the same epoch."""

    @pytest.mark.parametrize(
        "kind",
        [
            "gpa",
            "hgpa",
            "dist_gpa",
            "dist_hgpa",
            "sharded_owner",
            "sharded_round_robin",
            "sharded_least_loaded",
        ],
    )
    def test_random_interleaving_matches_oracle(
        self, kind, gpa_live, hgpa_live
    ):
        rng = np.random.default_rng(abs(hash(kind)) % (2**32))
        index = hgpa_live if kind == "dist_hgpa" or kind == "hgpa" else gpa_live
        backend = _backend_under_test(kind, index)
        current = index
        n = index.graph.num_nodes
        exact = kind in ("gpa", "hgpa") or kind.startswith("sharded_")
        updates = _random_updates(index.graph, rng, 4)
        epoch = 0
        for upd in updates:
            receipt = backend.apply_update(upd)
            current, _ = apply_edge_update(current, upd)
            assert receipt.changed
            epoch += 1
            assert backend.epoch == epoch == receipt.epoch
            oracle = _rebuild_oracle(current)
            nodes = rng.integers(0, n, size=10)
            ids, scores, _ = backend.query_many_topk(nodes, 8)
            oids, oscores, _ = oracle.query_many_topk(nodes, 8)
            np.testing.assert_allclose(scores, oscores, atol=ATOL, rtol=0)
            if exact:
                np.testing.assert_array_equal(ids, oids)
            else:
                # Distributed summation order may swap exact ties; every
                # mismatched id must be a tie at 1e-12.
                mism = ids != oids
                assert np.all(np.abs(scores[mism] - oscores[mism]) <= ATOL)
            dense, _ = backend.query_many(nodes)
            odense, _ = oracle.query_many(nodes)
            np.testing.assert_allclose(dense, odense, atol=ATOL, rtol=0)
        # The backend's end-state graph matches the reference sequence.
        if kind.startswith("dist_"):
            assert backend.engine.index.graph == current.graph
        elif kind in ("gpa", "hgpa"):
            assert backend.engine.graph == current.graph
        else:
            replica = backend.shards[0].replicas[0]
            assert replica.backend.engine.graph == current.graph
