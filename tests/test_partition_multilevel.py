"""Unit tests for the multilevel partitioner (ugraph, matching, FM, bisect,
k-way)."""

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.graph import DiGraph, hierarchical_community_digraph, ring_digraph
from repro.partition import (
    coarsen,
    fm_refine,
    heavy_edge_matching,
    multilevel_bisect,
    partition_kway,
    partition_kway_local,
    region_grow_bisect,
    ugraph_from_coo,
    ugraph_from_digraph,
)
from repro.partition.refine import partition_weights


@pytest.fixture()
def dumbbell():
    """Two 4-cliques joined by a single edge — the canonical bisection."""
    edges = []
    for base in (0, 4):
        for i in range(4):
            for j in range(4):
                if i != j:
                    edges.append((base + i, base + j))
    edges.append((0, 4))
    return ugraph_from_digraph(DiGraph.from_edges(8, edges))


class TestUGraph:
    def test_symmetrisation(self):
        ug = ugraph_from_digraph(DiGraph.from_edges(3, [(0, 1), (1, 0), (1, 2)]))
        ug.validate()
        assert ug.num_nodes == 3
        # {0,1} weight 2 (both directions), {1,2} weight 1.
        i = np.searchsorted(ug.neighbors(0), 1)
        assert ug.edge_weights_of(0)[i] == 2.0

    def test_self_loops_dropped(self):
        ug = ugraph_from_coo(2, np.array([0, 0]), np.array([0, 1]))
        assert ug.num_edges == 1

    def test_cut_weight_counts_directed_edges(self):
        ug = ugraph_from_digraph(DiGraph.from_edges(4, [(0, 2), (2, 0), (1, 3)]))
        labels = np.array([0, 0, 1, 1])
        assert ug.cut_weight(labels) == 3.0
        assert ug.cut_weight(np.zeros(4, dtype=np.int64)) == 0.0

    def test_total_vweight(self, dumbbell):
        assert dumbbell.total_vweight == 8


class TestMatchingAndCoarsening:
    def test_matching_is_symmetric_and_total(self, dumbbell):
        rng = np.random.default_rng(0)
        match = heavy_edge_matching(dumbbell, rng)
        for u, v in enumerate(match.tolist()):
            assert v >= 0
            assert match[v] == u  # involution

    def test_matched_pairs_are_neighbors(self, dumbbell):
        rng = np.random.default_rng(1)
        match = heavy_edge_matching(dumbbell, rng)
        for u, v in enumerate(match.tolist()):
            if u != v:
                assert v in dumbbell.neighbors(u)

    def test_coarsen_preserves_vertex_weight(self, dumbbell):
        rng = np.random.default_rng(2)
        level = coarsen(dumbbell, heavy_edge_matching(dumbbell, rng))
        assert level.ugraph.total_vweight == dumbbell.total_vweight
        assert level.ugraph.num_nodes < dumbbell.num_nodes
        level.ugraph.validate()

    def test_coarsen_preserves_cut(self, dumbbell):
        """Any coarse partition's cut equals its fine projection's cut."""
        rng = np.random.default_rng(3)
        level = coarsen(dumbbell, heavy_edge_matching(dumbbell, rng))
        coarse_labels = np.arange(level.ugraph.num_nodes) % 2
        fine_labels = coarse_labels[level.coarse_of]
        assert level.ugraph.cut_weight(coarse_labels) == pytest.approx(
            dumbbell.cut_weight(fine_labels)
        )

    def test_edgeless_graph_matches_selves(self):
        ug = ugraph_from_coo(4, np.array([], dtype=int), np.array([], dtype=int))
        match = heavy_edge_matching(ug, np.random.default_rng(0))
        assert (match == np.arange(4)).all()


class TestRefine:
    def test_fm_finds_dumbbell_cut(self, dumbbell):
        labels = np.array([0, 1, 0, 1, 0, 1, 0, 1], dtype=np.int64)  # bad start
        refined = fm_refine(dumbbell, labels)
        assert dumbbell.cut_weight(refined) == 1.0

    def test_fm_respects_balance(self, dumbbell):
        refined = fm_refine(dumbbell, np.array([0, 1] * 4, dtype=np.int64), balance=0.05)
        w0, w1 = partition_weights(dumbbell, refined)
        assert abs(w0 - w1) <= 2

    def test_fm_never_worsens(self):
        g = hierarchical_community_digraph(300, avg_out_degree=4, seed=2)
        ug = ugraph_from_digraph(g)
        labels = (np.arange(300) % 2).astype(np.int64)
        before = ug.cut_weight(labels.copy())
        after = ug.cut_weight(fm_refine(ug, labels))
        assert after <= before

    def test_trivial_graphs(self):
        ug = ugraph_from_coo(1, np.array([], dtype=int), np.array([], dtype=int))
        assert fm_refine(ug, np.zeros(1, dtype=np.int64)).tolist() == [0]


class TestBisect:
    def test_region_grow_covers_half(self, dumbbell):
        labels = region_grow_bisect(dumbbell, rng=np.random.default_rng(0))
        assert 3 <= int((labels == 0).sum()) <= 5

    def test_multilevel_dumbbell(self, dumbbell):
        labels = multilevel_bisect(dumbbell, seed=0)
        assert dumbbell.cut_weight(labels) == 1.0
        assert int((labels == 0).sum()) == 4

    def test_multilevel_balance_on_community_graph(self):
        g = hierarchical_community_digraph(500, avg_out_degree=4, seed=9)
        ug = ugraph_from_digraph(g)
        labels = multilevel_bisect(ug, seed=1)
        frac = (labels == 0).sum() / 500
        assert 0.4 <= frac <= 0.6

    def test_target_fraction(self):
        g = hierarchical_community_digraph(400, avg_out_degree=4, seed=9)
        ug = ugraph_from_digraph(g)
        labels = multilevel_bisect(ug, target_frac=0.25, seed=1)
        frac = (labels == 0).sum() / 400
        assert 0.15 <= frac <= 0.35

    def test_deterministic(self, dumbbell):
        a = multilevel_bisect(dumbbell, seed=5)
        b = multilevel_bisect(dumbbell, seed=5)
        np.testing.assert_array_equal(a, b)


class TestKway:
    @pytest.mark.parametrize("k", [2, 3, 4, 8])
    def test_all_parts_populated(self, k):
        g = hierarchical_community_digraph(400, avg_out_degree=4, seed=7)
        labels = partition_kway(g, k, seed=0)
        sizes = np.bincount(labels, minlength=k)
        assert (sizes > 0).all()
        assert sizes.max() <= 2.0 * 400 / k  # rough balance

    def test_k1_trivial(self, small_graph):
        assert (partition_kway(small_graph, 1) == 0).all()

    def test_k_invalid(self, small_graph):
        with pytest.raises(PartitionError):
            partition_kway(small_graph, 0)

    def test_ring_bisection_cut(self):
        labels = partition_kway(ring_digraph(16), 2, seed=0)
        ug = ugraph_from_digraph(ring_digraph(16))
        assert ug.cut_weight(labels) == 2.0  # a ring bisects with 2 edges

    def test_more_nodes_than_parts(self):
        ug = ugraph_from_coo(3, np.array([0, 1]), np.array([1, 2]))
        labels = partition_kway_local(ug, 3)
        assert sorted(labels.tolist()) == [0, 1, 2]
