"""Unit and property tests for the sparse vector / wire format."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SparseVec
from repro.core.sparsevec import (
    WIRE_ENTRY_BYTES,
    WIRE_ENTRY_BYTES_V2,
    WIRE_HEADER_BYTES,
)
from repro.errors import SerializationError


class TestConstruction:
    def test_sorted_and_deduped(self):
        v = SparseVec(np.array([3, 1, 3]), np.array([1.0, 2.0, 4.0]))
        assert v.idx.tolist() == [1, 3]
        assert v.val.tolist() == [2.0, 5.0]

    def test_zeros_dropped(self):
        v = SparseVec(np.array([0, 1]), np.array([0.0, 2.0]))
        assert v.idx.tolist() == [1]

    def test_mismatched_shapes(self):
        with pytest.raises(SerializationError):
            SparseVec(np.array([1, 2]), np.array([1.0]))

    def test_from_dense_prunes(self):
        v = SparseVec.from_dense(np.array([0.5, 1e-9, 0.0, -0.2]), prune=1e-6)
        assert v.idx.tolist() == [0, 3]

    def test_one_hot(self):
        v = SparseVec.one_hot(4, 0.15)
        assert v.get(4) == 0.15 and v.get(3) == 0.0 and v.nnz == 1

    def test_empty(self):
        v = SparseVec.empty()
        assert v.nnz == 0 and v.sum() == 0.0


class TestOperations:
    def test_get(self):
        v = SparseVec(np.array([2, 7]), np.array([1.5, -2.0]))
        assert v.get(2) == 1.5
        assert v.get(7) == -2.0
        assert v.get(5) == 0.0

    def test_to_dense_roundtrip(self):
        dense = np.array([0.0, 1.0, 0.0, 3.0])
        np.testing.assert_array_equal(SparseVec.from_dense(dense).to_dense(4), dense)

    def test_add_into_with_scale(self):
        acc = np.zeros(5)
        SparseVec(np.array([1, 3]), np.array([2.0, 4.0])).add_into(acc, 0.5)
        assert acc.tolist() == [0.0, 1.0, 0.0, 2.0, 0.0]

    def test_add(self):
        a = SparseVec(np.array([0, 1]), np.array([1.0, 1.0]))
        b = SparseVec(np.array([1, 2]), np.array([-1.0, 5.0]))
        c = a + b
        assert c.idx.tolist() == [0, 2]  # index 1 cancels to zero

    def test_pruned(self):
        v = SparseVec(np.array([0, 1]), np.array([1e-9, 1.0]))
        assert v.pruned(1e-6).nnz == 1

    def test_scaled(self):
        v = SparseVec.one_hot(2).scaled(3.0)
        assert v.get(2) == 3.0

    def test_equality(self):
        a = SparseVec.one_hot(1)
        assert a == SparseVec.one_hot(1)
        assert a != SparseVec.one_hot(2)


class TestWire:
    def test_roundtrip(self):
        v = SparseVec(np.array([5, 100, 2000]), np.array([0.1, -0.5, 3.25]))
        back = SparseVec.from_wire(v.to_wire())
        assert back == v

    def test_wire_bytes_accounting(self):
        v = SparseVec(np.array([1, 2, 3]), np.array([1.0, 2.0, 3.0]))
        assert v.wire_bytes == WIRE_HEADER_BYTES + 3 * WIRE_ENTRY_BYTES
        assert len(v.to_wire()) == v.wire_bytes

    def test_empty_roundtrip(self):
        assert SparseVec.from_wire(SparseVec.empty().to_wire()).nnz == 0

    def test_truncated_payload(self):
        with pytest.raises(SerializationError):
            SparseVec.from_wire(b"abc")

    def test_wrong_length(self):
        payload = SparseVec.one_hot(1).to_wire() + b"x"
        with pytest.raises(SerializationError):
            SparseVec.from_wire(payload)

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 2**31 - 1),
                st.floats(
                    allow_nan=False, allow_infinity=False, width=64,
                    min_value=-1e12, max_value=1e12,
                ),
            ),
            max_size=40,
        )
    )
    def test_property_wire_roundtrip(self, pairs):
        idx = np.array([p[0] for p in pairs], dtype=np.int64)
        val = np.array([p[1] for p in pairs], dtype=np.float64)
        v = SparseVec(idx, val)
        back = SparseVec.from_wire(v.to_wire())
        assert back == v

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.sampled_from([0, 1, 2, 3, 2**31 - 2, 2**31 - 1]),
            min_size=0,
            max_size=9,
        )
    )
    def test_property_duplicate_and_boundary_roundtrip(self, indices):
        """Empty / odd-nnz / duplicate-index / boundary-index vectors."""
        idx = np.asarray(indices, dtype=np.int64)
        val = np.ones(idx.size)
        v = SparseVec(idx, val)  # duplicates collapse by summation
        back = SparseVec.from_wire(v.to_wire())
        assert back == v
        assert back.idx.size == np.unique(idx).size

    def test_odd_nnz_roundtrip(self):
        v = SparseVec(np.arange(7), np.linspace(-1.0, 1.0, 7) + 2.0)
        assert v.nnz == 7  # odd on purpose
        assert SparseVec.from_wire(v.to_wire()) == v

    def test_boundary_index_survives(self):
        top = 2**31 - 1
        v = SparseVec(np.array([0, top]), np.array([1.0, 2.0]))
        back = SparseVec.from_wire(v.to_wire())
        assert back.idx.tolist() == [0, top]

    def test_out_of_range_index_rejected(self):
        """Regression: 2**31+5 used to round-trip as -2147483643."""
        v = SparseVec(np.array([2**31 + 5]), np.array([1.0]))
        with pytest.raises(SerializationError, match="int32 wire range"):
            v.to_wire()

    def test_negative_out_of_range_rejected(self):
        v = SparseVec(np.array([-(2**31) - 1]), np.array([1.0]))
        with pytest.raises(SerializationError, match="int32 wire range"):
            v.to_wire()

    def test_wire_bytes_metric_still_defined_for_oversized(self):
        """The space metric is size accounting, not serialization."""
        v = SparseVec(np.array([2**31 + 5]), np.array([1.0]))
        assert v.wire_bytes == WIRE_HEADER_BYTES + WIRE_ENTRY_BYTES


class TestWireV2:
    """The int64-id wire format behind ``to_wire(version=2)``."""

    def test_roundtrip(self):
        v = SparseVec(np.arange(5), np.linspace(0.1, 0.5, 5))
        assert SparseVec.from_wire(v.to_wire(version=2)) == v

    def test_payload_size(self):
        v = SparseVec(np.arange(3), np.ones(3))
        assert len(v.to_wire(version=2)) == (
            WIRE_HEADER_BYTES + 3 * WIRE_ENTRY_BYTES_V2
        )

    def test_empty_roundtrip(self):
        assert SparseVec.from_wire(SparseVec.empty().to_wire(version=2)).nnz == 0

    def test_huge_index_needs_v2(self):
        """The whole point of v2: ids beyond int32 (graphs past 2**31
        nodes) serialize, where v1 refuses."""
        v = SparseVec(np.array([2**40]), np.array([1.0]))
        with pytest.raises(SerializationError, match="int32 wire range"):
            v.to_wire()
        back = SparseVec.from_wire(v.to_wire(version=2))
        assert back.idx.tolist() == [2**40]

    def test_version_autodetected_from_header(self):
        v = SparseVec(np.array([7]), np.array([2.0]))
        assert SparseVec.from_wire(v.to_wire(version=1)) == v
        assert SparseVec.from_wire(v.to_wire(version=2)) == v

    def test_unknown_write_version_rejected(self):
        with pytest.raises(SerializationError, match="wire version"):
            SparseVec.empty().to_wire(version=3)

    def test_unknown_header_flag_rejected(self):
        payload = bytearray(SparseVec.one_hot(1).to_wire(version=2))
        payload[8:16] = np.int64(9).tobytes()
        with pytest.raises(SerializationError, match="wire version"):
            SparseVec.from_wire(bytes(payload))

    def test_truncated_v2_payload_rejected(self):
        payload = SparseVec.one_hot(1).to_wire(version=2)
        with pytest.raises(SerializationError):
            SparseVec.from_wire(payload[:-4])

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 2**62),
                st.floats(
                    allow_nan=False, allow_infinity=False, width=64,
                    min_value=-1e12, max_value=1e12,
                ),
            ),
            max_size=40,
        )
    )
    def test_property_v2_roundtrip(self, pairs):
        idx = np.array([p[0] for p in pairs], dtype=np.int64)
        val = np.array([p[1] for p in pairs], dtype=np.float64)
        v = SparseVec(idx, val)
        assert SparseVec.from_wire(v.to_wire(version=2)) == v


class TestImmutability:
    def test_arrays_read_only(self):
        v = SparseVec(np.array([1, 5]), np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            v.idx[0] = 99
        with pytest.raises(ValueError):
            v.val[0] = 99.0

    def test_scaled_cannot_corrupt_parent(self):
        parent = SparseVec(np.array([1, 5]), np.array([1.0, 2.0]))
        child = parent.scaled(3.0)
        with pytest.raises(ValueError):
            child.idx[0] = 42
        with pytest.raises(ValueError):
            child.val[0] = 42.0
        assert parent.idx.tolist() == [1, 5]
        assert parent.val.tolist() == [1.0, 2.0]

    def test_pruned_cannot_corrupt_parent(self):
        parent = SparseVec(np.array([0, 1]), np.array([1e-9, 1.0]))
        child = parent.pruned(1e-6)
        with pytest.raises(ValueError):
            child.val[0] = 7.0
        assert parent.get(0) == 1e-9

    def test_trusted_constructor_freezes(self):
        idx = np.array([3], dtype=np.int64)
        val = np.array([1.5])
        v = SparseVec(idx, val, _trusted=True)
        with pytest.raises(ValueError):
            v.idx[0] = 0
        with pytest.raises(ValueError):
            idx[0] = 0  # the very same buffer
