"""Unit tests for the power-iteration baselines (Appendix C)."""

import numpy as np
import pytest

from repro.core import power_iteration_ppv, power_iteration_reference, preference_vector
from repro.errors import ConvergenceError, QueryError
from repro.graph import DiGraph, ring_digraph

from conftest import dense_ppv_matrix


class TestVectorised:
    def test_matches_linear_solve(self, tiny_graph):
        truth = dense_ppv_matrix(tiny_graph)
        for u in range(5):
            got = power_iteration_ppv(tiny_graph, u, tol=1e-12)
            np.testing.assert_allclose(got, truth[:, u], atol=1e-10)

    def test_sums_to_one_without_dangling(self, small_graph):
        ppv = power_iteration_ppv(small_graph, 0, tol=1e-10)
        assert ppv.sum() == pytest.approx(1.0, abs=1e-7)

    def test_absorb_loses_mass(self):
        g = DiGraph.from_edges(2, [(0, 1)])  # node 1 dangles
        ppv = power_iteration_ppv(g, 0, tol=1e-12)
        assert ppv.sum() < 1.0
        assert ppv[0] == pytest.approx(0.15)

    def test_preference_set(self, tiny_graph):
        mixed = power_iteration_ppv(tiny_graph, {0: 1.0, 1: 1.0}, tol=1e-12)
        single0 = power_iteration_ppv(tiny_graph, 0, tol=1e-12)
        single1 = power_iteration_ppv(tiny_graph, 1, tol=1e-12)
        np.testing.assert_allclose(mixed, 0.5 * (single0 + single1), atol=1e-9)

    def test_alpha_extremes(self, tiny_graph):
        near_restart = power_iteration_ppv(tiny_graph, 0, alpha=0.95, tol=1e-12)
        assert near_restart[0] > 0.9

    def test_ring_symmetry(self):
        ppv = power_iteration_ppv(ring_digraph(6), 0, tol=1e-12)
        rolled = power_iteration_ppv(ring_digraph(6), 3, tol=1e-12)
        np.testing.assert_allclose(np.roll(ppv, 3), rolled, atol=1e-10)

    def test_max_iter_exceeded(self, tiny_graph):
        with pytest.raises(ConvergenceError):
            power_iteration_ppv(tiny_graph, 0, tol=1e-12, max_iter=2)


class TestPreferenceVector:
    def test_single_node(self, tiny_graph):
        u = preference_vector(tiny_graph, 2)
        assert u[2] == 1.0 and u.sum() == 1.0

    def test_normalisation(self, tiny_graph):
        u = preference_vector(tiny_graph, {0: 3.0, 1: 1.0})
        assert u[0] == pytest.approx(0.75)

    def test_errors(self, tiny_graph):
        with pytest.raises(QueryError):
            preference_vector(tiny_graph, 99)
        with pytest.raises(QueryError):
            preference_vector(tiny_graph, {})
        with pytest.raises(QueryError):
            preference_vector(tiny_graph, {0: -1.0})
        with pytest.raises(QueryError):
            preference_vector(tiny_graph, {0: 0.0})


class TestReferenceAlgorithm2:
    def test_matches_vectorised_absorb(self, tiny_graph):
        for u in range(5):
            ref = power_iteration_reference(tiny_graph, u, tol=1e-10, dangling="absorb")
            vec = power_iteration_ppv(tiny_graph, u, tol=1e-10)
            np.testing.assert_allclose(ref, vec, atol=1e-7)

    def test_dangling_to_query_conserves_mass(self):
        g = DiGraph.from_edges(3, [(0, 1), (1, 2)])  # node 2 dangles
        ppv = power_iteration_reference(g, 0, tol=1e-12, dangling="to_query")
        assert ppv.sum() == pytest.approx(1.0, abs=1e-6)

    def test_dangling_modes_differ(self):
        g = DiGraph.from_edges(3, [(0, 1), (1, 2)])
        a = power_iteration_reference(g, 0, tol=1e-12, dangling="to_query")
        b = power_iteration_reference(g, 0, tol=1e-12, dangling="absorb")
        assert a.sum() > b.sum()

    def test_bad_mode(self, tiny_graph):
        with pytest.raises(QueryError):
            power_iteration_reference(tiny_graph, 0, dangling="bounce")

    def test_bad_query(self, tiny_graph):
        with pytest.raises(QueryError):
            power_iteration_reference(tiny_graph, -1)
