"""Sparse end-to-end query pipeline: exact sparse-vs-dense equivalence.

The contract is *exactness*: for every engine, both distributed runtimes,
the sharded router and the serving frontend, ``query_many_sparse`` must
reproduce the dense ``query_many`` result with ``toarray()`` equality
(bitwise on the flat/distributed engines — the sparse paths replay the
dense accumulation order term by term), sparse top-k must equal dense
top-k (ids *and* scores), and the cache must account sparse entries at
their true-nnz wire size.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.approx import build_fastppv_index
from repro.core import (
    SparseVec,
    build_gpa_index,
    build_hgpa_ad_index,
    build_hgpa_index,
)
from repro.core.flat_index import (
    topk_in_batches,
    topk_rows,
    topk_rows_reference,
)
from repro.core.sparse_ops import topk_rows_sparse
from repro.distributed import DistributedGPA, DistributedHGPA
from repro.graph import hierarchical_community_digraph
from repro.serving import PPVCache, PPVService, SimulatedClock, as_backend
from repro.sharding import ShardRouter, owner_map_from_partition


def _mixed_queries(hubs, n, count=14, seed=29):
    """Random nodes plus a few hubs and one duplicate."""
    rng = np.random.default_rng(seed)
    picks = rng.choice(n, size=count, replace=False).tolist()
    extra = np.asarray(hubs)[:3].tolist()
    return np.asarray(picks + extra + picks[:1], dtype=np.int64)


def _assert_exact(sparse_mat, dense_mat):
    assert sp.issparse(sparse_mat)
    assert sparse_mat.shape == dense_mat.shape
    arr = sparse_mat.toarray()
    assert np.array_equal(arr, dense_mat), (
        f"sparse/dense mismatch, max |diff| = "
        f"{np.max(np.abs(arr - dense_mat)) if arr.size else 0}"
    )


def _assert_stats_equal(sparse_stats, dense_stats):
    assert len(sparse_stats) == len(dense_stats)
    for a, b in zip(sparse_stats, dense_stats):
        assert a.entries_processed == b.entries_processed
        assert a.vectors_used == b.vectors_used
        # Sparse paths charge the actual nnz skeleton entries they read;
        # dense paths scan (and are charged) the full hub sets.
        assert 0 <= a.skeleton_lookups <= b.skeleton_lookups


# ----------------------------------------------------------------------
# Index families
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def hgpa_ad_small(request):
    graph = request.getfixturevalue("small_graph")
    return build_hgpa_ad_index(graph, tol=1e-6, seed=0)


@pytest.fixture(scope="module")
def pruned_gpa_small(request):
    graph = request.getfixturevalue("small_graph")
    return build_gpa_index(graph, 4, tol=1e-6, prune=1e-3, seed=0)


FAMILIES = ["jw_small", "gpa_small", "hgpa_small", "hgpa_ad_small", "pruned_gpa_small"]


def _hubs_of(index):
    hubs = getattr(index, "hubs", None)
    if hubs is not None:
        return hubs
    n = index.graph.num_nodes
    return np.asarray([u for u in range(n) if index.hierarchy.is_hub(u)])


class TestEngineEquivalence:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_sparse_matches_dense_exactly(self, request, family):
        index = request.getfixturevalue(family)
        n = index.graph.num_nodes
        queries = _mixed_queries(_hubs_of(index), n)
        dense, dense_stats = index.query_many(queries)
        sparse, sparse_stats = index.query_many_sparse(queries)
        _assert_exact(sparse, dense)
        _assert_stats_equal(sparse_stats, dense_stats)

    @pytest.mark.parametrize("family", FAMILIES)
    def test_collect_stats_off_same_matrix(self, request, family):
        index = request.getfixturevalue(family)
        queries = _mixed_queries(_hubs_of(index), index.graph.num_nodes)
        dense, _ = index.query_many(queries)
        fast_dense, meta_d = index.query_many(queries, collect_stats=False)
        fast_sparse, meta_s = index.query_many_sparse(
            queries, collect_stats=False
        )
        assert meta_d == [] and meta_s == []
        assert np.array_equal(fast_dense, dense)
        _assert_exact(fast_sparse, dense)

    @pytest.mark.parametrize("family", FAMILIES)
    @pytest.mark.parametrize("threshold", [None, 1e-3])
    def test_sparse_topk_matches_dense_topk(self, request, family, threshold):
        index = request.getfixturevalue(family)
        n = index.graph.num_nodes
        queries = _mixed_queries(_hubs_of(index), n)
        ids_d, scores_d, _ = index.query_many_topk(
            queries, 10, threshold=threshold
        )
        ids_s, scores_s, _ = topk_in_batches(
            index.query_many_sparse, queries, 10, n, threshold=threshold
        )
        assert np.array_equal(ids_s, ids_d)
        assert np.array_equal(scores_s, scores_d)

    @pytest.mark.parametrize("family", ["gpa_small", "hgpa_small"])
    def test_empty_and_chunked_batches(self, request, family):
        index = request.getfixturevalue(family)
        n = index.graph.num_nodes
        empty, meta = index.query_many_sparse(np.asarray([], dtype=np.int64))
        assert empty.shape == (0, n) and meta == []
        # A batch larger than the internal chunk exercises the stacked path.
        rng = np.random.default_rng(5)
        big = rng.choice(n, size=300).astype(np.int64)
        dense, _ = index.query_many(big)
        sparse, _ = index.query_many_sparse(big)
        _assert_exact(sparse, dense)

    def test_fastppv_sparse_is_dense_sparsified(self, request):
        graph = request.getfixturevalue("small_graph")
        index = build_fastppv_index(graph, 25, tol=1e-6)
        queries = np.arange(0, 60, 4)
        dense, infos_d = index.query_many(queries)
        sparse, infos_s = index.query_many_sparse(queries)
        _assert_exact(sparse, dense)
        assert len(infos_d) == len(infos_s) == queries.size

    def test_property_random_graphs(self):
        """Random graphs × flat/HGPA × mixed batches: exact agreement."""
        for seed in (1, 2):
            g = hierarchical_community_digraph(
                130, avg_out_degree=3, seed=seed
            ).with_dangling_policy("self_loop")
            gpa = build_gpa_index(g, 3, tol=1e-6, prune=1e-3, seed=seed)
            hgpa = build_hgpa_index(g, tol=1e-6, prune=1e-3, seed=seed)
            for index in (gpa, hgpa):
                queries = _mixed_queries(_hubs_of(index), 130, seed=seed + 7)
                dense, ds = index.query_many(queries)
                sparse, ss = index.query_many_sparse(queries)
                _assert_exact(sparse, dense)
                _assert_stats_equal(ss, ds)

    def test_non_default_alpha_stays_bitwise(self):
        """Exactness must hold for any alpha, not just the 0.15 default.

        ``x / alpha`` and ``x * (1/alpha)`` round differently for most
        alphas; every sparse path must use its dense twin's exact scaling
        operation (the runtimes divide, the core indexes multiply).
        """
        g = hierarchical_community_digraph(
            120, avg_out_degree=3, seed=4
        ).with_dangling_policy("self_loop")
        for alpha in (0.2, 0.85):
            gpa = build_gpa_index(g, 3, alpha=alpha, tol=1e-6, seed=0)
            hgpa = build_hgpa_index(g, alpha=alpha, tol=1e-6, seed=0)
            engines = [
                gpa,
                hgpa,
                DistributedGPA(gpa, 3),
                DistributedHGPA(hgpa, 3),
            ]
            queries = np.arange(0, 120, 5)
            for engine in engines:
                dense, _ = engine.query_many(queries)
                sparse, _ = engine.query_many_sparse(queries)
                _assert_exact(sparse, dense)


# ----------------------------------------------------------------------
# Distributed runtimes
# ----------------------------------------------------------------------
class TestDistributedSparse:
    @pytest.fixture(scope="class")
    def runtimes(self, medium_graph):
        gpa = build_gpa_index(medium_graph, 4, tol=1e-6, prune=1e-3, seed=0)
        hgpa = build_hgpa_index(medium_graph, tol=1e-6, prune=1e-3, seed=0)
        return {
            "gpa": (gpa, lambda: DistributedGPA(gpa, 3)),
            "hgpa": (hgpa, lambda: DistributedHGPA(hgpa, 3)),
        }

    @pytest.mark.parametrize("kind", ["gpa", "hgpa"])
    def test_sparse_matches_dense_with_identical_wire(self, runtimes, kind):
        index, make = runtimes[kind]
        cluster = make()
        queries = _mixed_queries(_hubs_of(index), cluster.num_nodes)
        before = cluster.coordinator.meter.total_bytes
        dense, dense_reports = cluster.query_many(queries)
        dense_bytes = cluster.coordinator.meter.total_bytes - before
        before = cluster.coordinator.meter.total_bytes
        sparse, sparse_reports = cluster.query_many_sparse(queries)
        sparse_bytes = cluster.coordinator.meter.total_bytes - before
        _assert_exact(sparse, dense)
        # The sparse path ships the same payloads: identical nnz, hence
        # identical metered bytes and identical per-machine reports.
        assert sparse_bytes == dense_bytes
        assert len(sparse_reports) == len(dense_reports)
        for a, b in zip(sparse_reports, dense_reports):
            assert a.per_machine_entries == b.per_machine_entries
            assert a.per_machine_bytes == b.per_machine_bytes
            assert a.communication_bytes == b.communication_bytes

    @pytest.mark.parametrize("kind", ["gpa", "hgpa"])
    def test_collect_stats_off(self, runtimes, kind):
        index, make = runtimes[kind]
        cluster = make()
        queries = _mixed_queries(_hubs_of(index), cluster.num_nodes)
        dense, _ = cluster.query_many(queries)
        fast_d, meta_d = cluster.query_many(queries, collect_stats=False)
        fast_s, meta_s = cluster.query_many_sparse(queries, collect_stats=False)
        assert meta_d == [] and meta_s == []
        assert np.array_equal(fast_d, dense)
        _assert_exact(fast_s, dense)

    @pytest.mark.parametrize("kind", ["gpa", "hgpa"])
    def test_chunked_big_batch(self, runtimes, kind):
        index, make = runtimes[kind]
        cluster = make()
        rng = np.random.default_rng(13)
        big = rng.choice(cluster.num_nodes, size=300).astype(np.int64)
        dense, _ = cluster.query_many(big)
        sparse, _ = cluster.query_many_sparse(big)
        _assert_exact(sparse, dense)


# ----------------------------------------------------------------------
# Serving adapter
# ----------------------------------------------------------------------
class _DenseOnlyEngine:
    """An engine exposing only a dense ``query_many`` (no sparse path)."""

    def __init__(self, index):
        self.graph = index.graph
        self._index = index

    def query_many(self, nodes):
        return self._index.query_many(nodes)


class TestAdapterSparse:
    def test_native_passthrough(self, gpa_small):
        backend = as_backend(gpa_small)
        assert backend.supports_sparse
        queries = _mixed_queries(gpa_small.hubs, gpa_small.graph.num_nodes)
        dense, _ = backend.query_many(queries)
        sparse, _ = backend.query_many_sparse(queries, collect_stats=False)
        _assert_exact(sparse, dense)

    def test_fallback_sparsifies_dense(self, gpa_small):
        backend = as_backend(_DenseOnlyEngine(gpa_small))
        assert not backend.supports_sparse
        queries = _mixed_queries(gpa_small.hubs, gpa_small.graph.num_nodes)
        dense, _ = backend.query_many(queries)
        sparse, _ = backend.query_many_sparse(queries)
        _assert_exact(sparse, dense)


# ----------------------------------------------------------------------
# Cache with sparse entries
# ----------------------------------------------------------------------
class TestCacheSparseEntries:
    def test_wire_byte_accounting(self):
        cache = PPVCache(10_000)
        vec = SparseVec(np.asarray([2, 5, 9]), np.asarray([0.1, 0.2, 0.3]))
        assert cache.put(7, vec)
        assert cache.current_bytes == vec.wire_bytes == 16 + 12 * 3
        got = cache.get(7)
        assert isinstance(got, SparseVec) and got == vec
        assert cache.stats.hits == 1

    def test_sparse_entries_fit_many_more_rows(self):
        n = 1000
        budget = 8 * n * 4  # room for exactly 4 dense rows
        dense_cache = PPVCache(budget)
        sparse_cache = PPVCache(budget)
        rng = np.random.default_rng(3)
        for u in range(40):
            row = np.zeros(n)
            row[rng.choice(n, size=10, replace=False)] = rng.random(10)
            dense_cache.put(u, row)
            sparse_cache.put(u, SparseVec.from_dense(row))
        assert len(dense_cache) <= 4
        assert len(sparse_cache) == 40  # 136 bytes each vs 8000 dense
        assert sparse_cache.current_bytes <= budget

    def test_eviction_and_invalidate_use_entry_size(self):
        cache = PPVCache(300)
        v1 = SparseVec(np.arange(10), np.ones(10))  # 136 bytes
        v2 = SparseVec(np.arange(10, 20), np.ones(10))
        v3 = SparseVec(np.arange(20, 30), np.ones(10))
        cache.put(1, v1)
        cache.put(2, v2)
        cache.put(3, v3)  # 408 bytes > 300: evicts the LRU entry (key 1)
        assert cache.stats.evictions == 1
        assert 1 not in cache
        assert cache.current_bytes == v2.wire_bytes + v3.wire_bytes
        assert cache.invalidate([1, 2, 3]) == 2  # only 2 and 3 resident
        assert cache.current_bytes == 0 and len(cache) == 0

    def test_mixed_dense_and_sparse_entries(self):
        cache = PPVCache(100_000)
        row = np.zeros(50)
        row[3] = 0.5
        cache.put(1, row)
        cache.put(2, SparseVec.from_dense(row))
        assert cache.current_bytes == row.nbytes + (16 + 12)
        assert isinstance(cache.get(1), np.ndarray)
        assert isinstance(cache.get(2), SparseVec)


# ----------------------------------------------------------------------
# Sharded router + service
# ----------------------------------------------------------------------
class TestShardedSparse:
    @pytest.fixture(scope="class")
    def setup(self, medium_graph):
        index = build_gpa_index(medium_graph, 4, tol=1e-6, prune=1e-3, seed=0)
        omap = owner_map_from_partition(index.partition, num_shards=3)
        make = lambda: ShardRouter(  # noqa: E731 - tiny factory
            [[index, index]] * 3,
            policy="owner",
            owner_map=omap,
            cache_bytes=1 << 20,
        )
        rng = np.random.default_rng(23)
        stream = rng.choice(medium_graph.num_nodes, 90).astype(np.int64)
        return index, make, stream

    def test_router_sparse_matches_dense(self, setup):
        index, make, stream = setup
        dense_router, sparse_router = make(), make()
        dense, infos_d = dense_router.query_many(stream)
        sparse, infos_s = sparse_router.query_many_sparse(stream)
        _assert_exact(sparse, dense)
        assert [i.shard for i in infos_s] == [i.shard for i in infos_d]
        assert [i.cached for i in infos_s] == [i.cached for i in infos_d]

    def test_router_sparse_topk_matches_dense(self, setup):
        index, make, stream = setup
        dense_router, sparse_router = make(), make()
        ids_d, scores_d, _ = dense_router.query_many_topk(stream, 12)
        ids_s, scores_s, _ = sparse_router.query_many_topk(
            stream, 12, sparse=True
        )
        assert np.array_equal(ids_s, ids_d)
        assert np.array_equal(scores_s, scores_d)

    def test_sparse_cache_hits_and_wire_accounting(self, setup):
        index, make, stream = setup
        router = make()
        router.query_many_sparse(stream)
        # Second pass: every row served from the shard caches.
        _, infos = router.query_many_sparse(stream)
        assert all(i.cached for i in infos)
        stats = router.stats()
        assert stats.cache is not None and stats.cache.hits == stream.size
        # Shard caches hold SparseVec entries accounted at wire size.
        for shard in router.shards:
            assert shard.cache.current_bytes == sum(
                e.wire_bytes for e in shard.cache._store.values()
            )
        # Response legs were metered per sparse row (header + nnz entries),
        # strictly below the dense rows' 8n bytes on this pruned index.
        n = router.num_nodes
        sparse_resp = sum(
            router.meter.by_link.get((f"shard-{s}", "router"), 0)
            for s in range(3)
        )
        assert sparse_resp < 2 * stream.size * 8 * n

    def test_service_sparse_mode_matches_dense(self, setup):
        index, make, stream = setup
        svc_dense = PPVService(
            make(), window=0.005, cache=1 << 20, clock=SimulatedClock()
        )
        svc_sparse = PPVService(
            make(),
            window=0.005,
            cache=1 << 20,
            clock=SimulatedClock(),
            sparse=True,
            collect_stats=False,
        )
        rng = np.random.default_rng(2)
        arrivals = np.cumsum(rng.random(stream.size) * 0.002)
        dense = svc_dense.serve(stream, arrivals)
        sparse = svc_sparse.serve(stream, arrivals)
        _assert_exact(sparse, dense)
        # Tickets resolve to SparseVec rows; topk agrees with dense.
        vec = svc_sparse.query(int(stream[0]))
        assert isinstance(vec, SparseVec)
        ids_d, scores_d = svc_dense.query_topk(int(stream[0]), 9)
        ids_s, scores_s = svc_sparse.query_topk(int(stream[0]), 9)
        assert np.array_equal(ids_s, ids_d)
        assert np.array_equal(scores_s, scores_d)
        # Cache accounting: every entry at its true-nnz wire size.
        assert svc_sparse.cache.current_bytes == sum(
            e.wire_bytes for e in svc_sparse.cache._store.values()
        )


# ----------------------------------------------------------------------
# Vectorised top-k vs the per-row oracle
# ----------------------------------------------------------------------
class TestTopkRowsVectorised:
    def _random_matrices(self):
        rng = np.random.default_rng(42)
        for trial in range(60):
            rows = int(rng.integers(1, 9))
            n = int(rng.integers(1, 50))
            dense = np.where(
                rng.random((rows, n)) < 0.4, rng.random((rows, n)), 0.0
            )
            if trial % 4 == 0:
                # Heavy ties: quantised scores, including negatives.
                dense = np.round(dense, 1) - (trial % 8 == 0) * 0.05
            k = int(rng.integers(1, n + 3))
            threshold = None if trial % 3 else 0.25
            yield dense, k, threshold

    def test_matches_reference_oracle(self):
        for dense, k, threshold in self._random_matrices():
            ids_v, scores_v = topk_rows(dense, k, threshold=threshold)
            ids_r, scores_r = topk_rows_reference(dense, k, threshold=threshold)
            assert np.array_equal(ids_v, ids_r), (dense, k, threshold)
            assert np.array_equal(scores_v, scores_r)

    def test_sparse_matches_reference_oracle(self):
        for dense, k, threshold in self._random_matrices():
            ids_s, scores_s = topk_rows_sparse(
                sp.csr_matrix(dense), k, threshold=threshold
            )
            ids_r, scores_r = topk_rows_reference(dense, k, threshold=threshold)
            assert np.array_equal(ids_s, ids_r), (dense, k, threshold)
            assert np.array_equal(scores_s, scores_r)

    def test_tie_contract_at_boundary(self):
        # All-equal rows: the k smallest ids win, ascending.
        dense = np.full((2, 7), 0.5)
        ids, scores = topk_rows(dense, 3)
        assert np.array_equal(ids, [[0, 1, 2], [0, 1, 2]])
        # Zero rows through the sparse path: implicit zeros tie by id.
        ids_s, scores_s = topk_rows_sparse(sp.csr_matrix((2, 7)), 3)
        assert np.array_equal(ids_s, [[0, 1, 2], [0, 1, 2]])
        assert np.array_equal(scores_s, np.zeros((2, 3)))
