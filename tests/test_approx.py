"""Tests for the approximate baselines: FastPPV and Monte-Carlo."""

import numpy as np
import pytest

from repro.approx import build_fastppv_index, monte_carlo_ppv
from repro.errors import IndexBuildError, QueryError
from repro.metrics import average_l1, l_inf, precision_at_k


@pytest.fixture(scope="module")
def fast100(request):
    small_graph = request.getfixturevalue("small_graph")
    return build_fastppv_index(small_graph, 20, tol=1e-7)


class TestFastPPV:
    def test_full_expansion_near_exact(self, small_graph, fast100, reference_ppv):
        for u in (0, 50, 150):
            vec, info = fast100.query_detailed(u, frontier_cutoff=1e-12)
            assert l_inf(vec, reference_ppv(u)) < 1e-5
            assert info.residual_mass < 1e-6

    def test_budget_trades_accuracy(self, fast100, reference_ppv):
        u = 42
        ref = reference_ppv(u)
        errs = []
        for budget in (0, 2, 50, 10_000):
            vec = fast100.query(u, max_expansions=budget)
            errs.append(average_l1(vec, ref))
        assert errs[-1] <= errs[0] + 1e-12  # more budget never hurts
        assert errs[-1] < 1e-6

    def test_residual_bounds_error(self, fast100, reference_ppv):
        u = 13
        vec, info = fast100.query_detailed(u, max_expansions=1)
        err_total = np.abs(vec - reference_ppv(u)).sum()
        # Unexpanded frontier mass bounds the missing tour weight.
        assert err_total <= info.residual_mass + 1e-4

    def test_more_hubs_fewer_residuals(self, small_graph, fast100):
        big = build_fastppv_index(small_graph, 60, tol=1e-7)
        u = 7
        _, few = fast100.query_detailed(u, max_expansions=10)
        _, many = big.query_detailed(u, max_expansions=10)
        # More hubs capture more structure per expansion on average;
        # at minimum both runs stay well-formed.
        assert few.residual_mass >= 0 and many.residual_mass >= 0

    def test_top_k_quality(self, fast100, reference_ppv):
        vec = fast100.query(99)
        assert precision_at_k(vec, reference_ppv(99), 20) >= 0.9

    def test_bad_args(self, small_graph, fast100):
        with pytest.raises(IndexBuildError):
            build_fastppv_index(small_graph, 0)
        with pytest.raises(QueryError):
            fast100.query(10_000)

    def test_index_size_accounted(self, fast100):
        assert fast100.total_bytes() > 0


class TestMonteCarlo:
    def test_concentrates_with_walks(self, small_graph, reference_ppv):
        ref = reference_ppv(3)
        coarse = monte_carlo_ppv(small_graph, 3, num_walks=500, seed=0)
        fine = monte_carlo_ppv(small_graph, 3, num_walks=50_000, seed=0)
        assert average_l1(fine, ref) < average_l1(coarse, ref)
        assert l_inf(fine, ref) < 0.01

    def test_is_distribution(self, small_graph):
        vec = monte_carlo_ppv(small_graph, 0, num_walks=2000, seed=1)
        assert vec.sum() == pytest.approx(1.0, abs=1e-9)
        assert (vec >= 0).all()

    def test_deterministic_by_seed(self, small_graph):
        a = monte_carlo_ppv(small_graph, 5, num_walks=1000, seed=7)
        b = monte_carlo_ppv(small_graph, 5, num_walks=1000, seed=7)
        np.testing.assert_array_equal(a, b)
        c = monte_carlo_ppv(small_graph, 5, num_walks=1000, seed=8)
        assert not np.array_equal(a, c)

    def test_dangling_counts_at_node(self):
        from repro.graph import DiGraph

        g = DiGraph.from_edges(2, [(0, 1)])
        vec = monte_carlo_ppv(g, 0, num_walks=5000, seed=2)
        assert vec.sum() == pytest.approx(1.0, abs=1e-9)
        assert vec[1] > 0.5  # most walks stick at the dangling node

    def test_bad_args(self, small_graph):
        with pytest.raises(QueryError):
            monte_carlo_ppv(small_graph, -1)
        with pytest.raises(QueryError):
            monte_carlo_ppv(small_graph, 0, num_walks=0)
