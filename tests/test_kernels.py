"""The fast-kernel dispatch seam: capability probe, fallback, exactness.

Three layers of guarantees:

* **Probe/dispatch** — ``probe()`` runs once and caches, env overrides
  are honoured, unavailable/unknown backends silently downgrade to
  scipy with the reason recorded (never an exception), and the report
  is JSON-serialisable (it rides in every bench payload).
* **Fallback** — with numba absent or ``REPRO_KERNELS=scipy``,
  ``implementation(op)`` returns the *original* baseline callables and
  every wrapper runs its inline path: a missing accelerator changes
  nothing but speed.
* **Exactness** — the ``python`` backend runs the njit-able kernel
  sources uncompiled, so every compiled code path is asserted exactly
  equal to its scipy/numpy oracle without numba in the container:
  bitwise on dense results, ``(indptr, indices, data)``-identical on
  sparse ones, across fuzzed inputs and the contractual edge cases
  (empty batches, all-ties rows, threshold boundaries, all-zero pruned
  rows, int32/int64 index dtypes).
"""

import importlib.util
import json
import operator

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.decomposition import as_view, partial_vectors
from repro.core.flat_index import topk_rows, topk_rows_reference
from repro.core.gpa import build_gpa_index
from repro.core.hgpa import build_hgpa_index
from repro.core.power_iteration import power_iteration_ppv
from repro.core.sparse_ops import sparse_add, spgemm_scaled, topk_rows_sparse
from repro.errors import ConvergenceError, QueryError
from repro.graph import DiGraph
from repro.kernels import (
    Kernels,
    active_kernels,
    get_kernels,
    probe,
    resolve_kernels,
)
from repro.kernels.capability import ENV_VAR, VALID_BACKENDS
from repro.kernels.pykernels import KERNEL_OPS

HAVE_NUMBA = importlib.util.find_spec("numba") is not None

#: Backends whose results must match the scipy baseline exactly.
FAST_BACKENDS = ["python"] + (["numba"] if HAVE_NUMBA else [])

PROP_SETTINGS = dict(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@pytest.fixture
def fresh_probe(monkeypatch):
    """Run a test against a refreshed probe, restoring the cache after."""
    yield monkeypatch
    monkeypatch.delenv(ENV_VAR, raising=False)
    probe(refresh=True)


def _random_csr(rng, rows, cols, density=0.1, zero_rows=()) -> sp.csr_matrix:
    mat = sp.random(rows, cols, density=density, format="csr", rng=rng)
    mat.sort_indices()
    mat.sum_duplicates()
    if len(zero_rows) and rows:
        lil = mat.tolil()
        for r in zero_rows:
            lil.rows[r % rows] = []
            lil.data[r % rows] = []
        mat = lil.tocsr()
        mat.sort_indices()
    return mat


def _ring_graph(n=12) -> DiGraph:
    src = np.arange(n)
    dst = (src + 1) % n
    extra_src = np.arange(0, n, 3)
    extra_dst = (extra_src + n // 2) % n
    g = DiGraph.from_arrays(
        n, np.concatenate([src, extra_src]), np.concatenate([dst, extra_dst])
    )
    return g.with_dangling_policy("self_loop")


# ---------------------------------------------------------------------------
class TestProbe:
    def test_probe_is_cached_until_refreshed(self):
        first = probe()
        assert probe() is first
        refreshed = probe(refresh=True)
        assert refreshed is not first
        assert probe() is refreshed

    def test_env_forces_backend(self, fresh_probe):
        fresh_probe.setenv(ENV_VAR, "python")
        report = probe(refresh=True)
        assert report.requested == "python"
        assert report.backend == "python"

    def test_unknown_env_value_falls_back_to_auto(self, fresh_probe):
        fresh_probe.setenv(ENV_VAR, "quantum")
        report = probe(refresh=True)
        assert report.requested == "auto"
        assert report.backend in VALID_BACKENDS
        assert any("quantum" in note for note in report.notes)

    @pytest.mark.skipif(HAVE_NUMBA, reason="exercises the numba-absent path")
    def test_numba_requested_but_absent_downgrades_with_reason(
        self, fresh_probe
    ):
        fresh_probe.setenv(ENV_VAR, "numba")
        report = probe(refresh=True)
        assert report.backend == "scipy"
        assert any("unavailable" in note for note in report.notes)
        cap = report.capability("numba")
        assert cap is not None and not cap.available and cap.reason

    @pytest.mark.skipif(HAVE_NUMBA, reason="exercises the numba-absent path")
    def test_auto_without_numba_is_scipy(self, fresh_probe):
        fresh_probe.delenv(ENV_VAR, raising=False)
        assert probe(refresh=True).backend == "scipy"

    def test_report_is_json_serialisable(self):
        payload = json.loads(json.dumps(probe().as_dict()))
        assert set(payload) == {"requested", "backend", "capabilities", "notes"}
        assert {c["name"] for c in payload["capabilities"]} >= {"numba", "cupy"}

    def test_probe_never_raises_on_detection(self):
        # The probe contract: downgrades are recorded, not raised.
        report = probe(refresh=True)
        assert report.backend in ("scipy", "numba", "python")
        probe(refresh=True)


# ---------------------------------------------------------------------------
class TestDispatch:
    def test_scipy_bundle_is_empty_and_falls_back_to_baselines(self):
        bundle = get_kernels("scipy")
        assert bundle.backend == "scipy"
        for op in KERNEL_OPS:
            assert getattr(bundle, op) is None
        assert bundle.implementation("topk_dense") is topk_rows
        assert bundle.implementation("topk_sparse") is topk_rows_sparse
        assert bundle.implementation("spgemm_csc") is operator.matmul
        assert bundle.implementation("cs_add") is operator.add
        assert bundle.implementation("power_solve") is power_iteration_ppv
        assert bundle.implementation("percol_solve") is partial_vectors

    def test_python_bundle_accelerates_every_op(self):
        bundle = get_kernels("python")
        assert bundle.backend == "python"
        for op in KERNEL_OPS:
            fn = getattr(bundle, op)
            assert callable(fn)
            assert bundle.implementation(op) is fn

    def test_bundles_are_cached_per_backend(self):
        assert get_kernels("python") is get_kernels("python")
        assert get_kernels("scipy") is get_kernels("scipy")

    def test_unknown_backend_downgrades_to_scipy_with_note(self):
        bundle = get_kernels("fpga")
        assert bundle.backend == "scipy"
        assert any("fpga" in note for note in bundle.report.notes)
        for op in KERNEL_OPS:
            assert getattr(bundle, op) is None

    def test_unknown_op_raises_library_error(self):
        with pytest.raises(QueryError):
            get_kernels("scipy").implementation("fft")

    def test_resolve_kernels_accepts_all_three_forms(self):
        bundle = get_kernels("python")
        assert resolve_kernels(bundle) is bundle
        assert resolve_kernels("python") is bundle
        assert isinstance(resolve_kernels(None), Kernels)
        assert resolve_kernels(None) is active_kernels()

    @pytest.mark.skipif(HAVE_NUMBA, reason="exercises the numba-absent path")
    def test_numba_bundle_without_numba_downgrades(self):
        bundle = get_kernels("numba")
        assert bundle.backend == "scipy"
        assert any("unavailable" in note for note in bundle.report.notes)

    @pytest.mark.skipif(HAVE_NUMBA, reason="exercises the numba-absent path")
    def test_default_dispatch_without_numba_is_baseline(self, fresh_probe):
        """The headline fallback: numba absent -> auto dispatch IS scipy,
        and forcing REPRO_KERNELS=scipy is indistinguishable."""
        for env in (None, "scipy"):
            if env is None:
                fresh_probe.delenv(ENV_VAR, raising=False)
            else:
                fresh_probe.setenv(ENV_VAR, env)
            probe(refresh=True)
            bundle = active_kernels()
            assert bundle.backend == "scipy"
            assert bundle.implementation("topk_dense") is topk_rows
            assert bundle.implementation("percol_solve") is partial_vectors


# ---------------------------------------------------------------------------
@pytest.mark.parametrize("backend", FAST_BACKENDS)
class TestTopkEquivalence:
    def test_matches_reference_oracle(self, backend):
        rng = np.random.default_rng(3)
        dense = rng.random((7, 40))
        for k in (1, 5, 40, 99):
            ids, scores = topk_rows(dense, k, kernels=backend)
            ref_ids, ref_scores = topk_rows_reference(dense, k)
            np.testing.assert_array_equal(ids, ref_ids)
            np.testing.assert_array_equal(scores, ref_scores)

    def test_all_ties_rows_break_by_smaller_id(self, backend):
        dense = np.full((3, 9), 0.25)
        ids, scores = topk_rows(dense, 4, kernels=backend)
        np.testing.assert_array_equal(
            ids, np.tile(np.arange(4, dtype=np.int64), (3, 1))
        )
        ref = topk_rows_reference(dense, 4)
        np.testing.assert_array_equal(ids, ref[0])
        np.testing.assert_array_equal(scores, ref[1])

    def test_threshold_boundary_is_exclusive(self, backend):
        dense = np.asarray([[0.5, 0.2, 0.1, 0.0]])
        # score <= threshold is dropped: the boundary score 0.2 goes.
        ids, scores = topk_rows(dense, 3, threshold=0.2, kernels=backend)
        np.testing.assert_array_equal(ids, [[0, -1, -1]])
        np.testing.assert_array_equal(scores, [[0.5, 0.0, 0.0]])
        ref = topk_rows_reference(dense, 3, threshold=0.2)
        np.testing.assert_array_equal(ids, ref[0])
        np.testing.assert_array_equal(scores, ref[1])

    def test_empty_batch(self, backend):
        ids, scores = topk_rows(np.zeros((0, 6)), 3, kernels=backend)
        assert ids.shape == (0, 3) and scores.shape == (0, 3)

    def test_sparse_matches_dense_twin(self, backend):
        rng = np.random.default_rng(4)
        mat = _random_csr(rng, 9, 50, density=0.2, zero_rows=(0, 4))
        for k, threshold in ((1, None), (6, None), (50, None), (6, 0.1)):
            ids, scores = topk_rows_sparse(
                mat, k, threshold=threshold, kernels=backend
            )
            ref = topk_rows_reference(mat.toarray(), k, threshold=threshold)
            np.testing.assert_array_equal(ids, ref[0])
            np.testing.assert_array_equal(scores, ref[1])

    def test_sparse_all_zero_pruned_rows(self, backend):
        """Fully-pruned PPV rows: ties on 0.0 resolve to the smallest ids."""
        mat = sp.csr_matrix((3, 8))
        ids, scores = topk_rows_sparse(mat, 4, kernels=backend)
        np.testing.assert_array_equal(
            ids, np.tile(np.arange(4, dtype=np.int64), (3, 1))
        )
        assert (scores == 0.0).all()

    def test_sparse_index_dtype_invariance(self, backend):
        rng = np.random.default_rng(5)
        mat = _random_csr(rng, 5, 30, density=0.3)
        for dtype in (np.int32, np.int64):
            cast = sp.csr_matrix(
                (
                    mat.data,
                    mat.indices.astype(dtype),
                    mat.indptr.astype(dtype),
                ),
                shape=mat.shape,
            )
            ids, scores = topk_rows_sparse(cast, 7, kernels=backend)
            ref = topk_rows_reference(mat.toarray(), 7)
            np.testing.assert_array_equal(ids, ref[0])
            np.testing.assert_array_equal(scores, ref[1])

    @settings(**PROP_SETTINGS)
    @given(
        seed=st.integers(0, 10_000),
        rows=st.integers(0, 8),
        cols=st.integers(1, 60),
        k=st.integers(1, 70),
    )
    def test_fuzz_sparse_topk(self, backend, seed, rows, cols, k):
        rng = np.random.default_rng(seed)
        mat = _random_csr(rng, rows, cols, density=0.25)
        ids, scores = topk_rows_sparse(mat, k, kernels=backend)
        ref = topk_rows_reference(mat.toarray(), k)
        np.testing.assert_array_equal(ids, ref[0])
        np.testing.assert_array_equal(scores, ref[1])


# ---------------------------------------------------------------------------
@pytest.mark.parametrize("backend", FAST_BACKENDS)
class TestSparseOpsEquivalence:
    def test_spgemm_bitwise_vs_scipy(self, backend):
        rng = np.random.default_rng(6)
        part = sp.random(9, 30, density=0.3, format="csc", rng=rng)
        part.sort_indices()
        w = _random_csr(rng, 25, 30, density=0.2)
        base = spgemm_scaled(part, w, 1.0 / 0.15, kernels="scipy")
        fast = spgemm_scaled(part, w, 1.0 / 0.15, kernels=backend)
        np.testing.assert_array_equal(fast.indptr, base.indptr)
        np.testing.assert_array_equal(fast.indices, base.indices)
        np.testing.assert_array_equal(fast.data, base.data)
        assert fast.has_sorted_indices and fast.has_canonical_format

    def test_spgemm_divide_mode(self, backend):
        rng = np.random.default_rng(7)
        part = sp.random(4, 12, density=0.4, format="csc", rng=rng)
        part.sort_indices()
        w = _random_csr(rng, 10, 12, density=0.3)
        base = spgemm_scaled(part, w, 0.15, divide=True, kernels="scipy")
        fast = spgemm_scaled(part, w, 0.15, divide=True, kernels=backend)
        np.testing.assert_array_equal(fast.data, base.data)
        np.testing.assert_array_equal(fast.indices, base.indices)

    def test_add_bitwise_vs_scipy(self, backend):
        rng = np.random.default_rng(8)
        for fmt in ("csr", "csc"):
            a = _random_csr(rng, 8, 40, density=0.2).asformat(fmt)
            b = _random_csr(rng, 8, 40, density=0.2).asformat(fmt)
            a.sort_indices()
            b.sort_indices()
            base = a + b
            fast = sparse_add(a, b, kernels=backend)
            assert fast.format == fmt
            np.testing.assert_array_equal(fast.indptr, base.indptr)
            np.testing.assert_array_equal(fast.indices, base.indices)
            np.testing.assert_array_equal(fast.data, base.data)

    def test_add_drops_exact_zero_results(self, backend):
        a = sp.csr_matrix(np.asarray([[1.5, 0.0, -2.0]]))
        b = sp.csr_matrix(np.asarray([[-1.5, 3.0, 2.0]]))
        out = sparse_add(a, b, kernels=backend)
        ref = a + b
        assert out.nnz == ref.nnz == 1
        np.testing.assert_array_equal(out.toarray(), ref.toarray())

    def test_add_non_canonical_falls_back_exactly(self, backend):
        # Unsorted indices: the kernel gate must refuse and scipy serve.
        a = sp.csr_matrix(
            (np.asarray([2.0, 1.0]), np.asarray([2, 0]), np.asarray([0, 2])),
            shape=(1, 3),
        )
        assert not a.has_sorted_indices
        b = sp.csr_matrix(np.asarray([[0.5, 0.0, 0.5]]))
        out = sparse_add(a, b, kernels=backend)
        np.testing.assert_array_equal(
            out.toarray(), np.asarray([[1.5, 0.0, 2.5]])
        )

    def test_add_mixed_formats_fall_back(self, backend):
        a = sp.csr_matrix(np.asarray([[1.0, 0.0], [0.0, 2.0]]))
        b = sp.csc_matrix(np.asarray([[0.0, 1.0], [1.0, 0.0]]))
        out = sparse_add(a, b, kernels=backend)
        np.testing.assert_array_equal(
            out.toarray(), np.asarray([[1.0, 1.0], [1.0, 2.0]])
        )

    def test_empty_operands(self, backend):
        empty = sp.csr_matrix((3, 7))
        other = _random_csr(np.random.default_rng(9), 3, 7, density=0.3)
        out = sparse_add(empty, other, kernels=backend)
        np.testing.assert_array_equal(out.toarray(), other.toarray())
        prod = spgemm_scaled(
            sp.csc_matrix((2, 5)),
            _random_csr(np.random.default_rng(10), 4, 5, density=0.3),
            2.0,
            kernels=backend,
        )
        assert prod.shape == (2, 4) and prod.nnz == 0

    @settings(**PROP_SETTINGS)
    @given(seed=st.integers(0, 10_000))
    def test_fuzz_spgemm_and_add(self, backend, seed):
        rng = np.random.default_rng(seed)
        rows = int(rng.integers(1, 8))
        mid = int(rng.integers(1, 20))
        cols = int(rng.integers(1, 20))
        part = sp.random(rows, mid, density=0.3, format="csc", rng=rng)
        part.sort_indices()
        w = _random_csr(rng, cols, mid, density=0.3)
        base = spgemm_scaled(part, w, 1.0 / 0.15, kernels="scipy")
        fast = spgemm_scaled(part, w, 1.0 / 0.15, kernels=backend)
        np.testing.assert_array_equal(fast.indptr, base.indptr)
        np.testing.assert_array_equal(fast.indices, base.indices)
        np.testing.assert_array_equal(fast.data, base.data)
        a = _random_csr(rng, rows, cols, density=0.4)
        b = _random_csr(rng, rows, cols, density=0.4)
        ref = a + b
        out = sparse_add(a, b, kernels=backend)
        np.testing.assert_array_equal(out.indptr, ref.indptr)
        np.testing.assert_array_equal(out.indices, ref.indices)
        np.testing.assert_array_equal(out.data, ref.data)


# ---------------------------------------------------------------------------
@pytest.mark.parametrize("backend", FAST_BACKENDS)
class TestSolverEquivalence:
    def test_power_iteration_bitwise(self, backend):
        graph = _ring_graph(14)
        for u in (0, 5, 13):
            base = power_iteration_ppv(graph, u, kernels="scipy")
            fast = power_iteration_ppv(graph, u, kernels=backend)
            np.testing.assert_array_equal(fast, base)

    def test_power_iteration_nonconvergence_parity(self, backend):
        graph = _ring_graph(10)
        with pytest.raises(ConvergenceError):
            power_iteration_ppv(graph, 0, tol=1e-300, max_iter=2, kernels=backend)
        with pytest.raises(ConvergenceError):
            power_iteration_ppv(graph, 0, tol=1e-300, max_iter=2, kernels="scipy")

    def test_percol_solve_bitwise(self, backend):
        graph = _ring_graph(16)
        view = as_view(graph)
        hubs = np.asarray([2, 7, 11])
        sources = np.asarray([0, 3, 7, 15])
        base_d, base_e = partial_vectors(
            view, hubs, sources, per_column=True, kernels="scipy"
        )
        fast_d, fast_e = partial_vectors(
            view, hubs, sources, per_column=True, kernels=backend
        )
        np.testing.assert_array_equal(fast_d, base_d)
        np.testing.assert_array_equal(fast_e, base_e)

    def test_percol_empty_source_batch(self, backend):
        graph = _ring_graph(8)
        d, e = partial_vectors(
            as_view(graph),
            np.asarray([1]),
            np.asarray([], dtype=np.int64),
            per_column=True,
            kernels=backend,
        )
        assert d.shape == (8, 0) and e.shape == (8, 0)

    def test_percol_nonconvergence_parity(self, backend):
        graph = _ring_graph(10)
        view = as_view(graph)
        hubs = np.asarray([], dtype=np.int64)
        sources = np.asarray([0])
        with pytest.raises(ConvergenceError):
            partial_vectors(
                view, hubs, sources, per_column=True, tol=1e-300,
                max_iter=2, kernels=backend,
            )
        with pytest.raises(ConvergenceError):
            partial_vectors(
                view, hubs, sources, per_column=True, tol=1e-300,
                max_iter=2, kernels="scipy",
            )

    @settings(**PROP_SETTINGS)
    @given(seed=st.integers(0, 10_000))
    def test_fuzz_solvers_on_random_graphs(self, backend, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(4, 20))
        m = int(rng.integers(n, 4 * n))
        src = rng.integers(0, n, m)
        dst = rng.integers(0, n, m)
        keep = src != dst
        graph = DiGraph.from_arrays(n, src[keep], dst[keep])
        graph = graph.with_dangling_policy("self_loop")
        u = int(rng.integers(0, n))
        np.testing.assert_array_equal(
            power_iteration_ppv(graph, u, kernels=backend),
            power_iteration_ppv(graph, u, kernels="scipy"),
        )
        hubs = np.unique(rng.integers(0, n, 3))
        base_d, base_e = partial_vectors(
            as_view(graph), hubs, np.asarray([u]), per_column=True,
            kernels="scipy",
        )
        fast_d, fast_e = partial_vectors(
            as_view(graph), hubs, np.asarray([u]), per_column=True,
            kernels=backend,
        )
        np.testing.assert_array_equal(fast_d, base_d)
        np.testing.assert_array_equal(fast_e, base_e)


# ---------------------------------------------------------------------------
@pytest.mark.parametrize("backend", FAST_BACKENDS)
class TestEndToEnd:
    """One switch flips the whole stack, and nothing moves: full indexes
    built on a fast backend answer bitwise-identically to scipy ones."""

    def _graph(self):
        rng = np.random.default_rng(21)
        n, m = 60, 240
        src = rng.integers(0, n, m)
        dst = rng.integers(0, n, m)
        keep = src != dst
        g = DiGraph.from_arrays(n, src[keep], dst[keep])
        return g.with_dangling_policy("self_loop")

    def test_gpa_index_equality(self, backend):
        graph = self._graph()
        base = build_gpa_index(graph, 3, seed=1, kernels="scipy")
        fast = build_gpa_index(graph, 3, seed=1, kernels=backend)
        nodes = np.arange(0, graph.num_nodes, 7)
        base_mat, _ = base.query_many_sparse(nodes)
        fast_mat, _ = fast.query_many_sparse(nodes)
        np.testing.assert_array_equal(fast_mat.toarray(), base_mat.toarray())
        base_ids, base_scores, _ = base.query_many_topk(nodes, 5)
        fast_ids, fast_scores, _ = fast.query_many_topk(nodes, 5)
        np.testing.assert_array_equal(fast_ids, base_ids)
        np.testing.assert_array_equal(fast_scores, base_scores)

    def test_hgpa_index_equality(self, backend):
        graph = self._graph()
        base = build_hgpa_index(graph, max_levels=3, seed=1, kernels="scipy")
        fast = build_hgpa_index(graph, max_levels=3, seed=1, kernels=backend)
        nodes = np.arange(0, graph.num_nodes, 11)
        base_mat, _ = base.query_many_sparse(nodes)
        fast_mat, _ = fast.query_many_sparse(nodes)
        np.testing.assert_array_equal(fast_mat.toarray(), base_mat.toarray())
        base_ids, base_scores, _ = base.query_many_topk(nodes, 4)
        fast_ids, fast_scores, _ = fast.query_many_topk(nodes, 4)
        np.testing.assert_array_equal(fast_ids, base_ids)
        np.testing.assert_array_equal(fast_scores, base_scores)
