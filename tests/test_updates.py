"""Core update pipeline: EdgeUpdate plumbing, affected sets, flat-index
incremental path, and the update-equals-rebuild contract.

The load-bearing invariant of the whole dynamic stack: after any edge
update applied incrementally, every query answer matches a from-scratch
rebuild over the same partition/hierarchy to 1e-12 (the solvers run in
per-column-convergence mode, so subset recomputes reproduce the full
build exactly), and sources outside the affected set keep *bitwise*
identical answers.
"""

import numpy as np
import pytest

from repro.core import (
    EdgeUpdate,
    UpdateBatch,
    affected_sources,
    apply_edge_update,
    apply_update_batch,
    build_gpa_index,
    build_hgpa_index,
    build_jw_index,
    delete_edge_flat,
    insert_edge_flat,
    power_iteration_ppv,
)
from repro.errors import GraphError, UpdateError
from repro.graph import hierarchical_community_digraph
from repro.metrics import l_inf

from conftest import EXACT_ATOL, TIGHT_TOL

ATOL = 1e-12


@pytest.fixture(scope="module")
def upd_graph():
    g = hierarchical_community_digraph(150, avg_out_degree=4, seed=21)
    return g.with_dangling_policy("self_loop")


@pytest.fixture(scope="module")
def jw_upd(upd_graph):
    return build_jw_index(upd_graph, num_hubs=15, tol=TIGHT_TOL)


@pytest.fixture(scope="module")
def gpa_upd(upd_graph):
    return build_gpa_index(upd_graph, 4, tol=TIGHT_TOL, seed=0)


def _missing_edge(graph, rng, *, cross=None, partition=None):
    """A (u, v) pair with no edge u→v (optionally same/cross part)."""
    hubs = set(partition.hubs.tolist()) if partition is not None else set()
    for _ in range(10_000):
        u = int(rng.integers(0, graph.num_nodes))
        v = int(rng.integers(0, graph.num_nodes))
        if u == v or graph.has_edge(u, v) or u in hubs or v in hubs:
            continue
        if cross is None or partition is None:
            return u, v
        same = int(partition.labels[u]) == int(partition.labels[v])
        if cross != same:
            return u, v
    raise AssertionError("no candidate edge found")


def _deletable_edge(graph, rng):
    src, dst = graph.edge_arrays()
    deg = graph.out_degrees
    for _ in range(10_000):
        i = int(rng.integers(0, src.size))
        if deg[src[i]] > 1 and src[i] != dst[i]:
            return int(src[i]), int(dst[i])
    raise AssertionError("no deletable edge found")


# ----------------------------------------------------------------------
class TestEdgeUpdate:
    def test_bad_op_rejected(self):
        with pytest.raises(UpdateError, match="unknown update op"):
            EdgeUpdate("upsert", 0, 1)

    def test_non_integer_endpoints_rejected(self):
        with pytest.raises(UpdateError, match="integers"):
            EdgeUpdate("insert", 0.5, 1)

    def test_constructors_and_inverse(self):
        upd = EdgeUpdate.insert(3, 7)
        assert (upd.op, upd.u, upd.v) == ("insert", 3, 7)
        assert upd.inverse() == EdgeUpdate.delete(3, 7)
        assert upd.inverse().inverse() == upd

    def test_batch_validates_members(self):
        batch = UpdateBatch([EdgeUpdate.insert(0, 1), EdgeUpdate.delete(1, 2)])
        assert len(batch) == 2 and all(isinstance(u, EdgeUpdate) for u in batch)
        with pytest.raises(UpdateError):
            UpdateBatch([("insert", 0, 1)])

    def test_unsupported_engine_rejected(self):
        with pytest.raises(UpdateError, match="incremental edge updates"):
            apply_edge_update(object(), EdgeUpdate.insert(0, 1))

    def test_non_update_rejected(self, jw_upd):
        with pytest.raises(UpdateError, match="EdgeUpdate"):
            apply_edge_update(jw_upd, ("insert", 0, 1))


# ----------------------------------------------------------------------
class TestAffectedSources:
    def test_matches_bruteforce_reverse_reachability(self, upd_graph):
        rng = np.random.default_rng(1)
        src, dst = upd_graph.edge_arrays()
        for u in rng.integers(0, upd_graph.num_nodes, size=5).tolist():
            # Brute force: iterate reverse reachability to a fixed point.
            reach = {u}
            changed = True
            while changed:
                changed = False
                for s, d in zip(src.tolist(), dst.tolist()):
                    if d in reach and s not in reach:
                        reach.add(s)
                        changed = True
            got = affected_sources(upd_graph, u)
            assert set(got.tolist()) == reach
            assert np.array_equal(got, np.sort(got))

    def test_out_of_range_rejected(self, upd_graph):
        with pytest.raises(GraphError):
            affected_sources(upd_graph, upd_graph.num_nodes)

    def test_unaffected_sources_bitwise_unchanged(self, jw_upd):
        rng = np.random.default_rng(2)
        u, v = _missing_edge(jw_upd.graph, rng)
        new_index, receipt = apply_edge_update(jw_upd, EdgeUpdate.insert(u, v))
        affected = set(receipt.affected_sources.tolist())
        assert u in affected
        for w in range(jw_upd.graph.num_nodes):
            if w not in affected:
                np.testing.assert_array_equal(
                    jw_upd.query(w), new_index.query(w)
                )

    def test_receipt_shape(self, jw_upd):
        rng = np.random.default_rng(3)
        u, v = _missing_edge(jw_upd.graph, rng)
        _, receipt = apply_edge_update(jw_upd, EdgeUpdate.insert(u, v))
        assert receipt.changed and receipt.epoch == 0
        assert receipt.num_affected == receipt.affected_sources.size
        assert not receipt.affected_sources.flags.writeable
        assert receipt.at_epoch(7).epoch == 7
        assert receipt.stats.rebuilt_keys


# ----------------------------------------------------------------------
class TestFlatIncremental:
    def test_jw_insert_matches_rebuild(self, jw_upd):
        rng = np.random.default_rng(4)
        u, v = _missing_edge(jw_upd.graph, rng)
        new_index, stats = insert_edge_flat(jw_upd, u, v)
        assert stats.changed and new_index.graph.has_edge(u, v)
        assert stats.rebuild_fraction < 1.0
        oracle = build_jw_index(
            new_index.graph, hubs=new_index.hubs, tol=TIGHT_TOL
        )
        for w in range(0, jw_upd.graph.num_nodes, 11):
            np.testing.assert_allclose(
                new_index.query(w), oracle.query(w), atol=ATOL, rtol=0
            )

    def test_jw_delete_matches_rebuild_and_power_iteration(self, jw_upd):
        rng = np.random.default_rng(5)
        u, v = _deletable_edge(jw_upd.graph, rng)
        new_index, stats = delete_edge_flat(jw_upd, u, v)
        assert stats.changed and not new_index.graph.has_edge(u, v)
        oracle = build_jw_index(
            new_index.graph, hubs=new_index.hubs, tol=TIGHT_TOL
        )
        for w in (u, v, 0):
            np.testing.assert_allclose(
                new_index.query(w), oracle.query(w), atol=ATOL, rtol=0
            )
            ref = power_iteration_ppv(new_index.graph, w, tol=TIGHT_TOL)
            assert l_inf(new_index.query(w), ref) < EXACT_ATOL

    def test_untouched_vectors_shared_not_copied(self, jw_upd):
        rng = np.random.default_rng(6)
        u, v = _missing_edge(jw_upd.graph, rng)
        new_index, stats = insert_edge_flat(jw_upd, u, v)
        untouched = [
            w
            for w in jw_upd.node_partials
            if ("part", w) not in stats.rebuilt_keys
        ]
        assert untouched, "fixture update rebuilt every node partial"
        for w in untouched:
            assert new_index.node_partials[w] is jw_upd.node_partials[w]

    def test_gpa_same_part_insert_matches_rebuild(self, gpa_upd):
        rng = np.random.default_rng(7)
        u, v = _missing_edge(
            gpa_upd.graph, rng, cross=False, partition=gpa_upd.partition
        )
        new_index, stats = insert_edge_flat(gpa_upd, u, v)
        assert stats.promoted_hub is None
        assert new_index.hubs.size == gpa_upd.hubs.size
        oracle = build_gpa_index(
            new_index.graph,
            gpa_upd.partition.num_parts,
            tol=TIGHT_TOL,
            seed=0,
            partition=new_index.partition,
        )
        for w in range(0, gpa_upd.graph.num_nodes, 13):
            np.testing.assert_allclose(
                new_index.query(w), oracle.query(w), atol=ATOL, rtol=0
            )

    def test_gpa_cross_part_insert_promotes_and_matches(self, gpa_upd):
        rng = np.random.default_rng(8)
        u, v = _missing_edge(
            gpa_upd.graph, rng, cross=True, partition=gpa_upd.partition
        )
        new_index, stats = insert_edge_flat(gpa_upd, u, v)
        assert stats.promoted_hub == u
        assert new_index.is_hub(u) and not gpa_upd.is_hub(u)
        assert ("part", u) in stats.dropped_keys
        assert u not in new_index.node_partials
        assert u in new_index.hub_partials and u in new_index.skeleton_cols
        new_index.partition.validate()  # separator invariant repaired
        oracle = build_gpa_index(
            new_index.graph,
            gpa_upd.partition.num_parts,
            tol=TIGHT_TOL,
            seed=0,
            partition=new_index.partition,
        )
        for w in range(0, gpa_upd.graph.num_nodes, 13):
            np.testing.assert_allclose(
                new_index.query(w), oracle.query(w), atol=ATOL, rtol=0
            )
        ref = power_iteration_ppv(new_index.graph, u, tol=TIGHT_TOL)
        assert l_inf(new_index.query(u), ref) < EXACT_ATOL

    def test_gpa_hub_source_update_is_local(self, gpa_upd):
        """An update at a hub stales only the hub's own partial (walks
        from everyone else freeze there): the smallest possible rebuild."""
        h = int(gpa_upd.hubs[0])
        target = next(
            w
            for w in range(gpa_upd.graph.num_nodes)
            if w != h and not gpa_upd.graph.has_edge(h, w)
        )
        new_index, stats = insert_edge_flat(gpa_upd, h, target)
        hub_rebuilds = [k for k in stats.rebuilt_keys if k[0] == "hub"]
        assert hub_rebuilds == [("hub", h)]
        assert not [k for k in stats.rebuilt_keys if k[0] == "part"]
        oracle = build_gpa_index(
            new_index.graph,
            gpa_upd.partition.num_parts,
            tol=TIGHT_TOL,
            seed=0,
            partition=new_index.partition,
        )
        for w in (h, target, 3):
            np.testing.assert_allclose(
                new_index.query(w), oracle.query(w), atol=ATOL, rtol=0
            )

    def test_duplicate_insert_and_missing_delete_noop(self, gpa_upd):
        src, dst = gpa_upd.graph.edge_arrays()
        same, stats = insert_edge_flat(gpa_upd, int(src[0]), int(dst[0]))
        assert same is gpa_upd and not stats.changed
        rng = np.random.default_rng(9)
        u, v = _missing_edge(gpa_upd.graph, rng)
        same, stats = delete_edge_flat(gpa_upd, u, v)
        assert same is gpa_upd and not stats.changed

    def test_dangling_delete_rejected(self, upd_graph):
        deg = upd_graph.out_degrees
        u = int(np.argmin(deg))
        if deg[u] != 1:
            pytest.skip("fixture graph has no degree-1 node")
        index = build_jw_index(upd_graph, num_hubs=5, tol=1e-6)
        v = int(upd_graph.successors(u)[0])
        with pytest.raises(GraphError, match="dangling"):
            delete_edge_flat(index, u, v)

    def test_bad_endpoints_both_directions(self, jw_upd):
        with pytest.raises(GraphError, match=r"edge \(-2, 0\): source"):
            insert_edge_flat(jw_upd, -2, 0)
        with pytest.raises(GraphError, match=r"edge \(0, 9999\): target"):
            insert_edge_flat(jw_upd, 0, 9999)
        with pytest.raises(GraphError, match=r"edge \(9999, 0\): source"):
            delete_edge_flat(jw_upd, 9999, 0)
        with pytest.raises(GraphError, match=r"edge \(0, -1\): target"):
            delete_edge_flat(jw_upd, 0, -1)

    def test_old_index_still_valid(self, jw_upd, upd_graph):
        rng = np.random.default_rng(10)
        u, v = _missing_edge(jw_upd.graph, rng)
        insert_edge_flat(jw_upd, u, v)
        ref = power_iteration_ppv(upd_graph, u, tol=TIGHT_TOL)
        assert l_inf(jw_upd.query(u), ref) < EXACT_ATOL


# ----------------------------------------------------------------------
class TestBatchesAndDispatch:
    def test_apply_update_batch_chains(self, jw_upd):
        rng = np.random.default_rng(11)
        u1, v1 = _missing_edge(jw_upd.graph, rng)
        batch = UpdateBatch(
            [EdgeUpdate.insert(u1, v1), EdgeUpdate.delete(u1, v1)]
        )
        restored, receipts = apply_update_batch(jw_upd, batch)
        assert [r.changed for r in receipts] == [True, True]
        assert restored.graph == jw_upd.graph
        for w in (u1, v1, 0):
            np.testing.assert_allclose(
                restored.query(w), jw_upd.query(w), atol=ATOL, rtol=0
            )

    def test_hgpa_dispatch_matches_rebuild(self, upd_graph):
        index = build_hgpa_index(upd_graph, tol=TIGHT_TOL, max_levels=3, seed=0)
        rng = np.random.default_rng(12)
        u, v = _missing_edge(upd_graph, rng)
        new_index, receipt = apply_edge_update(index, EdgeUpdate.insert(u, v))
        assert receipt.changed
        assert receipt.stats.rebuilt_keys and receipt.stats.affected_subgraphs
        oracle = build_hgpa_index(
            new_index.graph, hierarchy=new_index.hierarchy, tol=TIGHT_TOL
        )
        for w in range(0, upd_graph.num_nodes, 13):
            np.testing.assert_allclose(
                new_index.query(w), oracle.query(w), atol=ATOL, rtol=0
            )

    def test_hgpa_dropped_keys_existed_in_old_index(self, upd_graph):
        """Receipts report only vectors the old index actually stored.

        A hub promoted between levels has its old roles invalidated
        defensively (including a leaf vector it never had); phantom keys
        must not reach ``dropped_keys`` — the distributed runtimes'
        targeted re-deploy looks each one up in its ownership maps.
        """
        index = build_hgpa_index(upd_graph, tol=1e-6, max_levels=3, seed=0)
        rng = np.random.default_rng(99)
        for _ in range(6):
            u, v = _missing_edge(index.graph, rng)
            stores = {
                "hub": set(index.hub_partials),
                "skel": set(index.skeleton_cols),
                "leaf": set(index.leaf_ppv),
            }
            index, receipt = apply_edge_update(index, EdgeUpdate.insert(u, v))
            for kind, node in receipt.stats.dropped_keys:
                assert node in stores[kind], (
                    f"dropped key ({kind}, {node}) never existed"
                )

    def test_build_is_batch_size_invariant(self, upd_graph):
        """Per-column convergence makes built vectors independent of the
        build batch size — the property subset recomputes rely on."""
        a = build_jw_index(upd_graph, num_hubs=10, tol=1e-6, batch=4)
        b = build_jw_index(upd_graph, num_hubs=10, tol=1e-6, batch=256)
        assert set(a.hub_partials) == set(b.hub_partials)
        for h in a.hub_partials:
            assert a.hub_partials[h] == b.hub_partials[h]
            assert a.skeleton_cols[h] == b.skeleton_cols[h]
        for w in a.node_partials:
            assert a.node_partials[w] == b.node_partials[w]
