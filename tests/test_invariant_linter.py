"""The repro.analysis invariant linter, driven by its fixture tree.

Fixtures under ``tests/analysis_fixtures/`` carry ``# expect: RPRxxx``
markers on every line the analyzer must flag; the tests assert the
findings equal the markers in both directions, per rule and per file.
This is what makes each rule's coverage real: disable a rule and its
fixtures' markers go unmatched.
"""

from __future__ import annotations

import json
import re
import subprocess
import sys
from collections import defaultdict
from pathlib import Path, PurePosixPath

import pytest

from repro.analysis import ALL_RULES, Baseline, analyze_paths, analyze_source
from repro.analysis.baseline import DEFAULT_BASELINE_NAME
from repro.analysis.cli import EXIT_CLEAN, EXIT_ERROR, EXIT_FINDINGS, main
from repro.analysis.rules import rules_by_id
from repro.errors import AnalysisError

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = REPO_ROOT / "tests" / "analysis_fixtures"
_MARKER = re.compile(r"#\s*expect:\s*([A-Z0-9,\s]+?)\s*$")

ALL_RULE_IDS = sorted(rule.rule_id for rule in ALL_RULES)


def _expected_markers(path: Path) -> set[tuple[int, str]]:
    """``(line, rule_id)`` pairs declared by a fixture's markers."""
    expected: set[tuple[int, str]] = set()
    for lineno, text in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        match = _MARKER.search(text)
        if match:
            for rule_id in match.group(1).split(","):
                expected.add((lineno, rule_id.strip()))
    return expected


def _fixture_files() -> list[Path]:
    files = sorted(FIXTURES.rglob("*.py"))
    assert files, "fixture tree is missing"
    return files


def _findings_by_path() -> dict[str, set[tuple[int, str]]]:
    result = analyze_paths([FIXTURES])
    assert not result.errors, result.errors
    grouped: dict[str, set[tuple[int, str]]] = defaultdict(set)
    for finding in result.findings:
        grouped[finding.path].add((finding.line, finding.rule))
    return grouped


class TestFixtures:
    def test_markers_match_findings_exactly(self):
        """Every marker is reported and nothing unmarked is flagged."""
        grouped = _findings_by_path()
        for path in _fixture_files():
            key = str(PurePosixPath(*path.parts))
            assert grouped.pop(key, set()) == _expected_markers(path), key
        assert not grouped  # no findings outside the fixture files

    @pytest.mark.parametrize("rule_id", ALL_RULE_IDS)
    def test_rule_demonstrated_by_fixtures(self, rule_id):
        """Each rule alone reproduces exactly its own markers — and at
        least two bad sites — so the test fails if the rule is disabled
        or its scope drifts."""
        result = analyze_paths([FIXTURES], rules_by_id(rule_id))
        got = {
            (str(PurePosixPath(*Path(f.path).parts)), f.line, f.rule)
            for f in result.findings
        }
        expected = set()
        for path in _fixture_files():
            key = str(PurePosixPath(*path.parts))
            for line, rid in _expected_markers(path):
                if rid == rule_id:
                    expected.add((key, line, rid))
        assert got == expected
        assert len(expected) >= 2, f"{rule_id} needs >=2 bad fixture sites"

    @pytest.mark.parametrize("rule_id", ALL_RULE_IDS)
    def test_rule_has_clean_fixture(self, rule_id):
        """At least one fixture in the rule's scope is entirely clean."""
        result = analyze_paths([FIXTURES], rules_by_id(rule_id))
        flagged = {f.path for f in result.findings}
        rule = next(r for r in ALL_RULES if r.rule_id == rule_id)
        clean = [
            p
            for p in _fixture_files()
            if str(PurePosixPath(*p.parts)) not in flagged
            and (not rule.segments or set(p.parts) & set(rule.segments))
        ]
        assert clean, f"{rule_id} has no clean fixture in scope"

    def test_finding_payload_shape(self):
        result = analyze_paths([FIXTURES / "core" / "det_bad_set_iter.py"])
        assert result.findings
        payload = result.findings[0].to_json()
        assert set(payload) == {
            "rule",
            "path",
            "line",
            "col",
            "message",
            "hint",
            "snippet",
        }
        assert payload["rule"].startswith("RPR")
        assert payload["line"] > 0 and payload["col"] > 0
        assert payload["hint"]

    def test_syntax_error_is_reported_not_raised(self):
        result = analyze_source("def broken(:\n", "core/broken.py")
        assert result.findings == []
        assert result.errors and "syntax error" in result.errors[0]

    def test_kernels_segment_in_scope(self):
        """The fast-kernel package is guarded by the determinism and
        accumulation-order rules — a hash-ordered loop in kernel code
        would break the bitwise replay contract silently."""
        for rule_id in ("RPR001", "RPR004"):
            rule = next(r for r in ALL_RULES if r.rule_id == rule_id)
            assert "kernels" in rule.segments, rule_id
        source = (
            "def scatter(touched: set, acc):\n"
            "    total = 0.0\n"
            "    for col in touched:\n"
            "        total += acc[col]\n"
            "    return total\n"
        )
        findings = analyze_source(source, "kernels/mod.py").findings
        assert {f.rule for f in findings} == {"RPR001", "RPR004"}


class TestBaseline:
    SOURCE = "def f(s: set):\n    return list(s)\n"

    def test_fresh_run_matches_committed_baseline(self, monkeypatch):
        """`python -m repro.analysis src` is clean against the repo's
        committed baseline — new findings AND stale entries both fail."""
        monkeypatch.chdir(REPO_ROOT)
        baseline = Baseline.load(DEFAULT_BASELINE_NAME)
        match = baseline.match(analyze_paths(["src"]).findings)
        assert match.clean, (match.new, match.stale)

    def test_match_survives_line_drift(self):
        findings = analyze_source(self.SOURCE, "core/mod.py").findings
        assert findings
        baseline = Baseline.from_findings(findings)
        drifted = analyze_source("\n\n" + self.SOURCE, "core/mod.py").findings
        assert [f.line for f in drifted] != [f.line for f in findings]
        assert baseline.match(drifted).clean

    def test_stale_entry_fails_the_match(self):
        findings = analyze_source(self.SOURCE, "core/mod.py").findings
        baseline = Baseline.from_findings(findings)
        match = baseline.match([])
        assert not match.clean
        assert match.stale and match.stale[0]["rule"] == findings[0].rule

    def test_unbaselined_finding_is_new(self):
        findings = analyze_source(self.SOURCE, "core/mod.py").findings
        match = Baseline.empty().match(findings)
        assert match.new == findings and not match.suppressed

    def test_load_rejects_bad_version(self, tmp_path):
        bad = tmp_path / "b.json"
        bad.write_text(json.dumps({"version": 99, "findings": {}}))
        with pytest.raises(AnalysisError):
            Baseline.load(bad)

    def test_roundtrip_through_disk(self, tmp_path):
        findings = analyze_source(self.SOURCE, "core/mod.py").findings
        path = tmp_path / "base.json"
        Baseline.from_findings(findings).dump(path)
        assert Baseline.load(path).match(findings).clean


class TestCli:
    def test_clean_repo_run_exits_zero(self, monkeypatch, capsys):
        monkeypatch.chdir(REPO_ROOT)
        assert main(["src"]) == EXIT_CLEAN
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_code(self, capsys):
        bad = str(FIXTURES / "core" / "det_bad_set_iter.py")
        assert main([bad, "--no-baseline"]) == EXIT_FINDINGS
        out = capsys.readouterr().out
        assert "RPR001" in out and "hint:" in out

    def test_json_format(self, capsys):
        bad = str(FIXTURES / "serving" / "boundary_bad_raise.py")
        assert main([bad, "--no-baseline", "--format", "json"]) == EXIT_FINDINGS
        payload = json.loads(capsys.readouterr().out)
        assert payload["files_checked"] == 1
        assert {f["rule"] for f in payload["findings"]} == {"RPR005"}
        assert payload["stale_baseline"] == [] and payload["errors"] == []

    def test_rule_selection(self, capsys):
        bad = str(FIXTURES / "core" / "accum_bad_loop.py")
        assert main([bad, "--no-baseline", "--rules", "RPR004"]) == EXIT_FINDINGS
        payload_args = [bad, "--no-baseline", "--rules", "RPR002"]
        capsys.readouterr()
        # the same file is clean under a rule that does not apply to it
        assert main(payload_args) == EXIT_CLEAN

    def test_unknown_rule_is_usage_error(self, capsys):
        assert main(["--rules", "RPR999", str(FIXTURES)]) == EXIT_ERROR
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_path_is_usage_error(self, capsys):
        assert main(["no/such/dir"]) == EXIT_ERROR
        assert "no such path" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == EXIT_CLEAN
        out = capsys.readouterr().out
        for rule_id in ALL_RULE_IDS:
            assert rule_id in out

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        bad = str(FIXTURES / "distributed" / "meter_bad_send.py")
        base = str(tmp_path / "base.json")
        assert main([bad, "--baseline", base, "--write-baseline"]) == EXIT_CLEAN
        assert main([bad, "--baseline", base]) == EXIT_CLEAN
        capsys.readouterr()

    def test_module_entrypoint(self):
        """``python -m repro.analysis`` works end to end (exit codes)."""
        env_cmd = [sys.executable, "-m", "repro.analysis"]
        bad = str(FIXTURES / "core" / "buffer_bad_write.py")
        proc = subprocess.run(
            env_cmd + [bad, "--no-baseline"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == EXIT_FINDINGS
        assert "RPR003" in proc.stdout
