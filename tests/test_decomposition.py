"""Unit tests for the Jeh–Widom decomposition primitives (Eqs. 8–10)."""

import numpy as np
import pytest

from repro.core import (
    as_view,
    expected_iterations,
    partial_vectors,
    skeleton_columns,
    skeleton_single_hub,
    skeleton_vectors_dp,
)
from repro.errors import ConvergenceError
from repro.graph import DiGraph, VirtualSubgraph

from conftest import dense_ppv_matrix

ALPHA = 0.15
TOL = 1e-12


@pytest.fixture(scope="module")
def truth(request):
    return None


class TestPartialVectors:
    def test_no_hubs_gives_local_ppv(self, tiny_graph):
        view = as_view(tiny_graph)
        d, _ = partial_vectors(view, np.array([], dtype=np.int64), np.arange(5), tol=TOL)
        np.testing.assert_allclose(d, dense_ppv_matrix(tiny_graph), atol=1e-9)

    def test_hubs_theorem_identity(self, tiny_graph):
        """r_u == p_u + (1/α)·Σ_h (s_u(h) − α f) · (p_h − α x_h)  (Eq. 4)."""
        truth = dense_ppv_matrix(tiny_graph)
        hubs = np.array([1, 2])
        view = as_view(tiny_graph)
        d, _ = partial_vectors(view, hubs, np.arange(5), tol=TOL)
        s = skeleton_columns(view, hubs, tol=1e-10)
        for u in range(5):
            r = d[:, u].copy()
            for j, h in enumerate(hubs.tolist()):
                weight = s[u, j] - (ALPHA if u == h else 0.0)
                adjusted = d[:, h].copy()
                adjusted[h] -= ALPHA
                r += (weight / ALPHA) * adjusted
            np.testing.assert_allclose(r, truth[:, u], atol=1e-7)

    def test_hub_source_self_mass(self, tiny_graph):
        """p_h(h) ≥ α: the zero-length tour always contributes."""
        hubs = np.array([2])
        d, _ = partial_vectors(as_view(tiny_graph), hubs, hubs, tol=TOL)
        assert d[2, 0] >= ALPHA - 1e-12

    def test_blocked_beyond_hub(self):
        # 0 -> 1 -> 2 with hub 1: no partial mass reaches 2.
        g = DiGraph.from_edges(3, [(0, 1), (1, 2)])
        d, e = partial_vectors(as_view(g), np.array([1]), np.array([0]), tol=TOL)
        assert d[2, 0] == 0.0
        assert d[1, 0] == pytest.approx(ALPHA * (1 - ALPHA))  # first passage
        assert e[1, 0] == pytest.approx(1 - ALPHA)

    def test_restricted_to_subgraph(self, tiny_graph):
        view = VirtualSubgraph(tiny_graph, [3, 4])
        d, _ = partial_vectors(view, np.array([], dtype=np.int64), np.array([0]), tol=TOL)
        assert d.shape == (2, 1)
        assert d[0, 0] == pytest.approx(ALPHA)  # node 3: own mass only

    def test_columns_independent_of_batching(self, small_graph):
        view = as_view(small_graph)
        hubs = np.array([5, 10])
        batch, _ = partial_vectors(view, hubs, np.array([0, 1, 2]), tol=1e-9)
        for j, u in enumerate([0, 1, 2]):
            single, _ = partial_vectors(view, hubs, np.array([u]), tol=1e-9)
            np.testing.assert_allclose(batch[:, j], single[:, 0], atol=1e-12)

    def test_empty_sources(self, tiny_graph):
        d, e = partial_vectors(as_view(tiny_graph), np.array([0]), np.array([], dtype=np.int64))
        assert d.shape == (5, 0) and e.shape == (5, 0)

    def test_max_iter(self, tiny_graph):
        with pytest.raises(ConvergenceError):
            partial_vectors(as_view(tiny_graph), np.array([], dtype=np.int64),
                            np.array([0]), tol=1e-12, max_iter=2)


class TestSkeleton:
    def test_equals_ppv_column(self, tiny_graph):
        """Theorem 6: F converges to s_u(h) = r_u(h) for every u."""
        truth = dense_ppv_matrix(tiny_graph)
        hubs = np.array([0, 2, 4])
        f = skeleton_columns(as_view(tiny_graph), hubs, tol=1e-10)
        for j, h in enumerate(hubs.tolist()):
            np.testing.assert_allclose(f[:, j], truth[h, :], atol=1e-8)

    def test_single_hub_matches_batched(self, small_graph):
        view = as_view(small_graph)
        hubs = np.array([3, 17, 90])
        f = skeleton_columns(view, hubs, tol=1e-9)
        for j, h in enumerate(hubs.tolist()):
            col = skeleton_single_hub(view, h, tol=1e-9)
            np.testing.assert_allclose(col, f[:, j], atol=1e-12)

    def test_original_dp_agrees(self, tiny_graph):
        """Eq. 10 (the memory-hungry original) computes the same values."""
        hubs = np.array([1, 3])
        view = as_view(tiny_graph)
        a = skeleton_columns(view, hubs, tol=1e-10)
        b = skeleton_vectors_dp(view, hubs, tol=1e-10)
        np.testing.assert_allclose(a, b, atol=1e-8)

    def test_local_skeleton_within_subgraph(self, tiny_graph):
        """Skeletons on a view are local PPV values of that view."""
        view = VirtualSubgraph(tiny_graph, [2, 3, 4])
        f = skeleton_columns(view, np.array([view.to_local(2)]), tol=1e-10)
        sub = tiny_graph.induced([2, 3, 4])  # same wiring, but degrees differ
        assert f[view.to_local(2), 0] >= ALPHA
        # value from node 3 (local): walk 3->4->2 with original degrees
        expected = ALPHA * (1 - ALPHA) ** 2  # deg(3)=deg(4)=1
        assert f[view.to_local(3), 0] >= expected - 1e-9

    def test_empty_hubs(self, tiny_graph):
        f = skeleton_columns(as_view(tiny_graph), np.array([], dtype=np.int64))
        assert f.shape == (5, 0)

    def test_max_iter(self, tiny_graph):
        with pytest.raises(ConvergenceError):
            skeleton_columns(as_view(tiny_graph), np.array([0]), tol=1e-12, max_iter=1)


class TestExpectedIterations:
    def test_monotone_in_tol(self):
        assert expected_iterations(0.15, 1e-6) > expected_iterations(0.15, 1e-2)

    def test_monotone_in_alpha(self):
        assert expected_iterations(0.05, 1e-4) > expected_iterations(0.5, 1e-4)

    def test_tol_one(self):
        assert expected_iterations(0.15, 1.0) == 1
