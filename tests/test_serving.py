"""Serving layer: cache, micro-batching service, adapters, top-k queries.

The serving contract is exactness end to end: whatever path a request
takes — cached, micro-batched, deduplicated, top-k-reduced — the answer
must match the backend's per-node ``query`` to 1e-12.
"""

import numpy as np
import pytest

from repro.approx import build_fastppv_index
from repro.core.flat_index import topk_rows
from repro.distributed import DistributedGPA, DistributedHGPA
from repro.errors import QueryError, ServingError
from repro.metrics import top_k_nodes
from repro.serving import (
    FrequencySketch,
    PPVCache,
    PPVService,
    QueryBackend,
    SimulatedClock,
    as_backend,
)

ATOL = 1e-12


@pytest.fixture(scope="module")
def fast_small(request):
    graph = request.getfixturevalue("small_graph")
    return build_fastppv_index(graph, 25, tol=1e-6)


@pytest.fixture(scope="module")
def dist_gpa(request):
    return DistributedGPA(request.getfixturevalue("gpa_small"), 3)


@pytest.fixture(scope="module")
def dist_hgpa(request):
    return DistributedHGPA(request.getfixturevalue("hgpa_small"), 3)


def _ppv_row(n):
    rng = np.random.default_rng(0)
    return rng.random(n)


# ----------------------------------------------------------------------
class TestPPVCache:
    def test_hit_miss_accounting(self):
        cache = PPVCache(1 << 20)
        assert cache.get(3) is None
        cache.put(3, _ppv_row(10))
        got = cache.get(3)
        assert got is not None
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_entries_read_only_and_uncorruptible(self):
        cache = PPVCache(1 << 20)
        src = _ppv_row(10)
        cache.put(1, src)
        got = cache.get(1)
        with pytest.raises(ValueError):
            got[0] = 99.0
        # Mutating the caller's original array must not reach the cache.
        src[0] = 99.0
        assert cache.get(1)[0] != 99.0

    def test_lru_eviction_order(self):
        row_bytes = _ppv_row(10).nbytes
        cache = PPVCache(3 * row_bytes)
        for u in (0, 1, 2):
            cache.put(u, _ppv_row(10))
        cache.get(0)  # 1 becomes least-recently-used
        cache.put(3, _ppv_row(10))
        assert 1 not in cache and 0 in cache and 2 in cache and 3 in cache
        assert cache.stats.evictions == 1

    def test_byte_budget_invariant(self):
        row = _ppv_row(16)
        cache = PPVCache(5 * row.nbytes)
        for u in range(20):
            cache.put(u, row)
            assert cache.current_bytes <= cache.max_bytes
        assert len(cache) == 5

    def test_oversized_entry_rejected(self):
        cache = PPVCache(8)
        assert not cache.put(0, _ppv_row(100))
        assert len(cache) == 0 and cache.current_bytes == 0

    def test_replace_same_key(self):
        cache = PPVCache(1 << 20)
        cache.put(5, np.ones(4))
        cache.put(5, np.full(4, 2.0))
        assert len(cache) == 1
        np.testing.assert_array_equal(cache.get(5), np.full(4, 2.0))

    def test_read_only_view_copied_not_pinned(self):
        """A read-only row *view* must be copied — storing it as-is would
        keep the whole base matrix alive while accounting only the row."""
        base = np.arange(12.0).reshape(3, 4)
        base.flags.writeable = False
        cache = PPVCache(1 << 20)
        cache.put(0, base[1])
        stored = cache.get(0)
        assert stored.base is None
        np.testing.assert_array_equal(stored, base[1])

    def test_clear_keeps_stats(self):
        cache = PPVCache(1 << 20)
        cache.put(0, _ppv_row(4))
        cache.get(0)
        cache.clear()
        assert len(cache) == 0 and cache.current_bytes == 0
        assert cache.stats.hits == 1

    def test_bad_budget(self):
        with pytest.raises(ServingError):
            PPVCache(0)

    def test_contains_does_not_touch_stats(self):
        cache = PPVCache(1 << 20)
        cache.put(0, _ppv_row(4))
        assert 0 in cache and 1 not in cache
        assert cache.stats.hits == 0 and cache.stats.misses == 0

    def test_cost_aware_eviction_keeps_expensive_rows(self):
        """With a weight hook, the cheapest of the LRU-end candidates is
        evicted, not blindly the oldest."""
        row_bytes = _ppv_row(10).nbytes
        cache = PPVCache(3 * row_bytes, weight=lambda u, vec: float(u))
        for u in (5, 1, 9):  # 1 is cheapest but not oldest
            cache.put(u, _ppv_row(10))
        cache.put(7, _ppv_row(10))
        assert 1 not in cache and 5 in cache and 9 in cache and 7 in cache
        assert cache.stats.evictions == 1

    def test_default_weightless_is_pure_lru(self):
        row_bytes = _ppv_row(10).nbytes
        cache = PPVCache(2 * row_bytes)
        for u in (5, 1, 9):
            cache.put(u, _ppv_row(10))
        assert 5 not in cache  # oldest goes, regardless of id

    def test_weight_sample_bounds_candidates(self):
        """Only the `sample` least-recently-used entries are candidates:
        a cheap but recently-used row outside the window survives."""
        row_bytes = _ppv_row(10).nbytes
        cache = PPVCache(
            4 * row_bytes, weight=lambda u, vec: float(u), sample=2
        )
        for u in (8, 6, 0, 9):  # 0 is cheapest but outside the LRU-2 window
            cache.put(u, _ppv_row(10))
        cache.put(3, _ppv_row(10))
        assert 0 in cache and 6 not in cache  # 6 is min-weight of {8, 6}
        assert cache.stats.evictions == 1

    def test_weighted_eviction_never_victimises_new_entry(self):
        """The row being inserted must survive its own eviction pass even
        when it is the cheapest in a small (< sample) store."""
        row_bytes = _ppv_row(10).nbytes
        cache = PPVCache(3 * row_bytes, weight=lambda u, vec: float(u))
        for u in (5, 9, 7):
            cache.put(u, _ppv_row(10))
        assert cache.put(1, _ppv_row(10))  # cheapest of all, newest
        assert 1 in cache and 5 not in cache
        assert cache.current_bytes <= cache.max_bytes

    def test_non_finite_weight_rejected(self):
        cache = PPVCache(1 << 20, weight=lambda u, vec: float("nan"))
        with pytest.raises(ServingError, match="non-finite"):
            cache.put(0, _ppv_row(4))

    def test_bad_weight_config_rejected(self):
        with pytest.raises(ServingError):
            PPVCache(1 << 20, weight=42)
        with pytest.raises(ServingError):
            PPVCache(1 << 20, sample=0)


# ----------------------------------------------------------------------
class TestCacheInvalidate:
    def test_drops_exactly_the_given_rows(self):
        cache = PPVCache(1 << 20)
        for u in range(6):
            cache.put(u, _ppv_row(16))
        before = cache.current_bytes
        dropped = cache.invalidate([1, 3, 99])  # 99 was never cached
        assert dropped == 2
        assert cache.stats.invalidations == 2
        assert 1 not in cache and 3 not in cache
        for u in (0, 2, 4, 5):
            assert u in cache
        assert cache.current_bytes == before - 2 * 16 * 8

    def test_invalidate_does_not_touch_hit_miss_stats(self):
        cache = PPVCache(1 << 20)
        cache.put(0, _ppv_row(8))
        cache.invalidate([0])
        assert cache.stats.requests == 0

    def test_scalar_and_empty_inputs(self):
        cache = PPVCache(1 << 20)
        cache.put(7, _ppv_row(8))
        assert cache.invalidate(7) == 1
        assert cache.invalidate(np.empty(0, dtype=np.int64)) == 0


# ----------------------------------------------------------------------
class TestTinyLFUAdmission:
    def _full_cache(self, rows=4, n=32, **kwargs):
        """A cache exactly full with ``rows`` hot entries."""
        cache = PPVCache(rows * n * 8, admission="tinylfu", **kwargs)
        for u in range(rows):
            cache.put(u, _ppv_row(n))
        return cache, n

    def test_one_shot_scan_cannot_flush_hot_entries(self):
        cache, n = self._full_cache()
        for _ in range(5):  # make the resident set hot
            for u in range(4):
                cache.get(u)
        for w in range(100, 140):  # adversarial one-shot stream
            cache.get(w)
            cache.put(w, _ppv_row(n))
        for u in range(4):
            assert u in cache  # scan resistance: hot set survives
        assert cache.stats.admission_rejects == 40
        assert cache.stats.evictions == 0

    def test_frequent_candidate_beats_cold_victim(self):
        cache, n = self._full_cache()
        hot = 77
        for _ in range(3):
            cache.get(hot)  # builds frequency before ever being admitted
        assert cache.put(hot, _ppv_row(n))
        assert hot in cache
        assert cache.stats.evictions == 1

    def test_admission_only_guards_evictions(self):
        cache = PPVCache(1 << 20, admission="tinylfu")
        assert cache.put(5, _ppv_row(8))  # plenty of room: always admitted
        assert cache.put(5, _ppv_row(8))  # replacing a resident key too
        assert cache.stats.admission_rejects == 0

    def test_works_with_cost_aware_eviction(self):
        n = 16
        cache = PPVCache(
            2 * n * 8, admission="tinylfu", weight=lambda u, vec: float(u)
        )
        cache.put(9, _ppv_row(n))
        cache.put(4, _ppv_row(n))
        for _ in range(4):
            cache.get(9), cache.get(4)
        cache.get(50)
        assert not cache.put(50, _ppv_row(n))  # duel vs the *cheapest* entry
        assert cache.stats.admission_rejects == 1

    def test_custom_sketch_and_bad_policy(self):
        sketch = FrequencySketch(64, depth=2, reset_interval=16)
        cache = PPVCache(1 << 20, admission=sketch)
        cache.get(3)
        assert sketch.estimate(3) == 1
        with pytest.raises(ServingError, match="unknown admission"):
            PPVCache(1 << 20, admission="lfu")
        with pytest.raises(ServingError):
            PPVCache(1 << 20, admission=object())

    def test_sketch_aging_halves_counters(self):
        sketch = FrequencySketch(16, reset_interval=8)
        for _ in range(7):
            sketch.increment(1)
        assert sketch.estimate(1) == 7
        sketch.increment(1)  # 8th increment triggers the halving
        assert sketch.resets == 1
        assert sketch.estimate(1) == 4

    def test_sketch_estimate_upper_bounds_truth(self):
        sketch = FrequencySketch(256)
        rng = np.random.default_rng(0)
        truth: dict[int, int] = {}
        for key in rng.integers(0, 50, size=400).tolist():
            sketch.increment(key)
            truth[key] = truth.get(key, 0) + 1
        for key, count in truth.items():
            assert sketch.estimate(key) >= count

    def test_bad_sketch_config_rejected(self):
        with pytest.raises(ServingError):
            FrequencySketch(0)
        with pytest.raises(ServingError):
            FrequencySketch(16, depth=9)
        with pytest.raises(ServingError):
            FrequencySketch(16, reset_interval=0)


# ----------------------------------------------------------------------
class TestTopK:
    @pytest.mark.parametrize("family", ["jw_small", "gpa_small", "hgpa_small"])
    def test_matches_dense_argsort(self, request, family):
        index = request.getfixturevalue(family)
        queries = np.asarray([0, 7, 57, 150])
        ids, scores, stats = index.query_many_topk(queries, 12)
        assert ids.shape == scores.shape == (queries.size, 12)
        assert len(stats) == queries.size
        for j, u in enumerate(queries.tolist()):
            dense = index.query(u)
            ref = top_k_nodes(dense, 12)
            assert ids[j].tolist() == ref.tolist()
            np.testing.assert_allclose(scores[j], dense[ref], atol=ATOL, rtol=0)

    def test_fastppv_matches_dense_argsort(self, fast_small):
        queries = np.asarray([0, 57])
        ids, scores, infos = fast_small.query_many_topk(queries, 10)
        assert len(infos) == queries.size
        for j, u in enumerate(queries.tolist()):
            dense = fast_small.query(u)
            ref = top_k_nodes(dense, 10)
            assert ids[j].tolist() == ref.tolist()
            np.testing.assert_allclose(scores[j], dense[ref], atol=ATOL, rtol=0)

    def test_single_query_topk(self, jw_small):
        ids, scores = jw_small.query_topk(5, 8)
        ref = top_k_nodes(jw_small.query(5), 8)
        assert ids.tolist() == ref.tolist()
        assert np.all(np.diff(scores) <= 0)

    def test_chunking_independent(self, hgpa_small):
        queries = np.asarray([0, 5, 42, 99, 150, 7, 13])
        whole = hgpa_small.query_many_topk(queries, 9, batch=100)
        chunked = hgpa_small.query_many_topk(queries, 9, batch=2)
        np.testing.assert_array_equal(whole[0], chunked[0])
        np.testing.assert_allclose(whole[1], chunked[1], atol=ATOL, rtol=0)

    def test_k_exceeding_n_clamped(self, jw_small):
        n = jw_small.graph.num_nodes
        ids, scores = jw_small.query_topk(3, n + 50)
        assert ids.size == n
        # A full-length top-k is the whole PPV, reordered.
        np.testing.assert_allclose(
            np.sort(scores), np.sort(jw_small.query(3)), atol=ATOL, rtol=0
        )

    @pytest.mark.parametrize("family", ["jw_small", "hgpa_small"])
    def test_bad_k_rejected(self, request, family):
        index = request.getfixturevalue(family)
        with pytest.raises(QueryError):
            index.query_many_topk([0], 0)
        with pytest.raises(QueryError):
            index.query_topk(0, -3)

    def test_empty_batch(self, jw_small, hgpa_small):
        empty = np.empty(0, dtype=np.int64)
        for index in (jw_small, hgpa_small):
            ids, scores, stats = index.query_many_topk(empty, 5)
            assert ids.shape == (0, 5) and scores.shape == (0, 5)
            assert stats == []

    def test_topk_rows_ties_by_id(self):
        dense = np.asarray([[0.5, 0.9, 0.5, 0.1]])
        ids, scores = topk_rows(dense, 3)
        assert ids[0].tolist() == [1, 0, 2]
        assert scores[0].tolist() == [0.9, 0.5, 0.5]

    @pytest.mark.parametrize("family", ["jw_small", "gpa_small", "hgpa_small"])
    def test_threshold_matches_manual_filter(self, request, family):
        """threshold=eps drops score <= eps entries before the k-cut; the
        survivors are a prefix, the tail is id -1 / score 0.0 padding."""
        index = request.getfixturevalue(family)
        queries = np.asarray([0, 7, 57, 150])
        eps = 0.02
        ids, scores, _ = index.query_many_topk(queries, 15, threshold=eps)
        plain_ids, plain_scores, _ = index.query_many_topk(queries, 15)
        for j in range(queries.size):
            keep = plain_scores[j] > eps
            m = int(keep.sum())
            assert keep[:m].all()  # survivors form a prefix
            assert ids[j, :m].tolist() == plain_ids[j, :m].tolist()
            np.testing.assert_allclose(
                scores[j, :m], plain_scores[j, :m], atol=ATOL, rtol=0
            )
            assert np.all(ids[j, m:] == -1) and np.all(scores[j, m:] == 0.0)
        assert (ids == -1).any()  # eps chosen so the cut actually bites

    def test_threshold_on_single_and_service(self, hgpa_small):
        ids, scores = hgpa_small.query_topk(42, 10, threshold=0.05)
        service = PPVService(hgpa_small, clock=SimulatedClock())
        s_ids, s_scores = service.query_topk(42, 10, threshold=0.05)
        assert ids.tolist() == s_ids.tolist()
        np.testing.assert_allclose(scores, s_scores, atol=ATOL, rtol=0)
        assert np.all(scores[scores > 0] > 0.05)

    def test_threshold_through_adapter_for_runtimes(self, dist_gpa, gpa_small):
        """Distributed runtimes get thresholding via the adapter's chunked
        reduction (they have no native query_many_topk)."""
        backend = as_backend(dist_gpa)
        ids, scores, _ = backend.query_many_topk([3, 77], 15, threshold=0.02)
        rids, rscores, _ = gpa_small.query_many_topk([3, 77], 15, threshold=0.02)
        assert ids.tolist() == rids.tolist()
        np.testing.assert_allclose(scores, rscores, atol=1e-8, rtol=0)

    def test_threshold_above_everything_pads_fully(self, jw_small):
        ids, scores = jw_small.query_topk(5, 8, threshold=2.0)
        assert np.all(ids == -1) and np.all(scores == 0.0)

    def test_topk_rows_boundary_ties_smallest_ids(self):
        """Regression: ties straddling the k boundary must resolve to the
        smallest ids, not whatever subset argpartition happens to keep —
        pruned/truncated PPVs are full of exact-zero ties."""
        row = np.zeros(50)
        row[[10, 20, 30]] = (0.5, 0.3, 0.2)
        ids, scores = topk_rows(row[np.newaxis], 6)
        assert ids[0].tolist() == [10, 20, 30, 0, 1, 2]
        assert scores[0].tolist() == [0.5, 0.3, 0.2, 0.0, 0.0, 0.0]
        assert top_k_nodes(row, 6).tolist() == ids[0].tolist()


# ----------------------------------------------------------------------
class TestAdapters:
    def test_index_backend(self, jw_small):
        backend = as_backend(jw_small)
        assert backend.num_nodes == jw_small.graph.num_nodes
        out, stats = backend.query_many([3, 5])
        np.testing.assert_allclose(out[0], jw_small.query(3), atol=ATOL, rtol=0)

    def test_cluster_backend_topk(self, dist_gpa, gpa_small):
        backend = as_backend(dist_gpa)
        assert backend.num_nodes == dist_gpa.num_nodes
        ids, scores, reports = backend.query_many_topk([3, 77], 10)
        for j, u in enumerate((3, 77)):
            ref = top_k_nodes(gpa_small.query(u), 10)
            assert ids[j].tolist() == ref.tolist()
        assert len(reports) == 2

    def test_backend_passthrough(self, jw_small):
        backend = as_backend(jw_small)
        assert as_backend(backend) is backend
        assert isinstance(backend, QueryBackend)

    def test_unservable_rejected(self):
        with pytest.raises(ServingError):
            as_backend(object())

    def test_engine_without_query_many_rejected(self, small_graph):
        """Having a graph is not enough — the batch API is the contract."""

        class Legacy:
            def __init__(self, graph):
                self.graph = graph

            def query(self, u):  # pragma: no cover - never called
                raise NotImplementedError

        with pytest.raises(ServingError, match="query_many"):
            as_backend(Legacy(small_graph))

    def test_engine_without_num_nodes_rejected(self):
        """query_many alone is not enough either: without a num_nodes
        source the service cannot range-check requests."""

        class Headless:
            def query_many(self, nodes):  # pragma: no cover - never called
                raise NotImplementedError

        with pytest.raises(ServingError, match="num_nodes"):
            as_backend(Headless())

        class GraphNoSize(Headless):
            graph = object()  # graph present but no num_nodes on it

        with pytest.raises(ServingError, match="num_nodes"):
            as_backend(GraphNoSize())

    def test_non_callable_query_many_rejected(self):
        class Fake:
            query_many = "not callable"

        with pytest.raises(ServingError, match="query_many"):
            as_backend(Fake())


# ----------------------------------------------------------------------
class TestPPVService:
    ALL_BACKENDS = [
        "jw_small",
        "gpa_small",
        "hgpa_small",
        "fast_small",
        "dist_gpa",
        "dist_hgpa",
    ]

    @staticmethod
    def _reference(engine):
        """Per-node query closure for any engine (runtimes return tuples)."""
        if hasattr(engine, "graph"):
            return engine.query
        return lambda u: engine.query(u)[0]

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_micro_batched_matches_direct(self, request, backend):
        engine = request.getfixturevalue(backend)
        ref = self._reference(engine)
        service = PPVService(
            engine,
            window=0.005,
            max_batch=4,
            cache=PPVCache(1 << 22),
            clock=SimulatedClock(),
        )
        stream = np.asarray([3, 40, 77, 3, 110, 40, 9, 199])
        out = service.serve(stream)
        assert out.shape == (stream.size, service.backend.num_nodes)
        for i, u in enumerate(stream.tolist()):
            assert np.abs(out[i] - ref(u)).max() <= ATOL

    def test_cached_matches_fresh(self, jw_small):
        service = PPVService(
            jw_small, cache=PPVCache(1 << 22), clock=SimulatedClock()
        )
        fresh = service.query(42)
        cached = service.query(42)
        assert service.stats.cache_hits == 1
        assert cached is fresh  # the very same read-only buffer
        np.testing.assert_allclose(fresh, jw_small.query(42), atol=ATOL, rtol=0)

    def test_results_read_only(self, jw_small):
        service = PPVService(jw_small, clock=SimulatedClock())
        vec = service.query(3)
        with pytest.raises(ValueError):
            vec[0] = 1.0

    def test_window_batching_deterministic(self, jw_small):
        clock = SimulatedClock()
        service = PPVService(jw_small, window=0.010, max_batch=100, clock=clock)
        t1 = service.submit(5)
        clock.advance(0.004)
        assert service.poll() == 0  # window still open
        t2 = service.submit(6)
        clock.advance(0.005)
        assert service.poll() == 0  # 9ms since first request
        clock.advance(0.002)
        assert service.poll() == 2  # 11ms: one batch, both tickets
        assert t1.done and t2.done
        assert service.stats.batches == 1
        np.testing.assert_allclose(t1.result, jw_small.query(5), atol=ATOL, rtol=0)

    def test_submit_alone_flushes_expired_window(self, jw_small):
        """Submit-only callers keep the at-most-one-window latency bound:
        a request arriving after the deadline flushes the stale batch."""
        clock = SimulatedClock()
        service = PPVService(jw_small, window=0.010, max_batch=100, clock=clock)
        t1 = service.submit(5)
        clock.advance(0.020)  # window long expired, nobody called poll()
        t2 = service.submit(6)
        assert t1.done  # flushed by the submit itself
        assert not t2.done  # new request opens a fresh window
        np.testing.assert_allclose(t1.result, jw_small.query(5), atol=ATOL, rtol=0)
        service.flush()
        assert t2.done

    def test_max_batch_flushes_eagerly(self, jw_small):
        service = PPVService(
            jw_small, window=10.0, max_batch=3, clock=SimulatedClock()
        )
        tickets = [service.submit(u) for u in (1, 2, 3)]
        assert all(t.done for t in tickets)  # hit max_batch, no clock motion
        assert service.stats.batches == 1

    def test_batch_deduplicates(self, jw_small):
        service = PPVService(jw_small, window=10.0, max_batch=100, clock=SimulatedClock())
        for u in (7, 7, 7, 9):
            service.submit(u)
        service.flush()
        assert service.stats.batches == 1
        assert service.stats.batched_queries == 2  # unique {7, 9}
        assert service.stats.mean_batch_size == 2.0

    def test_pending_ticket_raises(self, jw_small):
        service = PPVService(jw_small, window=10.0, clock=SimulatedClock())
        ticket = service.submit(4)
        assert not ticket.done
        with pytest.raises(ServingError):
            _ = ticket.result
        service.flush()
        assert ticket.result is not None

    def test_arrival_replay_forms_windows(self, jw_small):
        service = PPVService(
            jw_small, window=0.010, max_batch=100, clock=SimulatedClock()
        )
        stream = np.asarray([1, 2, 3, 4])
        arrivals = np.asarray([0.0, 0.005, 0.050, 0.055])
        out = service.serve(stream, arrivals)
        # 1+2 share a window; 3 opens a new one that closes before 4 only
        # if 10ms pass — they arrive 5ms apart, so 3+4 share the second.
        assert service.stats.batches == 2
        for i, u in enumerate(stream.tolist()):
            np.testing.assert_allclose(out[i], jw_small.query(u), atol=ATOL, rtol=0)

    def test_arrivals_need_simulated_clock(self, jw_small):
        service = PPVService(jw_small)  # SystemClock
        with pytest.raises(ServingError):
            service.serve(np.asarray([1, 2]), np.asarray([0.0, 1.0]))

    def test_service_topk_matches_index(self, hgpa_small):
        service = PPVService(hgpa_small, cache=PPVCache(1 << 22), clock=SimulatedClock())
        ids, scores = service.query_topk(42, 15)
        ref_ids, ref_scores = hgpa_small.query_topk(42, 15)
        assert ids.tolist() == ref_ids.tolist()
        np.testing.assert_allclose(scores, ref_scores, atol=ATOL, rtol=0)
        # second call is served from cache, still identical
        ids2, _ = service.query_topk(42, 15)
        assert service.stats.cache_hits == 1
        assert ids2.tolist() == ref_ids.tolist()

    def test_empty_stream(self, jw_small):
        service = PPVService(jw_small, clock=SimulatedClock())
        out = service.serve(np.empty(0, dtype=np.int64))
        assert out.shape == (0, jw_small.graph.num_nodes)
        assert service.stats.batches == 0

    def test_out_of_range_rejected(self, jw_small):
        service = PPVService(jw_small, clock=SimulatedClock())
        with pytest.raises(ServingError):
            service.submit(-1)
        with pytest.raises(ServingError):
            service.submit(10_000)

    def test_float_ids_rejected(self, jw_small):
        """Floats must not silently truncate to the wrong node's PPV."""
        service = PPVService(jw_small, clock=SimulatedClock())
        with pytest.raises(ServingError, match="integer"):
            service.submit(3.7)
        with pytest.raises(ServingError, match="integer"):
            service.query(np.float64(3.0))
        assert service.submit(np.int64(3)).node == 3  # real ints pass

    def test_bad_config_rejected(self, jw_small):
        with pytest.raises(ServingError):
            PPVService(jw_small, window=-1.0)
        with pytest.raises(ServingError):
            PPVService(jw_small, max_batch=0)

    def test_int_cache_shorthand(self, jw_small):
        service = PPVService(jw_small, cache=1 << 22, clock=SimulatedClock())
        assert isinstance(service.cache, PPVCache)
        service.query(3)
        assert len(service.cache) == 1

    def test_eviction_under_pressure_stays_exact(self, jw_small):
        n = jw_small.graph.num_nodes
        # Budget for only two rows: constant churn, never a wrong answer.
        service = PPVService(
            jw_small, max_batch=4, cache=PPVCache(2 * n * 8), clock=SimulatedClock()
        )
        stream = np.asarray([1, 2, 3, 4, 1, 2, 3, 4, 1])
        out = service.serve(stream)
        for i, u in enumerate(stream.tolist()):
            np.testing.assert_allclose(out[i], jw_small.query(u), atol=ATOL, rtol=0)
        assert service.cache.stats.evictions > 0
