"""Serving layer: cache, micro-batching service, adapters, top-k queries.

The serving contract is exactness end to end: whatever path a request
takes — cached, micro-batched, deduplicated, top-k-reduced — the answer
must match the backend's per-node ``query`` to 1e-12.
"""

import numpy as np
import pytest

from repro.approx import build_fastppv_index
from repro.core.flat_index import topk_rows
from repro.distributed import DistributedGPA, DistributedHGPA
from repro.errors import QueryError, ServingError
from repro.metrics import top_k_nodes
from repro.serving import (
    PPVCache,
    PPVService,
    QueryBackend,
    SimulatedClock,
    as_backend,
)

ATOL = 1e-12


@pytest.fixture(scope="module")
def fast_small(request):
    graph = request.getfixturevalue("small_graph")
    return build_fastppv_index(graph, 25, tol=1e-6)


@pytest.fixture(scope="module")
def dist_gpa(request):
    return DistributedGPA(request.getfixturevalue("gpa_small"), 3)


@pytest.fixture(scope="module")
def dist_hgpa(request):
    return DistributedHGPA(request.getfixturevalue("hgpa_small"), 3)


def _ppv_row(n):
    rng = np.random.default_rng(0)
    return rng.random(n)


# ----------------------------------------------------------------------
class TestPPVCache:
    def test_hit_miss_accounting(self):
        cache = PPVCache(1 << 20)
        assert cache.get(3) is None
        cache.put(3, _ppv_row(10))
        got = cache.get(3)
        assert got is not None
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_entries_read_only_and_uncorruptible(self):
        cache = PPVCache(1 << 20)
        src = _ppv_row(10)
        cache.put(1, src)
        got = cache.get(1)
        with pytest.raises(ValueError):
            got[0] = 99.0
        # Mutating the caller's original array must not reach the cache.
        src[0] = 99.0
        assert cache.get(1)[0] != 99.0

    def test_lru_eviction_order(self):
        row_bytes = _ppv_row(10).nbytes
        cache = PPVCache(3 * row_bytes)
        for u in (0, 1, 2):
            cache.put(u, _ppv_row(10))
        cache.get(0)  # 1 becomes least-recently-used
        cache.put(3, _ppv_row(10))
        assert 1 not in cache and 0 in cache and 2 in cache and 3 in cache
        assert cache.stats.evictions == 1

    def test_byte_budget_invariant(self):
        row = _ppv_row(16)
        cache = PPVCache(5 * row.nbytes)
        for u in range(20):
            cache.put(u, row)
            assert cache.current_bytes <= cache.max_bytes
        assert len(cache) == 5

    def test_oversized_entry_rejected(self):
        cache = PPVCache(8)
        assert not cache.put(0, _ppv_row(100))
        assert len(cache) == 0 and cache.current_bytes == 0

    def test_replace_same_key(self):
        cache = PPVCache(1 << 20)
        cache.put(5, np.ones(4))
        cache.put(5, np.full(4, 2.0))
        assert len(cache) == 1
        np.testing.assert_array_equal(cache.get(5), np.full(4, 2.0))

    def test_read_only_view_copied_not_pinned(self):
        """A read-only row *view* must be copied — storing it as-is would
        keep the whole base matrix alive while accounting only the row."""
        base = np.arange(12.0).reshape(3, 4)
        base.flags.writeable = False
        cache = PPVCache(1 << 20)
        cache.put(0, base[1])
        stored = cache.get(0)
        assert stored.base is None
        np.testing.assert_array_equal(stored, base[1])

    def test_clear_keeps_stats(self):
        cache = PPVCache(1 << 20)
        cache.put(0, _ppv_row(4))
        cache.get(0)
        cache.clear()
        assert len(cache) == 0 and cache.current_bytes == 0
        assert cache.stats.hits == 1

    def test_bad_budget(self):
        with pytest.raises(ServingError):
            PPVCache(0)

    def test_contains_does_not_touch_stats(self):
        cache = PPVCache(1 << 20)
        cache.put(0, _ppv_row(4))
        assert 0 in cache and 1 not in cache
        assert cache.stats.hits == 0 and cache.stats.misses == 0


# ----------------------------------------------------------------------
class TestTopK:
    @pytest.mark.parametrize("family", ["jw_small", "gpa_small", "hgpa_small"])
    def test_matches_dense_argsort(self, request, family):
        index = request.getfixturevalue(family)
        queries = np.asarray([0, 7, 57, 150])
        ids, scores, stats = index.query_many_topk(queries, 12)
        assert ids.shape == scores.shape == (queries.size, 12)
        assert len(stats) == queries.size
        for j, u in enumerate(queries.tolist()):
            dense = index.query(u)
            ref = top_k_nodes(dense, 12)
            assert ids[j].tolist() == ref.tolist()
            np.testing.assert_allclose(scores[j], dense[ref], atol=ATOL, rtol=0)

    def test_fastppv_matches_dense_argsort(self, fast_small):
        queries = np.asarray([0, 57])
        ids, scores, infos = fast_small.query_many_topk(queries, 10)
        assert len(infos) == queries.size
        for j, u in enumerate(queries.tolist()):
            dense = fast_small.query(u)
            ref = top_k_nodes(dense, 10)
            assert ids[j].tolist() == ref.tolist()
            np.testing.assert_allclose(scores[j], dense[ref], atol=ATOL, rtol=0)

    def test_single_query_topk(self, jw_small):
        ids, scores = jw_small.query_topk(5, 8)
        ref = top_k_nodes(jw_small.query(5), 8)
        assert ids.tolist() == ref.tolist()
        assert np.all(np.diff(scores) <= 0)

    def test_chunking_independent(self, hgpa_small):
        queries = np.asarray([0, 5, 42, 99, 150, 7, 13])
        whole = hgpa_small.query_many_topk(queries, 9, batch=100)
        chunked = hgpa_small.query_many_topk(queries, 9, batch=2)
        np.testing.assert_array_equal(whole[0], chunked[0])
        np.testing.assert_allclose(whole[1], chunked[1], atol=ATOL, rtol=0)

    def test_k_exceeding_n_clamped(self, jw_small):
        n = jw_small.graph.num_nodes
        ids, scores = jw_small.query_topk(3, n + 50)
        assert ids.size == n
        # A full-length top-k is the whole PPV, reordered.
        np.testing.assert_allclose(
            np.sort(scores), np.sort(jw_small.query(3)), atol=ATOL, rtol=0
        )

    @pytest.mark.parametrize("family", ["jw_small", "hgpa_small"])
    def test_bad_k_rejected(self, request, family):
        index = request.getfixturevalue(family)
        with pytest.raises(QueryError):
            index.query_many_topk([0], 0)
        with pytest.raises(QueryError):
            index.query_topk(0, -3)

    def test_empty_batch(self, jw_small, hgpa_small):
        empty = np.empty(0, dtype=np.int64)
        for index in (jw_small, hgpa_small):
            ids, scores, stats = index.query_many_topk(empty, 5)
            assert ids.shape == (0, 5) and scores.shape == (0, 5)
            assert stats == []

    def test_topk_rows_ties_by_id(self):
        dense = np.asarray([[0.5, 0.9, 0.5, 0.1]])
        ids, scores = topk_rows(dense, 3)
        assert ids[0].tolist() == [1, 0, 2]
        assert scores[0].tolist() == [0.9, 0.5, 0.5]

    def test_topk_rows_boundary_ties_smallest_ids(self):
        """Regression: ties straddling the k boundary must resolve to the
        smallest ids, not whatever subset argpartition happens to keep —
        pruned/truncated PPVs are full of exact-zero ties."""
        row = np.zeros(50)
        row[[10, 20, 30]] = (0.5, 0.3, 0.2)
        ids, scores = topk_rows(row[np.newaxis], 6)
        assert ids[0].tolist() == [10, 20, 30, 0, 1, 2]
        assert scores[0].tolist() == [0.5, 0.3, 0.2, 0.0, 0.0, 0.0]
        assert top_k_nodes(row, 6).tolist() == ids[0].tolist()


# ----------------------------------------------------------------------
class TestAdapters:
    def test_index_backend(self, jw_small):
        backend = as_backend(jw_small)
        assert backend.num_nodes == jw_small.graph.num_nodes
        out, stats = backend.query_many([3, 5])
        np.testing.assert_allclose(out[0], jw_small.query(3), atol=ATOL, rtol=0)

    def test_cluster_backend_topk(self, dist_gpa, gpa_small):
        backend = as_backend(dist_gpa)
        assert backend.num_nodes == dist_gpa.num_nodes
        ids, scores, reports = backend.query_many_topk([3, 77], 10)
        for j, u in enumerate((3, 77)):
            ref = top_k_nodes(gpa_small.query(u), 10)
            assert ids[j].tolist() == ref.tolist()
        assert len(reports) == 2

    def test_backend_passthrough(self, jw_small):
        backend = as_backend(jw_small)
        assert as_backend(backend) is backend
        assert isinstance(backend, QueryBackend)

    def test_unservable_rejected(self):
        with pytest.raises(ServingError):
            as_backend(object())


# ----------------------------------------------------------------------
class TestPPVService:
    ALL_BACKENDS = [
        "jw_small",
        "gpa_small",
        "hgpa_small",
        "fast_small",
        "dist_gpa",
        "dist_hgpa",
    ]

    @staticmethod
    def _reference(engine):
        """Per-node query closure for any engine (runtimes return tuples)."""
        if hasattr(engine, "graph"):
            return engine.query
        return lambda u: engine.query(u)[0]

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_micro_batched_matches_direct(self, request, backend):
        engine = request.getfixturevalue(backend)
        ref = self._reference(engine)
        service = PPVService(
            engine,
            window=0.005,
            max_batch=4,
            cache=PPVCache(1 << 22),
            clock=SimulatedClock(),
        )
        stream = np.asarray([3, 40, 77, 3, 110, 40, 9, 199])
        out = service.serve(stream)
        assert out.shape == (stream.size, service.backend.num_nodes)
        for i, u in enumerate(stream.tolist()):
            assert np.abs(out[i] - ref(u)).max() <= ATOL

    def test_cached_matches_fresh(self, jw_small):
        service = PPVService(
            jw_small, cache=PPVCache(1 << 22), clock=SimulatedClock()
        )
        fresh = service.query(42)
        cached = service.query(42)
        assert service.stats.cache_hits == 1
        assert cached is fresh  # the very same read-only buffer
        np.testing.assert_allclose(fresh, jw_small.query(42), atol=ATOL, rtol=0)

    def test_results_read_only(self, jw_small):
        service = PPVService(jw_small, clock=SimulatedClock())
        vec = service.query(3)
        with pytest.raises(ValueError):
            vec[0] = 1.0

    def test_window_batching_deterministic(self, jw_small):
        clock = SimulatedClock()
        service = PPVService(jw_small, window=0.010, max_batch=100, clock=clock)
        t1 = service.submit(5)
        clock.advance(0.004)
        assert service.poll() == 0  # window still open
        t2 = service.submit(6)
        clock.advance(0.005)
        assert service.poll() == 0  # 9ms since first request
        clock.advance(0.002)
        assert service.poll() == 2  # 11ms: one batch, both tickets
        assert t1.done and t2.done
        assert service.stats.batches == 1
        np.testing.assert_allclose(t1.result, jw_small.query(5), atol=ATOL, rtol=0)

    def test_submit_alone_flushes_expired_window(self, jw_small):
        """Submit-only callers keep the at-most-one-window latency bound:
        a request arriving after the deadline flushes the stale batch."""
        clock = SimulatedClock()
        service = PPVService(jw_small, window=0.010, max_batch=100, clock=clock)
        t1 = service.submit(5)
        clock.advance(0.020)  # window long expired, nobody called poll()
        t2 = service.submit(6)
        assert t1.done  # flushed by the submit itself
        assert not t2.done  # new request opens a fresh window
        np.testing.assert_allclose(t1.result, jw_small.query(5), atol=ATOL, rtol=0)
        service.flush()
        assert t2.done

    def test_max_batch_flushes_eagerly(self, jw_small):
        service = PPVService(
            jw_small, window=10.0, max_batch=3, clock=SimulatedClock()
        )
        tickets = [service.submit(u) for u in (1, 2, 3)]
        assert all(t.done for t in tickets)  # hit max_batch, no clock motion
        assert service.stats.batches == 1

    def test_batch_deduplicates(self, jw_small):
        service = PPVService(jw_small, window=10.0, max_batch=100, clock=SimulatedClock())
        for u in (7, 7, 7, 9):
            service.submit(u)
        service.flush()
        assert service.stats.batches == 1
        assert service.stats.batched_queries == 2  # unique {7, 9}
        assert service.stats.mean_batch_size == 2.0

    def test_pending_ticket_raises(self, jw_small):
        service = PPVService(jw_small, window=10.0, clock=SimulatedClock())
        ticket = service.submit(4)
        assert not ticket.done
        with pytest.raises(ServingError):
            _ = ticket.result
        service.flush()
        assert ticket.result is not None

    def test_arrival_replay_forms_windows(self, jw_small):
        service = PPVService(
            jw_small, window=0.010, max_batch=100, clock=SimulatedClock()
        )
        stream = np.asarray([1, 2, 3, 4])
        arrivals = np.asarray([0.0, 0.005, 0.050, 0.055])
        out = service.serve(stream, arrivals)
        # 1+2 share a window; 3 opens a new one that closes before 4 only
        # if 10ms pass — they arrive 5ms apart, so 3+4 share the second.
        assert service.stats.batches == 2
        for i, u in enumerate(stream.tolist()):
            np.testing.assert_allclose(out[i], jw_small.query(u), atol=ATOL, rtol=0)

    def test_arrivals_need_simulated_clock(self, jw_small):
        service = PPVService(jw_small)  # SystemClock
        with pytest.raises(ServingError):
            service.serve(np.asarray([1, 2]), np.asarray([0.0, 1.0]))

    def test_service_topk_matches_index(self, hgpa_small):
        service = PPVService(hgpa_small, cache=PPVCache(1 << 22), clock=SimulatedClock())
        ids, scores = service.query_topk(42, 15)
        ref_ids, ref_scores = hgpa_small.query_topk(42, 15)
        assert ids.tolist() == ref_ids.tolist()
        np.testing.assert_allclose(scores, ref_scores, atol=ATOL, rtol=0)
        # second call is served from cache, still identical
        ids2, _ = service.query_topk(42, 15)
        assert service.stats.cache_hits == 1
        assert ids2.tolist() == ref_ids.tolist()

    def test_empty_stream(self, jw_small):
        service = PPVService(jw_small, clock=SimulatedClock())
        out = service.serve(np.empty(0, dtype=np.int64))
        assert out.shape == (0, jw_small.graph.num_nodes)
        assert service.stats.batches == 0

    def test_out_of_range_rejected(self, jw_small):
        service = PPVService(jw_small, clock=SimulatedClock())
        with pytest.raises(ServingError):
            service.submit(-1)
        with pytest.raises(ServingError):
            service.submit(10_000)

    def test_float_ids_rejected(self, jw_small):
        """Floats must not silently truncate to the wrong node's PPV."""
        service = PPVService(jw_small, clock=SimulatedClock())
        with pytest.raises(ServingError, match="integer"):
            service.submit(3.7)
        with pytest.raises(ServingError, match="integer"):
            service.query(np.float64(3.0))
        assert service.submit(np.int64(3)).node == 3  # real ints pass

    def test_bad_config_rejected(self, jw_small):
        with pytest.raises(ServingError):
            PPVService(jw_small, window=-1.0)
        with pytest.raises(ServingError):
            PPVService(jw_small, max_batch=0)

    def test_int_cache_shorthand(self, jw_small):
        service = PPVService(jw_small, cache=1 << 22, clock=SimulatedClock())
        assert isinstance(service.cache, PPVCache)
        service.query(3)
        assert len(service.cache) == 1

    def test_eviction_under_pressure_stays_exact(self, jw_small):
        n = jw_small.graph.num_nodes
        # Budget for only two rows: constant churn, never a wrong answer.
        service = PPVService(
            jw_small, max_batch=4, cache=PPVCache(2 * n * 8), clock=SimulatedClock()
        )
        stream = np.asarray([1, 2, 3, 4, 1, 2, 3, 4, 1])
        out = service.serve(stream)
        for i, u in enumerate(stream.tolist()):
            np.testing.assert_allclose(out[i], jw_small.query(u), atol=ATOL, rtol=0)
        assert service.cache.stats.evictions > 0
