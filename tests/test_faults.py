"""Chaos suite: seeded fault schedules against the serving stack.

The headline contract under test (see :mod:`repro.faults`): under *any*
fault schedule that leaves every shard at least one healthy replica,
every non-degraded answer is **bitwise** equal to the fault-free run —
and when quorum *is* lost, the failure is explicit (``degraded``/
``shed`` markers, :class:`~repro.errors.DegradedResult` on read), never
a silently wrong value.  Chaos runs are driven entirely by a
:class:`~repro.serving.service.SimulatedClock`, so every run — faults,
retries, backoff, hedges, recoveries — replays identically from its
seed, which the replay test asserts down to the byte and counter.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    DegradedResult,
    FaultPlanError,
    ReplicaUnavailable,
    ShardingError,
)
from repro.exec import ProcessPoolBackend
from repro.faults import EVENT_KINDS, FaultEvent, FaultInjector, FaultPlan
from repro.serving.service import PPVService, ServiceStats, SimulatedClock
from repro.sharding import (
    CircuitBreaker,
    ResilienceStats,
    RetryPolicy,
    ShardRouter,
    charge_wait,
)

NUM_SHARDS = 2
REPLICAS = 2
STREAM = 120  # requests per chaos run
HORIZON = 3.0  # seconds; past the stream's last arrival


def _policy(**overrides) -> RetryPolicy:
    base = dict(
        max_attempts=4,
        backoff_seconds=0.002,
        timeout_seconds=0.25,
        hedge_after_seconds=0.02,
        breaker_failures=3,
        breaker_reset_seconds=0.5,
        degrade=True,
        seed=0,
    )
    base.update(overrides)
    return RetryPolicy(**base)


def _router(engine, plan=None, **policy_overrides):
    clock = SimulatedClock()
    router = ShardRouter(
        [[engine] * REPLICAS] * NUM_SHARDS,
        clock=clock,
        cache_bytes=1 << 20,
        resilience=_policy(**policy_overrides),
    )
    if plan is not None:
        FaultInjector(plan).attach(router)
    return router, clock


def _stream(num_nodes, *, size=STREAM, seed=0, pool=None):
    rng = np.random.default_rng(seed)
    nodes = rng.integers(0, pool if pool is not None else num_nodes, size=size)
    arrivals = np.cumsum(rng.exponential(0.02, size=size))
    return nodes, arrivals


def _run(engine, plan=None, *, stream_seed=0, pool=None, degrade=True, **policy):
    """One full service run over the canned arrival stream; returns the
    resolved tickets plus the service and router for their stats."""
    router, clock = _router(engine, plan, degrade=degrade, **policy)
    service = PPVService(
        router, window=0.01, clock=clock, slo_seconds=0.1, degrade=degrade
    )
    nodes, arrivals = _stream(engine.graph.num_nodes, seed=stream_seed, pool=pool)
    tickets = service.replay(zip(arrivals.tolist(), nodes.tolist()))
    return tickets, service, router


_ORACLE: dict[tuple, list] = {}


def _oracle_rows(engine, *, stream_seed=0, pool=None):
    """Fault-free reference rows for the canned stream (cached)."""
    key = (id(engine), stream_seed, pool)
    if key not in _ORACLE:
        tickets, _, _ = _run(engine, None, stream_seed=stream_seed, pool=pool)
        assert all(t.status == "ok" for t in tickets)
        _ORACLE[key] = [t.result for t in tickets]
    return _ORACLE[key]


def _assert_bitwise_or_marked(tickets, oracle) -> None:
    """The headline contract, row by row: exact, or explicitly marked."""
    assert len(tickets) == len(oracle)
    for ticket, want in zip(tickets, oracle):
        assert ticket.done
        if ticket.shed:
            assert not ticket._value.any()  # explicit zeros, never garbage
            with pytest.raises(DegradedResult):
                ticket.result
        else:
            # "ok" rows are fresh-and-exact; "degraded" rows come from a
            # cache that only ever held exact rows — bitwise either way.
            assert np.array_equal(ticket.result, want)


# ---------------------------------------------------------------------------
class TestFaultPlan:
    def test_event_validation(self):
        with pytest.raises(FaultPlanError, match="unknown fault kind"):
            FaultEvent(0.0, "meteor")
        with pytest.raises(FaultPlanError, match="time must be >= 0"):
            FaultEvent(-1.0, "drop")
        with pytest.raises(FaultPlanError, match="count must be >= 1"):
            FaultEvent(0.0, "drop", count=0)
        with pytest.raises(FaultPlanError, match="need a replica index"):
            FaultEvent(0.0, "crash")
        with pytest.raises(FaultPlanError, match="duration/delay"):
            FaultEvent(0.0, "crash", replica=0, duration=-1.0)

    def test_plan_sorts_events_and_selects_kinds(self):
        late = FaultEvent(2.0, "drop", shard=1)
        early = FaultEvent(0.5, "crash", shard=0, replica=1, duration=1.0)
        plan = FaultPlan((late, early))
        assert plan.events == (early, late)
        assert len(plan) == 2 and list(plan) == [early, late]
        assert plan.for_kind("crash") == (early,)
        with pytest.raises(FaultPlanError, match="unknown fault kind"):
            plan.for_kind("meteor")
        assert early.until == pytest.approx(1.5)

    def test_generate_is_deterministic_in_the_seed(self):
        kw = dict(num_shards=2, replicas_per_shard=2, horizon=5.0)
        assert FaultPlan.generate(3, **kw) == FaultPlan.generate(3, **kw)
        assert FaultPlan.generate(3, **kw) != FaultPlan.generate(4, **kw)
        assert FaultPlan.generate(3, **kw).seed == 3
        assert all(
            e.kind in EVENT_KINDS for e in FaultPlan.generate(3, **kw)
        )

    def test_generate_keeps_quorum_even_under_heavy_crashing(self):
        for seed in range(15):
            plan = FaultPlan.generate(
                seed,
                num_shards=2,
                replicas_per_shard=2,
                crashes=8,
                crash_duration=4.0,
            )
            assert plan.keeps_quorum(2, 2)

    def test_keeps_quorum_rejects_overlapping_crashes(self):
        plan = FaultPlan(
            tuple(
                FaultEvent(0.0, "crash", shard=0, replica=r, duration=5.0)
                for r in range(2)
            )
        )
        assert not plan.keeps_quorum(2, 2)
        assert plan.keeps_quorum(2, 3)  # a third replica would survive

    def test_check_targets_rejects_phantom_replicas(self):
        plan = FaultPlan((FaultEvent(0.0, "crash", shard=5, replica=0),))
        with pytest.raises(FaultPlanError, match="shard 5"):
            plan.check_targets(2, 2)
        plan = FaultPlan((FaultEvent(0.0, "crash", shard=0, replica=7),))
        with pytest.raises(FaultPlanError, match="replica 7"):
            plan.check_targets(2, 2)


class TestInjectorWiring:
    def test_attach_validates_and_is_exclusive(self, gpa_small):
        router, _ = _router(gpa_small)
        bad = FaultInjector(
            FaultPlan((FaultEvent(0.0, "crash", shard=9, replica=0),))
        )
        with pytest.raises(FaultPlanError, match="shard 9"):
            bad.attach(router)
        injector = FaultInjector(FaultPlan()).attach(router)
        assert router.fault_injector is injector
        with pytest.raises(FaultPlanError, match="already attached"):
            injector.attach(router)

    def test_pump_requires_a_router(self):
        with pytest.raises(FaultPlanError, match="not attached"):
            FaultInjector(FaultPlan()).pump(0.0)

    def test_crash_window_the_clock_jumped_over_is_elapsed(self, gpa_small):
        plan = FaultPlan(
            (FaultEvent(0.1, "crash", shard=0, replica=0, duration=0.05),)
        )
        router, clock = _router(gpa_small, plan)
        clock.advance(1.0)
        router.fault_injector.pump()
        assert router.fault_injector.injected == {"crash_elapsed": 1}
        assert router.shards[0].replicas[0].is_up(clock.now())


class TestResiliencePrimitives:
    def test_policy_validation(self):
        for bad in (
            dict(max_attempts=0),
            dict(backoff_seconds=-1.0),
            dict(backoff_multiplier=0.5),
            dict(jitter=1.5),
            dict(timeout_seconds=0.0),
            dict(hedge_after_seconds=-0.1),
            dict(breaker_failures=0),
            dict(breaker_reset_seconds=-1.0),
        ):
            with pytest.raises(ShardingError):
                RetryPolicy(**bad)

    def test_backoff_is_deterministic_and_bounded(self):
        policy = RetryPolicy(
            backoff_seconds=0.01, max_backoff_seconds=0.1, jitter=0.2, seed=5
        )
        for attempt in range(6):
            assert policy.backoff(attempt) == policy.backoff(attempt)
        assert policy.backoff(2, salt=1) != policy.backoff(2, salt=2)
        plain = RetryPolicy(backoff_seconds=0.01, max_backoff_seconds=0.1, jitter=0.0)
        assert plain.backoff(0) == pytest.approx(0.01)
        assert plain.backoff(2) == pytest.approx(0.04)
        assert plain.backoff(10) == pytest.approx(0.1)  # capped
        for attempt in range(8):
            assert policy.backoff(attempt) <= 0.1 * 1.2

    def test_circuit_breaker_transitions(self):
        breaker = CircuitBreaker(failures_to_open=2, reset_seconds=1.0)
        assert breaker.allow(0.0)
        assert not breaker.record_failure(0.0)
        assert breaker.record_failure(0.0)  # second failure opens it
        assert breaker.is_open and not breaker.allow(0.5)
        assert breaker.allow(1.5)  # half-open probe after the cool-off
        assert breaker.record_failure(1.5)  # failed probe: straight back open
        assert not breaker.allow(2.0)
        assert breaker.allow(2.5)
        breaker.record_success()
        assert not breaker.is_open and breaker.failures == 0

    def test_charge_wait_advances_simulated_clocks_only(self):
        clock = SimulatedClock()
        stats = ResilienceStats()
        charge_wait(clock, 0.5, stats)
        charge_wait(clock, 0.0, stats)  # no-op
        assert clock.now() == pytest.approx(0.5)
        assert stats.backoff_seconds == pytest.approx(0.5)
        charge_wait(object(), 0.25, stats)  # real clocks: accounted, not slept
        assert stats.backoff_seconds == pytest.approx(0.75)
        assert stats.extra_attempts == 0

    def test_stats_availability_defaults(self):
        assert ServiceStats().availability == 1.0


# ---------------------------------------------------------------------------
class TestChaosContract:
    """The headline: bitwise-exact under quorum, marked when not."""

    @settings(max_examples=10, deadline=None, derandomize=True)
    @given(seed=st.integers(min_value=0, max_value=100_000))
    def test_quorum_keeping_schedules_are_bitwise_exact(self, gpa_small, seed):
        plan = FaultPlan.generate(
            seed,
            num_shards=NUM_SHARDS,
            replicas_per_shard=REPLICAS,
            horizon=HORIZON,
            crashes=3,
            kills=2,
            stragglers=2,
            drops=2,
        )
        assert plan.keeps_quorum(NUM_SHARDS, REPLICAS)
        tickets, service, _ = _run(gpa_small, plan)
        _assert_bitwise_or_marked(tickets, _oracle_rows(gpa_small))
        # Quorum held throughout: nothing needed to shed.
        assert service.stats.shed == 0
        assert service.stats.availability == 1.0

    @pytest.mark.parametrize("family", ["gpa", "hgpa"])
    def test_contract_holds_across_engine_families(self, request, family):
        engine = request.getfixturevalue(f"{family}_small")
        plan = FaultPlan.generate(
            11, num_shards=NUM_SHARDS, replicas_per_shard=REPLICAS, horizon=HORIZON
        )
        tickets, service, _ = _run(engine, plan)
        _assert_bitwise_or_marked(tickets, _oracle_rows(engine))
        assert service.stats.availability == 1.0

    def test_same_seed_replays_identically(self, gpa_small):
        runs = []
        for _ in range(2):
            tickets, service, router = _run(gpa_small, FaultPlan.generate(
                7, num_shards=NUM_SHARDS, replicas_per_shard=REPLICAS,
                horizon=HORIZON,
            ))
            runs.append((tickets, service, router))
        (t0, s0, r0), (t1, s1, r1) = runs
        for a, b in zip(t0, t1):
            assert a.status == b.status
            assert np.array_equal(a._value, b._value)
            assert a.latency_seconds == b.latency_seconds
        assert s0.stats == s1.stats
        assert r0.res_stats == r1.res_stats
        assert r0.fault_injector.injected == r1.fault_injector.injected
        assert r0.meter.total_bytes == r1.meter.total_bytes

    def test_lost_quorum_degrades_and_sheds_explicitly(self, gpa_small):
        # Both replicas of shard 0 die at t=1.0 and never recover: rows
        # the shard cache already holds serve stale (marked), the rest
        # shed — and every answered row is still bitwise-exact.
        plan = FaultPlan(
            tuple(
                FaultEvent(1.0, "crash", shard=0, replica=r, duration=60.0)
                for r in range(REPLICAS)
            )
        )
        assert not plan.keeps_quorum(NUM_SHARDS, REPLICAS)
        # A 40-node pool guarantees repeats, so serve-stale really fires.
        tickets, service, router = _run(gpa_small, plan, pool=40)
        _assert_bitwise_or_marked(
            tickets, _oracle_rows(gpa_small, pool=40)
        )
        assert service.stats.shed > 0
        assert service.stats.degraded > 0
        assert service.stats.availability < 1.0
        assert router.res_stats.shed_rows > 0
        assert router.res_stats.degraded_rows > 0

    def test_lost_quorum_without_degrade_raises(self, gpa_small):
        plan = FaultPlan(
            tuple(
                FaultEvent(0.0, "crash", shard=0, replica=r, duration=60.0)
                for r in range(REPLICAS)
            )
        )
        with pytest.raises(ReplicaUnavailable):
            _run(gpa_small, plan, degrade=False)


class TestFaultKinds:
    def test_injected_worker_death_is_retried(self, gpa_small):
        plan = FaultPlan(
            (FaultEvent(0.05, "kill_worker", shard=0, replica=0, count=1),)
        )
        tickets, service, router = _run(gpa_small, plan)
        _assert_bitwise_or_marked(tickets, _oracle_rows(gpa_small))
        assert router.fault_injector.injected.get("kill_worker") == 1
        assert router.res_stats.retries >= 1
        assert service.stats.availability == 1.0

    def test_straggler_triggers_hedging(self, gpa_small):
        plan = FaultPlan(
            (
                FaultEvent(
                    0.0, "latency", shard=0, replica=0,
                    duration=HORIZON + 1.0, delay=0.05,
                ),
            )
        )
        tickets, _, router = _run(gpa_small, plan)
        _assert_bitwise_or_marked(tickets, _oracle_rows(gpa_small))
        assert router.res_stats.hedges > 0
        assert router.res_stats.hedge_wins > 0

    def test_fleetwide_stragglers_serve_late_not_wrong(self, gpa_small):
        # Every replica is slow: the deadline fires on every attempt,
        # and the last resort is serving the exact answer late — an SLO
        # miss and a counted overrun, never a shed or a wrong row.
        events = tuple(
            FaultEvent(
                0.0, "latency", shard=s, replica=r,
                duration=HORIZON + 1.0, delay=0.5,
            )
            for s in range(NUM_SHARDS)
            for r in range(REPLICAS)
        )
        tickets, service, router = _run(
            gpa_small, FaultPlan(events), timeout_seconds=0.05,
        )
        _assert_bitwise_or_marked(tickets, _oracle_rows(gpa_small))
        assert router.res_stats.deadline_exceeded > 0
        assert router.res_stats.deadline_overruns > 0
        assert service.stats.shed == 0
        assert service.stats.slo_missed > 0

    def test_lost_payloads_retransmit_and_pay_the_wire_twice(self, gpa_small):
        nodes = np.arange(24)
        baseline, _ = _router(gpa_small)
        want, _ = baseline.query_many(nodes)
        plan = FaultPlan(
            (
                FaultEvent(0.0, "drop", shard=0, count=1),
                FaultEvent(0.0, "truncate", shard=1, count=1),
            )
        )
        router, _ = _router(gpa_small, plan)
        got, _ = router.query_many(nodes)
        assert np.array_equal(got, want)
        assert router.fault_injector.injected == {"drop": 1, "truncate": 1}
        # The lost payloads crossed the wire before being lost, so the
        # faulted run is strictly more expensive than the clean one.
        assert router.meter.total_bytes > baseline.meter.total_bytes
        assert router.res_stats.retries >= 2

    def test_injected_worker_death_at_the_exec_seam(self, gpa_small):
        want, _ = ShardRouter([[gpa_small] * REPLICAS] * NUM_SHARDS).query_many(
            np.arange(16)
        )
        plan = FaultPlan(
            (FaultEvent(0.0, "kill_worker", shard=0, replica=0, count=1),)
        )
        with ProcessPoolBackend(2) as pool:
            clock = SimulatedClock()
            router = ShardRouter(
                [[gpa_small] * REPLICAS] * NUM_SHARDS,
                clock=clock,
                backend=pool,
                resilience=_policy(),
            )
            FaultInjector(plan).attach(router)
            got, _ = router.query_many(np.arange(16))
            assert np.array_equal(got, want)
            assert router.res_stats.worker_retries == 1
            assert router.fault_injector.injected == {"kill_worker": 1}


class TestGracefulDegradationFrontend:
    def test_admission_control_sheds_past_the_queue_mark(self, gpa_small):
        clock = SimulatedClock()
        service = PPVService(
            gpa_small, window=1.0, clock=clock, shed_above=3
        )
        tickets = [service.submit(u) for u in range(6)]
        assert [t.shed for t in tickets] == [False] * 3 + [True] * 3
        shed = tickets[-1]
        assert shed.done and not shed._value.any()
        assert not shed._value.flags.writeable
        with pytest.raises(DegradedResult, match="was shed"):
            shed.result
        assert service.stats.shed == 3
        assert service.stats.availability == pytest.approx(0.5)
        service.flush()
        assert all(t.done for t in tickets)

    def test_slo_accounting_classifies_answered_requests(self, gpa_small):
        clock = SimulatedClock()
        service = PPVService(
            gpa_small,
            window=0.05,
            clock=clock,
            cache=1 << 20,
            slo_seconds=0.04,
        )
        first = service.submit(1)
        clock.advance(0.2)
        service.poll()
        assert first.latency_seconds == pytest.approx(0.2)
        assert service.stats.slo_missed == 1
        hit = service.submit(1)  # cache hit resolves within the SLO
        assert hit.cached and service.stats.slo_met == 1
        assert service.stats.max_latency_seconds == pytest.approx(0.2)
        assert service.stats.mean_latency_seconds == pytest.approx(0.1)

    def test_service_validates_degradation_knobs(self, gpa_small):
        with pytest.raises(Exception, match="slo_seconds"):
            PPVService(gpa_small, slo_seconds=0.0)
        with pytest.raises(Exception, match="shed_above"):
            PPVService(gpa_small, shed_above=0)
