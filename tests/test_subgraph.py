"""Unit tests for virtual subgraph views (Definition 3)."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import DiGraph, VirtualSubgraph


@pytest.fixture()
def view(tiny_graph):
    return VirtualSubgraph(tiny_graph, [2, 3, 4])


class TestStructure:
    def test_nodes_sorted_unique(self, tiny_graph):
        v = VirtualSubgraph(tiny_graph, [4, 2, 2, 3])
        assert v.nodes.tolist() == [2, 3, 4]
        assert v.num_nodes == 3

    def test_internal_edges(self, view):
        src, dst = view.internal_edges_local()
        edges = set(zip(view.to_global(src).tolist(), view.to_global(dst).tolist()))
        assert edges == {(2, 3), (3, 4), (4, 2)}
        assert view.num_internal_edges == 3

    def test_contains(self, view):
        assert view.contains(3) and not view.contains(0)
        assert not view.contains(-1) and not view.contains(99)

    def test_mapping_roundtrip(self, view):
        for g in (2, 3, 4):
            assert view.to_global(view.to_local(g)) == g
        arr = np.array([4, 2])
        np.testing.assert_array_equal(view.to_global(view.to_local(arr)), arr)

    def test_mapping_rejects_outsiders(self, view):
        with pytest.raises(GraphError):
            view.to_local(0)
        with pytest.raises(GraphError):
            view.to_local(np.array([2, 0]))

    def test_out_of_range_nodes_rejected(self, tiny_graph):
        with pytest.raises(GraphError):
            VirtualSubgraph(tiny_graph, [0, 7])


class TestDegreesAndMass:
    def test_original_out_degrees_preserved(self, view, tiny_graph):
        # Node 2 has out-degree 2 in G (to 0 and 3) but only one internal edge.
        np.testing.assert_array_equal(
            view.local_out_degrees(), tiny_graph.out_degrees[[2, 3, 4]]
        )
        assert view.internal_out_degrees().tolist() == [1, 1, 1]

    def test_escape_mass(self, view):
        # 2 -> 0 leaves the subset: half of node 2's mass escapes.
        esc = view.escape_mass()
        assert esc[view.to_local(2)] == pytest.approx(0.5)
        assert esc[view.to_local(3)] == 0.0

    def test_transition_substochastic(self, view):
        w = view.transition()
        sums = np.asarray(w.sum(axis=1)).ravel()
        assert sums[view.to_local(2)] == pytest.approx(0.5)
        assert sums[view.to_local(3)] == pytest.approx(1.0)

    def test_transition_T_is_transpose(self, view):
        diff = (view.transition_T() - view.transition().T).toarray()
        assert np.abs(diff).max() == 0

    def test_probabilities_use_global_degree(self, view):
        w = view.transition()
        # Edge 2->3 keeps probability 1/out_G(2) = 1/2, not 1/1.
        assert w[view.to_local(2), view.to_local(3)] == pytest.approx(0.5)


class TestEdgeCases:
    def test_empty_subset(self, tiny_graph):
        v = VirtualSubgraph(tiny_graph, [])
        assert v.num_nodes == 0 and v.num_internal_edges == 0

    def test_singleton(self, tiny_graph):
        v = VirtualSubgraph(tiny_graph, [0])
        assert v.num_internal_edges == 0
        assert v.escape_mass().tolist() == [1.0]

    def test_full_view_matches_graph(self, tiny_graph):
        v = VirtualSubgraph(tiny_graph, np.arange(5))
        assert v.num_internal_edges == tiny_graph.num_edges
        diff = (v.transition_T() - tiny_graph.transition_T()).toarray()
        assert np.abs(diff).max() == 0

    def test_self_loop_is_internal(self):
        g = DiGraph.from_edges(3, [(0, 0), (0, 1)])
        v = VirtualSubgraph(g, [0])
        assert v.num_internal_edges == 1
        assert v.escape_mass()[0] == pytest.approx(0.5)
