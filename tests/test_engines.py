"""Tests for the Pregel+/Blogel engine baselines (Section 6.2.8)."""

import pytest

from repro.core import expected_iterations, power_iteration_ppv
from repro.engines import (
    BlogelPPR,
    PregelPPR,
    cross_machine_message_counts,
    hash_machine_assignment,
)
from repro.errors import ClusterError, QueryError
from repro.graph import DiGraph, ring_digraph
from repro.metrics import l_inf


class TestAssignment:
    def test_hash_round_robin(self):
        a = hash_machine_assignment(10, 3)
        assert a.tolist() == [0, 1, 2, 0, 1, 2, 0, 1, 2, 0]

    def test_needs_machines(self):
        with pytest.raises(ClusterError):
            hash_machine_assignment(5, 0)

    def test_combiner_reduces_messages(self, medium_graph):
        machine_of = hash_machine_assignment(medium_graph.num_nodes, 4)
        combined, raw = cross_machine_message_counts(
            medium_graph, machine_of, combiner=True
        )
        assert combined <= raw
        same, raw2 = cross_machine_message_counts(
            medium_graph, machine_of, combiner=False
        )
        assert same == raw2 == raw

    def test_single_machine_no_traffic(self, small_graph):
        machine_of = hash_machine_assignment(small_graph.num_nodes, 1)
        combined, raw = cross_machine_message_counts(small_graph, machine_of)
        assert combined == 0 and raw == 0


class TestPregel:
    def test_result_matches_power_iteration(self, small_graph):
        ref = power_iteration_ppv(small_graph, 5, tol=1e-8)
        vec, report = PregelPPR(small_graph, 4).query(5, tol=1e-8)
        assert l_inf(vec, ref) < 1e-10  # identical fixed-point iteration

    def test_superstep_count_matches_theory(self, small_graph):
        """Supersteps grow like log(1/ε)/log(1/(1-α)); the theory count is
        an upper bound (per-entry deltas shrink faster than total mass)."""
        _, report = PregelPPR(small_graph, 4).query(5, tol=1e-6)
        theory = expected_iterations(0.15, 1e-6)
        assert 5 <= report.supersteps <= theory + 5

    def test_communication_grows_per_superstep(self, small_graph):
        engine = PregelPPR(small_graph, 4)
        _, report = engine.query(5, tol=1e-4)
        assert report.communication_bytes == (
            report.supersteps * engine.per_superstep_bytes
        )

    def test_more_machines_more_traffic(self, medium_graph):
        b2 = PregelPPR(medium_graph, 2).per_superstep_bytes
        b8 = PregelPPR(medium_graph, 8).per_superstep_bytes
        assert b8 >= b2

    def test_tighter_tol_more_supersteps(self, small_graph):
        engine = PregelPPR(small_graph, 2)
        _, loose = engine.query(5, tol=1e-2)
        _, tight = engine.query(5, tol=1e-6)
        assert tight.supersteps > loose.supersteps

    def test_bad_query(self, small_graph):
        with pytest.raises(QueryError):
            PregelPPR(small_graph, 2).query(10_000)


class TestBlogel:
    def test_result_matches_power_iteration(self, small_graph):
        ref = power_iteration_ppv(small_graph, 5, tol=1e-8)
        vec, _ = BlogelPPR(small_graph, 4).query(5, tol=1e-8)
        assert l_inf(vec, ref) < 1e-6

    def test_fewer_supersteps_than_pregel(self, small_graph):
        _, pregel = PregelPPR(small_graph, 4).query(5, tol=1e-6)
        _, blogel = BlogelPPR(small_graph, 4).query(5, tol=1e-6)
        assert blogel.supersteps < pregel.supersteps

    def test_less_communication_than_pregel(self, small_graph):
        _, pregel = PregelPPR(small_graph, 4).query(5, tol=1e-6)
        _, blogel = BlogelPPR(small_graph, 4).query(5, tol=1e-6)
        assert blogel.communication_bytes < pregel.communication_bytes

    def test_single_machine_no_traffic(self, small_graph):
        engine = BlogelPPR(small_graph, 1, num_blocks=4)
        assert engine.per_superstep_bytes == 0

    def test_ring(self):
        g = ring_digraph(20)
        ref = power_iteration_ppv(g, 0, tol=1e-8)
        vec, _ = BlogelPPR(g, 2).query(0, tol=1e-8)
        assert l_inf(vec, ref) < 1e-6

    def test_disconnected_graph(self):
        g = DiGraph.from_edges(6, [(0, 1), (1, 0), (2, 3), (3, 2), (4, 5), (5, 4)])
        ref = power_iteration_ppv(g, 0, tol=1e-9)
        vec, _ = BlogelPPR(g, 2).query(0, tol=1e-9)
        assert l_inf(vec, ref) < 1e-6

    def test_bad_query(self, small_graph):
        with pytest.raises(QueryError):
            BlogelPPR(small_graph, 2).query(-1)


class TestReports:
    def test_report_fields(self, small_graph):
        _, report = PregelPPR(small_graph, 3).query(1, tol=1e-4)
        assert report.engine == "pregel+"
        assert report.runtime_seconds > 0
        assert report.wall_seconds > 0
        assert report.communication_kb == report.communication_bytes / 1024
        assert report.max_machine_edges > 0

    def test_no_combiner_label(self, small_graph):
        _, report = PregelPPR(small_graph, 3, combiner=False).query(1, tol=1e-2)
        assert report.engine == "pregel"
