"""Shared fixtures: small deterministic graphs and pre-built exact indexes.

Exactness tests run all algorithms at ``TIGHT_TOL`` and compare against
power iteration; the iteration/pruning error then sits far below
``EXACT_ATOL``, so any structural mistake (not a tolerance artefact) fails
loudly.
"""

from __future__ import annotations

import glob
import multiprocessing as mp

import numpy as np
import pytest

from repro.core import (
    build_gpa_index,
    build_hgpa_index,
    build_jw_index,
    power_iteration_ppv,
)
from repro.graph import (
    DiGraph,
    hierarchical_community_digraph,
    ring_digraph,
    star_digraph,
)

TIGHT_TOL = 1e-10
EXACT_ATOL = 5e-8


@pytest.fixture(autouse=True, scope="session")
def no_exec_leaks():
    """Suite-wide guard: the execution seam must leave no worker process
    and no shared-memory segment behind once the tests are done."""
    yield
    leaked = glob.glob("/dev/shm/repro-shm-*")
    assert not leaked, f"leaked shared-memory segments: {leaked}"
    children = mp.active_children()
    assert not children, f"leaked worker processes: {children}"


@pytest.fixture(scope="session")
def tiny_graph() -> DiGraph:
    """Five nodes, hand-checkable (the debug graph of Section 2's example)."""
    edges = [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2), (1, 3)]
    return DiGraph.from_edges(5, edges)


@pytest.fixture(scope="session")
def small_graph() -> DiGraph:
    """200-node community graph with no dangling nodes."""
    g = hierarchical_community_digraph(200, depth=3, avg_out_degree=3, seed=3)
    return g.with_dangling_policy("self_loop")


@pytest.fixture(scope="session")
def medium_graph() -> DiGraph:
    """800-node community graph for partition/distributed tests."""
    g = hierarchical_community_digraph(800, avg_out_degree=4, seed=5)
    return g.with_dangling_policy("self_loop")


@pytest.fixture(scope="session")
def ring10() -> DiGraph:
    return ring_digraph(10)


@pytest.fixture(scope="session")
def star7() -> DiGraph:
    return star_digraph(7)


@pytest.fixture(scope="session")
def reference_ppv(small_graph):
    """Memoised exact PPVs of the small graph."""
    cache: dict[int, np.ndarray] = {}

    def get(u: int) -> np.ndarray:
        if u not in cache:
            cache[u] = power_iteration_ppv(small_graph, u, tol=TIGHT_TOL)
        return cache[u]

    return get


@pytest.fixture(scope="session")
def hgpa_small(small_graph):
    return build_hgpa_index(small_graph, tol=TIGHT_TOL, seed=0)


@pytest.fixture(scope="session")
def gpa_small(small_graph):
    return build_gpa_index(small_graph, 4, tol=TIGHT_TOL, seed=0)


@pytest.fixture(scope="session")
def jw_small(small_graph):
    return build_jw_index(small_graph, num_hubs=20, tol=TIGHT_TOL)


def dense_ppv_matrix(graph: DiGraph, alpha: float = 0.15) -> np.ndarray:
    """Ground-truth PPV matrix by direct linear solve (columns = PPVs)."""
    n = graph.num_nodes
    w = np.zeros((n, n))
    for u in range(n):
        succ = graph.successors(u)
        if succ.size:
            w[u, succ] = 1.0 / succ.size
    return alpha * np.linalg.inv(np.eye(n) - (1 - alpha) * w.T)
