"""Tests for the accuracy metrics (Sections 6.1 and 6.2.10)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.metrics import (
    average_l1,
    kendall_tau_at_k,
    l1,
    l_inf,
    precision_at_k,
    rag_at_k,
    top_k_nodes,
)

finite_floats = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e6, max_value=1e6
)


class TestNorms:
    def test_known_values(self):
        a = np.array([1.0, 2.0, 3.0])
        b = np.array([1.0, 0.0, 7.0])
        assert l1(a, b) == pytest.approx(6.0)
        assert average_l1(a, b) == pytest.approx(2.0)
        assert l_inf(a, b) == pytest.approx(4.0)

    def test_identical_vectors(self):
        a = np.random.default_rng(0).random(10)
        assert average_l1(a, a) == 0.0
        assert l_inf(a, a) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ReproError):
            average_l1(np.zeros(3), np.zeros(4))
        with pytest.raises(ReproError):
            l_inf(np.zeros((2, 2)), np.zeros((2, 2)))

    def test_empty(self):
        assert average_l1(np.zeros(0), np.zeros(0)) == 0.0
        assert l_inf(np.zeros(0), np.zeros(0)) == 0.0


class TestTopK:
    def test_order(self):
        scores = np.array([0.1, 0.9, 0.5, 0.7])
        assert top_k_nodes(scores, 3).tolist() == [1, 3, 2]

    def test_k_clamped(self):
        assert top_k_nodes(np.array([1.0, 2.0]), 10).size == 2

    def test_k_zero(self):
        assert top_k_nodes(np.array([1.0]), 0).size == 0

    def test_ties_by_id(self):
        scores = np.array([0.5, 0.5, 0.9])
        assert top_k_nodes(scores, 3).tolist() == [2, 0, 1]

    def test_boundary_ties_take_smallest_ids(self):
        """Ties straddling the k boundary resolve to the smallest ids."""
        scores = np.zeros(20)
        scores[[7, 12]] = (0.9, 0.4)
        assert top_k_nodes(scores, 5).tolist() == [7, 12, 0, 1, 2]


class TestPrecision:
    def test_perfect(self):
        a = np.array([0.4, 0.3, 0.2, 0.1])
        assert precision_at_k(a, a, 2) == 1.0

    def test_disjoint(self):
        a = np.array([1.0, 0.9, 0.0, 0.0])
        b = np.array([0.0, 0.0, 1.0, 0.9])
        assert precision_at_k(a, b, 2) == 0.0

    def test_half(self):
        a = np.array([1.0, 0.9, 0.1, 0.0])
        b = np.array([1.0, 0.0, 0.9, 0.0])
        assert precision_at_k(a, b, 2) == 0.5

    def test_k_validation(self):
        with pytest.raises(ReproError):
            precision_at_k(np.zeros(3), np.zeros(3), 0)

    def test_k_exceeding_size_identical(self):
        """Regression: k > scores.size must grade against scores.size.

        Two identical 3-node vectors agree perfectly at any k — the old
        docstring promised ``/k``, which would have scored 3/100.
        """
        a = np.array([0.5, 0.3, 0.2])
        assert precision_at_k(a, a, 100) == 1.0

    def test_k_exceeding_size_partial(self):
        # Both top-k sets are all 3 nodes, overlap 3, denominator 3.
        a = np.array([0.5, 0.3, 0.2])
        b = np.array([0.2, 0.5, 0.3])
        assert precision_at_k(a, b, 100) == 1.0

    def test_denominator_capped_at_k(self):
        # k below the vector length: plain |overlap| / k.
        a = np.array([1.0, 0.9, 0.1, 0.0])
        b = np.array([1.0, 0.0, 0.9, 0.0])
        assert precision_at_k(a, b, 2) == 0.5

    def test_empty_vectors_vacuous(self):
        assert precision_at_k(np.zeros(0), np.zeros(0), 5) == 1.0

    def test_one_sided_empty_scores_zero(self):
        # Only one side empty: zero overlap, not a vacuous perfect score.
        assert precision_at_k(np.array([0.5, 0.3]), np.zeros(0), 5) == 0.0
        assert precision_at_k(np.zeros(0), np.array([0.5, 0.3]), 5) == 0.0


class TestRag:
    def test_perfect(self):
        a = np.array([0.4, 0.3, 0.2])
        assert rag_at_k(a, a, 2) == pytest.approx(1.0)

    def test_partial(self):
        exact = np.array([0.5, 0.3, 0.2, 0.0])
        approx = np.array([0.5, 0.0, 0.0, 0.4])  # picks nodes 0 and 3
        # captured = 0.5 + 0.0; best = 0.5 + 0.3
        assert rag_at_k(approx, exact, 2) == pytest.approx(0.5 / 0.8)

    def test_zero_denominator(self):
        assert rag_at_k(np.array([1.0, 0.0]), np.zeros(2), 1) == 1.0


class TestKendall:
    def test_perfect_agreement(self):
        a = np.array([0.4, 0.3, 0.2, 0.1])
        assert kendall_tau_at_k(a, a, 4) == pytest.approx(1.0)

    def test_full_reversal(self):
        a = np.array([0.1, 0.2, 0.3, 0.4])
        b = np.array([0.4, 0.3, 0.2, 0.1])
        assert kendall_tau_at_k(a, b, 4) == pytest.approx(-1.0)

    def test_one_swap(self):
        exact = np.array([0.4, 0.3, 0.2, 0.1])
        approx = np.array([0.3, 0.4, 0.2, 0.1])  # swap first two
        # 6 pairs, 1 discordant: tau = (5-1)/6
        assert kendall_tau_at_k(approx, exact, 4) == pytest.approx(4 / 6)

    def test_k_validation(self):
        with pytest.raises(ReproError):
            kendall_tau_at_k(np.zeros(3), np.zeros(3), -1)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(finite_floats, min_size=2, max_size=30))
    def test_property_bounds_and_symmetry(self, values):
        a = np.asarray(values)
        rng = np.random.default_rng(len(values))
        b = rng.random(a.size)
        tau = kendall_tau_at_k(a, b, 10)
        assert -1.0 <= tau <= 1.0
        assert kendall_tau_at_k(b, a, 10) == pytest.approx(tau)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(finite_floats, min_size=1, max_size=30))
    def test_property_self_agreement(self, values):
        a = np.asarray(values)
        assert kendall_tau_at_k(a, a, 10) == pytest.approx(1.0)
        assert precision_at_k(a, a, min(5, a.size)) == pytest.approx(1.0)
