"""Batched query engine: ``query_many`` vs per-node ``query``.

The contract is exactness: for every index family the batched path must
reproduce the per-query path to 1e-12 (the flat and distributed engines
are bit-identical; HGPA's level grouping only reorders float additions),
with identical work counters and per-machine metrics.
"""

import numpy as np
import pytest

from repro.approx import build_fastppv_index
from repro.core import build_hgpa_index
from repro.core.flat_index import run_in_batches
from repro.distributed import DistributedGPA, DistributedHGPA
from repro.errors import QueryError

BATCH_ATOL = 1e-12


def _mixed_queries(index_hubs, n, count=12, seed=17):
    """Random non-hub nodes plus a few hubs (and one duplicate)."""
    rng = np.random.default_rng(seed)
    picks = rng.choice(n, size=count, replace=False).tolist()
    hubs = np.asarray(index_hubs)[:3].tolist()
    return np.asarray(picks + hubs + picks[:1], dtype=np.int64)


@pytest.fixture(scope="module")
def fast_small(request):
    graph = request.getfixturevalue("small_graph")
    return build_fastppv_index(graph, 25, tol=1e-6)


class TestFlatBatch:
    @pytest.mark.parametrize("family", ["jw_small", "gpa_small"])
    def test_query_many_matches_query(self, request, family):
        index = request.getfixturevalue(family)
        queries = _mixed_queries(index.hubs, index.graph.num_nodes)
        out, stats = index.query_many(queries)
        assert out.shape == (queries.size, index.graph.num_nodes)
        assert len(stats) == queries.size
        for k, u in enumerate(queries.tolist()):
            ref, ref_stats = index.query_detailed(u)
            np.testing.assert_allclose(out[k], ref, atol=BATCH_ATOL, rtol=0)
            assert stats[k].entries_processed == ref_stats.entries_processed
            assert stats[k].vectors_used == ref_stats.vectors_used
            assert stats[k].skeleton_lookups == ref_stats.skeleton_lookups

    @pytest.mark.parametrize("family", ["jw_small", "gpa_small"])
    def test_fast_path_matches_reference_loop(self, request, family):
        """The vectorised path equals the per-hub Eq. 4 loop, stats included."""
        index = request.getfixturevalue(family)
        for u in (0, 57, 199, int(index.hubs[0])):
            ref, ref_stats = index.query_reference(u)
            fast, fast_stats = index.query_detailed(u)
            np.testing.assert_allclose(fast, ref, atol=BATCH_ATOL, rtol=0)
            assert fast_stats.entries_processed == ref_stats.entries_processed
            assert fast_stats.vectors_used == ref_stats.vectors_used
            assert fast_stats.skeleton_lookups == ref_stats.skeleton_lookups

    def test_small_internal_batches(self, jw_small):
        """Chunked evaluation must be independent of the batch size."""
        queries = _mixed_queries(jw_small.hubs, jw_small.graph.num_nodes)
        whole, _ = jw_small.query_many(queries, batch=None)
        chunked, _ = jw_small.query_many(queries, batch=3)
        np.testing.assert_allclose(chunked, whole, atol=BATCH_ATOL, rtol=0)

    def test_empty_batch(self, jw_small):
        out, stats = jw_small.query_many(np.empty(0, dtype=np.int64))
        assert out.shape == (0, jw_small.graph.num_nodes)
        assert stats == []

    def test_run_in_batches_empty_keeps_width(self, jw_small):
        """Regression: an empty batch must come back (0, n), not (0, 0) —
        callers that vstack results or index columns get silent shape
        mismatches otherwise."""
        n = jw_small.graph.num_nodes
        out, meta = run_in_batches(jw_small.query_many, np.empty(0, dtype=np.int64))
        assert out.shape == (0, n)
        assert meta == []
        stacked = np.vstack([out, np.zeros((2, n))])  # concatenation works
        assert stacked.shape == (2, n)

    def test_out_of_range(self, jw_small):
        with pytest.raises(QueryError):
            jw_small.query_many([0, 10_000])
        with pytest.raises(QueryError):
            jw_small.query_many([-1])

    def test_non_integer_ids_rejected(self, jw_small):
        """Floats must not silently truncate to the wrong node's PPV."""
        with pytest.raises(QueryError, match="integer node ids"):
            jw_small.query_many([3.7])
        with pytest.raises(QueryError, match="integer node ids"):
            jw_small.query_many(np.asarray(["3"]))


class TestHGPABatch:
    def test_query_many_matches_query(self, hgpa_small):
        hubs = hgpa_small.hierarchy.hub_nodes()
        queries = _mixed_queries(hubs, hgpa_small.graph.num_nodes)
        out, stats = hgpa_small.query_many(queries)
        for k, u in enumerate(queries.tolist()):
            ref, ref_stats = hgpa_small.query_detailed(u)
            np.testing.assert_allclose(out[k], ref, atol=BATCH_ATOL, rtol=0)
            assert stats[k].entries_processed == ref_stats.entries_processed
            assert stats[k].vectors_used == ref_stats.vectors_used
            assert stats[k].skeleton_lookups == ref_stats.skeleton_lookups

    def test_full_sweep_batch(self, small_graph, hgpa_small):
        """Every node of the graph in one batch, exact against query()."""
        nodes = np.arange(small_graph.num_nodes)
        out, _ = hgpa_small.query_many(nodes)
        for u in range(0, small_graph.num_nodes, 23):
            np.testing.assert_allclose(
                out[u], hgpa_small.query(u), atol=BATCH_ATOL, rtol=0
            )

    def test_single_level_hierarchy(self, small_graph):
        index = build_hgpa_index(small_graph, tol=1e-8, max_levels=1, seed=1)
        queries = np.asarray([0, 5, 100, 199])
        out, _ = index.query_many(queries)
        for k, u in enumerate(queries.tolist()):
            np.testing.assert_allclose(
                out[k], index.query(u), atol=BATCH_ATOL, rtol=0
            )

    def test_out_of_range(self, hgpa_small):
        with pytest.raises(QueryError):
            hgpa_small.query_many([3, 10_000])

    def test_empty_batch(self, hgpa_small):
        out, stats = hgpa_small.query_many(np.empty(0, dtype=np.int64))
        assert out.shape == (0, hgpa_small.graph.num_nodes)
        assert stats == []


class TestFastPPVBatch:
    def test_query_many_matches_query(self, fast_small):
        queries = _mixed_queries(fast_small.hubs, fast_small.graph.num_nodes)
        out, infos = fast_small.query_many(queries)
        for k, u in enumerate(queries.tolist()):
            ref, info = fast_small.query_detailed(u)
            np.testing.assert_allclose(out[k], ref, atol=BATCH_ATOL, rtol=0)
            assert infos[k].expansions == info.expansions
            assert infos[k].residual_mass == pytest.approx(info.residual_mass)

    def test_empty_batch(self, fast_small):
        out, infos = fast_small.query_many(np.empty(0, dtype=np.int64))
        assert out.shape == (0, fast_small.graph.num_nodes)
        assert infos == []

    def test_budget_forwarded(self, fast_small):
        queries = np.asarray([0, 57])
        out, infos = fast_small.query_many(queries, max_expansions=1)
        for k, u in enumerate(queries.tolist()):
            ref, info = fast_small.query_detailed(u, max_expansions=1)
            np.testing.assert_allclose(out[k], ref, atol=BATCH_ATOL, rtol=0)
            assert infos[k].expansions == info.expansions <= 1


class TestDistributedBatch:
    @pytest.fixture(scope="class")
    def dist_gpa(self, request):
        return DistributedGPA(request.getfixturevalue("gpa_small"), 4)

    @pytest.fixture(scope="class")
    def dist_hgpa(self, request):
        return DistributedHGPA(request.getfixturevalue("hgpa_small"), 4)

    @pytest.mark.parametrize("runtime", ["dist_gpa", "dist_hgpa"])
    def test_query_many_matches_query(self, request, runtime):
        dep = request.getfixturevalue(runtime)
        hubs = sorted(dep._hub_owner)
        queries = _mixed_queries(hubs, dep.num_nodes)
        out, reports = dep.query_many(queries)
        assert len(reports) == queries.size
        for k, u in enumerate(queries.tolist()):
            ref, ref_report = dep.query(int(u))
            np.testing.assert_allclose(out[k], ref, atol=BATCH_ATOL, rtol=0)
            assert reports[k].per_machine_entries == ref_report.per_machine_entries
            assert reports[k].per_machine_bytes == ref_report.per_machine_bytes
            assert (
                reports[k].communication_bytes == ref_report.communication_bytes
            )

    @pytest.mark.parametrize("runtime", ["dist_gpa", "dist_hgpa"])
    def test_batch_metrics_sane(self, request, runtime):
        dep = request.getfixturevalue(runtime)
        _, reports = dep.query_many(np.asarray([3, 77]))
        for report in reports:
            assert report.runtime_seconds > 0
            assert report.wall_seconds > 0
            assert len(report.per_machine_bytes) == dep.num_machines

    @pytest.mark.parametrize("runtime", ["dist_gpa", "dist_hgpa"])
    def test_out_of_range(self, request, runtime):
        dep = request.getfixturevalue(runtime)
        with pytest.raises(QueryError):
            dep.query_many([0, 10_000])

    @pytest.mark.parametrize("runtime", ["dist_gpa", "dist_hgpa"])
    def test_empty_batch(self, request, runtime):
        dep = request.getfixturevalue(runtime)
        out, reports = dep.query_many(np.empty(0, dtype=np.int64))
        assert out.shape == (0, dep.num_nodes)
        assert reports == []

    def test_matches_centralized(self, dist_hgpa, hgpa_small, reference_ppv):
        queries = np.asarray([0, 42, 150])
        out, _ = dist_hgpa.query_many(queries)
        for k, u in enumerate(queries.tolist()):
            assert np.abs(out[k] - reference_ppv(u)).max() < 5e-8
