"""Unit tests for whole-graph analysis helpers."""

import numpy as np
import pytest

from repro.graph import (
    DiGraph,
    degree_stats,
    is_vertex_separator,
    num_weakly_connected_components,
    pagerank,
    ring_digraph,
    star_digraph,
    top_pagerank_nodes,
    weakly_connected_components,
)


class TestPagerank:
    def test_sums_to_one(self, small_graph):
        pr = pagerank(small_graph)
        assert pr.sum() == pytest.approx(1.0, abs=1e-8)
        assert (pr >= 0).all()

    def test_ring_uniform(self):
        pr = pagerank(ring_digraph(8))
        np.testing.assert_allclose(pr, np.full(8, 1 / 8), atol=1e-9)

    def test_star_center_dominates(self):
        pr = pagerank(star_digraph(9))
        assert pr[0] > pr[1:].max() * 2

    def test_dangling_mass_redistributed(self):
        g = DiGraph.from_edges(3, [(0, 1), (1, 2)])  # node 2 dangles
        pr = pagerank(g)
        assert pr.sum() == pytest.approx(1.0, abs=1e-8)

    def test_empty_graph(self):
        assert pagerank(DiGraph.from_edges(0, [])).size == 0

    def test_top_pagerank_nodes(self):
        top = top_pagerank_nodes(star_digraph(9), 3)
        assert top[0] == 0
        assert top.size == 3

    def test_top_k_clamped(self):
        assert top_pagerank_nodes(ring_digraph(4), 10).size == 4


class TestComponents:
    def test_connected_ring(self):
        assert num_weakly_connected_components(ring_digraph(6)) == 1

    def test_two_components(self):
        g = DiGraph.from_edges(4, [(0, 1), (2, 3)])
        labels = weakly_connected_components(g)
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]
        assert num_weakly_connected_components(g) == 2

    def test_direction_ignored(self):
        g = DiGraph.from_edges(3, [(1, 0), (1, 2)])
        assert num_weakly_connected_components(g) == 1

    def test_empty(self):
        assert num_weakly_connected_components(DiGraph.from_edges(0, [])) == 0


class TestSeparator:
    def test_valid_separator(self):
        # 0-1 | 2 | 3-4 : node 2 separates.
        g = DiGraph.from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        assert is_vertex_separator(g, [2], [0, 1], [3, 4])

    def test_invalid_separator(self):
        g = DiGraph.from_edges(4, [(0, 1), (1, 2), (2, 3), (0, 3)])
        assert not is_vertex_separator(g, [1], [0], [2, 3])

    def test_reverse_edges_also_blocked(self):
        g = DiGraph.from_edges(3, [(2, 0)])
        assert not is_vertex_separator(g, [1], [0], [2])


class TestDegreeStats:
    def test_values(self, tiny_graph):
        stats = degree_stats(tiny_graph)
        assert stats.num_nodes == 5
        assert stats.num_edges == 7
        assert stats.avg_out_degree == pytest.approx(1.4)
        assert stats.max_out_degree == 2
        assert stats.max_in_degree == 2
        assert stats.num_dangling == 0

    def test_dangling_counted(self):
        g = DiGraph.from_edges(3, [(0, 1)])
        assert degree_stats(g).num_dangling == 2
