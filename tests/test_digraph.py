"""Unit tests for the CSR digraph substrate."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import DiGraph, build_csr


class TestBuildCsr:
    def test_simple(self):
        indptr, indices = build_csr(3, np.array([0, 0, 1]), np.array([1, 2, 2]))
        assert indptr.tolist() == [0, 2, 3, 3]
        assert indices.tolist() == [1, 2, 2]

    def test_dedup_removes_parallel_edges(self):
        indptr, indices = build_csr(2, np.array([0, 0, 0]), np.array([1, 1, 1]))
        assert indices.tolist() == [1]

    def test_dedup_disabled_keeps_parallel_edges(self):
        _, indices = build_csr(2, np.array([0, 0]), np.array([1, 1]), dedup=False)
        assert indices.tolist() == [1, 1]

    def test_rows_sorted(self):
        _, indices = build_csr(4, np.array([1, 0, 1]), np.array([3, 2, 0]))
        assert indices.tolist() == [2, 0, 3]

    def test_out_of_range_rejected(self):
        with pytest.raises(GraphError):
            build_csr(2, np.array([0]), np.array([5]))
        with pytest.raises(GraphError):
            build_csr(2, np.array([-1]), np.array([0]))

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(GraphError):
            build_csr(2, np.array([0, 1]), np.array([1]))

    def test_negative_num_nodes_rejected(self):
        with pytest.raises(GraphError):
            build_csr(-1, np.array([]), np.array([]))


class TestDiGraph:
    def test_counts(self, tiny_graph):
        assert tiny_graph.num_nodes == 5
        assert tiny_graph.num_edges == 7

    def test_successors_sorted(self, tiny_graph):
        assert tiny_graph.successors(1).tolist() == [2, 3]
        assert tiny_graph.successors(2).tolist() == [0, 3]

    def test_out_degree(self, tiny_graph):
        assert tiny_graph.out_degree(1) == 2
        assert tiny_graph.out_degree(4) == 1
        assert tiny_graph.out_degrees.tolist() == [1, 2, 2, 1, 1]

    def test_has_edge(self, tiny_graph):
        assert tiny_graph.has_edge(0, 1)
        assert not tiny_graph.has_edge(1, 0)
        assert not tiny_graph.has_edge(0, 4)

    def test_edges_iteration(self, tiny_graph):
        edges = set(tiny_graph.edges())
        assert (2, 3) in edges and len(edges) == 7

    def test_edge_arrays_roundtrip(self, tiny_graph):
        src, dst = tiny_graph.edge_arrays()
        rebuilt = DiGraph.from_arrays(5, src, dst)
        assert rebuilt == tiny_graph

    def test_from_edges_empty(self):
        g = DiGraph.from_edges(3, [])
        assert g.num_nodes == 3 and g.num_edges == 0

    def test_node_out_of_range(self, tiny_graph):
        with pytest.raises(GraphError):
            tiny_graph.successors(99)
        with pytest.raises(GraphError):
            tiny_graph.out_degree(-1)

    def test_bad_edges_shape(self):
        with pytest.raises(GraphError):
            DiGraph.from_edges(3, [(1, 2, 3)])

    def test_invalid_indptr(self):
        with pytest.raises(GraphError):
            DiGraph(np.array([1, 0]), np.array([], dtype=np.int64))
        with pytest.raises(GraphError):
            DiGraph(np.array([0, 2, 1]), np.array([0, 1], dtype=np.int64))

    def test_equality_and_hash(self, tiny_graph):
        other = DiGraph.from_edges(5, list(tiny_graph.edges()))
        assert other == tiny_graph
        assert hash(other) == hash(tiny_graph)
        assert tiny_graph != DiGraph.from_edges(5, [(0, 1)])


class TestTransitionMatrices:
    def test_transition_rows_stochastic(self, tiny_graph):
        wt = tiny_graph.transition_T()
        col_sums = np.asarray(wt.sum(axis=0)).ravel()
        # Wᵀ columns = W rows: each non-dangling row sums to 1.
        np.testing.assert_allclose(col_sums, np.ones(5))

    def test_dangling_row_is_zero(self):
        g = DiGraph.from_edges(3, [(0, 1)])
        wt = g.transition_T()
        assert np.asarray(wt.sum(axis=0)).ravel()[1] == 0.0

    def test_in_csr_is_transpose(self, tiny_graph):
        diff = (tiny_graph.in_csr() - tiny_graph.out_csr().T).toarray()
        assert np.abs(diff).max() == 0

    def test_undirected_counts_multiplicity(self):
        g = DiGraph.from_edges(2, [(0, 1), (1, 0)])
        u = g.undirected_csr()
        assert u[0, 1] == 2.0


class TestTransformations:
    def test_self_loop_policy_fixes_dangling(self):
        g = DiGraph.from_edges(3, [(0, 1), (1, 2)])
        fixed = g.with_dangling_policy("self_loop")
        assert fixed.dangling_nodes().size == 0
        assert fixed.has_edge(2, 2)
        assert fixed.num_edges == 3

    def test_absorb_policy_is_identity(self):
        g = DiGraph.from_edges(3, [(0, 1)])
        assert g.with_dangling_policy("absorb") is g

    def test_no_dangling_no_change(self, tiny_graph):
        assert tiny_graph.with_dangling_policy("self_loop") is tiny_graph

    def test_unknown_policy(self, tiny_graph):
        with pytest.raises(GraphError):
            tiny_graph.with_dangling_policy("bounce")

    def test_reverse(self, tiny_graph):
        rev = tiny_graph.reverse()
        assert rev.num_edges == tiny_graph.num_edges
        assert rev.has_edge(1, 0) and not rev.has_edge(0, 1)
        assert rev.reverse() == tiny_graph

    def test_induced(self, tiny_graph):
        sub = tiny_graph.induced([2, 3, 4])
        assert sub.num_nodes == 3
        # edges among {2,3,4}: 2->3, 3->4, 4->2 relabelled to 0,1,2
        assert set(sub.edges()) == {(0, 1), (1, 2), (2, 0)}

    def test_induced_out_of_range(self, tiny_graph):
        with pytest.raises(GraphError):
            tiny_graph.induced([0, 99])
