"""Unit tests for graph I/O (edge lists and npz archives)."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import (
    DiGraph,
    load_npz,
    read_edge_list,
    save_npz,
    write_edge_list,
)


class TestEdgeList:
    def test_roundtrip(self, tiny_graph, tmp_path):
        path = tmp_path / "g.txt"
        write_edge_list(tiny_graph, path, header="tiny test graph")
        back = read_edge_list(path)
        assert back == tiny_graph

    def test_header_written(self, tiny_graph, tmp_path):
        path = tmp_path / "g.txt"
        write_edge_list(tiny_graph, path, header="line1\nline2")
        text = path.read_text()
        assert text.startswith("# line1\n# line2\n")
        assert "# nodes: 5 edges: 7" in text

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# snap header\n\n0 1\n1 2\n# trailing\n")
        g = read_edge_list(path)
        assert g.num_nodes == 3 and g.num_edges == 2

    def test_relabel_compacts_sparse_ids(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("100 900\n900 5000\n")
        g = read_edge_list(path, relabel=True)
        assert g.num_nodes == 3
        assert g.has_edge(0, 1) and g.has_edge(1, 2)

    def test_no_relabel_keeps_ids(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 3\n")
        g = read_edge_list(path, relabel=False)
        assert g.num_nodes == 4

    def test_negative_ids_need_relabel(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("-1 0\n")
        with pytest.raises(GraphError):
            read_edge_list(path, relabel=False)
        assert read_edge_list(path, relabel=True).num_nodes == 2

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0\n")
        with pytest.raises(GraphError):
            read_edge_list(path)

    def test_tab_separated(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0\t1\n1\t2\n")
        assert read_edge_list(path).num_edges == 2

    def test_empty_file(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# nothing\n")
        g = read_edge_list(path)
        assert g.num_nodes == 0 and g.num_edges == 0


class TestNpz:
    def test_roundtrip(self, tiny_graph, tmp_path):
        path = tmp_path / "g.npz"
        save_npz(tiny_graph, path)
        back = load_npz(path)
        assert back == tiny_graph

    def test_name_preserved(self, tmp_path):
        g = DiGraph.from_edges(3, [(0, 1)], name="named")
        path = tmp_path / "g.npz"
        save_npz(g, path)
        assert load_npz(path).name == "named"

    def test_bad_archive(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, foo=np.arange(3))
        with pytest.raises(GraphError):
            load_npz(path)
