"""Exactness and behaviour tests for the three PPV indexes (Theorems 1, 3).

PPV-JW, GPA and HGPA must all return the power-iteration PPV, for non-hub
*and* hub query nodes, at every hierarchy shape.
"""

import numpy as np
import pytest

from repro.core import (
    build_gpa_index,
    build_hgpa_ad_index,
    build_hgpa_index,
    build_jw_index,
    power_iteration_ppv,
)
from repro.errors import IndexBuildError, QueryError
from repro.graph import hierarchical_community_digraph
from repro.metrics import l_inf

from conftest import EXACT_ATOL, TIGHT_TOL

QUERIES = [0, 13, 57, 101, 166, 199]


class TestExactness:
    @pytest.mark.parametrize("u", QUERIES)
    def test_jw_matches_power_iteration(self, jw_small, reference_ppv, u):
        assert l_inf(jw_small.query(u), reference_ppv(u)) < EXACT_ATOL

    @pytest.mark.parametrize("u", QUERIES)
    def test_gpa_matches_power_iteration(self, gpa_small, reference_ppv, u):
        assert l_inf(gpa_small.query(u), reference_ppv(u)) < EXACT_ATOL

    @pytest.mark.parametrize("u", QUERIES)
    def test_hgpa_matches_power_iteration(self, hgpa_small, reference_ppv, u):
        assert l_inf(hgpa_small.query(u), reference_ppv(u)) < EXACT_ATOL

    def test_hgpa_equals_gpa_equals_jw(self, hgpa_small, gpa_small, jw_small):
        """Theorems 1 and 3: all formulations compute the same vector."""
        for u in (7, 42):
            a, b, c = hgpa_small.query(u), gpa_small.query(u), jw_small.query(u)
            assert l_inf(a, b) < EXACT_ATOL
            assert l_inf(b, c) < EXACT_ATOL

    def test_hub_queries_exact(self, hgpa_small, gpa_small, jw_small, reference_ppv):
        for index in (hgpa_small, gpa_small, jw_small):
            hubs = index.hubs if hasattr(index, "hubs") else index.hierarchy.hub_nodes()
            for h in np.asarray(hubs)[:8].tolist():
                assert l_inf(index.query(h), reference_ppv(h)) < EXACT_ATOL

    def test_every_node_once(self, small_graph, hgpa_small, reference_ppv):
        """Full sweep: all 200 query nodes exact."""
        for u in range(small_graph.num_nodes):
            assert l_inf(hgpa_small.query(u), reference_ppv(u)) < EXACT_ATOL


class TestHierarchyShapes:
    @pytest.fixture(scope="class")
    def graph(self):
        g = hierarchical_community_digraph(400, avg_out_degree=4, seed=21)
        return g.with_dangling_policy("self_loop")

    @pytest.mark.parametrize("max_levels", [1, 2, 4])
    def test_capped_levels_exact(self, graph, max_levels):
        index = build_hgpa_index(graph, tol=TIGHT_TOL, max_levels=max_levels, seed=1)
        for u in (0, 111, 333):
            ref = power_iteration_ppv(graph, u, tol=TIGHT_TOL)
            assert l_inf(index.query(u), ref) < EXACT_ATOL

    @pytest.mark.parametrize("fanout", [3, 4])
    def test_multiway_exact(self, graph, fanout):
        index = build_hgpa_index(
            graph, tol=TIGHT_TOL, fanout=fanout, max_levels=3, seed=1
        )
        for u in (5, 200):
            ref = power_iteration_ppv(graph, u, tol=TIGHT_TOL)
            assert l_inf(index.query(u), ref) < EXACT_ATOL

    def test_gpa_various_parts(self, graph):
        for parts in (2, 6):
            index = build_gpa_index(graph, parts, tol=TIGHT_TOL, seed=2)
            ref = power_iteration_ppv(graph, 17, tol=TIGHT_TOL)
            assert l_inf(index.query(17), ref) < EXACT_ATOL


class TestToleranceAndPruning:
    def test_accuracy_tracks_tolerance(self, small_graph):
        """Fig. 19's claim: the ℓ-norm error is of the tolerance's order."""
        errors = {}
        for tol in (1e-2, 1e-4, 1e-6):
            index = build_hgpa_index(small_graph, tol=tol, seed=0)
            ref = power_iteration_ppv(small_graph, 3, tol=1e-12)
            errors[tol] = l_inf(index.query(3), ref)
        assert errors[1e-4] <= errors[1e-2] + 1e-12
        assert errors[1e-6] <= errors[1e-4] + 1e-12
        assert errors[1e-6] < 1e-4

    def test_hgpa_ad_prunes_space(self, small_graph):
        exact = build_hgpa_index(small_graph, tol=1e-8, seed=0)
        adapted = build_hgpa_ad_index(small_graph, tol=1e-8, seed=0)
        assert adapted.prune == pytest.approx(1e-4)
        assert adapted.total_nnz() < exact.total_nnz()
        ref = power_iteration_ppv(small_graph, 9, tol=1e-10)
        # Accuracy degrades but stays near the prune threshold's order.
        assert l_inf(adapted.query(9), ref) < 5e-3

    def test_space_reports(self, hgpa_small, gpa_small):
        for index in (hgpa_small, gpa_small):
            report = index.space_report()
            assert set(report) >= {"hub_partials", "skeleton"}
            assert index.total_bytes() == sum(report.values())
            assert index.total_nnz() > 0

    def test_build_costs_recorded(self, hgpa_small):
        assert hgpa_small.offline_seconds() > 0.0
        kinds = {key[0] for key in hgpa_small.build_cost}
        assert kinds == {"hub", "skel", "leaf"}


class TestQueryStats:
    def test_stats_populated(self, hgpa_small):
        vec, stats = hgpa_small.query_detailed(11)
        assert stats.entries_processed > 0
        assert stats.vectors_used >= 1
        assert stats.skeleton_lookups >= 0
        assert vec.shape == (hgpa_small.graph.num_nodes,)

    def test_stats_merge(self, hgpa_small):
        _, a = hgpa_small.query_detailed(11)
        _, b = hgpa_small.query_detailed(12)
        total = a.entries_processed + b.entries_processed
        a.merge(b)
        assert a.entries_processed == total


class TestErrors:
    def test_bad_query(self, hgpa_small, gpa_small, jw_small):
        for index in (hgpa_small, gpa_small, jw_small):
            with pytest.raises(QueryError):
                index.query(10_000)

    def test_jw_requires_one_hub_spec(self, small_graph):
        with pytest.raises(IndexBuildError):
            build_jw_index(small_graph)
        with pytest.raises(IndexBuildError):
            build_jw_index(small_graph, num_hubs=3, hubs=np.array([1]))

    def test_gpa_bad_parts(self, small_graph):
        with pytest.raises(IndexBuildError):
            build_gpa_index(small_graph, 0)

    def test_hgpa_bad_alpha(self, small_graph):
        with pytest.raises(IndexBuildError):
            build_hgpa_index(small_graph, alpha=1.5)
