"""Tests for the simulated cluster and the distributed GPA/HGPA runtimes.

The contracts under test are the paper's headline properties: distributed
results equal centralized ones, each machine communicates with the
coordinator exactly once per query (Theorem 4's O(n·|V|) bound), storage
partitions without duplication, and pre-computation splits evenly.
"""

import numpy as np
import pytest

from repro.core import SparseVec
from repro.distributed import (
    CostModel,
    DistributedGPA,
    DistributedHGPA,
    Machine,
    NetworkMeter,
    precompute_report,
)
from repro.errors import ClusterError, QueryError

from conftest import EXACT_ATOL


@pytest.fixture(scope="module")
def dist_hgpa(request):
    index = request.getfixturevalue("hgpa_small")
    return DistributedHGPA(index, 4)


@pytest.fixture(scope="module")
def dist_gpa(request):
    index = request.getfixturevalue("gpa_small")
    return DistributedGPA(index, 4)


class TestMachine:
    def test_put_get(self):
        m = Machine(0)
        vec = SparseVec.one_hot(3)
        m.put(("hub", 3), vec, build_seconds=0.5)
        assert m.get(("hub", 3)) is vec
        assert m.offline_seconds == 0.5
        assert m.stored_bytes == vec.wire_bytes
        assert m.stored_vectors == 1

    def test_duplicate_key_rejected(self):
        m = Machine(0)
        m.put(("hub", 1), SparseVec.one_hot(1))
        with pytest.raises(ClusterError):
            m.put(("hub", 1), SparseVec.one_hot(1))

    def test_missing_key(self):
        with pytest.raises(ClusterError):
            Machine(0).get(("hub", 9))

    def test_accumulate_counts_entries(self):
        m = Machine(0)
        m.put(("leaf", 0), SparseVec(np.array([0, 1]), np.array([1.0, 2.0])))
        acc = np.zeros(3)
        n = m.accumulate(acc, ("leaf", 0), 2.0)
        assert n == 2 and m.query_entries == 2
        assert acc.tolist() == [2.0, 4.0, 0.0]


class TestNetworkMeter:
    def test_accounting(self):
        meter = NetworkMeter()
        meter.record("machine-0", "coordinator", 1024)
        meter.record("machine-1", "coordinator", 1024)
        assert meter.total_bytes == 2048
        assert meter.total_messages == 2
        assert meter.total_kilobytes == pytest.approx(2.0)
        meter.reset()
        assert meter.total_bytes == 0


class TestCostModel:
    def test_monotone(self):
        cm = CostModel()
        assert cm.compute_seconds(2_000_000) > cm.compute_seconds(1_000)
        assert cm.transfer_seconds(10_000, 1) > cm.transfer_seconds(100, 1)

    def test_latency_per_message(self):
        cm = CostModel(latency_seconds=0.01)
        assert cm.transfer_seconds(0, 5) == pytest.approx(0.05)


class TestDistributedCorrectness:
    @pytest.mark.parametrize("u", [0, 42, 150, 199])
    def test_hgpa_equals_centralized(self, dist_hgpa, hgpa_small, u):
        vec, _ = dist_hgpa.query(u)
        np.testing.assert_allclose(vec, hgpa_small.query(u), atol=1e-9)

    @pytest.mark.parametrize("u", [0, 42, 150, 199])
    def test_gpa_equals_centralized(self, dist_gpa, gpa_small, u):
        vec, _ = dist_gpa.query(u)
        np.testing.assert_allclose(vec, gpa_small.query(u), atol=1e-9)

    def test_hub_query_distributed(self, dist_hgpa, reference_ppv):
        hub = int(dist_hgpa.index.hierarchy.hub_nodes()[0])
        vec, _ = dist_hgpa.query(hub)
        assert np.abs(vec - reference_ppv(hub)).max() < EXACT_ATOL

    @pytest.mark.parametrize("machines", [1, 2, 7])
    def test_any_machine_count(self, hgpa_small, reference_ppv, machines):
        dep = DistributedHGPA(hgpa_small, machines)
        vec, _ = dep.query(33)
        assert np.abs(vec - reference_ppv(33)).max() < EXACT_ATOL

    def test_bad_query(self, dist_hgpa, dist_gpa):
        for dep in (dist_hgpa, dist_gpa):
            with pytest.raises(QueryError):
                dep.query(12_345)


class TestCommunicationBound:
    def test_one_message_per_machine(self, dist_hgpa):
        dist_hgpa.coordinator.meter.reset()
        _, report = dist_hgpa.query(10)
        # one payload per machine + the tiny broadcast
        assert len(report.per_machine_bytes) == dist_hgpa.num_machines
        assert dist_hgpa.coordinator.meter.total_messages == 2 * dist_hgpa.num_machines

    def test_theorem4_bound(self, dist_hgpa):
        """Each machine's vector has at most |V| entries: O(n·|V|) total."""
        _, report = dist_hgpa.query(10)
        n = dist_hgpa.num_nodes
        per_vector_cap = 16 + 12 * n
        for nbytes in report.per_machine_bytes:
            assert nbytes <= per_vector_cap
        assert report.communication_bytes <= dist_hgpa.num_machines * (
            per_vector_cap + 8
        )

    def test_report_fields(self, dist_hgpa):
        _, report = dist_hgpa.query(77)
        assert report.runtime_seconds > 0
        assert report.wall_seconds > 0
        assert report.communication_kb == report.communication_bytes / 1024
        assert report.load_imbalance >= 1.0


class TestFinishQueryPairing:
    def test_metrics_keyed_by_machine_id(self):
        """Regression: entries and bytes must pair by machine id even when
        ``machines`` is not sorted by id (the old code zipped a
        machines-ordered list against a sorted-key list)."""
        from repro.distributed.cluster import ClusterBase
        from repro.distributed.coordinator import Coordinator

        cb = ClusterBase(num_nodes=4)
        cb.machines = [Machine(2), Machine(0), Machine(1)]  # shuffled on purpose
        cb.coordinator = Coordinator(num_nodes=4)
        entries = {2: 2_000_000, 0: 0, 1: 10}
        for m in cb.machines:
            m.query_entries = entries[m.machine_id]
        partials = {
            0: np.array([1.0, 2.0, 3.0, 4.0]),  # 4 entries -> most bytes
            1: np.array([1.0, 0.0, 0.0, 0.0]),
            2: np.array([0.0, 0.0, 0.0, 0.0]),  # heavy compute, empty vector
        }
        result, report = cb._finish_query(5, dict(partials), {})
        np.testing.assert_allclose(result, sum(partials.values()))
        # Lists are ordered by ascending machine id.
        assert report.per_machine_entries == [0, 10, 2_000_000]
        assert report.per_machine_bytes == [16 + 12 * 4, 16 + 12 * 1, 16]
        # The paper runtime pairs machine 2's compute with *its own* bytes.
        expected = max(
            cb.cost_model.compute_seconds(entries[mid])
            + cb.cost_model.transfer_seconds(report.per_machine_bytes[mid], 1)
            for mid in (0, 1, 2)
        )
        assert report.runtime_seconds == pytest.approx(expected)

    def test_entries_override(self):
        from repro.distributed.cluster import ClusterBase
        from repro.distributed.coordinator import Coordinator

        cb = ClusterBase(num_nodes=2)
        cb.machines = [Machine(0), Machine(1)]
        cb.coordinator = Coordinator(num_nodes=2)
        partials = {0: np.array([1.0, 0.0]), 1: np.array([0.0, 1.0])}
        _, report = cb._finish_query(
            0, partials, {}, entries_by_machine={0: 7, 1: 9}
        )
        assert report.per_machine_entries == [7, 9]


class TestOwnershipPrecompute:
    def test_gpa_owned_hub_lists(self, dist_gpa):
        seen = {}
        for mid in sorted(dist_gpa._machine_owned):
            owned, part_csc, skel_csr, nnz = dist_gpa._ops_for(mid)
            assert np.all(np.diff(owned) > 0)  # sorted, unique
            assert part_csc.shape == (dist_gpa.num_nodes, owned.size)
            assert skel_csr.shape == (dist_gpa.num_nodes, owned.size)
            assert nnz.size == owned.size
            for h in owned.tolist():
                assert dist_gpa._hub_owner[h] == mid
                seen[h] = mid
        assert set(seen) == set(dist_gpa.index.hub_partials)

    def test_hgpa_owned_level_lists(self, dist_hgpa):
        seen = set()
        for (mid, sid), owned in dist_hgpa._level_owned.items():
            sg = dist_hgpa.index.hierarchy.subgraphs[sid]
            assert np.all(np.isin(owned, sg.hubs))
            assert np.all(np.diff(owned) > 0)
            ops = dist_hgpa._ops_for(mid, sid)
            assert ops is not None and ops[1].shape[1] == owned.size
            for h in owned.tolist():
                assert dist_hgpa._hub_owner[h] == mid
                seen.add(h)
        assert seen == set(dist_hgpa.index.hub_partials)

    def test_stacked_ops_lazy(self, gpa_small, hgpa_small):
        """_deploy must not build the stacked matmul buffers: they appear
        on first query (and only for the levels that query touches)."""
        gpa = DistributedGPA(gpa_small, 3)
        assert gpa._machine_ops == {}
        out, _ = gpa.query_many([0, 5])
        assert set(gpa._machine_ops) == set(gpa._machine_owned)
        np.testing.assert_allclose(out[0], gpa_small.query(0), atol=EXACT_ATOL)

        hgpa = DistributedHGPA(hgpa_small, 3)
        assert hgpa._level_ops == {}
        vec, _ = hgpa.query(7)
        assert 0 < len(hgpa._level_ops) <= len(hgpa._level_owned)
        np.testing.assert_allclose(vec, hgpa_small.query(7), atol=EXACT_ATOL)

    def test_owner_maps_cover_all_nodes(self, dist_gpa, dist_hgpa):
        for runtime in (dist_gpa, dist_hgpa):
            owners = runtime.owner_map()
            assert owners.shape == (runtime.num_nodes,)
            assert owners.min() >= 0 and owners.max() < runtime.num_machines
        for h, mid in dist_gpa._hub_owner.items():
            assert dist_gpa.owner_map()[h] == mid
        for u, mid in dist_hgpa._leaf_owner.items():
            assert dist_hgpa.owner_map()[u] == mid


class TestDeployment:
    def test_validate(self, dist_hgpa, dist_gpa):
        dist_hgpa.validate_deployment()
        dist_gpa.validate_deployment()

    def test_no_duplicated_storage(self, hgpa_small):
        dep = DistributedHGPA(hgpa_small, 3)
        assert dep.total_stored_bytes() == hgpa_small.total_bytes()

    def test_space_shrinks_with_machines(self, hgpa_small):
        small = DistributedHGPA(hgpa_small, 2).max_machine_bytes()
        large = DistributedHGPA(hgpa_small, 8).max_machine_bytes()
        assert large < small

    def test_offline_split(self, hgpa_small):
        dep = DistributedHGPA(hgpa_small, 4)
        report = precompute_report(dep)
        assert report.num_machines == 4
        assert report.makespan_seconds <= report.total_seconds
        assert report.total_seconds == pytest.approx(
            hgpa_small.offline_seconds(), rel=1e-6
        )
        assert 0.0 < report.parallel_efficiency <= 1.0

    def test_offline_makespan_shrinks(self, hgpa_small):
        m2 = precompute_report(DistributedHGPA(hgpa_small, 2)).makespan_seconds
        m8 = precompute_report(DistributedHGPA(hgpa_small, 8)).makespan_seconds
        assert m8 < m2

    def test_cluster_needs_machines(self, hgpa_small):
        with pytest.raises(ClusterError):
            DistributedHGPA(hgpa_small, 0)


class TestWireVersion:
    """The runtimes' ``wire_version=2`` flag: identical answers, int64-id
    payloads on the machine→coordinator leg (16 bytes/entry vs 12)."""

    @pytest.mark.parametrize("runtime_cls", [DistributedGPA, DistributedHGPA])
    def test_v2_results_identical_bytes_larger(self, request, runtime_cls):
        index = request.getfixturevalue(
            "gpa_small" if runtime_cls is DistributedGPA else "hgpa_small"
        )
        nodes = np.arange(0, 12)
        v1 = runtime_cls(index, 4)
        v2 = runtime_cls(index, 4, wire_version=2)
        d1, rep1 = v1.query_many(nodes)
        d2, rep2 = v2.query_many(nodes)
        assert np.array_equal(d1, d2)
        m1, _ = v1.query_many_sparse(nodes)
        m2, _ = v2.query_many_sparse(nodes)
        assert np.array_equal(m1.toarray(), m2.toarray())
        total_v1 = sum(r.communication_bytes for r in rep1)
        total_v2 = sum(r.communication_bytes for r in rep2)
        assert total_v2 > total_v1  # 16-byte entries vs 12-byte
