"""Bad: prices payloads but never touches a meter (RPR002)."""


def reply_cost(vectors):
    return max(v.wire_bytes for v in vectors)  # expect: RPR002
