"""OK: bounded retries re-raise on exhaustion and charge their waits."""

from repro.errors import TransientFault
from repro.sharding.resilience import charge_wait


def send_with_retries(link, payload, policy, clock):
    last_error = None
    for attempt in range(policy.max_attempts):
        try:
            return link.send(payload)
        except TransientFault as exc:
            last_error = exc
            charge_wait(clock, policy.backoff(attempt))
            continue
    raise last_error


def send_reraising_inline(link, payload, policy):
    for attempt in range(policy.max_attempts):
        try:
            return link.send(payload)
        except TransientFault:
            if attempt == policy.max_attempts - 1:
                raise
            continue


def pump_forever(queue):
    while True:  # cannot exhaust, so the swallowed error always retries
        try:
            return queue.pop()
        except TransientFault:
            continue
