"""Bad: bounded retry loops that swallow the last error (RPR006)."""

from repro.errors import TransientFault


def fetch_with_retries(link, payload):
    for _attempt in range(3):  # expect: RPR006
        try:
            return link.send(payload)
        except TransientFault:
            continue


def drain(queue, budget):
    got = []
    while budget > 0:  # expect: RPR006
        budget -= 1
        try:
            got.append(queue.pop())
        except TransientFault:
            continue
    return got
