"""Bad: wall-clock sleeps instead of clock-charged waits (RPR006)."""

import time

from repro.errors import TransientFault


def send_with_backoff(link, payload, policy):
    last_error = None
    for attempt in range(policy.max_attempts):
        try:
            return link.send(payload)
        except TransientFault as exc:
            last_error = exc
            time.sleep(policy.backoff(attempt))  # expect: RPR006
            continue
    raise last_error


def wait_for_recovery(replica, clock):
    while not replica.is_up(clock.now()):
        time.sleep(0.01)  # expect: RPR006
