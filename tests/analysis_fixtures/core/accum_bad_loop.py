"""Bad: += accumulation inside a loop over a set (RPR004)."""


def total(residuals: set) -> float:
    acc = 0.0
    for r in residuals:  # expect: RPR001
        acc += r  # expect: RPR004
    return acc
