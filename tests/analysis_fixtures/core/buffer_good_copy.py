"""Good: mutate only owned copies; constructors own self; freeze is fine."""


class Holder:
    def __init__(self, idx, val):
        self.idx = idx
        self.val = val


def rescale(vec, factor):
    data = vec.val.copy()
    data *= factor
    return data


def freeze(arr):
    arr.flags.writeable = False
    return arr


def rebuild(raw):
    fresh = raw.copy()
    fresh.data[0] = 0.0
    return fresh
