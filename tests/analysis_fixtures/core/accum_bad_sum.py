"""Bad: sum() over hash-ordered containers (RPR004)."""


def mass(values: set) -> float:
    return sum(values)  # expect: RPR004


def weighted(pairs: frozenset) -> float:
    return sum(w for _, w in pairs)  # expect: RPR001,RPR004
