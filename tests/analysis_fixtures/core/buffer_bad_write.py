"""Bad: in-place writes through shared buffer aliases (RPR003)."""


def zero_entries(vec, mask):
    vec.val[mask] = 0.0  # expect: RPR003
    vec.idx = mask  # expect: RPR003
    return vec


def bump(matrix):
    matrix.data[0] += 1.0  # expect: RPR003
