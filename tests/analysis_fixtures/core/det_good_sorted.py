"""Good: sorted set iteration, seeded randomness, ordered dicts."""

import random


def emit(nodes: set) -> list:
    rng = random.Random(7)
    out = []
    for node in sorted(nodes):
        out.append((node, rng.random()))
    return out


def weights(by_node: dict) -> float:
    total = 0.0
    for key in by_node:
        total += by_node[key]
    return total
