"""Bad: set iteration leaks hash order into output (RPR001)."""


def emit(nodes):
    seen = {3, 1, 2}
    out = []
    for node in seen:  # expect: RPR001
        out.append(node)
    return out


def snapshot(pending: set):
    return list(pending)  # expect: RPR001
