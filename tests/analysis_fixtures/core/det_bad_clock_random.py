"""Bad: wall-clock reads and unseeded randomness (RPR001)."""

import random
import time

import numpy as np


def stamp():
    started = time.time()  # expect: RPR001
    jitter = random.random()  # expect: RPR001
    rng = np.random.default_rng()  # expect: RPR001
    return started, jitter, rng
