"""Good: accumulation order independent of the hash seed."""


def mass(values: set) -> float:
    return sum(sorted(values))


def total(residuals: list) -> float:
    acc = 0.0
    for r in residuals:
        acc += r
    return acc
