"""Good: ReproError subclasses at the boundary, narrow catches."""

from repro.errors import QueryError


def get_vector(store, node):
    try:
        return store[node]
    except KeyError:
        raise QueryError(f"unknown node {node}") from None


def _check_internal(x):
    if x < 0:
        raise ValueError("internal invariant")  # private helper: allowed
    return x


class Resource:
    def __exit__(self, *exc):
        try:
            self.handle.close()
        except Exception:
            pass  # best-effort teardown is exempt
