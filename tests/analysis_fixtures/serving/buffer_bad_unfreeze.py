"""Bad: re-enabling writes on a frozen shared array (RPR003)."""


def thaw(arr):
    arr.flags.writeable = True  # expect: RPR003
    return arr
