"""Bad: public API raising builtins (RPR005)."""


def get_vector(store, node):
    if node not in store:
        raise KeyError(node)  # expect: RPR005
    return store[node]


def validate(alpha):
    if not 0.0 < alpha < 1.0:
        raise ValueError("alpha out of range")  # expect: RPR005
    return alpha
