"""Good: kernels accumulate in explicitly sorted, replayable order."""


def scatter_columns(touched: set, acc, out):
    pos = 0
    for col in sorted(touched):
        out[pos] = acc[col]
        pos += 1
    return pos


def column_mass(partials: list) -> float:
    total = 0.0
    for value in partials:
        total += value
    return total
