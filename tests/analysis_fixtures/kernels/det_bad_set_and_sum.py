"""Bad: hash-ordered iteration/accumulation in a kernel (RPR001/RPR004).

A kernel that visits stored entries in set order, or sums partial
products over an unordered container, silently breaks the bitwise
replay contract — the result becomes a function of PYTHONHASHSEED.
"""


def scatter_columns(touched: set, acc, out):
    pos = 0
    for col in touched:  # expect: RPR001
        out[pos] = acc[col]
        pos += 1  # expect: RPR004
    return pos


def column_mass(partials: set) -> float:
    return sum(partials)  # expect: RPR004


def merge_levels(blocks: frozenset) -> float:
    total = 0.0
    for block in blocks:  # expect: RPR001
        total += block  # expect: RPR004
    return total
