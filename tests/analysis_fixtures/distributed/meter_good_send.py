"""Good: every wire payload is charged on the NetworkMeter."""


def send(vec, link, meter, src, dst):
    payload = vec.to_wire()
    meter.record(src, dst, len(payload))
    link.push(payload)


def reply_cost(vectors, net_meter):
    cost = sum(v.wire_bytes for v in vectors)
    net_meter.record(0, 1, cost)
    return cost
