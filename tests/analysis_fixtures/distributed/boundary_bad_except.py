"""Bad: handlers that mask failures (RPR005)."""


def lookup(store, key):
    try:
        return store[key]
    except:  # expect: RPR005
        return None


def flush(link):
    try:
        link.flush()
    except Exception:  # expect: RPR005
        pass
