"""Bad: wire codec used without charging a NetworkMeter (RPR002)."""


def send(vec, link):
    payload = vec.to_wire()  # expect: RPR002
    link.push(payload)


def receive(payload, codec):
    return codec.from_wire(payload)  # expect: RPR002
