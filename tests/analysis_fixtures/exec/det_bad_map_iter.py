"""Bad: unordered map iteration at the process boundary (RPR001).

Outside ``exec/`` dict iteration is insertion-ordered and fine; at the
process boundary registration order decides worker assignment, so it
must be made explicit.
"""


def assign(states):
    order = []
    for key, state in states.items():  # expect: RPR001
        order.append((key, state))
    return order
