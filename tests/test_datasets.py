"""Tests for the dataset registry stand-ins."""

import numpy as np
import pytest

from repro import datasets
from repro.errors import ReproError


class TestRegistry:
    def test_all_names_present(self):
        names = datasets.dataset_names()
        for expected in ("email", "web", "youtube", "pld", "pld_full"):
            assert expected in names
        assert [f"meetup_m{i}" in names for i in range(1, 6)] == [True] * 5

    def test_unknown_name(self):
        with pytest.raises(ReproError):
            datasets.spec("imaginary")
        with pytest.raises(ReproError):
            datasets.load("imaginary")

    def test_spec_facts(self):
        s = datasets.spec("email")
        assert s.paper_nodes == 265_214
        assert s.paper_edges == 420_045
        assert s.hgpa_levels > 0

    def test_load_deterministic_and_cached(self):
        a = datasets.load("email")
        b = datasets.load("email")
        assert a is b  # cached
        assert a.num_nodes > 0 and a.dangling_nodes().size == 0

    def test_meetup_sizes_increase(self):
        sizes = [datasets.load(f"meetup_m{i}").num_nodes for i in range(1, 6)]
        assert sizes == sorted(sizes)
        assert sizes[0] < sizes[-1]

    def test_meetup_denser_than_web(self):
        meetup = datasets.load("meetup_m1")
        web = datasets.load("web")
        assert (meetup.num_edges / meetup.num_nodes) > (web.num_edges / web.num_nodes)

    def test_density_matches_paper_ratio(self):
        """Stand-ins keep the original m/n within a factor of ~2."""
        for name in ("email", "web", "youtube", "pld"):
            s = datasets.spec(name)
            g = datasets.load(name)
            paper_ratio = s.paper_edges / s.paper_nodes
            ours = g.num_edges / g.num_nodes
            assert 0.4 * paper_ratio <= ours <= 2.2 * paper_ratio, name


class TestScale:
    def test_scale_factor_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "2.5")
        assert datasets.scale_factor() == 2.5

    def test_scale_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "zero")
        with pytest.raises(ReproError):
            datasets.scale_factor()
        monkeypatch.setenv("REPRO_SCALE", "-1")
        with pytest.raises(ReproError):
            datasets.scale_factor()

    def test_scale_changes_size(self, monkeypatch):
        base = datasets.load("email").num_nodes
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        smaller = datasets.load("email").num_nodes
        assert smaller == pytest.approx(base * 0.5, rel=0.1)


class TestQueryNodes:
    def test_protocol(self):
        g = datasets.load("email")
        q = datasets.query_nodes(g, 50, seed=1)
        assert q.size == 50
        assert np.unique(q).size == 50  # no replacement
        np.testing.assert_array_equal(q, datasets.query_nodes(g, 50, seed=1))

    def test_clamped_to_graph(self):
        g = datasets.load("email")
        q = datasets.query_nodes(g, 10**9)
        assert q.size == g.num_nodes
